#include "flow/trainer.hpp"

#include <gtest/gtest.h>

#include "data/alphabet.hpp"
#include "test_support.hpp"

namespace passflow::flow {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  passflow::testing::QuietLogs quiet_;
  data::Encoder encoder_{data::Alphabet::compact(), 6};
};

TEST_F(TrainerTest, NllDecreasesOnToyCorpus) {
  util::Rng rng(1);
  FlowModel model(passflow::testing::tiny_flow_config(), rng);

  TrainConfig config;
  config.epochs = 8;
  config.batch_size = 64;
  config.log_every = 0;
  config.validation_fraction = 0.0;
  Trainer trainer(model, config);

  const auto result =
      trainer.train(passflow::testing::toy_corpus(40), encoder_);
  ASSERT_EQ(result.history.size(), 8u);
  // Later epochs should beat the first epoch clearly.
  EXPECT_LT(result.history.back().train_nll,
            result.history.front().train_nll - 0.5);
}

TEST_F(TrainerTest, TrainedModelAssignsHigherDensityToTrainingData) {
  util::Rng rng(2);
  FlowModel model(passflow::testing::tiny_flow_config(), rng);
  TrainConfig config;
  config.epochs = 10;
  config.batch_size = 64;
  config.log_every = 0;
  Trainer trainer(model, config);
  trainer.train(passflow::testing::toy_corpus(40), encoder_);

  // Training passwords should be more probable than random garbage strings.
  const auto train_lp = model.log_prob(encoder_.encode_batch({"123456"}));
  const auto junk_lp = model.log_prob(encoder_.encode_batch({"zqxjwv"}));
  EXPECT_GT(train_lp[0], junk_lp[0]);
}

TEST_F(TrainerTest, EpochCallbackFires) {
  util::Rng rng(3);
  FlowModel model(passflow::testing::tiny_flow_config(), rng);
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 64;
  config.log_every = 0;
  Trainer trainer(model, config);
  std::size_t calls = 0;
  trainer.train(passflow::testing::toy_corpus(5), encoder_,
                [&](const EpochStats& stats) {
                  EXPECT_EQ(stats.epoch, calls);
                  ++calls;
                });
  EXPECT_EQ(calls, 3u);
}

TEST_F(TrainerTest, BestEpochIsTracked) {
  util::Rng rng(4);
  FlowModel model(passflow::testing::tiny_flow_config(), rng);
  TrainConfig config;
  config.epochs = 5;
  config.batch_size = 64;
  config.log_every = 0;
  config.validation_fraction = 0.2;
  Trainer trainer(model, config);
  const auto result =
      trainer.train(passflow::testing::toy_corpus(30), encoder_);
  EXPECT_LT(result.best_epoch, 5u);
  double min_val = result.history.front().validation_nll;
  for (const auto& epoch : result.history) {
    min_val = std::min(min_val, epoch.validation_nll);
  }
  EXPECT_DOUBLE_EQ(result.best_validation_nll, min_val);
}

TEST_F(TrainerTest, ValidationHoldoutShrinksTrainSet) {
  // With validation_fraction=0.5 over 40 distinct entries, epochs see ~20.
  util::Rng rng(5);
  FlowModel model(passflow::testing::tiny_flow_config(), rng);
  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 1000;
  config.log_every = 0;
  config.validation_fraction = 0.5;
  Trainer trainer(model, config);
  const auto result =
      trainer.train(passflow::testing::toy_corpus(10), encoder_);
  ASSERT_EQ(result.history.size(), 1u);
}

}  // namespace
}  // namespace passflow::flow
