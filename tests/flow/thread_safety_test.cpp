// Thread-safety regression tests for FlowModel's inference paths.
//
// forward_inference / inverse / log_prob are const and cache-free, so many
// ThreadPool workers may share one model. These tests pin that contract:
// concurrent calls must produce exactly the results of serial calls, and
// the pool-chunked overloads must be bitwise identical to the serial ones.
// They run under the `thread_safety` CTest label so a TSan configuration
// can execute precisely this slice (`ctest -L thread_safety`).
#include "flow/flow_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_support.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace passflow::flow {
namespace {

nn::Matrix normal_batch(std::size_t rows, std::size_t cols,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return m;
}

void expect_bitwise_equal(const nn::Matrix& a, const nn::Matrix& b) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "at flat index " << i;
  }
}

TEST(FlowThreadSafety, ConcurrentInverseMatchesSerial) {
  const auto& env = passflow::testing::tiny_trained_flow();
  constexpr std::size_t kTasks = 24;

  std::vector<nn::Matrix> inputs;
  std::vector<nn::Matrix> expected(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    inputs.push_back(normal_batch(48, env.model.dim(), 100 + i));
  }
  for (std::size_t i = 0; i < kTasks; ++i) {
    expected[i] = env.model.inverse(inputs[i]);
  }

  std::vector<nn::Matrix> actual(kTasks);
  util::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    actual[i] = env.model.inverse(inputs[i]);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    expect_bitwise_equal(expected[i], actual[i]);
  }
}

TEST(FlowThreadSafety, ConcurrentForwardInferenceMatchesSerial) {
  const auto& env = passflow::testing::tiny_trained_flow();
  constexpr std::size_t kTasks = 24;

  std::vector<nn::Matrix> inputs;
  std::vector<nn::Matrix> expected(kTasks);
  std::vector<std::vector<double>> expected_log_det(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    inputs.push_back(normal_batch(48, env.model.dim(), 500 + i));
  }
  for (std::size_t i = 0; i < kTasks; ++i) {
    expected[i] = env.model.forward_inference(inputs[i], &expected_log_det[i]);
  }

  std::vector<nn::Matrix> actual(kTasks);
  std::vector<std::vector<double>> actual_log_det(kTasks);
  util::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    actual[i] = env.model.forward_inference(inputs[i], &actual_log_det[i]);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    expect_bitwise_equal(expected[i], actual[i]);
    ASSERT_EQ(expected_log_det[i], actual_log_det[i]);
  }
}

TEST(FlowThreadSafety, MixedInverseAndForwardOnOneModel) {
  // Workers hammer both directions of the same model simultaneously; each
  // task must still reproduce its serial golden exactly.
  const auto& env = passflow::testing::tiny_trained_flow();
  constexpr std::size_t kTasks = 32;

  std::vector<nn::Matrix> inputs;
  std::vector<nn::Matrix> expected(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    inputs.push_back(normal_batch(32, env.model.dim(), 900 + i));
    expected[i] = (i % 2 == 0) ? env.model.inverse(inputs[i])
                               : env.model.forward_inference(inputs[i]);
  }

  std::vector<nn::Matrix> actual(kTasks);
  util::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    actual[i] = (i % 2 == 0) ? env.model.inverse(inputs[i])
                             : env.model.forward_inference(inputs[i]);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    expect_bitwise_equal(expected[i], actual[i]);
  }
}

TEST(FlowThreadSafety, PooledInverseBitwiseEqualsSerial) {
  const auto& env = passflow::testing::tiny_trained_flow();
  const nn::Matrix z = normal_batch(512, env.model.dim(), 7);
  util::ThreadPool pool(4);
  expect_bitwise_equal(env.model.inverse(z), env.model.inverse(z, &pool));
}

TEST(FlowThreadSafety, PooledForwardInferenceBitwiseEqualsSerial) {
  const auto& env = passflow::testing::tiny_trained_flow();
  const nn::Matrix x = normal_batch(512, env.model.dim(), 8);
  util::ThreadPool pool(4);

  std::vector<double> serial_log_det;
  std::vector<double> pooled_log_det;
  const nn::Matrix serial = env.model.forward_inference(x, &serial_log_det);
  const nn::Matrix pooled =
      env.model.forward_inference(x, &pooled_log_det, &pool);
  expect_bitwise_equal(serial, pooled);
  ASSERT_EQ(serial_log_det, pooled_log_det);
}

TEST(FlowThreadSafety, PooledSmallBatchFallsBackToSerial) {
  const auto& env = passflow::testing::tiny_trained_flow();
  const nn::Matrix z = normal_batch(4, env.model.dim(), 9);
  util::ThreadPool pool(4);
  expect_bitwise_equal(env.model.inverse(z), env.model.inverse(z, &pool));
}

}  // namespace
}  // namespace passflow::flow
