#include "flow/coupling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "nn/gradcheck.hpp"
#include "nn/ops.hpp"
#include "util/rng.hpp"

namespace passflow::flow {
namespace {

nn::Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng,
                         double stddev = 1.0) {
  nn::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return m;
}

// Give the zero-initialized s/t heads random weights so the coupling is a
// non-trivial transformation.
void randomize_parameters(AffineCoupling& coupling, util::Rng& rng,
                          double stddev = 0.2) {
  for (nn::Param* p : coupling.parameters()) {
    if (p->name.find("s_scale") != std::string::npos) continue;
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      p->value.data()[i] += static_cast<float>(rng.normal(0.0, stddev));
    }
  }
}

TEST(Coupling, IdentityAtInitialization) {
  // Zero-initialized heads => s = t = 0 => z = x exactly.
  util::Rng rng(1);
  AffineCoupling coupling(6, 16, 1, make_mask({MaskScheme::kCharRun, 1}, 6),
                          rng);
  const nn::Matrix x = random_matrix(4, 6, rng);
  std::vector<double> log_det(4, 0.0);
  const nn::Matrix z = coupling.forward(x, log_det);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(z.data()[i], x.data()[i]);
  }
  for (double ld : log_det) EXPECT_DOUBLE_EQ(ld, 0.0);
}

TEST(Coupling, MaskedCoordinatesPassThrough) {
  util::Rng rng(2);
  const auto mask = make_mask({MaskScheme::kCharRun, 1}, 6);
  AffineCoupling coupling(6, 16, 1, mask, rng);
  randomize_parameters(coupling, rng);
  const nn::Matrix x = random_matrix(4, 6, rng);
  std::vector<double> log_det(4, 0.0);
  const nn::Matrix z = coupling.forward(x, log_det);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      if (mask[c] > 0.5f) {
        EXPECT_FLOAT_EQ(z(r, c), x(r, c));
      }
    }
  }
}

class CouplingConfigTest
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

TEST_P(CouplingConfigTest, InverseUndoesForward) {
  const auto [mask_name, dim, hidden] = GetParam();
  util::Rng rng(3);
  AffineCoupling coupling(
      dim, hidden, 1,
      make_mask(parse_mask_config(mask_name), dim), rng);
  randomize_parameters(coupling, rng);

  const nn::Matrix x = random_matrix(8, dim, rng);
  const nn::Matrix z = coupling.forward_inference(x);
  const nn::Matrix back = coupling.inverse(z);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back.data()[i], x.data()[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CouplingConfigTest,
    ::testing::Values(std::make_tuple("char-run-1", 6, 16),
                      std::make_tuple("char-run-2", 8, 16),
                      std::make_tuple("horizontal", 10, 32),
                      std::make_tuple("char-run-1", 10, 64),
                      std::make_tuple("char-run-3", 9, 16)));

TEST(Coupling, LogDetMatchesNumericJacobian) {
  util::Rng rng(4);
  const std::size_t dim = 5;
  AffineCoupling coupling(dim, 12, 1,
                          make_mask({MaskScheme::kCharRun, 1}, dim), rng);
  randomize_parameters(coupling, rng);

  nn::Matrix x = random_matrix(1, dim, rng);
  std::vector<double> log_det(1, 0.0);
  coupling.forward(x, log_det);

  // Numeric Jacobian of z w.r.t. x via central differences.
  const double eps = 1e-3;
  std::vector<std::vector<double>> jacobian(dim, std::vector<double>(dim));
  for (std::size_t j = 0; j < dim; ++j) {
    nn::Matrix x_plus = x, x_minus = x;
    x_plus(0, j) += static_cast<float>(eps);
    x_minus(0, j) -= static_cast<float>(eps);
    const nn::Matrix z_plus = coupling.forward_inference(x_plus);
    const nn::Matrix z_minus = coupling.forward_inference(x_minus);
    for (std::size_t i = 0; i < dim; ++i) {
      jacobian[i][j] =
          (static_cast<double>(z_plus(0, i)) - z_minus(0, i)) / (2.0 * eps);
    }
  }
  // Determinant by Gaussian elimination.
  double det = 1.0;
  for (std::size_t col = 0; col < dim; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < dim; ++r) {
      if (std::abs(jacobian[r][col]) > std::abs(jacobian[pivot][col])) {
        pivot = r;
      }
    }
    if (pivot != col) {
      std::swap(jacobian[pivot], jacobian[col]);
      det = -det;
    }
    det *= jacobian[col][col];
    for (std::size_t r = col + 1; r < dim; ++r) {
      const double factor = jacobian[r][col] / jacobian[col][col];
      for (std::size_t c = col; c < dim; ++c) {
        jacobian[r][c] -= factor * jacobian[col][c];
      }
    }
  }
  EXPECT_NEAR(log_det[0], std::log(std::abs(det)), 1e-3);
}

TEST(Coupling, BackwardGradientsMatchNumeric) {
  util::Rng rng(5);
  const std::size_t dim = 4;
  AffineCoupling coupling(dim, 10, 1,
                          make_mask({MaskScheme::kCharRun, 1}, dim), rng);
  randomize_parameters(coupling, rng, 0.3);

  nn::Matrix x = random_matrix(3, dim, rng);

  // Loss: L = 0.5*||z||^2 - sum(log_det) (an NLL-shaped objective).
  auto loss_fn = [&]() {
    std::vector<double> ld(x.rows(), 0.0);
    const nn::Matrix z = coupling.forward_inference(x, &ld);
    double loss = 0.5 * nn::squared_sum(z);
    for (double v : ld) loss -= v;
    return loss;
  };

  for (nn::Param* p : coupling.parameters()) p->grad.zero();
  std::vector<double> log_det(x.rows(), 0.0);
  const nn::Matrix z = coupling.forward(x, log_det);
  const std::vector<double> grad_ld(x.rows(), -1.0);
  const nn::Matrix grad_x = coupling.backward(z, grad_ld);

  // Accept a tight relative OR absolute error: float32 finite differences
  // produce ~1e-3 absolute noise, which dominates relative error on small
  // gradient entries.
  const auto params_result =
      nn::check_param_gradients(loss_fn, coupling.parameters(), 1e-3, 24);
  EXPECT_TRUE(params_result.max_rel_error < 3e-2 ||
              params_result.max_abs_error < 5e-3)
      << "rel " << params_result.max_rel_error << " abs "
      << params_result.max_abs_error;

  const auto input_result =
      nn::check_input_gradients(loss_fn, x, grad_x, 1e-3, 24);
  EXPECT_TRUE(input_result.max_rel_error < 3e-2 ||
              input_result.max_abs_error < 5e-3)
      << "rel " << input_result.max_rel_error << " abs "
      << input_result.max_abs_error;
}

TEST(Coupling, ForwardInferenceMatchesTrainingForward) {
  util::Rng rng(6);
  AffineCoupling coupling(6, 16, 2, make_mask({MaskScheme::kCharRun, 2}, 6),
                          rng);
  randomize_parameters(coupling, rng);
  const nn::Matrix x = random_matrix(5, 6, rng);
  std::vector<double> ld_train(5, 0.0);
  std::vector<double> ld_inf(5, 0.0);
  const nn::Matrix z_train = coupling.forward(x, ld_train);
  const nn::Matrix z_inf = coupling.forward_inference(x, &ld_inf);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(z_train.data()[i], z_inf.data()[i]);
  }
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_DOUBLE_EQ(ld_train[r], ld_inf[r]);
  }
}

TEST(Coupling, RejectsMismatchedMask) {
  util::Rng rng(7);
  EXPECT_THROW(AffineCoupling(6, 8, 1, std::vector<float>(4, 1.0f), rng),
               std::invalid_argument);
}

TEST(Coupling, RejectsWrongLogDetSize) {
  util::Rng rng(8);
  AffineCoupling coupling(4, 8, 1, make_mask({MaskScheme::kCharRun, 1}, 4),
                          rng);
  const nn::Matrix x = random_matrix(3, 4, rng);
  std::vector<double> wrong_size(2, 0.0);
  EXPECT_THROW(coupling.forward(x, wrong_size), std::invalid_argument);
}

}  // namespace
}  // namespace passflow::flow
