#include "flow/mask.hpp"

#include <gtest/gtest.h>

namespace passflow::flow {
namespace {

TEST(Mask, CharRun1Alternates) {
  const auto mask = make_mask({MaskScheme::kCharRun, 1}, 6);
  EXPECT_EQ(mask_to_string(mask), "101010");
}

TEST(Mask, CharRun2PairsAlternate) {
  const auto mask = make_mask({MaskScheme::kCharRun, 2}, 8);
  EXPECT_EQ(mask_to_string(mask), "11001100");
}

TEST(Mask, CharRunHandlesNonDivisibleLength) {
  const auto mask = make_mask({MaskScheme::kCharRun, 3}, 7);
  EXPECT_EQ(mask_to_string(mask), "1110001");
}

TEST(Mask, HorizontalSplitsInHalf) {
  const auto mask = make_mask({MaskScheme::kHorizontal, 0}, 10);
  EXPECT_EQ(mask_to_string(mask), "1111100000");
}

TEST(Mask, HorizontalOddLengthFavorsSecondHalf) {
  const auto mask = make_mask({MaskScheme::kHorizontal, 0}, 5);
  EXPECT_EQ(mask_to_string(mask), "11000");
}

TEST(Mask, NegateFlipsEveryBit) {
  const auto mask = make_mask({MaskScheme::kCharRun, 1}, 4);
  EXPECT_EQ(mask_to_string(negate_mask(mask)), "0101");
}

TEST(Mask, LayerAlternationMatchesFigure1) {
  const MaskConfig config{MaskScheme::kCharRun, 1};
  EXPECT_EQ(mask_to_string(mask_for_layer(config, 4, 0)), "1010");
  EXPECT_EQ(mask_to_string(mask_for_layer(config, 4, 1)), "0101");
  EXPECT_EQ(mask_to_string(mask_for_layer(config, 4, 2)), "1010");
}

TEST(Mask, EveryPositionTransformedAcrossLayerPair) {
  // Union of transformed positions (mask==0) over two consecutive layers
  // must cover every coordinate, for every scheme.
  for (const auto& config :
       {MaskConfig{MaskScheme::kCharRun, 1}, MaskConfig{MaskScheme::kCharRun, 2},
        MaskConfig{MaskScheme::kHorizontal, 0}}) {
    const auto m0 = mask_for_layer(config, 10, 0);
    const auto m1 = mask_for_layer(config, 10, 1);
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_TRUE(m0[i] < 0.5f || m1[i] < 0.5f)
          << scheme_name(config) << " position " << i;
    }
  }
}

TEST(Mask, ZeroDimThrows) {
  EXPECT_THROW(make_mask({MaskScheme::kCharRun, 1}, 0), std::invalid_argument);
}

TEST(Mask, ZeroRunLengthThrows) {
  EXPECT_THROW(make_mask({MaskScheme::kCharRun, 0}, 4), std::invalid_argument);
}

TEST(Mask, SchemeNames) {
  EXPECT_EQ(scheme_name({MaskScheme::kCharRun, 1}), "char-run-1");
  EXPECT_EQ(scheme_name({MaskScheme::kCharRun, 2}), "char-run-2");
  EXPECT_EQ(scheme_name({MaskScheme::kHorizontal, 0}), "horizontal");
}

TEST(Mask, ParseRoundTrip) {
  for (const std::string name : {"char-run-1", "char-run-2", "horizontal"}) {
    EXPECT_EQ(scheme_name(parse_mask_config(name)), name);
  }
}

TEST(Mask, ParseUnknownThrows) {
  EXPECT_THROW(parse_mask_config("diagonal"), std::invalid_argument);
}

}  // namespace
}  // namespace passflow::flow
