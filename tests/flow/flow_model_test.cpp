#include "flow/flow_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"
#include "nn/ops.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace passflow::flow {
namespace {

nn::Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng,
                         double stddev = 1.0) {
  nn::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return m;
}

void randomize_parameters(FlowModel& model, util::Rng& rng,
                          double stddev = 0.15) {
  for (nn::Param* p : model.parameters()) {
    if (p->name.find("s_scale") != std::string::npos) continue;
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      p->value.data()[i] += static_cast<float>(rng.normal(0.0, stddev));
    }
  }
}

TEST(FlowModel, IdentityAtInitialization) {
  util::Rng rng(1);
  FlowModel model(testing::tiny_flow_config(), rng);
  const nn::Matrix x = random_matrix(4, 6, rng);
  const nn::Matrix z = model.forward_inference(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(z.data()[i], x.data()[i]);
  }
}

class FlowDepthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FlowDepthTest, InverseUndoesForwardAtAnyDepth) {
  util::Rng rng(2);
  FlowConfig config = testing::tiny_flow_config();
  config.num_couplings = GetParam();
  FlowModel model(config, rng);
  // Scale the perturbation with depth: random (untrained) deep flows are
  // ill-conditioned (the per-layer scale factors compound as exp(sum s)),
  // which amplifies float32 round-off far beyond what trained flows see.
  randomize_parameters(model, rng, 0.6 / static_cast<double>(GetParam()));

  const nn::Matrix x = random_matrix(8, config.dim, rng);
  const nn::Matrix z = model.forward_inference(x);
  const nn::Matrix back = model.inverse(z);
  // float32 round-trip error compounds with depth; scale the tolerance.
  const float tolerance = 5e-4f * static_cast<float>(GetParam() + 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back.data()[i], x.data()[i], tolerance);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, FlowDepthTest,
                         ::testing::Values(1, 2, 4, 8, 18));

TEST(FlowModel, RoundTripFromLatentSide) {
  util::Rng rng(3);
  FlowModel model(testing::tiny_flow_config(), rng);
  randomize_parameters(model, rng);
  const nn::Matrix z = random_matrix(6, 6, rng);
  const nn::Matrix x = model.inverse(z);
  const nn::Matrix z_back = model.forward_inference(x);
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_NEAR(z_back.data()[i], z.data()[i], 2e-3f);
  }
}

TEST(FlowModel, LogDetAccumulatesAcrossLayers) {
  util::Rng rng(4);
  FlowConfig config = testing::tiny_flow_config();
  config.num_couplings = 2;
  FlowModel model(config, rng);
  randomize_parameters(model, rng, 0.4);

  const nn::Matrix x = random_matrix(1, config.dim, rng);
  std::vector<double> log_det;
  model.forward_inference(x, &log_det);
  // The identity-initialized scale bound keeps |s| < s_scale = 1 per coord;
  // with 2 layers each transforming half the coords, |log_det| < dim.
  EXPECT_LT(std::abs(log_det[0]), static_cast<double>(config.dim));
}

TEST(FlowModel, LogProbIsChangeOfVariables) {
  // log p(x) must equal log N(f(x); 0, I) + log|det J| exactly.
  util::Rng rng(5);
  FlowModel model(testing::tiny_flow_config(), rng);
  randomize_parameters(model, rng);

  const nn::Matrix x = random_matrix(5, 6, rng, 0.3);
  std::vector<double> log_det;
  const nn::Matrix z = model.forward_inference(x, &log_det);
  const auto log_probs = model.log_prob(x);
  for (std::size_t r = 0; r < 5; ++r) {
    const double expected =
        standard_normal_log_density(z.row(r), z.cols()) + log_det[r];
    EXPECT_NEAR(log_probs[r], expected, 1e-9);
  }
}

TEST(FlowModel, StandardNormalLogDensityKnownValue) {
  const float zeros[2] = {0.0f, 0.0f};
  // log N(0; 0, I_2) = -log(2*pi)
  EXPECT_NEAR(standard_normal_log_density(zeros, 2),
              -std::log(2.0 * M_PI), 1e-9);
}

TEST(FlowModel, NllBackwardMatchesNllValue) {
  util::Rng rng(6);
  FlowModel model(testing::tiny_flow_config(), rng);
  randomize_parameters(model, rng);
  const nn::Matrix x = random_matrix(8, 6, rng, 0.3);
  model.zero_grad();
  const double loss_bwd = model.nll_backward(x);
  const double loss_fwd = model.nll(x);
  EXPECT_NEAR(loss_bwd, loss_fwd, 1e-9);
}

TEST(FlowModel, NllGradientsMatchNumeric) {
  util::Rng rng(7);
  FlowConfig config = testing::tiny_flow_config(4);
  config.num_couplings = 2;
  config.hidden = 12;
  FlowModel model(config, rng);
  randomize_parameters(model, rng, 0.3);

  nn::Matrix x = random_matrix(4, 4, rng, 0.3);
  model.zero_grad();
  model.nll_backward(x);

  const auto loss = [&]() { return model.nll(x); };
  const auto result =
      nn::check_param_gradients(loss, model.parameters(), 1e-3, 12);
  EXPECT_LT(result.max_rel_error, 5e-2) << "abs " << result.max_abs_error;
}

TEST(FlowModel, SaveLoadRoundTrip) {
  util::Rng rng(8);
  FlowModel source(testing::tiny_flow_config(), rng);
  randomize_parameters(source, rng);
  util::Rng rng2(9);
  FlowModel dest(testing::tiny_flow_config(), rng2);

  const std::string path = ::testing::TempDir() + "pf_flow_ckpt.bin";
  source.save(path);
  dest.load(path);
  std::remove(path.c_str());

  const nn::Matrix x = random_matrix(3, 6, rng);
  const nn::Matrix z_src = source.forward_inference(x);
  const nn::Matrix z_dst = dest.forward_inference(x);
  for (std::size_t i = 0; i < z_src.size(); ++i) {
    EXPECT_FLOAT_EQ(z_dst.data()[i], z_src.data()[i]);
  }
}

TEST(FlowModel, LoadRejectsDifferentArchitecture) {
  util::Rng rng(10);
  FlowModel source(testing::tiny_flow_config(), rng);
  FlowConfig other = testing::tiny_flow_config();
  other.hidden = 16;
  FlowModel dest(other, rng);

  const std::string path = ::testing::TempDir() + "pf_flow_ckpt2.bin";
  source.save(path);
  EXPECT_THROW(dest.load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(FlowModel, ParameterCountScalesWithDepth) {
  util::Rng rng(11);
  FlowConfig shallow = testing::tiny_flow_config();
  shallow.num_couplings = 2;
  FlowConfig deep = shallow;
  deep.num_couplings = 4;
  FlowModel a(shallow, rng), b(deep, rng);
  EXPECT_EQ(b.parameter_count(), 2 * a.parameter_count());
}

TEST(FlowModel, PaperScaleArchitectureConstructs) {
  // §IV-D: 18 couplings, 2 residual blocks, hidden 256, dim 10.
  util::Rng rng(12);
  FlowConfig config;
  FlowModel model(config, rng);
  EXPECT_EQ(model.dim(), 10u);
  EXPECT_GT(model.parameter_count(), 1000000u);  // multi-million params
  const nn::Matrix x = random_matrix(2, 10, rng, 0.2);
  const nn::Matrix back = model.inverse(model.forward_inference(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back.data()[i], x.data()[i], 1e-3f);
  }
}

}  // namespace
}  // namespace passflow::flow
