// Batch-parallel training: the pooled nll_backward must be bitwise
// reproducible at a fixed pool size, agree with the serial gradients to
// floating-point reordering tolerance, and drive the Trainer to the exact
// same weights on repeated runs. Labeled thread_safety via the file name,
// so the TSan CI job covers the sharded backward + tree reduction.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "data/alphabet.hpp"
#include "flow/flow_model.hpp"
#include "flow/trainer.hpp"
#include "test_support.hpp"
#include "util/thread_pool.hpp"

namespace passflow::flow {
namespace {

nn::Matrix random_batch(std::size_t rows, std::size_t cols,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal(0.5, 0.2));
  }
  return m;
}

std::vector<nn::Matrix> grads_of(FlowModel& model) {
  std::vector<nn::Matrix> grads;
  for (nn::Param* p : model.parameters()) grads.push_back(p->grad);
  return grads;
}

class ParallelNllBackwardTest : public ::testing::Test {
 protected:
  passflow::testing::QuietLogs quiet_;
  util::ThreadPool pool_{4};
};

TEST_F(ParallelNllBackwardTest, GradientsBitwiseIdenticalAcrossRuns) {
  util::Rng rng(11);
  FlowModel model(passflow::testing::tiny_flow_config(), rng);
  const nn::Matrix batch = random_batch(128, 6, 5);

  model.zero_grad();
  const double loss1 = model.nll_backward(batch, &pool_);
  const auto grads1 = grads_of(model);

  model.zero_grad();
  const double loss2 = model.nll_backward(batch, &pool_);
  const auto grads2 = grads_of(model);

  EXPECT_EQ(loss1, loss2);
  ASSERT_EQ(grads1.size(), grads2.size());
  for (std::size_t i = 0; i < grads1.size(); ++i) {
    ASSERT_EQ(grads1[i].size(), grads2[i].size());
    EXPECT_EQ(0, std::memcmp(grads1[i].data(), grads2[i].data(),
                             grads1[i].size() * sizeof(float)))
        << "grad mismatch at param " << i;
  }
}

TEST_F(ParallelNllBackwardTest, AgreesWithSerialWithinTolerance) {
  util::Rng rng(13);
  FlowModel model(passflow::testing::tiny_flow_config(), rng);
  const nn::Matrix batch = random_batch(160, 6, 7);

  model.zero_grad();
  const double serial_loss = model.nll_backward(batch);
  const auto serial_grads = grads_of(model);

  model.zero_grad();
  const double pooled_loss = model.nll_backward(batch, &pool_);
  const auto pooled_grads = grads_of(model);

  EXPECT_NEAR(pooled_loss, serial_loss, 1e-6 * std::abs(serial_loss) + 1e-8);
  ASSERT_EQ(pooled_grads.size(), serial_grads.size());
  for (std::size_t i = 0; i < serial_grads.size(); ++i) {
    for (std::size_t j = 0; j < serial_grads[i].size(); ++j) {
      const float ref = serial_grads[i].data()[j];
      const float bound = 1e-4f * std::max(1.0f, std::abs(ref));
      ASSERT_NEAR(pooled_grads[i].data()[j], ref, bound)
          << "param " << i << " flat index " << j;
    }
  }
}

TEST_F(ParallelNllBackwardTest, SmallBatchFallsBackToSerialBitwise) {
  util::Rng rng1(17), rng2(17);
  FlowModel pooled_model(passflow::testing::tiny_flow_config(), rng1);
  FlowModel serial_model(passflow::testing::tiny_flow_config(), rng2);
  // Below 2 * kMinRowsPerShard rows the pooled call must take the serial
  // path, producing bitwise-identical gradients.
  const nn::Matrix batch = random_batch(48, 6, 9);

  pooled_model.zero_grad();
  serial_model.zero_grad();
  const double pooled_loss = pooled_model.nll_backward(batch, &pool_);
  const double serial_loss = serial_model.nll_backward(batch);
  EXPECT_EQ(pooled_loss, serial_loss);

  const auto pooled_grads = grads_of(pooled_model);
  const auto serial_grads = grads_of(serial_model);
  ASSERT_EQ(pooled_grads.size(), serial_grads.size());
  for (std::size_t i = 0; i < pooled_grads.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(pooled_grads[i].data(), serial_grads[i].data(),
                             pooled_grads[i].size() * sizeof(float)));
  }
}

TEST_F(ParallelNllBackwardTest, GradientsAccumulateAcrossCalls) {
  util::Rng rng(19);
  FlowModel model(passflow::testing::tiny_flow_config(), rng);
  const nn::Matrix batch = random_batch(128, 6, 21);

  model.zero_grad();
  model.nll_backward(batch, &pool_);
  const auto once = grads_of(model);
  model.nll_backward(batch, &pool_);  // no zero_grad: grads must add up
  const auto twice = grads_of(model);

  for (std::size_t i = 0; i < once.size(); ++i) {
    for (std::size_t j = 0; j < once[i].size(); ++j) {
      const float expected = 2.0f * once[i].data()[j];
      const float bound = 1e-4f * std::max(1.0f, std::abs(expected));
      ASSERT_NEAR(twice[i].data()[j], expected, bound);
    }
  }
}

TEST(ParallelNllBackwardPartitionTest, LargeShardCountsStayInBounds) {
  // Regression: a ceil-division partition let tail shards start past the
  // batch end once shards stopped dividing rows evenly (e.g. 64 shards over
  // 2049 rows), underflowing `end - begin`. The balanced split must keep
  // every shard non-empty and the loss finite.
  passflow::testing::QuietLogs quiet;
  util::ThreadPool pool(64);
  util::Rng rng(43);
  FlowModel model(passflow::testing::tiny_flow_config(), rng);
  const nn::Matrix batch = random_batch(2049, 6, 23);

  model.zero_grad();
  const double loss = model.nll_backward(batch, &pool);
  EXPECT_TRUE(std::isfinite(loss));
  for (nn::Param* p : model.parameters()) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      ASSERT_TRUE(std::isfinite(p->grad.data()[i]));
    }
  }
}

TEST(ParallelTrainerTest, PooledTrainingIsReproducible) {
  passflow::testing::QuietLogs quiet;
  util::ThreadPool pool(3);
  const data::Encoder encoder(data::Alphabet::compact(), 6);
  const auto corpus = passflow::testing::toy_corpus(30);

  auto train_once = [&](util::ThreadPool* p) {
    util::Rng rng(31);
    FlowModel model(passflow::testing::tiny_flow_config(), rng);
    TrainConfig config;
    config.epochs = 3;
    config.batch_size = 128;
    config.log_every = 0;
    config.seed = 37;
    config.pool = p;
    Trainer trainer(model, config);
    trainer.train(corpus, encoder);
    std::vector<nn::Matrix> values;
    for (nn::Param* param : model.parameters()) values.push_back(param->value);
    return values;
  };

  const auto run1 = train_once(&pool);
  const auto run2 = train_once(&pool);
  ASSERT_EQ(run1.size(), run2.size());
  for (std::size_t i = 0; i < run1.size(); ++i) {
    ASSERT_EQ(run1[i].size(), run2[i].size());
    EXPECT_EQ(0, std::memcmp(run1[i].data(), run2[i].data(),
                             run1[i].size() * sizeof(float)))
        << "weights diverged at param " << i;
  }
}

TEST(ParallelTrainerTest, PooledTrainingLearns) {
  passflow::testing::QuietLogs quiet;
  util::ThreadPool pool(4);
  const data::Encoder encoder(data::Alphabet::compact(), 6);

  util::Rng rng(41);
  FlowModel model(passflow::testing::tiny_flow_config(), rng);
  TrainConfig config;
  config.epochs = 8;
  config.batch_size = 128;
  config.log_every = 0;
  config.validation_fraction = 0.0;
  config.pool = &pool;
  Trainer trainer(model, config);
  const auto result =
      trainer.train(passflow::testing::toy_corpus(40), encoder);
  ASSERT_EQ(result.history.size(), 8u);
  EXPECT_LT(result.history.back().train_nll,
            result.history.front().train_nll - 0.5);
}

}  // namespace
}  // namespace passflow::flow
