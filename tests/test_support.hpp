// Shared fixtures for the PassFlow test suite: small flows that train in
// milliseconds and a deterministic toy corpus.
#pragma once

#include <string>
#include <vector>

#include "data/encoder.hpp"
#include "flow/flow_model.hpp"
#include "flow/trainer.hpp"
#include "util/logging.hpp"

namespace passflow::testing {

// A tiny flow (few couplings, narrow nets) over the compact alphabet.
inline flow::FlowConfig tiny_flow_config(std::size_t dim = 6) {
  flow::FlowConfig config;
  config.dim = dim;
  config.num_couplings = 4;
  config.hidden = 32;
  config.residual_blocks = 1;
  return config;
}

// Deterministic toy corpus: structured passwords over [a-z0-9].
inline std::vector<std::string> toy_corpus(std::size_t copies = 30) {
  const std::vector<std::string> base = {
      "123456", "abc123", "pass12", "love11", "qwerty", "dragon",
      "sunny1", "happy2", "star99", "blue42", "cat123", "dog456",
  };
  std::vector<std::string> corpus;
  for (std::size_t i = 0; i < copies; ++i) {
    corpus.insert(corpus.end(), base.begin(), base.end());
  }
  return corpus;
}

// Silences INFO logs for quieter test output; restores on destruction.
class QuietLogs {
 public:
  QuietLogs() : previous_(util::log_level()) {
    util::set_log_level(util::LogLevel::kWarn);
  }
  ~QuietLogs() { util::set_log_level(previous_); }

 private:
  util::LogLevel previous_;
};

}  // namespace passflow::testing
