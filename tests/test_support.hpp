// Shared fixtures for the PassFlow test suite: small flows that train in
// milliseconds and a deterministic toy corpus.
#pragma once

#include <string>
#include <vector>

#include "data/encoder.hpp"
#include "flow/flow_model.hpp"
#include "flow/trainer.hpp"
#include "util/logging.hpp"

namespace passflow::testing {

// A tiny flow (few couplings, narrow nets) over the compact alphabet.
inline flow::FlowConfig tiny_flow_config(std::size_t dim = 6) {
  flow::FlowConfig config;
  config.dim = dim;
  config.num_couplings = 4;
  config.hidden = 32;
  config.residual_blocks = 1;
  return config;
}

// Deterministic toy corpus: structured passwords over [a-z0-9].
inline std::vector<std::string> toy_corpus(std::size_t copies = 30) {
  const std::vector<std::string> base = {
      "123456", "abc123", "pass12", "love11", "qwerty", "dragon",
      "sunny1", "happy2", "star99", "blue42", "cat123", "dog456",
  };
  std::vector<std::string> corpus;
  for (std::size_t i = 0; i < copies; ++i) {
    corpus.insert(corpus.end(), base.begin(), base.end());
  }
  return corpus;
}

// Silences INFO logs for quieter test output; restores on destruction.
class QuietLogs {
 public:
  QuietLogs() : previous_(util::log_level()) {
    util::set_log_level(util::LogLevel::kWarn);
  }
  ~QuietLogs() { util::set_log_level(previous_); }

 private:
  util::LogLevel previous_;
};

// A tiny flow trained on the toy corpus, with its encoder and corpus.
// Obtain through tiny_trained_flow() — never construct directly.
struct TinyTrainedFlow {
  data::Encoder encoder{data::Alphabet::compact(), 6};
  util::Rng init_rng{23};
  flow::FlowModel model{tiny_flow_config(), init_rng};
  std::vector<std::string> corpus = toy_corpus(40);
  flow::TrainResult train_result;
};

// Process-wide trained-flow fixture: training runs once, on first use, and
// every test in the binary shares the result. The reference is const —
// tests must treat the model as immutable (clone the config and train your
// own flow if you need to mutate weights). Training the tiny architecture
// on the toy corpus takes well under a second, but saving even that per
// test fixture keeps the suite fast as trained-model tests accumulate.
inline const TinyTrainedFlow& tiny_trained_flow() {
  static const TinyTrainedFlow* env = [] {
    QuietLogs quiet;
    auto* e = new TinyTrainedFlow();
    flow::TrainConfig config;
    config.epochs = 12;
    config.batch_size = 64;
    config.log_every = 0;
    config.seed = 29;
    flow::Trainer trainer(e->model, config);
    e->train_result = trainer.train(e->corpus, e->encoder);
    return e;
  }();
  return *env;
}

}  // namespace passflow::testing
