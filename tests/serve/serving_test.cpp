// End-to-end tests of the credential-screening service: batching
// transparency (bitwise), admission control (refusals are loud, never a
// silent drop), hostile/edge inputs, and disconnect handling.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "guessing/mapped_matcher.hpp"
#include "serve/strength_client.hpp"
#include "serve/strength_server.hpp"
#include "test_support.hpp"

namespace {

using passflow::data::Encoder;
using passflow::dist::Message;
using passflow::dist::StrengthEstimate;
using passflow::dist::StrengthQueryMsg;
using passflow::dist::StrengthReplyMsg;
using passflow::dist::StrengthStatus;
using passflow::guessing::IndexBuilder;
using passflow::guessing::MappedMatcher;
using passflow::guessing::Matcher;
using passflow::serve::StrengthClient;
using passflow::serve::StrengthServer;
using passflow::serve::StrengthServerConfig;

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

// Index keys include an embedded NUL and non-ASCII bytes: the membership
// probe is byte-exact even where the flow's alphabet cannot follow.
const char* kNulKeyBytes = "we\0ird";
std::string nul_key() { return std::string(kNulKeyBytes, 6); }
std::string non_ascii_key() { return "p\xc3\xa4ss"; }

struct ServeFixture {
  const passflow::testing::TinyTrainedFlow& tf =
      passflow::testing::tiny_trained_flow();
  std::string index_path;
  std::shared_ptr<const Matcher> matcher;

  ServeFixture() {
    static int counter = 0;
    index_path = ::testing::TempDir() + "serving_index_" +
                 std::to_string(counter++) + ".pfidx";
    const std::vector<std::string> keys = {"123456", "qwerty",        "dragon",
                                           "star99", nul_key(),
                                           non_ascii_key()};
    IndexBuilder::build(keys, index_path);
    matcher = std::make_shared<MappedMatcher>(index_path);
  }

  StrengthServerConfig config() const {
    StrengthServerConfig config;
    config.max_batch = 4;
    config.calibration_samples = 256;
    config.calibration_batch = 128;
    return config;
  }
};

// Runs StrengthServer::run() on a dedicated thread; stop() (or
// destruction) requests stop and joins, after which server.stats() is
// safe to read.
class ServerThread {
 public:
  explicit ServerThread(StrengthServer& server)
      : server_(server), thread_([this] { server_.run(); }) {}
  ~ServerThread() { stop(); }
  void stop() {
    if (thread_.joinable()) {
      server_.request_stop();
      thread_.join();
    }
  }

 private:
  StrengthServer& server_;
  std::thread thread_;
};

bool posix() { return passflow::dist::transport_available(); }

// A mixed candidate set: indexed members, representable misses, the empty
// string, an over-length password, and unrepresentable byte sequences.
std::vector<std::string> mixed_candidates() {
  return {"123456",  "qwerty", "zz9zz9",        "blue42",
          "",        "nope",   "toolongpassword", nul_key(),
          non_ascii_key(), "star99"};
}

TEST(Serving, BatchedRepliesBitwiseEqualUnbatchedAndDirectModel) {
  if (!posix()) GTEST_SKIP() << "no POSIX transport";
  ServeFixture fx;
  // max_batch = 4 forces the 10-candidate query through three coalesced
  // batches, so equality here proves batch composition is invisible.
  StrengthServer server(fx.config(), fx.tf.model, fx.tf.encoder, fx.matcher);
  ServerThread running(server);
  StrengthClient client("127.0.0.1", server.port());

  const std::vector<std::string> candidates = mixed_candidates();
  const StrengthReplyMsg batched = client.query(candidates);
  ASSERT_EQ(StrengthStatus::kOk, batched.status);
  ASSERT_EQ(candidates.size(), batched.estimates.size());

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    SCOPED_TRACE("candidate index " + std::to_string(i));
    const StrengthReplyMsg single = client.query({candidates[i]});
    ASSERT_EQ(StrengthStatus::kOk, single.status);
    ASSERT_EQ(1u, single.estimates.size());
    const StrengthEstimate& b = batched.estimates[i];
    const StrengthEstimate& s = single.estimates[0];
    EXPECT_EQ(bits(s.log_prob), bits(b.log_prob));
    EXPECT_EQ(bits(s.guess_number), bits(b.guess_number));
    EXPECT_EQ(s.in_index, b.in_index);
    EXPECT_EQ(s.representable, b.representable);

    // Ground truth: the matcher's own answer, and — for representable
    // candidates — the model's direct serial log_prob, bitwise.
    EXPECT_EQ(fx.matcher->contains(candidates[i]), b.in_index);
    if (b.representable) {
      const double direct =
          fx.tf.model.log_prob(fx.tf.encoder.encode_batch({candidates[i]}))[0];
      EXPECT_EQ(bits(direct), bits(b.log_prob));
      EXPECT_GE(b.guess_number, 1.0);
      EXPECT_TRUE(std::isfinite(b.guess_number));
    } else {
      EXPECT_EQ(bits(-std::numeric_limits<double>::infinity()),
                bits(b.log_prob));
      EXPECT_TRUE(std::isinf(b.guess_number));
    }
  }
}

TEST(Serving, EmptyCandidateListAnswersEmptyOk) {
  if (!posix()) GTEST_SKIP() << "no POSIX transport";
  ServeFixture fx;
  StrengthServer server(fx.config(), fx.tf.model, fx.tf.encoder, fx.matcher);
  ServerThread running(server);
  StrengthClient client("127.0.0.1", server.port());

  const StrengthReplyMsg reply = client.query({});
  EXPECT_EQ(StrengthStatus::kOk, reply.status);
  EXPECT_TRUE(reply.estimates.empty());

  // The connection is still healthy afterwards.
  const StrengthReplyMsg next = client.query({"qwerty"});
  ASSERT_EQ(1u, next.estimates.size());
  EXPECT_TRUE(next.estimates[0].in_index);
}

TEST(Serving, NulAndNonAsciiCandidatesMatchTheIndexButNotTheFlow) {
  if (!posix()) GTEST_SKIP() << "no POSIX transport";
  ServeFixture fx;
  StrengthServer server(fx.config(), fx.tf.model, fx.tf.encoder, fx.matcher);
  ServerThread running(server);
  StrengthClient client("127.0.0.1", server.port());

  const StrengthReplyMsg reply =
      client.query({nul_key(), non_ascii_key(), std::string("\0", 1)});
  ASSERT_EQ(3u, reply.estimates.size());

  // Both hostile byte sequences are real breached entries in the index.
  EXPECT_TRUE(reply.estimates[0].in_index);
  EXPECT_TRUE(reply.estimates[1].in_index);
  EXPECT_FALSE(reply.estimates[2].in_index);
  for (const StrengthEstimate& e : reply.estimates) {
    EXPECT_FALSE(e.representable);
    EXPECT_EQ(bits(-std::numeric_limits<double>::infinity()),
              bits(e.log_prob));
    EXPECT_TRUE(std::isinf(e.guess_number));
  }
}

// Driving poll_once() from the test thread makes admission decisions and
// stats reads deterministic — no server thread, no races.
TEST(Serving, OverloadIsRefusedLoudlyNeverSilentlyDropped) {
  if (!posix()) GTEST_SKIP() << "no POSIX transport";
  ServeFixture fx;
  StrengthServerConfig config = fx.config();
  config.max_pending_candidates = 8;
  StrengthServer server(config, fx.tf.model, fx.tf.encoder, fx.matcher);

  passflow::dist::Connection client =
      passflow::dist::connect_to("127.0.0.1", server.port());
  client.send_frame(passflow::dist::encode(Message{passflow::dist::HelloMsg{}}));
  while (!client.readable(0)) server.poll_once(50);
  ASSERT_TRUE(std::holds_alternative<passflow::dist::WelcomeMsg>(
      passflow::dist::decode(client.recv_frame())));

  // A single query larger than the whole admission bound is always
  // refused, regardless of timing.
  StrengthQueryMsg oversized;
  oversized.request_id = 99;
  oversized.candidates.assign(9, "qwerty");
  client.send_frame(passflow::dist::encode(Message{oversized}));
  while (!client.readable(0)) server.poll_once(50);
  {
    const Message message = passflow::dist::decode(client.recv_frame());
    const auto* reply = std::get_if<StrengthReplyMsg>(&message);
    ASSERT_NE(nullptr, reply);
    EXPECT_EQ(99u, reply->request_id);
    EXPECT_EQ(StrengthStatus::kOverloaded, reply->status);
    EXPECT_TRUE(reply->estimates.empty());
  }

  // Flood: 20 queries of 3 candidates, sent before the server runs a
  // single loop turn. The bound of 8 admits at most 2 per drain; every
  // query still gets exactly one reply — Ok or Overloaded, never nothing.
  for (std::uint64_t id = 1; id <= 20; ++id) {
    StrengthQueryMsg query;
    query.request_id = id;
    query.candidates = {"123456", "zz9zz9", "nope"};
    client.send_frame(passflow::dist::encode(Message{query}));
  }
  // Let loopback deliver everything so one drain sees the whole burst.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::size_t ok = 0;
  std::size_t overloaded = 0;
  std::vector<bool> answered(21, false);
  for (std::size_t got = 0; got < 20;) {
    server.poll_once(50);
    while (client.readable(0)) {
      const Message message = passflow::dist::decode(client.recv_frame());
      const auto* reply = std::get_if<StrengthReplyMsg>(&message);
      ASSERT_NE(nullptr, reply);
      ASSERT_GE(reply->request_id, 1u);
      ASSERT_LE(reply->request_id, 20u);
      EXPECT_FALSE(answered[reply->request_id]) << "duplicate reply";
      answered[reply->request_id] = true;
      if (reply->status == StrengthStatus::kOk) {
        EXPECT_EQ(3u, reply->estimates.size());
        ++ok;
      } else {
        EXPECT_TRUE(reply->estimates.empty());
        ++overloaded;
      }
      ++got;
    }
  }
  EXPECT_EQ(20u, ok + overloaded);
  EXPECT_GE(overloaded, 1u) << "the burst must trip admission control";
  EXPECT_GE(ok, 1u) << "admission must not refuse everything";

  const passflow::serve::StrengthServerStats& stats = server.stats();
  EXPECT_EQ(ok, stats.queries);
  EXPECT_EQ(overloaded + 1, stats.overloaded);  // +1 oversized refusal
  EXPECT_EQ(21u, stats.replies_sent);
}

TEST(Serving, ClientDisconnectMidBatchDiscardsItsWorkOnly) {
  if (!posix()) GTEST_SKIP() << "no POSIX transport";
  ServeFixture fx;
  StrengthServer server(fx.config(), fx.tf.model, fx.tf.encoder, fx.matcher);

  // Client A handshakes, sends a query, and vanishes before the server
  // runs the loop turn that would score it.
  {
    passflow::dist::Connection a =
        passflow::dist::connect_to("127.0.0.1", server.port());
    a.send_frame(passflow::dist::encode(Message{passflow::dist::HelloMsg{}}));
    while (!a.readable(0)) server.poll_once(50);
    a.recv_frame();  // Welcome
    StrengthQueryMsg query;
    query.request_id = 7;
    query.candidates = {"123456", "qwerty"};
    a.send_frame(passflow::dist::encode(Message{query}));
    a.close();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.poll_once(200);  // drains A's query + EOF, drops A

  // Client B is served normally afterwards.
  passflow::dist::Connection b =
      passflow::dist::connect_to("127.0.0.1", server.port());
  b.send_frame(passflow::dist::encode(Message{passflow::dist::HelloMsg{}}));
  while (!b.readable(0)) server.poll_once(50);
  b.recv_frame();  // Welcome
  StrengthQueryMsg query;
  query.request_id = 1;
  query.candidates = {"qwerty"};
  b.send_frame(passflow::dist::encode(Message{query}));
  while (!b.readable(0)) server.poll_once(50);
  const Message message = passflow::dist::decode(b.recv_frame());
  const auto* reply = std::get_if<StrengthReplyMsg>(&message);
  ASSERT_NE(nullptr, reply);
  EXPECT_EQ(StrengthStatus::kOk, reply->status);
  ASSERT_EQ(1u, reply->estimates.size());
  EXPECT_TRUE(reply->estimates[0].in_index);

  const passflow::serve::StrengthServerStats& stats = server.stats();
  EXPECT_EQ(2u, stats.clients_accepted);
  EXPECT_EQ(1u, stats.clients_dropped);
}

TEST(Serving, QueryBeforeHelloDropsTheConnection) {
  if (!posix()) GTEST_SKIP() << "no POSIX transport";
  ServeFixture fx;
  StrengthServer server(fx.config(), fx.tf.model, fx.tf.encoder, fx.matcher);

  passflow::dist::Connection rude =
      passflow::dist::connect_to("127.0.0.1", server.port());
  StrengthQueryMsg query;
  query.request_id = 1;
  query.candidates = {"qwerty"};
  rude.send_frame(passflow::dist::encode(Message{query}));
  // Drive the loop until the server hangs up (readable EOF) instead of
  // answering.
  while (!rude.readable(0)) server.poll_once(50);
  EXPECT_THROW(rude.recv_frame(), std::runtime_error);
  EXPECT_EQ(1u, server.stats().clients_dropped);
  EXPECT_EQ(0u, server.stats().replies_sent);
}

TEST(Serving, GuessNumbersAreDeterministicAndMonotone) {
  if (!posix()) GTEST_SKIP() << "no POSIX transport";
  ServeFixture fx;
  StrengthServer a(fx.config(), fx.tf.model, fx.tf.encoder, fx.matcher);
  StrengthServer b(fx.config(), fx.tf.model, fx.tf.encoder, fx.matcher);

  const std::vector<std::string> candidates = {"123456", "qwerty", "zz9zz9",
                                               "blue42", "x1x1x1", ""};
  const std::vector<StrengthEstimate> ea = a.score(candidates);
  const std::vector<StrengthEstimate> eb = b.score(candidates);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    // Same model + same calibration seed => bitwise identical estimates
    // across independently constructed servers.
    EXPECT_EQ(bits(ea[i].log_prob), bits(eb[i].log_prob));
    EXPECT_EQ(bits(ea[i].guess_number), bits(eb[i].guess_number));
  }
  // Less likely under the flow can never mean an earlier (smaller) rank.
  for (std::size_t i = 0; i < ea.size(); ++i) {
    for (std::size_t j = 0; j < ea.size(); ++j) {
      if (ea[i].log_prob < ea[j].log_prob) {
        EXPECT_GE(ea[i].guess_number, ea[j].guess_number);
      }
    }
  }
}

}  // namespace
