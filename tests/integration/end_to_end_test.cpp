// Integration tests: the full pipeline from synthetic corpus through flow
// training to guessing, exercising the same path the benches use (scaled to
// seconds).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "baselines/markov.hpp"
#include "data/synthetic_rockyou.hpp"
#include "flow/trainer.hpp"
#include "guessing/dynamic_sampler.hpp"
#include "guessing/harness.hpp"
#include "guessing/interpolation.hpp"
#include "guessing/reference_harness.hpp"
#include "guessing/scheduler.hpp"
#include "guessing/static_sampler.hpp"
#include "test_support.hpp"
#include "util/checkpoint.hpp"

namespace passflow {
namespace {

// One trained model shared across all tests in this file. Training used to
// dominate the whole suite's wall-clock (~11 s), so the trained parameters
// and NLL history are persisted as a checked-in fixture
// (tests/fixtures/e2e_flow.*) that SetUpTestSuite loads in milliseconds;
// deleting the fixture files re-trains and re-writes them on the next run.
class EndToEndTest : public ::testing::Test {
 protected:
  static bool load_fixture(const std::string& checkpoint_path,
                           const std::string& history_path) {
    std::ifstream history(history_path);
    if (!history.good()) return false;
    flow::TrainResult loaded;
    std::string line;
    while (std::getline(history, line)) {
      if (line.empty()) continue;
      flow::EpochStats stats;
      char comma = 0;
      std::istringstream fields(line);
      fields >> stats.epoch >> comma >> stats.train_nll >> comma >>
          stats.validation_nll;
      if (!fields) return false;
      loaded.history.push_back(stats);
    }
    if (loaded.history.empty()) return false;
    try {
      model_->load(checkpoint_path);  // validates names and shapes
    } catch (const std::exception&) {
      return false;
    }
    *result_ = std::move(loaded);
    return true;
  }

  static void save_fixture(const std::string& checkpoint_path,
                           const std::string& history_path) {
    model_->save(checkpoint_path);
    std::ofstream history(history_path);
    for (const auto& stats : result_->history) {
      history << stats.epoch << ',' << stats.train_nll << ','
              << stats.validation_nll << '\n';
    }
  }

  static void SetUpTestSuite() {
    quiet_ = new testing::QuietLogs();
    // Focused corpus + compact alphabet: the regime where a small flow
    // trained for seconds reliably produces organic test-set matches (the
    // default bench scale uses the same configuration, larger).
    encoder_ = new data::Encoder(data::Alphabet::compact(), 8);

    data::SyntheticRockyou generator(data::focused_corpus_config(8), 1234);
    const auto corpus = generator.generate(60000);
    util::Rng rng(5);
    split_ = new data::DatasetSplit(
        data::make_rockyou_style_split(corpus, 12000, rng));

    flow::FlowConfig config;
    config.dim = 8;
    config.num_couplings = 8;
    config.hidden = 96;
    config.residual_blocks = 2;
    util::Rng model_rng(6);
    model_ = new flow::FlowModel(config, model_rng);
    result_ = new flow::TrainResult();

    const std::string fixture_dir = PASSFLOW_TEST_FIXTURE_DIR;
    const std::string checkpoint_path = fixture_dir + "/e2e_flow.ckpt";
    const std::string history_path = fixture_dir + "/e2e_flow_history.csv";
    if (load_fixture(checkpoint_path, history_path)) return;

    flow::TrainConfig train_config;
    train_config.epochs = 12;
    train_config.batch_size = 512;
    train_config.lr_decay = 0.98;
    train_config.log_every = 0;
    flow::Trainer trainer(*model_, train_config);
    *result_ = trainer.train(split_->train, *encoder_);
    save_fixture(checkpoint_path, history_path);
  }

  static void TearDownTestSuite() {
    delete result_;
    delete model_;
    delete split_;
    delete encoder_;
    delete quiet_;
  }

  static testing::QuietLogs* quiet_;
  static data::Encoder* encoder_;
  static data::DatasetSplit* split_;
  static flow::FlowModel* model_;
  static flow::TrainResult* result_;
};

testing::QuietLogs* EndToEndTest::quiet_ = nullptr;
data::Encoder* EndToEndTest::encoder_ = nullptr;
data::DatasetSplit* EndToEndTest::split_ = nullptr;
flow::FlowModel* EndToEndTest::model_ = nullptr;
flow::TrainResult* EndToEndTest::result_ = nullptr;

TEST_F(EndToEndTest, TrainingImprovedNll) {
  ASSERT_GE(result_->history.size(), 2u);
  EXPECT_LT(result_->history.back().train_nll,
            result_->history.front().train_nll);
}

TEST_F(EndToEndTest, TrainedFlowStillInvertible) {
  const nn::Matrix x = encoder_->encode_batch(
      {split_->train[0], split_->train[1], split_->train[2]});
  const nn::Matrix z = model_->forward_inference(x);
  const nn::Matrix back = model_->inverse(z);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back.data()[i], x.data()[i], 5e-3f);
  }
}

TEST_F(EndToEndTest, TrainingPasswordsBeatRandomStringsInDensity) {
  const auto train_lp =
      model_->log_prob(encoder_->encode_batch({"123456", "love123"}));
  const auto junk_lp =
      model_->log_prob(encoder_->encode_batch({"zqxwvjpk", "qwzxvkjm"}));
  EXPECT_GT((train_lp[0] + train_lp[1]) / 2.0,
            (junk_lp[0] + junk_lp[1]) / 2.0);
}

// Target set for the sampler integration tests: fresh draws from the same
// generative process, deduplicated. This covers far more probability mass
// than the paper-protocol test set (which removes everything seen in the
// training partition and therefore keeps only deep-tail strings), so the
// assertions are statistically stable at CI-sized budgets. The bench
// drivers measure the faithful paper protocol.
std::vector<std::string> fresh_target_set() {
  data::SyntheticRockyou generator(data::focused_corpus_config(8), 777);
  std::unordered_set<std::string> unique;
  for (auto& password : generator.generate(50000)) {
    unique.insert(std::move(password));
  }
  return {unique.begin(), unique.end()};
}

TEST_F(EndToEndTest, StaticSamplerFindsMatches) {
  guessing::HashSetMatcher matcher(fresh_target_set());
  guessing::StaticSamplerConfig config;
  config.seed = 101;
  guessing::StaticSampler sampler(*model_, *encoder_, config);
  guessing::HarnessConfig harness;
  harness.budget = 60000;
  const auto result = run_guessing(sampler, matcher, harness);
  EXPECT_GE(result.final().matched, 3u);
}

TEST_F(EndToEndTest, DynamicBeatsStaticOnSameBudget) {
  guessing::HashSetMatcher matcher(fresh_target_set());
  const std::size_t budget = 30000;

  guessing::StaticSamplerConfig s_config;
  s_config.seed = 7;
  guessing::StaticSampler static_sampler(*model_, *encoder_, s_config);
  guessing::HarnessConfig harness;
  harness.budget = budget;
  const auto static_result = run_guessing(static_sampler, matcher, harness);

  guessing::DynamicSamplerConfig d_config =
      guessing::table1_parameters(budget);
  d_config.seed = 7;
  guessing::DynamicSampler dynamic_sampler(*model_, *encoder_, d_config);
  const auto dynamic_result = run_guessing(dynamic_sampler, matcher, harness);

  // The paper's core claim at every budget (Table II): DS >= static.
  EXPECT_GE(dynamic_result.final().matched, static_result.final().matched);
}

TEST_F(EndToEndTest, GaussianSmoothingIncreasesUniqueGuesses) {
  // Force dynamic sampling into the collision-prone regime of §III-C:
  // pre-register mixture components (as if matches had occurred) with a
  // tiny sigma, so every subsequent draw concentrates near a few latent
  // points. GS must then recover uniqueness (Table III's mechanism).
  guessing::HashSetMatcher matcher(split_->test_unique);

  auto run_with = [&](bool gs) {
    guessing::DynamicSamplerConfig config;
    config.alpha = 0;
    config.sigma = 0.01;
    config.gamma = 1000000;
    config.seed = 11;
    config.batch_size = 1024;
    config.smoothing.enabled = gs;
    guessing::DynamicSampler sampler(*model_, *encoder_, config);
    // Seed the mixture with a few latents from an initial batch.
    std::vector<std::string> warmup;
    sampler.generate(1024, warmup);
    for (std::size_t i = 0; i < 4; ++i) sampler.on_match(i * 7, warmup[i * 7]);
    guessing::HarnessConfig harness;
    harness.budget = 20000;
    harness.chunk_size = 1024;
    return run_guessing(sampler, matcher, harness);
  };
  const auto without_gs = run_with(false);
  const auto with_gs = run_with(true);
  EXPECT_GT(with_gs.final().unique, without_gs.final().unique);
}

TEST_F(EndToEndTest, MatchedPasswordsAreReallyInTargetSet) {
  const auto targets = fresh_target_set();
  guessing::HashSetMatcher matcher(targets);
  guessing::StaticSamplerConfig config;
  config.seed = 13;
  guessing::StaticSampler sampler(*model_, *encoder_, config);
  guessing::HarnessConfig harness;
  harness.budget = 30000;
  const auto result = run_guessing(sampler, matcher, harness);
  EXPECT_FALSE(result.matched_passwords.empty());
  const std::unordered_set<std::string> target_set(targets.begin(),
                                                   targets.end());
  for (const auto& p : result.matched_passwords) {
    EXPECT_TRUE(target_set.count(p)) << p;
  }
}

TEST_F(EndToEndTest, InterpolationEndpointsRoundTrip) {
  const auto path =
      guessing::interpolate(*model_, *encoder_, "jimmy91", "123456", 10);
  EXPECT_EQ(path.front(), "jimmy91");
  EXPECT_EQ(path.back(), "123456");
  for (const auto& p : path) {
    EXPECT_TRUE(encoder_->alphabet().validates(p));
  }
}

TEST_F(EndToEndTest, MarkovBaselineAlsoFindsMatches) {
  baselines::MarkovModel markov(encoder_->alphabet(), 2, 8);
  markov.train(split_->train);
  baselines::MarkovSampler sampler(markov);
  guessing::HashSetMatcher matcher(fresh_target_set());
  guessing::HarnessConfig harness;
  harness.budget = 20000;
  const auto result = run_guessing(sampler, matcher, harness);
  EXPECT_GT(result.final().matched, 0u);
}

TEST_F(EndToEndTest, FleetCheckpointSaveAndThawResumeBitwise) {
  // Freeze/thaw smoke over the real pipeline: a two-scenario fleet of
  // trained StaticSamplers is frozen to an on-disk CheckpointStore
  // mid-run, thawed into a fresh scheduler with fresh sampler instances,
  // and must finish with metrics bitwise equal to a never-interrupted run.
  guessing::HashSetMatcher matcher(fresh_target_set());
  const std::uint64_t seeds[] = {301, 302};
  const std::size_t budget = 20000;

  auto make_sampler = [&](std::uint64_t seed) {
    guessing::StaticSamplerConfig config;
    config.seed = seed;
    return std::make_unique<guessing::StaticSampler>(*model_, *encoder_,
                                                     config);
  };
  auto session_config = [&] {
    guessing::SessionConfig config;
    config.budget = budget;
    config.chunk_size = 1024;
    config.checkpoints = {budget};
    return config;
  };
  auto build = [&](guessing::AttackScheduler& scheduler,
                   std::vector<std::unique_ptr<guessing::StaticSampler>>&
                       samplers,
                   bool register_scenarios) {
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < 2; ++i) {
      samplers.push_back(make_sampler(seeds[i]));
      if (!register_scenarios) continue;
      guessing::ScenarioOptions options;
      options.name = "static-" + std::to_string(seeds[i]);
      options.session = session_config();
      ids.push_back(scheduler.add_scenario(*samplers.back(), matcher,
                                           options));
    }
    return ids;
  };

  guessing::SchedulerConfig fleet;
  fleet.slice_chunks = 2;

  // Uninterrupted reference fleet.
  guessing::AttackScheduler reference(fleet);
  std::vector<std::unique_ptr<guessing::StaticSampler>> reference_samplers;
  const auto ids = build(reference, reference_samplers, true);
  while (reference.step()) {
  }

  // Interrupted fleet: freeze to disk mid-run, drop it, thaw, finish.
  const std::string base = ::testing::TempDir() + "pf_e2e_fleet.ckpt";
  util::CheckpointStore store(base);
  store.clear();
  {
    guessing::AttackScheduler scheduler(fleet);
    std::vector<std::unique_ptr<guessing::StaticSampler>> samplers;
    build(scheduler, samplers, true);
    for (int i = 0; i < 7; ++i) ASSERT_TRUE(scheduler.step());
    store.save(
        [&](std::ostream& out) { scheduler.save_state(out); });
  }

  guessing::AttackScheduler thawed(fleet);
  std::vector<std::unique_ptr<guessing::StaticSampler>> thawed_samplers;
  build(thawed, thawed_samplers, false);
  ASSERT_TRUE(store.load([&](std::istream& in) {
    thawed.load_state(
        in, [&](const guessing::AttackScheduler::ScenarioThawInfo& info)
                -> guessing::AttackScheduler::ScenarioBinding {
          return {*thawed_samplers.at(info.index), matcher};
        });
  }));
  const auto resumed = thawed.aggregate();
  EXPECT_GT(resumed.produced, 0u);
  while (thawed.step()) {
  }

  for (const std::size_t id : ids) {
    PF_EXPECT_SAME_RUN(reference.result(id), thawed.result(id));
  }
  store.clear();
}

TEST_F(EndToEndTest, CheckpointMetricsMonotoneInBudget) {
  guessing::HashSetMatcher matcher(fresh_target_set());
  guessing::StaticSamplerConfig config;
  config.seed = 17;
  guessing::StaticSampler sampler(*model_, *encoder_, config);
  guessing::HarnessConfig harness;
  harness.budget = 10000;
  const auto result = run_guessing(sampler, matcher, harness);
  for (std::size_t i = 1; i < result.checkpoints.size(); ++i) {
    EXPECT_GE(result.checkpoints[i].matched,
              result.checkpoints[i - 1].matched);
  }
}

}  // namespace
}  // namespace passflow
