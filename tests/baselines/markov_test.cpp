#include "baselines/markov.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

namespace passflow::baselines {
namespace {

class MarkovTest : public ::testing::Test {
 protected:
  const data::Alphabet& alphabet_ = data::Alphabet::compact();
};

TEST_F(MarkovTest, SampleBeforeTrainThrows) {
  MarkovModel model(alphabet_, 2, 8);
  util::Rng rng(1);
  EXPECT_THROW(model.sample(rng), std::logic_error);
  EXPECT_THROW(model.log_prob("abc"), std::logic_error);
}

TEST_F(MarkovTest, SamplesRespectMaxLength) {
  MarkovModel model(alphabet_, 1, 5);
  model.train({"abcdefgh", "12345678", "aaaa", "bbbb"});
  util::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LE(model.sample(rng).size(), 5u);
  }
}

TEST_F(MarkovTest, SamplesUseAlphabetOnly) {
  MarkovModel model(alphabet_, 2, 8);
  model.train({"password", "love123", "qwerty"});
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(alphabet_.validates(model.sample(rng)));
  }
}

TEST_F(MarkovTest, LearnsDeterministicSequence) {
  // Training only on "ababab": an order-1 model with small smoothing should
  // almost always produce alternating ab strings.
  MarkovModel model(alphabet_, 1, 6, /*add_k=*/0.001);
  std::vector<std::string> corpus(50, "ababab");
  model.train(corpus);
  util::Rng rng(4);
  int good = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string s = model.sample(rng);
    bool alternating = !s.empty() && s[0] == 'a';
    for (std::size_t j = 1; j < s.size(); ++j) {
      alternating &= (s[j] == (j % 2 == 0 ? 'a' : 'b'));
    }
    if (alternating) ++good;
  }
  EXPECT_GT(good, 150);
}

TEST_F(MarkovTest, LogProbOrdersSeenAboveUnseen) {
  MarkovModel model(alphabet_, 2, 8);
  std::vector<std::string> corpus;
  for (int i = 0; i < 20; ++i) {
    corpus.push_back("password");
    corpus.push_back("love1234");
  }
  model.train(corpus);
  EXPECT_GT(model.log_prob("password"), model.log_prob("zxqwvjkm"));
}

TEST_F(MarkovTest, LogProbOfUnrepresentableIsMinusInfinity) {
  MarkovModel model(alphabet_, 1, 4);
  model.train({"abcd"});
  EXPECT_EQ(model.log_prob("UPPER"),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(model.log_prob("waytoolongstring"),
            -std::numeric_limits<double>::infinity());
}

TEST_F(MarkovTest, TrainSkipsUnrepresentableEntries) {
  MarkovModel model(alphabet_, 1, 6);
  model.train({"ab", "TOOLONGFORSURE", "NOPE!", "cd"});
  util::Rng rng(5);
  // Should still sample fine from the two valid entries.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(alphabet_.validates(model.sample(rng)));
  }
}

TEST_F(MarkovTest, HigherOrderCapturesLongerContext) {
  // "abcabc" vs "abxaby": order-2 distinguishes what follows "ab" by
  // context, order-0 cannot.
  std::vector<std::string> corpus(30, "abcabc");
  MarkovModel order0(alphabet_, 0, 6, 0.01);
  MarkovModel order2(alphabet_, 2, 6, 0.01);
  order0.train(corpus);
  order2.train(corpus);
  EXPECT_GT(order2.log_prob("abcabc"), order0.log_prob("abcabc"));
}

TEST_F(MarkovTest, LogProbSumsToOneOverTinyUniverse) {
  // Over a 2-letter alphabet with max length 2, the model's probabilities
  // over all possible strings (including empty) must sum to ~1.
  data::Alphabet tiny("ab");
  MarkovModel model(tiny, 1, 2, 0.1);
  model.train({"a", "ab", "b", "aa"});
  double total = 0.0;
  const std::vector<std::string> universe = {"",   "a",  "b", "aa",
                                             "ab", "ba", "bb"};
  for (const std::string& s : universe) {
    total += std::exp(model.log_prob(s));
  }
  // Strings of length 2 cannot emit an end symbol (generation stops at
  // max_length), so log_prob slightly undercounts; accept a loose band.
  EXPECT_GT(total, 0.7);
  EXPECT_LT(total, 1.1);
}

TEST_F(MarkovTest, SamplerInterfaceProducesCount) {
  MarkovModel model(alphabet_, 2, 8);
  model.train({"password", "123456", "qwerty"});
  MarkovSampler sampler(model);
  std::vector<std::string> out;
  sampler.generate(100, out);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(sampler.name(), "Markov-2");
}

}  // namespace
}  // namespace passflow::baselines
