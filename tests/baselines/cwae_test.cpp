#include "baselines/cwae.hpp"

#include <gtest/gtest.h>

#include "data/alphabet.hpp"
#include "test_support.hpp"

namespace passflow::baselines {
namespace {

nn::Matrix gaussian_batch(std::size_t rows, std::size_t cols, util::Rng& rng,
                          double mean = 0.0, double stddev = 1.0) {
  nn::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal(mean, stddev));
  }
  return m;
}

TEST(ImqMmd, NearZeroForSameDistribution) {
  util::Rng rng(1);
  const nn::Matrix a = gaussian_batch(128, 4, rng);
  const nn::Matrix b = gaussian_batch(128, 4, rng);
  nn::Matrix grad;
  const double mmd = imq_mmd_with_grad(a, b, grad);
  EXPECT_LT(std::abs(mmd), 0.05);
}

TEST(ImqMmd, LargeForShiftedDistribution) {
  util::Rng rng(2);
  const nn::Matrix a = gaussian_batch(128, 4, rng, 5.0);
  const nn::Matrix b = gaussian_batch(128, 4, rng, 0.0);
  nn::Matrix grad;
  const double mmd = imq_mmd_with_grad(a, b, grad);
  EXPECT_GT(mmd, 0.3);
}

TEST(ImqMmd, GradientMatchesNumeric) {
  util::Rng rng(3);
  nn::Matrix a = gaussian_batch(6, 3, rng, 1.0);
  const nn::Matrix b = gaussian_batch(8, 3, rng);
  nn::Matrix grad;
  imq_mmd_with_grad(a, b, grad);

  const double eps = 1e-4;
  for (std::size_t i = 0; i < a.size(); i += 2) {
    const float original = a.data()[i];
    nn::Matrix dummy;
    a.data()[i] = static_cast<float>(original + eps);
    const double plus = imq_mmd_with_grad(a, b, dummy);
    a.data()[i] = static_cast<float>(original - eps);
    const double minus = imq_mmd_with_grad(a, b, dummy);
    a.data()[i] = original;
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(grad.data()[i], numeric, 5e-3) << "entry " << i;
  }
}

TEST(ImqMmd, GradientPullsTowardPrior) {
  // Points far from the prior should receive gradients pointing back
  // toward it (negative direction for positive offsets).
  util::Rng rng(4);
  nn::Matrix a = gaussian_batch(32, 2, rng, 3.0, 0.1);
  const nn::Matrix b = gaussian_batch(64, 2, rng);
  nn::Matrix grad;
  imq_mmd_with_grad(a, b, grad);
  double mean_grad = 0.0;
  for (std::size_t i = 0; i < grad.size(); ++i) mean_grad += grad.data()[i];
  EXPECT_GT(mean_grad, 0.0);  // descending reduces the offset
}

TEST(ImqMmd, DegenerateBatchesReturnZero) {
  util::Rng rng(5);
  const nn::Matrix tiny = gaussian_batch(1, 3, rng);
  const nn::Matrix b = gaussian_batch(8, 3, rng);
  nn::Matrix grad;
  EXPECT_DOUBLE_EQ(imq_mmd_with_grad(tiny, b, grad), 0.0);
}

class CwaeTest : public ::testing::Test {
 protected:
  passflow::testing::QuietLogs quiet_;
  data::Encoder encoder_{data::Alphabet::compact(), 6};

  CwaeConfig small_config() {
    CwaeConfig config;
    config.latent_dim = 8;
    config.encoder_hidden = {32};
    config.decoder_hidden = {32};
    config.epochs = 6;
    config.batch_size = 64;
    return config;
  }
};

TEST_F(CwaeTest, TrainingReducesLoss) {
  util::Rng rng(6);
  Cwae model(encoder_, small_config(), rng);
  const auto corpus = passflow::testing::toy_corpus(30);

  // First epoch loss approximated by a 1-epoch model.
  util::Rng rng2(6);
  CwaeConfig one_epoch = small_config();
  one_epoch.epochs = 1;
  Cwae first(encoder_, one_epoch, rng2);
  const double loss_after_one = first.train(corpus);
  const double loss_after_many = model.train(corpus);
  EXPECT_LT(loss_after_many, loss_after_one);
}

TEST_F(CwaeTest, DecodeLatentProducesUnitIntervalFeatures) {
  util::Rng rng(7);
  Cwae model(encoder_, small_config(), rng);
  model.train(passflow::testing::toy_corpus(10));
  nn::Matrix z = gaussian_batch(16, 8, rng);
  const nn::Matrix x = model.decode_latent(z);
  ASSERT_EQ(x.cols(), 6u);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_GT(x.data()[i], 0.0f);
    EXPECT_LT(x.data()[i], 1.0f);
  }
}

TEST_F(CwaeTest, EncoderMapsToLatentDim) {
  util::Rng rng(8);
  Cwae model(encoder_, small_config(), rng);
  const nn::Matrix x = encoder_.encode_batch({"abc123", "qwerty"});
  const nn::Matrix z = model.encode_features(x);
  EXPECT_EQ(z.rows(), 2u);
  EXPECT_EQ(z.cols(), 8u);
}

TEST_F(CwaeTest, SamplerProducesValidGuesses) {
  util::Rng rng(9);
  Cwae model(encoder_, small_config(), rng);
  model.train(passflow::testing::toy_corpus(10));
  CwaeSampler sampler(model, encoder_);
  std::vector<std::string> out;
  sampler.generate(300, out);
  EXPECT_EQ(out.size(), 300u);
  for (const auto& p : out) {
    EXPECT_LE(p.size(), 6u);
    EXPECT_TRUE(encoder_.alphabet().validates(p)) << p;
  }
  EXPECT_EQ(sampler.name(), "CWAE");
}

TEST_F(CwaeTest, ReconstructsTrainingPasswordsApproximately) {
  util::Rng rng(10);
  CwaeConfig config = small_config();
  config.epochs = 25;
  config.mmd_weight = 1.0;
  Cwae model(encoder_, config, rng);
  const auto corpus = passflow::testing::toy_corpus(50);
  model.train(corpus);

  // Encode a training password and decode its latent: at least the shape
  // (first characters) should survive the bottleneck on this tiny corpus.
  const nn::Matrix x = encoder_.encode_batch({"123456"});
  const nn::Matrix z = model.encode_features(x);
  const nn::Matrix xr = model.decode_latent(z);
  const auto decoded = encoder_.decode_batch(xr);
  EXPECT_FALSE(decoded[0].empty());
}

}  // namespace
}  // namespace passflow::baselines
