#include "baselines/gan.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/alphabet.hpp"
#include "test_support.hpp"

namespace passflow::baselines {
namespace {

class GanTest : public ::testing::Test {
 protected:
  passflow::testing::QuietLogs quiet_;
  data::Encoder encoder_{data::Alphabet::compact(), 6};

  GanConfig small_config() {
    GanConfig config;
    config.noise_dim = 8;
    config.generator_hidden = {32};
    config.discriminator_hidden = {32};
    config.epochs = 4;
    config.batch_size = 64;
    return config;
  }
};

TEST_F(GanTest, TrainingRunsAndReportsLosses) {
  util::Rng rng(1);
  Gan gan(encoder_, small_config(), rng);
  const auto history = gan.train(passflow::testing::toy_corpus(20));
  ASSERT_EQ(history.size(), 4u);
  for (const auto& epoch : history) {
    EXPECT_TRUE(std::isfinite(epoch.discriminator));
    EXPECT_TRUE(std::isfinite(epoch.generator));
    EXPECT_GT(epoch.discriminator, 0.0);
    EXPECT_GT(epoch.generator, 0.0);
  }
}

TEST_F(GanTest, GeneratorOutputsUnitIntervalFeatures) {
  util::Rng rng(2);
  Gan gan(encoder_, small_config(), rng);
  nn::Matrix noise(32, 8);
  for (std::size_t i = 0; i < noise.size(); ++i) {
    noise.data()[i] = static_cast<float>(rng.normal());
  }
  const nn::Matrix x = gan.generate_features(noise);
  EXPECT_EQ(x.rows(), 32u);
  EXPECT_EQ(x.cols(), 6u);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_GT(x.data()[i], 0.0f);
    EXPECT_LT(x.data()[i], 1.0f);
  }
}

TEST_F(GanTest, SamplerProducesValidGuesses) {
  util::Rng rng(3);
  Gan gan(encoder_, small_config(), rng);
  gan.train(passflow::testing::toy_corpus(10));
  GanSampler sampler(gan, encoder_);
  std::vector<std::string> out;
  sampler.generate(500, out);
  EXPECT_EQ(out.size(), 500u);
  for (const auto& p : out) {
    EXPECT_LE(p.size(), 6u);
    EXPECT_TRUE(encoder_.alphabet().validates(p)) << p;
  }
}

TEST_F(GanTest, PresetConfigsDiffer) {
  const GanConfig passgan = passgan_config();
  const GanConfig pasquini = pasquini_gan_config();
  EXPECT_EQ(passgan.label, "PassGAN");
  EXPECT_EQ(pasquini.label, "GAN-Pasquini");
  EXPECT_DOUBLE_EQ(passgan.smoothing_noise, 0.0);
  EXPECT_GT(pasquini.smoothing_noise, 0.0);
  EXPECT_GT(pasquini.generator_hidden.size(), passgan.generator_hidden.size());
}

TEST_F(GanTest, SamplerNameComesFromConfigLabel) {
  util::Rng rng(4);
  GanConfig config = small_config();
  config.label = "MyGAN";
  Gan gan(encoder_, config, rng);
  GanSampler sampler(gan, encoder_);
  EXPECT_EQ(sampler.name(), "MyGAN");
}

TEST_F(GanTest, TrainedGeneratorBeatsUntrainedOnStructure) {
  // After training on the toy corpus, generated samples should hit short
  // structured strings more often than an untrained generator does. Weak
  // assertion (GANs are noisy): trained sample set must contain at least
  // one exact toy-corpus password OR have lower mean length deviation.
  util::Rng rng(5);
  GanConfig config = small_config();
  config.epochs = 15;
  Gan trained(encoder_, config, rng);
  trained.train(passflow::testing::toy_corpus(40));

  util::Rng rng2(5);
  Gan untrained(encoder_, config, rng2);

  auto mean_length = [&](Gan& gan) {
    GanSampler sampler(gan, encoder_, 77);
    std::vector<std::string> out;
    sampler.generate(500, out);
    double total = 0.0;
    for (const auto& p : out) total += static_cast<double>(p.size());
    return total / 500.0;
  };
  // Toy corpus passwords are all length 6; the trained generator should be
  // closer to 6 than the untrained one.
  const double trained_dev = std::abs(mean_length(trained) - 6.0);
  const double untrained_dev = std::abs(mean_length(untrained) - 6.0);
  EXPECT_LE(trained_dev, untrained_dev + 0.25);
}

}  // namespace
}  // namespace passflow::baselines
