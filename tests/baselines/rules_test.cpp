#include "baselines/rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

namespace passflow::baselines {
namespace {

TEST(Rules, PrimitivesBehave) {
  EXPECT_EQ(rule_identity().apply("word"), "word");
  EXPECT_EQ(rule_capitalize().apply("word"), "Word");
  EXPECT_EQ(rule_capitalize().apply(""), "");
  EXPECT_EQ(rule_uppercase().apply("wOrd1"), "WORD1");
  EXPECT_EQ(rule_reverse().apply("abc"), "cba");
  EXPECT_EQ(rule_duplicate().apply("ab"), "abab");
  EXPECT_EQ(rule_leet().apply("passel"), "p4553l");
  EXPECT_EQ(rule_append("123").apply("x"), "x123");
  EXPECT_EQ(rule_prepend("1").apply("x"), "1x");
  EXPECT_EQ(rule_truncate(3).apply("abcdef"), "abc");
  EXPECT_EQ(rule_truncate(9).apply("abc"), "abc");
}

TEST(Rules, LeetSubstitutions) {
  EXPECT_EQ(rule_leet().apply("aeios"), "43105");
  EXPECT_EQ(rule_leet().apply("xyz"), "xyz");
}

TEST(Rules, ComposeAppliesInOrder) {
  const auto composed =
      rule_compose("c$1", rule_capitalize(), rule_append("1"));
  EXPECT_EQ(composed.apply("word"), "Word1");
  EXPECT_EQ(composed.name, "c$1");
}

TEST(Rules, DefaultRulesetStartsWithIdentity) {
  const auto rules = default_ruleset();
  ASSERT_GT(rules.size(), 10u);
  EXPECT_EQ(rules[0].apply("hello"), "hello");
}

TEST(Rules, DefaultRulesetContainsTwoDigitYears) {
  // "05" style suffixes must be zero-padded (regression check).
  const auto rules = default_ruleset();
  bool found = false;
  for (const auto& rule : rules) {
    if (rule.name == "$05") {
      found = true;
      EXPECT_EQ(rule.apply("x"), "x05");
    }
  }
  EXPECT_TRUE(found);
}

TEST(RuleEngine, IteratesRuleMajorWordMinor) {
  RuleEngine engine({"aa", "bb"}, {rule_identity(), rule_append("1")}, 10);
  std::vector<std::string> out;
  engine.generate(4, out);
  EXPECT_EQ(out, (std::vector<std::string>{"aa", "bb", "aa1", "bb1"}));
}

TEST(RuleEngine, TruncatesToMaxLength) {
  RuleEngine engine({"abcdefgh"}, {rule_duplicate()}, 10);
  std::vector<std::string> out;
  engine.generate(1, out);
  EXPECT_EQ(out[0].size(), 10u);
}

TEST(RuleEngine, ExhaustionEmitsFiller) {
  RuleEngine engine({"w"}, {rule_identity()}, 10);
  std::vector<std::string> out;
  engine.generate(3, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "w");
  EXPECT_TRUE(out[1].empty());
  EXPECT_TRUE(engine.exhausted());
}

TEST(RuleEngine, CapacityIsRulesTimesWords) {
  RuleEngine engine({"a", "b", "c"}, default_ruleset(), 10);
  EXPECT_EQ(engine.capacity(), 3 * default_ruleset().size());
}

TEST(WordlistFromCorpus, OrdersByFrequency) {
  const auto wordlist = wordlist_from_corpus(
      {"rare", "common", "common", "common", "mid", "mid"}, 10);
  ASSERT_EQ(wordlist.size(), 3u);
  EXPECT_EQ(wordlist[0], "common");
  EXPECT_EQ(wordlist[1], "mid");
  EXPECT_EQ(wordlist[2], "rare");
}

TEST(WordlistFromCorpus, CapsSize) {
  std::vector<std::string> corpus;
  for (int i = 0; i < 100; ++i) corpus.push_back("w" + std::to_string(i));
  EXPECT_EQ(wordlist_from_corpus(corpus, 10).size(), 10u);
}

TEST(WordlistFromCorpus, DeterministicTieBreak) {
  const auto a = wordlist_from_corpus({"b", "a", "c"}, 3);
  const auto b = wordlist_from_corpus({"c", "b", "a"}, 3);
  EXPECT_EQ(a, b);
}

TEST(RuleEngine, AttackShapeFindsMangledTargets) {
  // Wordlist attack semantics: targets derived from wordlist entries via
  // covered rules must appear in the stream.
  RuleEngine engine({"dragon", "love"}, default_ruleset(), 12);
  std::vector<std::string> out;
  engine.generate(engine.capacity(), out);
  const std::unordered_set<std::string> stream(out.begin(), out.end());
  EXPECT_TRUE(stream.count("dragon1"));
  EXPECT_TRUE(stream.count("love123"));
  EXPECT_TRUE(stream.count("Dragon1"));
  EXPECT_TRUE(stream.count("l0v3"));
  EXPECT_TRUE(stream.count("dragon1995"));
}

}  // namespace
}  // namespace passflow::baselines
