#include "baselines/pcfg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

namespace passflow::baselines {
namespace {

TEST(PcfgStructure, ClassifiesCharacters) {
  EXPECT_EQ(classify_char('a'), SegmentClass::kLetter);
  EXPECT_EQ(classify_char('Z'), SegmentClass::kLetter);
  EXPECT_EQ(classify_char('7'), SegmentClass::kDigit);
  EXPECT_EQ(classify_char('!'), SegmentClass::kSymbol);
  EXPECT_EQ(classify_char('_'), SegmentClass::kSymbol);
}

TEST(PcfgStructure, ParsesMaximalRuns) {
  const Structure s = parse_structure("jimmy91");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].cls, SegmentClass::kLetter);
  EXPECT_EQ(s[0].length, 5u);
  EXPECT_EQ(s[1].cls, SegmentClass::kDigit);
  EXPECT_EQ(s[1].length, 2u);
}

TEST(PcfgStructure, ToStringMatchesWeirNotation) {
  EXPECT_EQ(structure_to_string(parse_structure("jimmy91")), "L5D2");
  EXPECT_EQ(structure_to_string(parse_structure("pass!1")), "L4S1D1");
  EXPECT_EQ(structure_to_string(parse_structure("123456")), "D6");
  EXPECT_EQ(structure_to_string(parse_structure("")), "");
}

class PcfgModelTest : public ::testing::Test {
 protected:
  PcfgModelTest() {
    corpus_ = {"jimmy91", "sarah88", "maria77", "jimmy91", "jimmy91",
               "love123", "love123", "star123", "123456",  "123456",
               "123456",  "123456",  "qwerty",  "dragon"};
    model_.train(corpus_);
  }
  std::vector<std::string> corpus_;
  PcfgModel model_{8};
};

TEST_F(PcfgModelTest, TrainLearnsStructures) {
  // Structures present: L5D2, L4D3, D6, L6.
  EXPECT_EQ(model_.structure_count(), 4u);
}

TEST_F(PcfgModelTest, LogProbFactorizes) {
  // P("jimmy91") = P(L5D2) * P(jimmy|L5) * P(91|D2)
  // counts: L5D2 x5 of 14; jimmy 3/5 among L5 {jimmy x3, sarah, maria};
  // 91 3/5 among D2 {91 x3, 88, 77}.
  const double expected =
      std::log(5.0 / 14.0) + std::log(3.0 / 5.0) + std::log(3.0 / 5.0);
  EXPECT_NEAR(model_.log_prob("jimmy91"), expected, 1e-9);
}

TEST_F(PcfgModelTest, CrossTerminalGeneralization) {
  // "sarah77" was never seen, but structure + terminals were: the PCFG
  // generalizes across segment combinations (Weir's key property).
  EXPECT_TRUE(std::isfinite(model_.log_prob("sarah77")));
  EXPECT_GT(model_.log_prob("sarah77"),
            -std::numeric_limits<double>::infinity());
}

TEST_F(PcfgModelTest, UnseenStructureIsImpossible) {
  EXPECT_EQ(model_.log_prob("!!!!"),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(model_.log_prob("a1a1a1a1"),
            -std::numeric_limits<double>::infinity());
}

TEST_F(PcfgModelTest, UnseenTerminalIsImpossible) {
  EXPECT_EQ(model_.log_prob("zzzzz12"),
            -std::numeric_limits<double>::infinity());
}

TEST_F(PcfgModelTest, EnumerationIsInDescendingProbability) {
  const auto guesses = model_.enumerate(50);
  ASSERT_FALSE(guesses.empty());
  double previous = model_.log_prob(guesses[0]);
  for (std::size_t i = 1; i < guesses.size(); ++i) {
    const double current = model_.log_prob(guesses[i]);
    EXPECT_LE(current, previous + 1e-9)
        << guesses[i - 1] << " then " << guesses[i];
    previous = current;
  }
}

TEST_F(PcfgModelTest, EnumerationStartsWithTheMode) {
  // P("123456") = P(D6) * P(123456|D6) = (4/14) * 1 = 0.286, the highest
  // probability string in this grammar; next is "love123" with
  // (3/14) * (2/3) * 1 = 0.143, then "jimmy91" with 5/14 * 3/5 * 3/5.
  const auto guesses = model_.enumerate(5);
  ASSERT_GE(guesses.size(), 3u);
  EXPECT_EQ(guesses[0], "123456");
  EXPECT_EQ(guesses[1], "love123");
  EXPECT_EQ(guesses[2], "jimmy91");
}

TEST_F(PcfgModelTest, EnumerationHasNoDuplicates) {
  const auto guesses = model_.enumerate(200);
  std::unordered_set<std::string> unique(guesses.begin(), guesses.end());
  EXPECT_EQ(unique.size(), guesses.size());
}

TEST_F(PcfgModelTest, EnumerationExhaustsFiniteGrammar) {
  // Grammar support: L5D2 3x3=9, L4D3 2x1=2, D6 1, L6 2 -> 14 strings.
  const auto guesses = model_.enumerate(1000);
  EXPECT_EQ(guesses.size(), 14u);
}

TEST_F(PcfgModelTest, SamplesComeFromTheGrammar) {
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(std::isfinite(model_.log_prob(model_.sample(rng))));
  }
}

TEST_F(PcfgModelTest, SampleFrequencyTracksProbability) {
  util::Rng rng(5);
  int mode_count = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model_.sample(rng) == "jimmy91") ++mode_count;
  }
  const double expected = (5.0 / 14.0) * (3.0 / 5.0) * (3.0 / 5.0);
  EXPECT_NEAR(static_cast<double>(mode_count) / n, expected, 0.02);
}

TEST(PcfgModel, TrainRejectsEmptyCorpus) {
  PcfgModel model(8);
  EXPECT_THROW(model.train({}), std::invalid_argument);
  EXPECT_THROW(model.train({"waytoolongpassword"}), std::invalid_argument);
}

TEST(PcfgModel, UntrainedThrows) {
  PcfgModel model(8);
  util::Rng rng(1);
  EXPECT_THROW(model.sample(rng), std::logic_error);
  EXPECT_THROW(model.log_prob("x"), std::logic_error);
  EXPECT_THROW(model.enumerate(5), std::logic_error);
}

TEST(PcfgSamplers, GeneratorInterfaces) {
  PcfgModel model(8);
  model.train({"abc12", "abc12", "xyz34", "hello"});
  PcfgSampler sampler(model);
  std::vector<std::string> out;
  sampler.generate(50, out);
  EXPECT_EQ(out.size(), 50u);

  PcfgEnumerator enumerator(model);
  std::vector<std::string> enumerated;
  enumerator.generate(3, enumerated);
  EXPECT_EQ(enumerated.size(), 3u);
  // Continuation picks up where it left off, without repeating.
  std::vector<std::string> more;
  enumerator.generate(3, more);
  for (const auto& g : more) {
    if (g.empty()) continue;  // exhausted filler
    EXPECT_EQ(std::count(enumerated.begin(), enumerated.end(), g), 0)
        << g << " repeated across generate() calls";
  }
}

TEST(PcfgEnumerator, ExhaustionEmitsFiller) {
  PcfgModel model(8);
  model.train({"ab", "ab"});
  PcfgEnumerator enumerator(model);
  std::vector<std::string> out;
  enumerator.generate(5, out);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], "ab");
  for (std::size_t i = 1; i < out.size(); ++i) EXPECT_TRUE(out[i].empty());
}

}  // namespace
}  // namespace passflow::baselines
