// Compile-only fixture for the clang thread-safety gate.
//
// Three CTest entries share this file (see CMakeLists.txt, Clang only):
//
//   static_tsa_clean                      — no defines; must compile under
//                                           -Wthread-safety[-beta] -Werror.
//                                           Pulls in the annotated headers,
//                                           so a regression that makes them
//                                           un-analyzable fails here first.
//   static_tsa_rejects_unlocked_guarded   — -DPF_TSA_VIOLATE_GUARDED_BY adds
//                                           an unlocked read of a GUARDED_BY
//                                           member; the test asserts the
//                                           compile FAILS (WILL_FAIL).
//   static_tsa_rejects_requires           — -DPF_TSA_VIOLATE_REQUIRES calls a
//                                           PF_REQUIRES helper without the
//                                           lock; the compile must FAIL too.
//
// The WILL_FAIL entries are what make the gate trustworthy: a clean build
// alone cannot distinguish "no violations" from "analysis silently off"
// (wrong flags, macros expanding to nothing under the wrong compiler).
#include "guessing/scheduler.hpp"
#include "guessing/session.hpp"
#include "util/annotated_sync.hpp"
#include "util/thread_pool.hpp"

namespace {

using passflow::util::Mutex;
using passflow::util::MutexLock;

class Counter {
 public:
  void bump() PF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++value_;
  }

  int read() PF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return read_locked();
  }

#if defined(PF_TSA_VIOLATE_GUARDED_BY)
  // Reads a GUARDED_BY member without holding mu_: the gate must reject
  // this translation unit.
  int racy_read() const { return value_; }
#endif

#if defined(PF_TSA_VIOLATE_REQUIRES)
  // Calls a PF_REQUIRES(mu_) helper without holding mu_: the gate must
  // reject this translation unit.
  int racy_helper() { return read_locked(); }
#endif

 private:
  int read_locked() const PF_REQUIRES(mu_) { return value_; }

  mutable Mutex mu_;
  int value_ PF_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
#if defined(PF_TSA_VIOLATE_GUARDED_BY)
  counter.racy_read();
#endif
#if defined(PF_TSA_VIOLATE_REQUIRES)
  counter.racy_helper();
#endif
  return counter.read();
}
