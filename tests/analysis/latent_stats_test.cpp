#include "analysis/latent_stats.hpp"

#include <gtest/gtest.h>

#include "data/alphabet.hpp"
#include "test_support.hpp"

namespace passflow::analysis {
namespace {

TEST(EditDistance, KnownValues) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("", "xy"), 2u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("flaw", "lawn"), 2u);
  EXPECT_EQ(edit_distance("jimmy91", "jimmy31"), 1u);
}

TEST(EditDistance, SymmetricAndTriangleInequality) {
  const std::string a = "password", b = "passw0rd", c = "dragon";
  EXPECT_EQ(edit_distance(a, b), edit_distance(b, a));
  EXPECT_LE(edit_distance(a, c),
            edit_distance(a, b) + edit_distance(b, c));
}

class LatentStatsTest : public ::testing::Test {
 protected:
  LatentStatsTest()
      : rng_(5),
        encoder_(data::Alphabet::compact(), 6),
        model_(passflow::testing::tiny_flow_config(), rng_) {
    for (nn::Param* p : model_.parameters()) {
      if (p->name.find("s_scale") != std::string::npos) continue;
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        p->value.data()[i] += static_cast<float>(rng_.normal(0.0, 0.1));
      }
    }
  }

  util::Rng rng_;
  data::Encoder encoder_;
  flow::FlowModel model_;
};

TEST_F(LatentStatsTest, ProbeReportsSampleCount) {
  util::Rng rng(1);
  const auto stats =
      probe_neighborhood(model_, encoder_, "abc123", 0.1, 200, rng);
  EXPECT_EQ(stats.samples, 200u);
  EXPECT_GE(stats.collision_rate, 0.0);
  EXPECT_LE(stats.collision_rate, 1.0);
}

TEST_F(LatentStatsTest, TinySigmaMeansHighCollisionsAndZeroEditDistance) {
  util::Rng rng(2);
  const auto stats =
      probe_neighborhood(model_, encoder_, "abc123", 1e-6, 100, rng);
  EXPECT_GT(stats.collision_rate, 0.9);
  EXPECT_LT(stats.mean_edit_distance, 0.1);
}

TEST_F(LatentStatsTest, LargerSigmaIncreasesEditDistance) {
  util::Rng rng(3);
  const auto near =
      probe_neighborhood(model_, encoder_, "abc123", 0.02, 300, rng);
  const auto far =
      probe_neighborhood(model_, encoder_, "abc123", 1.0, 300, rng);
  EXPECT_GT(far.mean_edit_distance, near.mean_edit_distance);
}

TEST_F(LatentStatsTest, MeanLatentDistanceOfIdenticalIsZero) {
  EXPECT_DOUBLE_EQ(
      mean_latent_distance(model_, encoder_, {"same11", "same11"}), 0.0);
}

TEST_F(LatentStatsTest, MeanLatentDistancePositiveForDistinct) {
  EXPECT_GT(mean_latent_distance(model_, encoder_,
                                 {"abc123", "qwerty", "dragon"}),
            0.0);
}

TEST_F(LatentStatsTest, SinglePasswordHasNoPairs) {
  EXPECT_DOUBLE_EQ(mean_latent_distance(model_, encoder_, {"only12"}), 0.0);
}

}  // namespace
}  // namespace passflow::analysis
