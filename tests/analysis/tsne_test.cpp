#include "analysis/tsne.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace passflow::analysis {
namespace {

TEST(PerplexityBeta, HigherPerplexityGivesSmallerBeta) {
  std::vector<double> distances = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0,
                                   6.0, 7.0, 8.0, 9.0};
  const double beta_small = perplexity_beta(distances, 0, 2.0);
  const double beta_large = perplexity_beta(distances, 0, 8.0);
  EXPECT_GT(beta_small, beta_large);
}

TEST(PerplexityBeta, ScalesInverselyWithDistanceScale) {
  std::vector<double> near = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  std::vector<double> far = {0.0, 10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_GT(perplexity_beta(near, 0, 3.0), perplexity_beta(far, 0, 3.0));
}

TEST(Tsne, RejectsTooFewPoints) {
  nn::Matrix points(3, 5);
  EXPECT_THROW(tsne_embed(points), std::invalid_argument);
}

TEST(Tsne, OutputShapeIsNx2) {
  util::Rng rng(1);
  nn::Matrix points(20, 8);
  for (std::size_t i = 0; i < points.size(); ++i) {
    points.data()[i] = static_cast<float>(rng.normal());
  }
  TsneConfig config;
  config.iterations = 50;
  const nn::Matrix y = tsne_embed(points, config);
  EXPECT_EQ(y.rows(), 20u);
  EXPECT_EQ(y.cols(), 2u);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(Tsne, SeparatedClustersStaySeparated) {
  // Two well-separated Gaussian clusters in 6-D must map to two separated
  // groups in 2-D: mean inter-cluster distance >> mean intra-cluster.
  util::Rng rng(2);
  const std::size_t per_cluster = 25;
  nn::Matrix points(2 * per_cluster, 6);
  for (std::size_t r = 0; r < 2 * per_cluster; ++r) {
    const double center = r < per_cluster ? -8.0 : 8.0;
    for (std::size_t c = 0; c < 6; ++c) {
      points(r, c) = static_cast<float>(rng.normal(center, 0.3));
    }
  }
  TsneConfig config;
  config.iterations = 300;
  config.perplexity = 10.0;
  const nn::Matrix y = tsne_embed(points, config);

  auto squared_distance = [&](std::size_t i, std::size_t j) {
    double acc = 0.0;
    for (std::size_t k = 0; k < 2; ++k) {
      const double diff = static_cast<double>(y(i, k)) - y(j, k);
      acc += diff * diff;
    }
    return acc;
  };

  double intra = 0.0, inter = 0.0;
  std::size_t intra_pairs = 0, inter_pairs = 0;
  for (std::size_t i = 0; i < 2 * per_cluster; ++i) {
    for (std::size_t j = i + 1; j < 2 * per_cluster; ++j) {
      const bool same = (i < per_cluster) == (j < per_cluster);
      if (same) {
        intra += std::sqrt(squared_distance(i, j));
        ++intra_pairs;
      } else {
        inter += std::sqrt(squared_distance(i, j));
        ++inter_pairs;
      }
    }
  }
  intra /= static_cast<double>(intra_pairs);
  inter /= static_cast<double>(inter_pairs);
  EXPECT_GT(inter, 2.0 * intra);
}

TEST(Tsne, DeterministicForSameSeed) {
  util::Rng rng(3);
  nn::Matrix points(10, 4);
  for (std::size_t i = 0; i < points.size(); ++i) {
    points.data()[i] = static_cast<float>(rng.normal());
  }
  TsneConfig config;
  config.iterations = 30;
  const nn::Matrix a = tsne_embed(points, config);
  const nn::Matrix b = tsne_embed(points, config);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Tsne, EmbeddingIsCentered) {
  util::Rng rng(4);
  nn::Matrix points(16, 4);
  for (std::size_t i = 0; i < points.size(); ++i) {
    points.data()[i] = static_cast<float>(rng.normal());
  }
  TsneConfig config;
  config.iterations = 40;
  const nn::Matrix y = tsne_embed(points, config);
  for (std::size_t k = 0; k < 2; ++k) {
    double mean = 0.0;
    for (std::size_t r = 0; r < y.rows(); ++r) mean += y(r, k);
    EXPECT_NEAR(mean / static_cast<double>(y.rows()), 0.0, 1e-3);
  }
}

}  // namespace
}  // namespace passflow::analysis
