#include "analysis/quality.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_rockyou.hpp"

namespace passflow::analysis {
namespace {

TEST(JensenShannon, ZeroForIdenticalDistributions) {
  EXPECT_NEAR(jensen_shannon({0.5, 0.5}, {0.5, 0.5}), 0.0, 1e-12);
  EXPECT_NEAR(jensen_shannon({2.0, 2.0}, {1.0, 1.0}), 0.0, 1e-12);  // scale-free
}

TEST(JensenShannon, MaximalForDisjointSupport) {
  // JSD of disjoint distributions = log 2.
  EXPECT_NEAR(jensen_shannon({1.0, 0.0}, {0.0, 1.0}), std::log(2.0), 1e-12);
}

TEST(JensenShannon, SymmetricAndBounded) {
  const std::vector<double> p = {0.7, 0.2, 0.1};
  const std::vector<double> q = {0.1, 0.3, 0.6};
  const double pq = jensen_shannon(p, q);
  EXPECT_NEAR(pq, jensen_shannon(q, p), 1e-12);
  EXPECT_GT(pq, 0.0);
  EXPECT_LT(pq, std::log(2.0));
}

TEST(JensenShannon, RejectsBadInput) {
  EXPECT_THROW(jensen_shannon({1.0}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(jensen_shannon({0.0, 0.0}, {0.5, 0.5}),
               std::invalid_argument);
}

TEST(Quality, SameCorpusScoresNearZero) {
  data::SyntheticRockyou generator(data::focused_corpus_config(8), 3);
  const auto a = generator.generate(5000);
  const auto b = generator.generate(5000);
  const auto report = compare_sample_quality(a, b, 8);
  EXPECT_LT(report.length_jsd, 0.01);
  EXPECT_LT(report.charset_jsd, 0.02);
  EXPECT_LT(report.structure_jsd, 0.05);
}

TEST(Quality, RandomStringsScoreFarWorseThanCorpus) {
  data::SyntheticRockyou generator(data::focused_corpus_config(8), 5);
  const auto reference = generator.generate(5000);
  const auto similar = generator.generate(5000);

  util::Rng rng(7);
  std::vector<std::string> random_strings;
  for (int i = 0; i < 5000; ++i) {
    std::string s;
    const std::size_t len = 4 + rng.uniform_index(5);
    for (std::size_t j = 0; j < len; ++j) {
      s += static_cast<char>('a' + rng.uniform_index(26));
    }
    random_strings.push_back(std::move(s));
  }
  const auto good = compare_sample_quality(similar, reference, 8);
  const auto bad = compare_sample_quality(random_strings, reference, 8);
  EXPECT_GT(bad.charset_jsd, 2.0 * good.charset_jsd);
  EXPECT_GT(bad.structure_jsd, 2.0 * good.structure_jsd);
}

TEST(Quality, ReportsInputSizes) {
  const std::vector<std::string> a = {"one1", "two2"};
  const std::vector<std::string> b = {"three3"};
  const auto report = compare_sample_quality(a, b, 8);
  EXPECT_EQ(report.generated, 2u);
  EXPECT_EQ(report.reference, 1u);
}

TEST(Quality, RejectsEmptyInput) {
  EXPECT_THROW(compare_sample_quality({}, {"x"}, 8), std::invalid_argument);
  EXPECT_THROW(compare_sample_quality({"x"}, {}, 8), std::invalid_argument);
}

}  // namespace
}  // namespace passflow::analysis
