#include "util/flat_string_set.hpp"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "util/rng.hpp"

namespace passflow::util {
namespace {

TEST(FlatStringSet, InsertReportsNewness) {
  FlatStringSet set;
  EXPECT_TRUE(set.insert("alpha"));
  EXPECT_TRUE(set.insert("beta"));
  EXPECT_FALSE(set.insert("alpha"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(FlatStringSet, ContainsExactKeysOnly) {
  FlatStringSet set;
  set.insert("alpha");
  EXPECT_TRUE(set.contains("alpha"));
  EXPECT_FALSE(set.contains("Alpha"));
  EXPECT_FALSE(set.contains("alph"));
  EXPECT_FALSE(set.contains("alphaa"));
  EXPECT_FALSE(set.contains(""));
}

TEST(FlatStringSet, EmptyKeySupported) {
  FlatStringSet set;
  EXPECT_TRUE(set.insert(""));
  EXPECT_FALSE(set.insert(""));
  EXPECT_TRUE(set.contains(""));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatStringSet, AgreesWithUnorderedSetUnderChurn) {
  // Random strings with heavy duplication, across several table growths.
  FlatStringSet set;
  std::unordered_set<std::string> reference;
  Rng rng(99);
  for (std::size_t i = 0; i < 200000; ++i) {
    std::string key;
    const std::size_t len = 1 + rng.uniform_index(12);
    for (std::size_t c = 0; c < len; ++c) {
      key.push_back(static_cast<char>('a' + rng.uniform_index(8)));
    }
    EXPECT_EQ(set.insert(key), reference.insert(key).second);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (const auto& key : reference) EXPECT_TRUE(set.contains(key));
}

TEST(FlatStringSet, ForEachVisitsInInsertionOrder) {
  FlatStringSet set;
  const std::vector<std::string> keys = {"z", "m", "a", "q", "m", "b"};
  std::vector<std::string> expected = {"z", "m", "a", "q", "b"};
  for (const auto& key : keys) set.insert(key);
  std::vector<std::string> seen;
  set.for_each([&](std::string_view key) { seen.emplace_back(key); });
  EXPECT_EQ(seen, expected);
}

TEST(FlatStringSet, ReserveDoesNotChangeContents) {
  FlatStringSet set;
  for (std::size_t i = 0; i < 100; ++i) {
    set.insert("key-" + std::to_string(i));
  }
  set.reserve(100000);
  EXPECT_EQ(set.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(set.contains("key-" + std::to_string(i)));
  }
}

TEST(FlatStringSet, ClearResets) {
  FlatStringSet set;
  set.insert("x");
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains("x"));
  EXPECT_TRUE(set.insert("x"));
}

}  // namespace
}  // namespace passflow::util
