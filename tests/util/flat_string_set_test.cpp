#include "util/flat_string_set.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace passflow::util {
namespace {

TEST(FlatStringSet, InsertReportsNewness) {
  FlatStringSet set;
  EXPECT_TRUE(set.insert("alpha"));
  EXPECT_TRUE(set.insert("beta"));
  EXPECT_FALSE(set.insert("alpha"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(FlatStringSet, ContainsExactKeysOnly) {
  FlatStringSet set;
  set.insert("alpha");
  EXPECT_TRUE(set.contains("alpha"));
  EXPECT_FALSE(set.contains("Alpha"));
  EXPECT_FALSE(set.contains("alph"));
  EXPECT_FALSE(set.contains("alphaa"));
  EXPECT_FALSE(set.contains(""));
}

TEST(FlatStringSet, EmptyKeySupported) {
  FlatStringSet set;
  EXPECT_TRUE(set.insert(""));
  EXPECT_FALSE(set.insert(""));
  EXPECT_TRUE(set.contains(""));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatStringSet, AgreesWithUnorderedSetUnderChurn) {
  // Random strings with heavy duplication, across several table growths.
  FlatStringSet set;
  std::unordered_set<std::string> reference;
  Rng rng(99);
  for (std::size_t i = 0; i < 200000; ++i) {
    std::string key;
    const std::size_t len = 1 + rng.uniform_index(12);
    for (std::size_t c = 0; c < len; ++c) {
      key.push_back(static_cast<char>('a' + rng.uniform_index(8)));
    }
    EXPECT_EQ(set.insert(key), reference.insert(key).second);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (const auto& key : reference) EXPECT_TRUE(set.contains(key));
}

TEST(FlatStringSet, ForEachVisitsInInsertionOrder) {
  FlatStringSet set;
  const std::vector<std::string> keys = {"z", "m", "a", "q", "m", "b"};
  std::vector<std::string> expected = {"z", "m", "a", "q", "b"};
  for (const auto& key : keys) set.insert(key);
  std::vector<std::string> seen;
  set.for_each([&](std::string_view key) { seen.emplace_back(key); });
  EXPECT_EQ(seen, expected);
}

TEST(FlatStringSet, ReserveDoesNotChangeContents) {
  FlatStringSet set;
  for (std::size_t i = 0; i < 100; ++i) {
    set.insert("key-" + std::to_string(i));
  }
  set.reserve(100000);
  EXPECT_EQ(set.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(set.contains("key-" + std::to_string(i)));
  }
}

// PR 4's UBSan find, pinned as a regression: a default-constructed
// string_view has data() == nullptr, and passing that to memcmp (even with
// length 0) is undefined behavior. Empty keys must work through both the
// null-data and the valid-data-empty-range spellings, mixed with real keys
// so the comparison paths actually run.
TEST(FlatStringSet, EmptyStringViewWithNullDataIsSafe) {
  const std::string_view null_data;  // data() == nullptr, size() == 0
  ASSERT_EQ(null_data.data(), nullptr);
  const std::string empty_storage;
  const std::string_view valid_data(empty_storage);  // non-null, size() == 0

  FlatStringSet set;
  EXPECT_FALSE(set.contains(null_data));
  EXPECT_TRUE(set.insert(null_data));
  EXPECT_TRUE(set.contains(null_data));
  // Both spellings are the same key.
  EXPECT_FALSE(set.insert(valid_data));
  EXPECT_TRUE(set.contains(valid_data));
  EXPECT_EQ(set.size(), 1u);

  // Force probes that compare the empty key against real keys and vice
  // versa (same hash bucket collisions happen eventually across growth).
  for (std::size_t i = 0; i < 5000; ++i) {
    set.insert("k" + std::to_string(i));
  }
  EXPECT_TRUE(set.contains(null_data));
  EXPECT_FALSE(set.insert(null_data));
  EXPECT_EQ(set.size(), 5001u);
}

// Randomized property test: a long interleaved stream of inserts and
// lookups (drawn from a small key space so duplicates and hits are common)
// must agree with std::unordered_set op for op, through several table
// growths, for both the plain and the caller-hashed insert paths.
TEST(FlatStringSet, RandomizedOpsAgreeWithUnorderedSet) {
  FlatStringSet set;
  std::unordered_set<std::string> reference;
  Rng rng(20220614);
  const auto random_key = [&] {
    if (rng.uniform_index(40) == 0) return std::string();  // empty key too
    std::string key;
    const std::size_t len = 1 + rng.uniform_index(10);
    for (std::size_t c = 0; c < len; ++c) {
      key.push_back(static_cast<char>('!' + rng.uniform_index(90)));
    }
    return key;
  };
  for (std::size_t op = 0; op < 100000; ++op) {
    const std::string key = random_key();
    switch (rng.uniform_index(4)) {
      case 0:
      case 1:
        EXPECT_EQ(set.insert(key), reference.insert(key).second) << key;
        break;
      case 2:
        EXPECT_EQ(set.insert_hashed(hash64(key), key),
                  reference.insert(key).second)
            << key;
        break;
      default:
        EXPECT_EQ(set.contains(key), reference.count(key) > 0) << key;
        break;
    }
  }
  EXPECT_EQ(set.size(), reference.size());
  for (const auto& key : reference) EXPECT_TRUE(set.contains(key));
}

TEST(FlatStringSet, ClearResets) {
  FlatStringSet set;
  set.insert("x");
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains("x"));
  EXPECT_TRUE(set.insert("x"));
}

}  // namespace
}  // namespace passflow::util
