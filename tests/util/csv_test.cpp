#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace passflow::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "pf_csv_test.csv";
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.write_row({"1", "2"});
    csv.write_row({"3", "4"});
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2\n3,4\n");
}

TEST_F(CsvWriterTest, EscapesCommasAndQuotes) {
  {
    CsvWriter csv(path_, {"x"});
    csv.write_row({"a,b"});
    csv.write_row({"say \"hi\""});
  }
  EXPECT_EQ(read_file(path_), "x\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvWriterTest, RejectsWrongWidth) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.write_row({"only-one"}), std::invalid_argument);
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

TEST(WithThousands, FormatsGroups) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(-9876543), "-9,876,543");
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("longer"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(rendered.find("---"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable table({"a"});
  EXPECT_THROW(table.add_row({"1", "2"}), std::invalid_argument);
}

}  // namespace
}  // namespace passflow::util
