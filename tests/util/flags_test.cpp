#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace passflow::util {
namespace {

Flags make_flags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesEqualsForm) {
  auto flags = make_flags({"--guesses=1000", "--sigma=0.12"});
  EXPECT_EQ(flags.get_int("guesses", 0), 1000);
  EXPECT_DOUBLE_EQ(flags.get_double("sigma", 0.0), 0.12);
}

TEST(Flags, ParsesSpaceForm) {
  auto flags = make_flags({"--name", "passflow"});
  EXPECT_EQ(flags.get_string("name", ""), "passflow");
}

TEST(Flags, BareFlagIsTrue) {
  auto flags = make_flags({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(Flags, FallbacksWhenMissing) {
  auto flags = make_flags({});
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_EQ(flags.get_string("missing", "d"), "d");
  EXPECT_FALSE(flags.get_bool("missing", false));
}

TEST(Flags, BooleanParsingVariants) {
  auto flags = make_flags({"--a=true", "--b=0", "--c=yes", "--d=no"});
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_FALSE(flags.get_bool("d", true));
}

TEST(Flags, BadBooleanThrows) {
  auto flags = make_flags({"--a=maybe"});
  EXPECT_THROW(flags.get_bool("a", false), std::invalid_argument);
}

TEST(Flags, PositionalArgumentThrows) {
  EXPECT_THROW(make_flags({"positional"}), std::invalid_argument);
}

TEST(Flags, UnusedReportsUnqueriedFlags) {
  auto flags = make_flags({"--used=1", "--typo=2"});
  flags.get_int("used", 0);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Flags, HasDetectsPresence) {
  auto flags = make_flags({"--x=1"});
  EXPECT_TRUE(flags.has("x"));
  EXPECT_FALSE(flags.has("y"));
}

}  // namespace
}  // namespace passflow::util
