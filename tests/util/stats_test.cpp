#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace passflow::util {
namespace {

TEST(Stats, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, MeanThrowsOnEmpty) {
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Stats, VarianceOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(variance({5.0, 5.0, 5.0}), 0.0);
}

TEST(Stats, VarianceOfKnownValues) {
  // Population variance of {1,2,3,4} = 1.25.
  EXPECT_DOUBLE_EQ(variance({1.0, 2.0, 3.0, 4.0}), 1.25);
}

TEST(Stats, StddevIsSqrtOfVariance) {
  EXPECT_DOUBLE_EQ(stddev({1.0, 2.0, 3.0, 4.0}), std::sqrt(1.25));
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, MedianSingleElement) {
  EXPECT_DOUBLE_EQ(median({42.0}), 42.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateInputIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 3, 4}), 0.0);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  EXPECT_THROW(pearson({1, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(RunningStats, MatchesBatchStatistics) {
  const std::vector<double> values = {1.0, 4.0, -2.0, 8.0, 3.5};
  RunningStats rs;
  for (double v : values) rs.add(v);
  EXPECT_EQ(rs.count(), values.size());
  EXPECT_NEAR(rs.mean(), mean(values), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(values), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 8.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace passflow::util
