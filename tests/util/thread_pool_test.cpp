#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace passflow::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(1000, [&](std::size_t i) { counts[i]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, HandlesZeroItems) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, HandlesFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ChunksCoverRangeWithoutOverlap) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_chunks(257, [&](std::size_t, std::size_t begin,
                                std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 50) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      total += static_cast<long>(i);
    });
  }
  EXPECT_EQ(total.load(), 5 * (99 * 100 / 2));
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  auto doubled = pool.submit([] { return 21 * 2; });
  auto text = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(doubled.get(), 42);
  EXPECT_EQ(text.get(), "done");
}

TEST(ThreadPool, SubmitPropagatesExceptionsViaFuture) {
  ThreadPool pool(2);
  auto failing = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
}

TEST(ThreadPool, WaitAllRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&] { done++; }));
  }
  pool.wait_all(futures);
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, WaitAllPropagatesFirstException) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  futures.push_back(pool.submit([] {}));
  futures.push_back(pool.submit([] { throw std::runtime_error("boom"); }));
  futures.push_back(pool.submit([] {}));
  EXPECT_THROW(pool.wait_all(futures), std::runtime_error);
}

// A submitted task calling parallel_for on its own pool must not deadlock,
// even on a single-worker pool where the task occupies the only worker:
// the helping wait lends the worker back to the nested chunks.
TEST(ThreadPool, NestedParallelForInsideSubmittedTask) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(workers);
    std::atomic<int> total{0};
    auto task = pool.submit([&] {
      pool.parallel_for(100, [&](std::size_t) { total++; });
      return total.load();
    });
    EXPECT_EQ(task.get(), 100);
  }
}

// Tasks submitting further tasks and waiting on them — the scheduler's
// tracker-drain pattern — must complete on a saturated pool.
TEST(ThreadPool, SubmitFromInsideSubmittedTask) {
  ThreadPool pool(2);
  std::vector<std::future<int>> outers;
  for (int i = 0; i < 8; ++i) {
    outers.push_back(pool.submit([&pool, i] {
      std::vector<std::future<int>> inners;
      for (int j = 0; j < 4; ++j) {
        inners.push_back(pool.submit([i, j] { return i * 4 + j; }));
      }
      pool.wait_all(inners);
      int sum = 0;
      // wait_all already get()s each future to surface exceptions, so
      // re-submit the arithmetic: futures are single-get.
      for (int j = 0; j < 4; ++j) sum += i * 4 + j;
      return sum;
    }));
  }
  int total = 0;
  for (auto& outer : outers) total += outer.get();
  EXPECT_EQ(total, 31 * 32 / 2);
}

// A throwing task must store its exception in the future and otherwise
// behave like a completed task: wait_all over a mixed batch (many tasks,
// half of them throwing) has to propagate the first stored exception
// without hanging, and the pool must stay fully usable afterwards.
TEST(ThreadPool, ThrowingTasksDoNotWedgeWaitAll) {
  ThreadPool pool(2);
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> completed{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([&completed, i] {
        if (i % 2 == 0) throw std::runtime_error("boom");
        completed++;
      }));
    }
    EXPECT_THROW(pool.wait_all(futures), std::runtime_error);
    EXPECT_EQ(completed.load(), 16);
  }
  // Still healthy: plain submits and parallel_for run to completion.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
  std::atomic<int> total{0};
  pool.parallel_for(100, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 100);
}

// The single-worker case is the sharpest wedge test: the waiting thread
// itself pops and runs the queued (throwing) tasks via the work-helping
// wait, so the exception is raised on the helper's stack. It must be
// captured into the future there — not escape into the wait loop — and the
// wait must still return.
TEST(ThreadPool, ExceptionsInsideWorkHelpingWaitsStayInFutures) {
  ThreadPool pool(1);
  auto outer = pool.submit([&pool] {
    // The only worker is busy running this task, so wait_all below must
    // execute the inner tasks inline on this thread.
    std::vector<std::future<void>> inners;
    for (int i = 0; i < 8; ++i) {
      inners.push_back(
          pool.submit([] { throw std::runtime_error("inner boom"); }));
    }
    try {
      pool.wait_all(inners);
    } catch (const std::runtime_error&) {
      return std::string("caught");
    }
    return std::string("no exception");
  });
  EXPECT_EQ(outer.get(), "caught");
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

// parallel_for from a worker that is itself running a parallel_for chunk.
TEST(ThreadPool, DoublyNestedParallelFor) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 32);
}

}  // namespace
}  // namespace passflow::util
