#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace passflow::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(1000, [&](std::size_t i) { counts[i]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, HandlesZeroItems) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, HandlesFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ChunksCoverRangeWithoutOverlap) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_chunks(257, [&](std::size_t, std::size_t begin,
                                std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 50) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      total += static_cast<long>(i);
    });
  }
  EXPECT_EQ(total.load(), 5 * (99 * 100 / 2));
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace passflow::util
