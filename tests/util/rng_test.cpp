#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

namespace passflow::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexOfOneIsZero) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PermutationIsBijective) {
  Rng rng(31);
  const auto perm = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (const auto i : perm) {
    ASSERT_LT(i, 100u);
    ASSERT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(37);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(41);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, FillNormalFillsEveryEntry) {
  Rng rng(43);
  std::vector<float> out(1000, -999.0f);
  rng.fill_normal(out, 2.0, 0.1);
  double sum = 0.0;
  for (float v : out) sum += v;
  EXPECT_NEAR(sum / 1000.0, 2.0, 0.05);
}

// ---- serialize round-trip property tests ----------------------------------
//
// For a spread of randomized states (varied seeds, varied amounts of mixed
// draws consumed — including states with a Box-Muller spare pending),
// save -> load must reproduce the subsequent stream bitwise.

TEST(Rng, SaveLoadRoundTripIsBitwiseAcrossRandomizedStates) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng original(seed * 2654435761u);
    // Scramble to a seed-dependent interior state with mixed draw kinds;
    // odd normal() counts leave the Box-Muller spare armed.
    const int warmup = static_cast<int>(seed * 7 % 53);
    for (int i = 0; i < warmup; ++i) original.next_u64();
    for (int i = 0; i < static_cast<int>(seed % 5); ++i) original.normal();
    for (int i = 0; i < static_cast<int>(seed % 3); ++i) original.uniform();

    std::stringstream state;
    original.save(state);
    Rng restored(999);  // decoy seed: load must fully overwrite it
    restored.load(state);

    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(original.next_u64(), restored.next_u64())
          << "seed " << seed << " draw " << i;
    }
    // Doubles from identical integer streams are bitwise identical.
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(original.uniform(), restored.uniform());
      ASSERT_EQ(original.normal(), restored.normal());
    }
    const auto perm_a = original.permutation(31);
    const auto perm_b = restored.permutation(31);
    EXPECT_EQ(perm_a, perm_b);
  }
}

TEST(Rng, SaveLoadPreservesThePendingBoxMullerSpare) {
  Rng original(12345);
  (void)original.normal();  // arms the spare
  std::stringstream state;
  original.save(state);
  Rng restored(1);
  restored.load(state);
  // The very next normal() must consume the same spare, not regenerate.
  EXPECT_EQ(original.normal(), restored.normal());
  EXPECT_EQ(original.normal(), restored.normal());
}

TEST(Rng, SavedStateIsStableAcrossASaveLoadSave) {
  Rng rng(777);
  for (int i = 0; i < 17; ++i) rng.next_u64();
  std::stringstream first;
  rng.save(first);
  Rng copy(3);
  std::stringstream replay(first.str());
  copy.load(replay);
  std::stringstream second;
  copy.save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Rng, LoadOnTruncatedStateThrows) {
  Rng rng(42);
  std::stringstream state;
  rng.save(state);
  const std::string bytes = state.str();
  Rng victim(7);
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(victim.load(truncated), std::runtime_error);
}

TEST(SampleDiscrete, RespectsWeights) {
  Rng rng(47);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[sample_discrete(rng, weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 40000.0, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 40000.0, 0.75, 0.02);
}

TEST(SampleDiscrete, ThrowsOnAllZero) {
  Rng rng(53);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(sample_discrete(rng, weights), std::invalid_argument);
}

TEST(SampleDiscrete, ThrowsOnNegative) {
  Rng rng(53);
  std::vector<double> weights = {1.0, -1.0};
  EXPECT_THROW(sample_discrete(rng, weights), std::invalid_argument);
}

TEST(ZipfSampler, HeadIsHeavierThanTail) {
  Rng rng(59);
  ZipfSampler zipf(100, 1.1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 3);
  EXPECT_GT(counts[0], counts[99] * 3);
}

TEST(ZipfSampler, CoversSupportAndStaysInRange) {
  Rng rng(61);
  ZipfSampler zipf(10, 1.0);
  std::set<std::size_t> seen;
  for (int i = 0; i < 20000; ++i) {
    const auto v = zipf.sample(rng);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(ZipfSampler, ThrowsOnEmpty) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, RankFrequencyIsMonotoneNonIncreasingInExpectation) {
  Rng rng(67);
  ZipfSampler zipf(20, GetParam());
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.sample(rng)];
  // Compare coarse buckets to tolerate sampling noise.
  const int head = counts[0] + counts[1] + counts[2];
  const int mid = counts[8] + counts[9] + counts[10];
  const int tail = counts[17] + counts[18] + counts[19];
  EXPECT_GE(head, mid);
  EXPECT_GE(mid, tail);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.3, 2.0));

}  // namespace
}  // namespace passflow::util
