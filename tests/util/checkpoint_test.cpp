#include "util/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace passflow::util {
namespace {

std::string temp_base(const std::string& tag) {
  return ::testing::TempDir() + "pf_ckpt_" + tag + ".ckpt";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void remove_all(CheckpointStore& store) { store.clear(); }

TEST(Crc32, MatchesKnownVectors) {
  // The canonical zlib/PNG check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, ChainsAcrossCalls) {
  const std::string data = "the quick brown fox";
  const std::uint32_t whole = crc32(data.data(), data.size());
  const std::uint32_t head = crc32(data.data(), 5);
  const std::uint32_t chained = crc32(data.data() + 5, data.size() - 5, head);
  EXPECT_EQ(chained, whole);
}

TEST(CheckpointWriter, PublishesFrameReadableByReadFrameFile) {
  const std::string path = temp_base("writer_roundtrip") + ".g00000001";
  std::remove(path.c_str());
  {
    CheckpointWriter writer(path);
    writer.stream() << "payload bytes \0 with nul" << std::string(100, 'x');
    writer.commit();
  }
  const std::string payload = CheckpointStore::read_frame_file(path);
  EXPECT_NE(payload.find("payload bytes"), std::string::npos);
  EXPECT_NE(payload.find(std::string(100, 'x')), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointWriter, DestructionWithoutCommitLeavesTargetUntouched) {
  const std::string path = temp_base("writer_abort") + ".g00000001";
  write_file(path, "previous good bytes");
  {
    CheckpointWriter writer(path);
    writer.stream() << "half-written replacement";
    // no commit(): simulated failure mid-save
  }
  EXPECT_EQ(read_file(path), "previous good bytes");
  std::remove(path.c_str());
}

TEST(CheckpointStore, LoadOnEmptyStoreIsFalseNotError) {
  CheckpointStore store(temp_base("empty"));
  remove_all(store);
  bool called = false;
  EXPECT_FALSE(store.load([&](std::istream&) { called = true; }));
  EXPECT_FALSE(called);
}

TEST(CheckpointStore, SaveThenLoadRoundTrips) {
  CheckpointStore store(temp_base("roundtrip"));
  remove_all(store);
  store.save([](std::ostream& out) { out << "fleet state v1"; });
  std::string seen;
  ASSERT_TRUE(store.load([&](std::istream& in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    seen = buf.str();
  }));
  EXPECT_EQ(seen, "fleet state v1");
  remove_all(store);
}

TEST(CheckpointStore, RotationPrunesToKeepGenerations) {
  CheckpointStoreConfig config;
  config.keep_generations = 2;
  CheckpointStore store(temp_base("rotation"), config);
  remove_all(store);
  for (int i = 1; i <= 5; ++i) {
    store.save([&](std::ostream& out) { out << "gen " << i; });
  }
  const auto paths = store.generation_paths();
  ASSERT_EQ(paths.size(), 2u);
  // Newest first; the two newest generations survive.
  EXPECT_EQ(CheckpointStore::read_frame_file(paths[0]), "gen 5");
  EXPECT_EQ(CheckpointStore::read_frame_file(paths[1]), "gen 4");
  remove_all(store);
}

TEST(CheckpointStore, SequenceNumbersResumeAcrossStoreInstances) {
  const std::string base = temp_base("reopen");
  {
    CheckpointStore store(base);
    remove_all(store);
    store.save([](std::ostream& out) { out << "first"; });
  }
  {
    // A fresh store over the same base must not reuse generation 1.
    CheckpointStore store(base);
    store.save([](std::ostream& out) { out << "second"; });
    const auto paths = store.generation_paths();
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(CheckpointStore::read_frame_file(paths[0]), "second");
    EXPECT_EQ(CheckpointStore::read_frame_file(paths[1]), "first");
    remove_all(store);
  }
}

TEST(CheckpointStore, ThrowingPayloadWriterPublishesNothing) {
  CheckpointStore store(temp_base("writer_throws"));
  remove_all(store);
  store.save([](std::ostream& out) { out << "good"; });
  EXPECT_THROW(store.save([](std::ostream& out) {
    out << "partial";
    throw std::runtime_error("generator cannot serialize");
  }),
               std::runtime_error);
  const auto paths = store.generation_paths();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(CheckpointStore::read_frame_file(paths[0]), "good");
  remove_all(store);
}

TEST(CheckpointStore, FallsBackToPreviousGenerationWhenNewestIsCorrupt) {
  CheckpointStore store(temp_base("fallback"));
  remove_all(store);
  store.save([](std::ostream& out) { out << "older good"; });
  const std::string newest =
      store.save([](std::ostream& out) { out << "newer bad"; });
  std::string bytes = read_file(newest);
  bytes[bytes.size() / 2] ^= 0x40;  // flip a payload bit
  write_file(newest, bytes);

  std::string seen;
  ASSERT_TRUE(store.load([&](std::istream& in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    seen = buf.str();
  }));
  EXPECT_EQ(seen, "older good");
  remove_all(store);
}

TEST(CheckpointStore, ThrowsNamingEveryFileWhenAllGenerationsCorrupt) {
  CheckpointStore store(temp_base("all_corrupt"));
  remove_all(store);
  store.save([](std::ostream& out) { out << "one"; });
  store.save([](std::ostream& out) { out << "two"; });
  for (const auto& path : store.generation_paths()) {
    write_file(path, "garbage");
  }
  try {
    store.load([](std::istream&) { FAIL() << "corrupt state was thawed"; });
    FAIL() << "load() must throw when every generation is corrupt";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    for (const auto& path : store.generation_paths()) {
      EXPECT_NE(what.find(path), std::string::npos)
          << "error must name " << path;
    }
  }
  remove_all(store);
}

TEST(CheckpointStore, ReadPayloadExceptionPropagatesWithoutFallback) {
  // A semantic mismatch inside an intact frame must be loud: older
  // generations share the same schema, so falling back would just defer
  // the same failure onto staler state.
  CheckpointStore store(temp_base("semantic"));
  remove_all(store);
  store.save([](std::ostream& out) { out << "older"; });
  store.save([](std::ostream& out) { out << "newer"; });
  int calls = 0;
  EXPECT_THROW(store.load([&](std::istream&) {
    ++calls;
    throw std::logic_error("schema mismatch");
  }),
               std::logic_error);
  EXPECT_EQ(calls, 1);
  remove_all(store);
}

TEST(CheckpointStore, StrayTempFilesAreNotGenerations) {
  CheckpointStore store(temp_base("stray_tmp"));
  remove_all(store);
  const std::string published =
      store.save([](std::ostream& out) { out << "real"; });
  write_file(published + ".tmp", "torn half-write left behind by a crash");
  const auto paths = store.generation_paths();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], published);
  std::string seen;
  ASSERT_TRUE(store.load([&](std::istream& in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    seen = buf.str();
  }));
  EXPECT_EQ(seen, "real");
  std::remove((published + ".tmp").c_str());
  remove_all(store);
}

// ---- stream read_frame (the dist-transport entry point) -------------------
//
// read_frame consumes exactly one frame and leaves the stream on the next
// byte, which is what lets the socket transport call it back-to-back on a
// conversation. The file loader wraps it with an extra nothing-after-the-
// frame check; the stream form must NOT impose that, or the second frame
// of every conversation would be "trailing garbage".

TEST(ReadFrame, ConsumesBackToBackFramesFromOneStream) {
  std::istringstream in(encode_checkpoint_frame("first") +
                        encode_checkpoint_frame(std::string("\0mid\xff", 5)) +
                        encode_checkpoint_frame(""));
  EXPECT_EQ(CheckpointStore::read_frame(in, "conversation"), "first");
  EXPECT_EQ(CheckpointStore::read_frame(in, "conversation"),
            std::string("\0mid\xff", 5));
  EXPECT_EQ(CheckpointStore::read_frame(in, "conversation"), "");
  // Stream is now exhausted: the next read is a loud truncation error
  // (0 header bytes), never an empty payload.
  EXPECT_THROW(CheckpointStore::read_frame(in, "conversation"),
               std::runtime_error);
}

TEST(ReadFrame, ErrorsCarryTheCallerContext) {
  std::istringstream in("not a frame at all, certainly no magic");
  try {
    CheckpointStore::read_frame(in, "dist frame");
    FAIL() << "expected a bad-magic error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dist frame"), std::string::npos) << what;
    EXPECT_NE(what.find("bad magic"), std::string::npos) << what;
  }
}

TEST(ReadFrame, FileLoaderStillRejectsBytesAfterTheFrame) {
  // The trailing-bytes check is the FILE loader's own: a checkpoint file
  // holds one frame, a socket stream holds many.
  const std::string path = temp_base("two_frames_file");
  write_file(path, encode_checkpoint_frame("one") +
                       encode_checkpoint_frame("two"));
  try {
    CheckpointStore::read_frame_file(path);
    FAIL() << "expected a trailing-bytes rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos)
        << e.what();
  }
  std::istringstream in(read_file(path));
  EXPECT_EQ(CheckpointStore::read_frame(in), "one");
  EXPECT_EQ(CheckpointStore::read_frame(in), "two");
  std::remove(path.c_str());
}

// ---- torn-write / bit-rot sweep -------------------------------------------
//
// Every byte of the frame is covered by some validation layer (magic,
// version, length-vs-file-size, CRC over header+payload, end magic), so a
// frame damaged at ANY byte must be rejected loudly. The store must then
// either fall back to the intact older generation or throw — it must never
// hand corrupt payload to the caller.

class TornWriteSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.emplace(temp_base("sweep"));
    store_->clear();
    store_->save([](std::ostream& out) { out << kOldPayload; });
    newest_ = store_->save([](std::ostream& out) { out << kNewPayload; });
    pristine_ = read_file(newest_);
    ASSERT_GT(pristine_.size(), 40u);  // header + footer framing
  }

  void TearDown() override {
    store_->clear();
  }

  // Damaged newest generation: the only acceptable outcomes are a clean
  // fallback to the old payload or a loud error. Returns what was loaded.
  void expect_no_silent_corruption(const std::string& damaged,
                                   const std::string& label) {
    write_file(newest_, damaged);
    std::string seen;
    bool loaded = false;
    try {
      loaded = store_->load([&](std::istream& in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        seen = buf.str();
      });
    } catch (const std::runtime_error&) {
      return;  // loud error: acceptable
    }
    ASSERT_TRUE(loaded) << label;
    // Fallback must serve the intact older generation, bit-exact. The one
    // payload the loader may never produce is anything else.
    EXPECT_EQ(seen, kOldPayload) << label << ": silent corruption";
  }

  static constexpr const char kOldPayload[] = "intact older fleet state";
  static constexpr const char kNewPayload[] = "newer fleet state payload";
  std::optional<CheckpointStore> store_;
  std::string newest_;
  std::string pristine_;
};

constexpr const char TornWriteSweep::kOldPayload[];
constexpr const char TornWriteSweep::kNewPayload[];

TEST_F(TornWriteSweep, TruncationAtEveryLengthFallsBackOrThrows) {
  for (std::size_t len = 0; len < pristine_.size(); ++len) {
    expect_no_silent_corruption(pristine_.substr(0, len),
                                "truncated to " + std::to_string(len));
  }
}

TEST_F(TornWriteSweep, BitFlipAtEveryByteFallsBackOrThrows) {
  for (std::size_t pos = 0; pos < pristine_.size(); ++pos) {
    std::string damaged = pristine_;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x01);
    expect_no_silent_corruption(damaged, "bit flip at " + std::to_string(pos));
  }
}

TEST_F(TornWriteSweep, TrailingGarbageIsRejected) {
  expect_no_silent_corruption(pristine_ + "extra bytes past the trailer",
                              "trailing garbage");
}

TEST_F(TornWriteSweep, EveryDamageIsDetectedByFrameValidation) {
  // Stronger than fallback-or-throw: because every frame byte is covered
  // by a check, read_frame_file itself must reject every single-byte flip.
  for (std::size_t pos = 0; pos < pristine_.size(); ++pos) {
    std::string damaged = pristine_;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x80);
    write_file(newest_, damaged);
    EXPECT_THROW(CheckpointStore::read_frame_file(newest_),
                 std::runtime_error)
        << "flip at byte " << pos << " slipped through frame validation";
  }
}

}  // namespace
}  // namespace passflow::util
