#include "util/cardinality_sketch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "util/rng.hpp"

namespace passflow::util {
namespace {

std::string item(std::size_t i) { return "item-" + std::to_string(i); }

TEST(CardinalitySketch, EmptyEstimatesZero) {
  CardinalitySketch sketch;
  EXPECT_EQ(sketch.estimate(), 0u);
}

TEST(CardinalitySketch, PrecisionBoundsEnforced) {
  EXPECT_THROW(CardinalitySketch(3), std::invalid_argument);
  EXPECT_THROW(CardinalitySketch(19), std::invalid_argument);
  EXPECT_EQ(CardinalitySketch(4).register_count(), 16u);
  EXPECT_EQ(CardinalitySketch(14).register_count(), 16384u);
}

TEST(CardinalitySketch, SmallCardinalitiesNearExact) {
  // Linear counting regime: estimates should be essentially exact.
  CardinalitySketch sketch(14);
  for (std::size_t i = 0; i < 500; ++i) sketch.add(item(i));
  EXPECT_NEAR(static_cast<double>(sketch.estimate()), 500.0, 5.0);
}

TEST(CardinalitySketch, DuplicatesDoNotInflate) {
  CardinalitySketch sketch(14);
  for (std::size_t round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < 1000; ++i) sketch.add(item(i));
  }
  EXPECT_NEAR(static_cast<double>(sketch.estimate()), 1000.0, 15.0);
}

TEST(CardinalitySketch, MillionDistinctWithinTwoPercent) {
  // p=14 has ~0.8% standard error; the acceptance bound is 2%.
  CardinalitySketch sketch(14);
  constexpr std::size_t kDistinct = 1000000;
  for (std::size_t i = 0; i < kDistinct; ++i) sketch.add(item(i));
  const double estimate = static_cast<double>(sketch.estimate());
  EXPECT_NEAR(estimate, static_cast<double>(kDistinct),
              0.02 * static_cast<double>(kDistinct));
}

TEST(CardinalitySketch, MergeEqualsUnion) {
  CardinalitySketch a(12);
  CardinalitySketch b(12);
  CardinalitySketch whole(12);
  for (std::size_t i = 0; i < 30000; ++i) {
    // Overlapping halves: [0, 20000) and [10000, 30000).
    if (i < 20000) a.add(item(i));
    if (i >= 10000) b.add(item(i));
    whole.add(item(i));
  }
  a.merge(b);
  EXPECT_EQ(a.estimate(), whole.estimate());
}

TEST(CardinalitySketch, MergePrecisionMismatchThrows) {
  CardinalitySketch a(12);
  CardinalitySketch b(14);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(CardinalitySketch, SaveLoadRoundTrips) {
  CardinalitySketch sketch(12);
  for (std::size_t i = 0; i < 5000; ++i) sketch.add(item(i));
  std::stringstream stream;
  sketch.save(stream);

  CardinalitySketch restored(12);
  restored.load(stream);
  EXPECT_EQ(restored.estimate(), sketch.estimate());

  // More adds continue from the restored registers.
  for (std::size_t i = 5000; i < 6000; ++i) {
    sketch.add(item(i));
    restored.add(item(i));
  }
  EXPECT_EQ(restored.estimate(), sketch.estimate());
}

TEST(CardinalitySketch, LoadPrecisionMismatchThrows) {
  CardinalitySketch sketch(12);
  std::stringstream stream;
  sketch.save(stream);
  CardinalitySketch other(14);
  EXPECT_THROW(other.load(stream), std::runtime_error);
}

// ---- serialize round-trip property tests ----------------------------------
//
// For randomized states (varied precisions, varied item mixes seeded from
// an Rng), save -> load must reproduce the registers bitwise: identical
// serialized bytes, and identical estimates after identical further adds.

TEST(CardinalitySketch, SaveLoadRoundTripIsBitwiseAcrossRandomizedStates) {
  Rng rng(0xC0FFEE);
  const unsigned precisions[] = {4, 8, 12, 14};
  for (int trial = 0; trial < 12; ++trial) {
    const unsigned precision = precisions[trial % 4];
    CardinalitySketch original(precision);
    const std::size_t adds = 100 + rng.uniform_index(20000);
    for (std::size_t i = 0; i < adds; ++i) {
      original.add("r" + std::to_string(rng.next_u64() % (adds * 2)));
    }

    std::stringstream state;
    original.save(state);
    CardinalitySketch restored(precision);
    restored.load(state);

    // Registers restored bitwise: a re-save emits identical bytes.
    std::stringstream resaved;
    restored.save(resaved);
    std::stringstream again;
    original.save(again);
    ASSERT_EQ(resaved.str(), again.str()) << "trial " << trial;
    ASSERT_EQ(restored.estimate(), original.estimate());

    // Subsequent identical adds keep the pair in lockstep.
    for (int i = 0; i < 500; ++i) {
      const std::string extra = "x" + std::to_string(rng.next_u64());
      original.add(extra);
      restored.add(extra);
    }
    ASSERT_EQ(restored.estimate(), original.estimate()) << "trial " << trial;
  }
}

TEST(CardinalitySketch, RestoredSketchMergesLikeTheOriginal) {
  CardinalitySketch a(12), b(12);
  for (std::size_t i = 0; i < 8000; ++i) a.add(item(i));
  for (std::size_t i = 4000; i < 12000; ++i) b.add(item(i));

  std::stringstream state;
  a.save(state);
  CardinalitySketch restored(12);
  restored.load(state);

  a.merge(b);
  restored.merge(b);
  EXPECT_EQ(restored.estimate(), a.estimate());
}

TEST(CardinalitySketch, LoadOnTruncatedStateThrows) {
  CardinalitySketch sketch(12);
  for (std::size_t i = 0; i < 100; ++i) sketch.add(item(i));
  std::stringstream state;
  sketch.save(state);
  const std::string bytes = state.str();
  CardinalitySketch victim(12);
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(victim.load(truncated), std::runtime_error);
}

TEST(CardinalitySketch, ClearResets) {
  CardinalitySketch sketch(10);
  for (std::size_t i = 0; i < 1000; ++i) sketch.add(item(i));
  sketch.clear();
  EXPECT_EQ(sketch.estimate(), 0u);
}

}  // namespace
}  // namespace passflow::util
