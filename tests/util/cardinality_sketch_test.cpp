#include "util/cardinality_sketch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

namespace passflow::util {
namespace {

std::string item(std::size_t i) { return "item-" + std::to_string(i); }

TEST(CardinalitySketch, EmptyEstimatesZero) {
  CardinalitySketch sketch;
  EXPECT_EQ(sketch.estimate(), 0u);
}

TEST(CardinalitySketch, PrecisionBoundsEnforced) {
  EXPECT_THROW(CardinalitySketch(3), std::invalid_argument);
  EXPECT_THROW(CardinalitySketch(19), std::invalid_argument);
  EXPECT_EQ(CardinalitySketch(4).register_count(), 16u);
  EXPECT_EQ(CardinalitySketch(14).register_count(), 16384u);
}

TEST(CardinalitySketch, SmallCardinalitiesNearExact) {
  // Linear counting regime: estimates should be essentially exact.
  CardinalitySketch sketch(14);
  for (std::size_t i = 0; i < 500; ++i) sketch.add(item(i));
  EXPECT_NEAR(static_cast<double>(sketch.estimate()), 500.0, 5.0);
}

TEST(CardinalitySketch, DuplicatesDoNotInflate) {
  CardinalitySketch sketch(14);
  for (std::size_t round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < 1000; ++i) sketch.add(item(i));
  }
  EXPECT_NEAR(static_cast<double>(sketch.estimate()), 1000.0, 15.0);
}

TEST(CardinalitySketch, MillionDistinctWithinTwoPercent) {
  // p=14 has ~0.8% standard error; the acceptance bound is 2%.
  CardinalitySketch sketch(14);
  constexpr std::size_t kDistinct = 1000000;
  for (std::size_t i = 0; i < kDistinct; ++i) sketch.add(item(i));
  const double estimate = static_cast<double>(sketch.estimate());
  EXPECT_NEAR(estimate, static_cast<double>(kDistinct),
              0.02 * static_cast<double>(kDistinct));
}

TEST(CardinalitySketch, MergeEqualsUnion) {
  CardinalitySketch a(12);
  CardinalitySketch b(12);
  CardinalitySketch whole(12);
  for (std::size_t i = 0; i < 30000; ++i) {
    // Overlapping halves: [0, 20000) and [10000, 30000).
    if (i < 20000) a.add(item(i));
    if (i >= 10000) b.add(item(i));
    whole.add(item(i));
  }
  a.merge(b);
  EXPECT_EQ(a.estimate(), whole.estimate());
}

TEST(CardinalitySketch, MergePrecisionMismatchThrows) {
  CardinalitySketch a(12);
  CardinalitySketch b(14);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(CardinalitySketch, SaveLoadRoundTrips) {
  CardinalitySketch sketch(12);
  for (std::size_t i = 0; i < 5000; ++i) sketch.add(item(i));
  std::stringstream stream;
  sketch.save(stream);

  CardinalitySketch restored(12);
  restored.load(stream);
  EXPECT_EQ(restored.estimate(), sketch.estimate());

  // More adds continue from the restored registers.
  for (std::size_t i = 5000; i < 6000; ++i) {
    sketch.add(item(i));
    restored.add(item(i));
  }
  EXPECT_EQ(restored.estimate(), sketch.estimate());
}

TEST(CardinalitySketch, LoadPrecisionMismatchThrows) {
  CardinalitySketch sketch(12);
  std::stringstream stream;
  sketch.save(stream);
  CardinalitySketch other(14);
  EXPECT_THROW(other.load(stream), std::runtime_error);
}

TEST(CardinalitySketch, ClearResets) {
  CardinalitySketch sketch(10);
  for (std::size_t i = 0; i < 1000; ++i) sketch.add(item(i));
  sketch.clear();
  EXPECT_EQ(sketch.estimate(), 0u);
}

}  // namespace
}  // namespace passflow::util
