#include "guessing/interpolation.hpp"

#include <gtest/gtest.h>

#include "data/alphabet.hpp"
#include "test_support.hpp"

namespace passflow::guessing {
namespace {

class InterpolationTest : public ::testing::Test {
 protected:
  InterpolationTest()
      : encoder_(passflow::testing::tiny_trained_flow().encoder),
        model_(passflow::testing::tiny_trained_flow().model) {}

  const data::Encoder& encoder_;
  const flow::FlowModel& model_;
};

TEST_F(InterpolationTest, ReturnsStepsPlusOneSamples) {
  const auto path = interpolate(model_, encoder_, "jimmy1", "123456", 8);
  EXPECT_EQ(path.size(), 9u);
}

TEST_F(InterpolationTest, EndpointsRoundTripToInputs) {
  const auto path = interpolate(model_, encoder_, "jimmy1", "123456", 10);
  EXPECT_EQ(path.front(), "jimmy1");
  EXPECT_EQ(path.back(), "123456");
}

TEST_F(InterpolationTest, IdenticalEndpointsGiveConstantPath) {
  const auto path = interpolate(model_, encoder_, "same12", "same12", 5);
  for (const auto& p : path) EXPECT_EQ(p, "same12");
}

TEST_F(InterpolationTest, ZeroStepsThrows) {
  EXPECT_THROW(interpolate(model_, encoder_, "a1", "b2", 0),
               std::invalid_argument);
}

TEST_F(InterpolationTest, LatentOfIsInverseOfInverse) {
  const auto z = latent_of(model_, encoder_, "abc123");
  nn::Matrix zm(1, 6);
  std::copy(z.begin(), z.end(), zm.row(0));
  const auto decoded = encoder_.decode_batch(model_.inverse(zm));
  EXPECT_EQ(decoded[0], "abc123");
}

TEST_F(InterpolationTest, PathDecodesToValidStrings) {
  const auto path = interpolate(model_, encoder_, "qwerty", "dragon", 20);
  for (const auto& p : path) {
    EXPECT_LE(p.size(), 6u);
    EXPECT_TRUE(encoder_.alphabet().validates(p)) << p;
  }
}

class InterpolationStepsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InterpolationStepsTest, AnyStepCountProducesFullPath) {
  util::Rng rng(1);
  data::Encoder encoder(data::Alphabet::compact(), 6);
  flow::FlowModel model(passflow::testing::tiny_flow_config(), rng);
  const auto path =
      interpolate(model, encoder, "star99", "love11", GetParam());
  EXPECT_EQ(path.size(), GetParam() + 1);
}

INSTANTIATE_TEST_SUITE_P(Steps, InterpolationStepsTest,
                         ::testing::Values(1, 2, 5, 10, 32));

}  // namespace
}  // namespace passflow::guessing
