// Fault-injection harness for fleet freeze/thaw: a child process drives a
// fleet with periodic CheckpointStore autosaves and is SIGKILLed mid-run —
// no destructors, no flushes, exactly like a crash or OOM kill. The parent
// then thaws the newest intact generation in a fresh process-like state
// and finishes the run. The per-scenario metrics must be bitwise equal to
// a never-interrupted run: the checkpoint cursor resumes the deterministic
// guess stream exactly where the save cut it, so losing the slices after
// the last autosave costs progress but never correctness.
//
// The children stay strictly single-threaded (no pool, pipeline_depth 0,
// step()-driven) so fork() is used in its only safe shape: no other
// threads exist at fork time.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "guessing/scheduler.hpp"
#include "reference_harness.hpp"
#include "util/checkpoint.hpp"

namespace passflow::guessing {
namespace {

using testing::MixingGenerator;

#if defined(__unix__) || defined(__APPLE__)

struct FleetSpec {
  std::vector<std::size_t> periods;
  std::vector<std::size_t> budgets;
  UniqueTracking tracking = UniqueTracking::kExact;
  std::size_t chunk_size = 500;
  std::size_t slice_chunks = 1;
};

std::vector<std::string> mixing_targets(std::size_t period = 1 << 14) {
  std::vector<std::string> targets;
  for (std::size_t v = 0; v < period; v += 7) {
    targets.push_back("g" + std::to_string(v));
  }
  return targets;
}

SessionConfig session_config(const FleetSpec& spec, std::size_t i) {
  SessionConfig config;
  config.budget = spec.budgets[i];
  config.chunk_size = spec.chunk_size;
  config.checkpoints = {spec.budgets[i]};
  config.unique_tracking = spec.tracking;
  return config;
}

struct Fleet {
  std::vector<std::unique_ptr<MixingGenerator>> generators;
  std::unique_ptr<HashSetMatcher> matcher;
  std::unique_ptr<AttackScheduler> scheduler;
  std::vector<std::size_t> ids;
};

// `register_scenarios` false builds the thaw side: live generators and a
// matcher, but a fresh never-driven scheduler for load_state to populate.
Fleet build_fleet(const FleetSpec& spec, bool register_scenarios = true) {
  Fleet fleet;
  fleet.matcher = std::make_unique<HashSetMatcher>(mixing_targets());
  SchedulerConfig config;
  config.slice_chunks = spec.slice_chunks;
  fleet.scheduler = std::make_unique<AttackScheduler>(config);
  for (std::size_t i = 0; i < spec.periods.size(); ++i) {
    fleet.generators.push_back(
        std::make_unique<MixingGenerator>(spec.periods[i]));
    if (!register_scenarios) {
      fleet.ids.push_back(i);  // registration order == id for this harness
      continue;
    }
    ScenarioOptions options;
    options.name = "crash-" + std::to_string(i);
    options.session = session_config(spec, i);
    fleet.ids.push_back(fleet.scheduler->add_scenario(
        *fleet.generators.back(), *fleet.matcher, options));
  }
  return fleet;
}

AttackScheduler::ScenarioResolver resolver_for(Fleet& fleet) {
  return [&fleet](const AttackScheduler::ScenarioThawInfo& info)
             -> AttackScheduler::ScenarioBinding {
    return {*fleet.generators.at(info.index), *fleet.matcher};
  };
}

// Runs the fleet uninterrupted to completion and returns per-id results.
std::vector<RunResult> uninterrupted_run(const FleetSpec& spec) {
  Fleet fleet = build_fleet(spec);
  while (fleet.scheduler->step()) {
  }
  std::vector<RunResult> results;
  for (const std::size_t id : fleet.ids) {
    results.push_back(fleet.scheduler->result(id));
  }
  return results;
}

// Child body: drive with autosaves, then die by SIGKILL mid-run. Never
// returns. Exit codes mark logic errors (fleet finished before the kill
// point, or the kill did not take).
[[noreturn]] void crash_child(const FleetSpec& spec,
                              const std::string& base_path,
                              int kill_after_slices, int save_every) {
  util::CheckpointStore store(base_path);
  Fleet fleet = build_fleet(spec);
  int slices = 0;
  while (fleet.scheduler->step()) {
    ++slices;
    if (slices % save_every == 0) {
      store.save([&](std::ostream& out) {
        fleet.scheduler->save_state(out);
      });
    }
    if (slices >= kill_after_slices) {
      ::kill(::getpid(), SIGKILL);
      ::_exit(43);  // unreachable if the kill took
    }
  }
  ::_exit(42);  // fleet finished before the kill point: spec too small
}

void expect_killed_by_sigkill(pid_t pid) {
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited instead of dying by signal (status " << status << ")";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

void run_crash_and_thaw(const FleetSpec& spec, const std::string& tag,
                        bool corrupt_newest) {
  const std::string base = ::testing::TempDir() + "pf_crash_" + tag + ".ckpt";
  {
    util::CheckpointStore cleanup(base);
    cleanup.clear();
  }

  const std::vector<RunResult> expected = uninterrupted_run(spec);

  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // 31 slices with saves every 7: generations at 7/14/21/28, killed
    // mid-flight with unsaved progress beyond the last save.
    crash_child(spec, base, 31, 7);
  }
  expect_killed_by_sigkill(pid);

  util::CheckpointStore store(base);
  ASSERT_FALSE(store.generation_paths().empty())
      << "child died before publishing any checkpoint";
  if (corrupt_newest) {
    // The crash tore the newest generation too: damage it and require the
    // loader to fall back to the previous intact one.
    const std::string newest = store.generation_paths().front();
    std::fstream file(newest,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekp(20);
    file.put('\xFF');
    ASSERT_TRUE(file.good());
  }

  Fleet thawed = build_fleet(spec, /*register_scenarios=*/false);
  ASSERT_TRUE(store.load([&](std::istream& in) {
    thawed.scheduler->load_state(in, resolver_for(thawed));
  }));
  while (thawed.scheduler->step()) {
  }
  for (std::size_t i = 0; i < thawed.ids.size(); ++i) {
    PF_EXPECT_SAME_RUN(expected[i], thawed.scheduler->result(thawed.ids[i]));
  }
  store.clear();
}

TEST(CrashRecovery, SigkilledFleetThawsBitwiseEqualExactTracking) {
  FleetSpec spec;
  spec.periods = {1 << 14, 1 << 12};
  spec.budgets = {20000, 18000};
  spec.tracking = UniqueTracking::kExact;
  run_crash_and_thaw(spec, "exact", /*corrupt_newest=*/false);
}

TEST(CrashRecovery, SigkilledFleetThawsBitwiseEqualSketchTracking) {
  FleetSpec spec;
  spec.periods = {1 << 13, 1 << 12};
  spec.budgets = {20000, 18000};
  spec.tracking = UniqueTracking::kSketch;
  run_crash_and_thaw(spec, "sketch", /*corrupt_newest=*/false);
}

TEST(CrashRecovery, TornNewestGenerationFallsBackToPreviousAndStillMatches) {
  FleetSpec spec;
  spec.periods = {1 << 14, 1 << 12};
  spec.budgets = {20000, 18000};
  spec.tracking = UniqueTracking::kExact;
  run_crash_and_thaw(spec, "torn", /*corrupt_newest=*/true);
}

#else  // !unix

TEST(CrashRecovery, RequiresPosix) {
  GTEST_SKIP() << "fork/SIGKILL fault injection requires POSIX";
}

#endif

}  // namespace
}  // namespace passflow::guessing
