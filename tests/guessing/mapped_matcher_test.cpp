#include "guessing/mapped_matcher.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "guessing/scheduler.hpp"
#include "guessing/session.hpp"
#include "util/hash.hpp"

#if defined(__linux__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace passflow::guessing {
namespace {

std::string temp_index_path(const std::string& tag) {
  return ::testing::TempDir() + "mapped_matcher_" + tag + ".pfidx";
}

std::string fixture_path(const std::string& name) {
  return std::string(PASSFLOW_TEST_FIXTURE_DIR) + "/index/" + name;
}

std::vector<std::string> make_keys(std::size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back("pw" + std::to_string(util::mix64(i) % (count * 4)));
  }
  return keys;
}

void expect_throws_containing(const std::function<void()>& fn,
                              const std::string& needle) {
  try {
    fn();
    FAIL() << "expected an exception mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(MappedMatcher, RoundTripAgreesWithHashSet) {
  const auto keys = make_keys(5000);
  const std::string path = temp_index_path("roundtrip");
  IndexBuilderConfig config;
  config.num_shards = 5;
  const auto stats = IndexBuilder::build(keys, path, config);

  const HashSetMatcher reference(keys);
  const MappedMatcher mapped(path);
  EXPECT_EQ(mapped.test_set_size(), reference.test_set_size());
  EXPECT_EQ(stats.keys_distinct, reference.test_set_size());
  EXPECT_EQ(stats.keys_seen, keys.size());
  EXPECT_EQ(mapped.shard_count(), 5u);
  EXPECT_EQ(mapped.name(), "mapped(5)");

  for (std::size_t i = 0; i < 4000; ++i) {
    const std::string probe = "pw" + std::to_string(i * 7);
    EXPECT_EQ(mapped.contains(probe), reference.contains(probe)) << probe;
  }
  for (const auto& key : keys) EXPECT_TRUE(mapped.contains(key));
  std::remove(path.c_str());
}

TEST(MappedMatcher, BuildIsByteDeterministic) {
  const auto keys = make_keys(2000);
  const std::string path_a = temp_index_path("det_a");
  const std::string path_b = temp_index_path("det_b");
  IndexBuilder::build(keys, path_a);
  IndexBuilder::build(keys, path_b);
  std::ifstream a(path_a, std::ios::binary);
  std::ifstream b(path_b, std::ios::binary);
  std::stringstream bytes_a, bytes_b;
  bytes_a << a.rdbuf();
  bytes_b << b.rdbuf();
  EXPECT_EQ(bytes_a.str(), bytes_b.str());
  EXPECT_GT(bytes_a.str().size(), kIndexHeaderBytes);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(MappedMatcher, WordlistBuilderStripsCarriageReturns) {
  std::istringstream words("alpha\r\nbeta\ngamma\nbeta\n");
  const std::string path = temp_index_path("wordlist");
  const auto stats = IndexBuilder::build_wordlist(words, path);
  EXPECT_EQ(stats.keys_seen, 4u);
  EXPECT_EQ(stats.keys_distinct, 3u);
  const MappedMatcher mapped(path);
  EXPECT_TRUE(mapped.contains("alpha"));
  EXPECT_TRUE(mapped.contains("beta"));
  EXPECT_TRUE(mapped.contains("gamma"));
  EXPECT_FALSE(mapped.contains("alpha\r"));
  std::remove(path.c_str());
}

TEST(MappedMatcher, AbandonedBuildLeavesNoSpillFiles) {
  const std::string path = temp_index_path("abandoned");
  {
    IndexBuilder builder;  // default: 16 shards
    builder.begin(path);
    builder.add("alpha");
    builder.add("beta");
    // Destroyed without finish() — e.g. the caller's wordlist stream threw.
  }
  for (int s = 0; s < 16; ++s) {
    std::ifstream spill(path + ".shard" + std::to_string(s) + ".spill");
    EXPECT_FALSE(spill.good()) << "leaked spill for shard " << s;
  }
  std::ifstream partial(path);
  EXPECT_FALSE(partial.good()) << "leaked partial index";
}

TEST(MappedMatcher, BuilderRejectsZeroShards) {
  IndexBuilderConfig config;
  config.num_shards = 0;
  EXPECT_THROW(IndexBuilder builder(config), std::invalid_argument);
}

TEST(MappedMatcher, RejectsMissingFile) {
  expect_throws_containing(
      [] { MappedMatcher matcher(temp_index_path("does_not_exist")); },
      "cannot open");
}

// The corrupt fixtures are golden files checked into tests/fixtures/index/
// (each derived from a valid 3-shard index over pw0..pw99; see the README
// there). Every load failure must name the problem so an operator can tell
// a wrong file from a damaged one.
TEST(MappedMatcher, RejectsBadMagic) {
  expect_throws_containing(
      [] { MappedMatcher matcher(fixture_path("bad_magic.pfidx")); },
      "bad magic");
}

TEST(MappedMatcher, RejectsWrongFormatVersion) {
  expect_throws_containing(
      [] { MappedMatcher matcher(fixture_path("wrong_version.pfidx")); },
      "format version");
}

TEST(MappedMatcher, RejectsHashSeedMismatch) {
  expect_throws_containing(
      [] { MappedMatcher matcher(fixture_path("seed_mismatch.pfidx")); },
      "hash seed");
}

TEST(MappedMatcher, RejectsTruncatedFile) {
  expect_throws_containing(
      [] { MappedMatcher matcher(fixture_path("truncated.pfidx")); },
      "truncated");
}

TEST(MappedMatcher, RejectsHeaderShorterThanMinimum) {
  const std::string path = temp_index_path("stub");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "PFMIDX1\n";  // magic only, nothing else
  }
  expect_throws_containing([&] { MappedMatcher matcher(path); }, "truncated");
  std::remove(path.c_str());
}

// A shard-range view is the unit the distributed coordinator hands to a
// worker: split_shard_ranges over shard_count() must partition the
// matcher — sizes sum to the whole, every indexed key answers true in
// exactly one range — or distributed match counts would double-count or
// drop keys when the coordinator merges per-range results.
TEST(MappedMatcher, ShardRangeViewsPartitionTheMatcher) {
  const auto keys = make_keys(3000);
  const std::string path = temp_index_path("ranges");
  IndexBuilderConfig config;
  config.num_shards = 7;
  IndexBuilder::build(keys, path, config);
  const MappedMatcher whole(path);
  ASSERT_EQ(whole.shard_count(), 7u);

  for (std::size_t parts = 1; parts <= 4; ++parts) {
    const auto ranges = split_shard_ranges(whole.shard_count(), parts);
    std::vector<MappedMatcher> views;
    views.reserve(ranges.size());
    std::size_t summed = 0;
    for (const auto& range : ranges) {
      views.emplace_back(path, range.begin, range.end);
      summed += views.back().test_set_size();
    }
    EXPECT_EQ(summed, whole.test_set_size()) << parts << " parts";
    for (const auto& key : keys) {
      std::size_t owners = 0;
      for (auto& view : views) {
        if (view.contains(key)) ++owners;
      }
      EXPECT_EQ(owners, 1u) << key << " across " << parts << " parts";
    }
    // Misses stay misses in every view.
    for (auto& view : views) EXPECT_FALSE(view.contains("never-indexed"));
  }

  const MappedMatcher middle(path, 2, 5);
  EXPECT_EQ(middle.shard_begin(), 2u);
  EXPECT_EQ(middle.shard_end(), 5u);
  EXPECT_EQ(middle.name(), "mapped(7)[2,5)");
  EXPECT_EQ(whole.name(), "mapped(7)");

  EXPECT_THROW(MappedMatcher(path, 3, 3), std::invalid_argument);
  EXPECT_THROW(MappedMatcher(path, 5, 2), std::invalid_argument);
  EXPECT_THROW(MappedMatcher(path, 0, 8), std::invalid_argument);
  std::remove(path.c_str());
}

// Deterministic feedback-free guess stream (same shape as the bench
// generators): guess i is "pw<mix64(i) % period>", so the stream revisits
// values and hits the test set throughout the run.
class HashStreamGenerator : public GuessGenerator {
 public:
  explicit HashStreamGenerator(std::size_t period) : period_(period) {}
  void generate(std::size_t n, std::vector<std::string>& out) override {
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back("pw" + std::to_string(util::mix64(cursor_++) % period_));
    }
  }
  std::string name() const override { return "hash-stream"; }

 private:
  std::size_t period_;
  std::size_t cursor_ = 0;
};

// The acceptance bar for the disk-backed matcher: swapping it in changes
// no metric. Everything an AttackSession reports — every checkpoint field
// including the matched percentage, the match order, the non-matched
// samples — must be bitwise identical to a run over HashSetMatcher on the
// same key set.
TEST(MappedMatcher, SessionMetricsBitwiseIdenticalToHashSet) {
  const auto keys = make_keys(3000);
  const std::string path = temp_index_path("session");
  IndexBuilderConfig config;
  config.num_shards = 4;
  IndexBuilder::build(keys, path, config);
  const HashSetMatcher hashset(keys);
  const MappedMatcher mapped(path);

  HashStreamGenerator generator_a(12000);
  HashStreamGenerator generator_b(12000);
  SessionConfig session_config;
  session_config.budget = 60000;
  session_config.chunk_size = 4096;
  AttackSession session_a(generator_a, hashset, session_config);
  AttackSession session_b(generator_b, mapped, session_config);
  session_a.run();
  session_b.run();

  const SessionStats& stats_a = session_a.stats();
  const SessionStats& stats_b = session_b.stats();
  EXPECT_EQ(stats_a.produced, stats_b.produced);
  EXPECT_EQ(stats_a.matched, stats_b.matched);
  EXPECT_EQ(stats_a.unique, stats_b.unique);
  EXPECT_EQ(stats_a.checkpoints_emitted, stats_b.checkpoints_emitted);
  EXPECT_EQ(stats_a.finished, stats_b.finished);
  EXPECT_GT(stats_b.matched, 0u);

  const RunResult result_a = session_a.result();
  const RunResult result_b = session_b.result();
  ASSERT_EQ(result_a.checkpoints.size(), result_b.checkpoints.size());
  for (std::size_t i = 0; i < result_a.checkpoints.size(); ++i) {
    EXPECT_EQ(result_a.checkpoints[i].guesses, result_b.checkpoints[i].guesses);
    EXPECT_EQ(result_a.checkpoints[i].unique, result_b.checkpoints[i].unique);
    EXPECT_EQ(result_a.checkpoints[i].matched, result_b.checkpoints[i].matched);
    // Bitwise: the denominators (test_set_size) agree, so the doubles do.
    EXPECT_EQ(result_a.checkpoints[i].matched_percent,
              result_b.checkpoints[i].matched_percent);
  }
  EXPECT_EQ(result_a.matched_passwords, result_b.matched_passwords);
  EXPECT_EQ(result_a.sample_non_matched, result_b.sample_non_matched);
  std::remove(path.c_str());
}

#if defined(__linux__)
std::size_t resident_bytes() {
  std::ifstream statm("/proc/self/statm");
  std::size_t total_pages = 0;
  std::size_t resident_pages = 0;
  statm >> total_pages >> resident_pages;
  return resident_pages * static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

// Flushes and evicts `path` from the page cache, making the next probes
// genuinely cold. Without this the just-written index sits in the cache as
// large folios, and a fault maps a whole 2 MiB folio into the RSS —
// measuring folio granularity, not the matcher's working set.
void evict_from_page_cache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  ::fsync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}
#endif

// The point of the mmap design: probing pages in only the slots and key
// bytes it touches. Build an index several times larger than what the
// probes will visit, then check the process's resident set grew by a small
// fraction of the file — i.e. the index was paged, not loaded. (The
// builder itself is bounded too: its peak in-memory shard is a fraction of
// the final file.)
TEST(MappedMatcher, ProbingLargeIndexKeepsRssBounded) {
#if !defined(__linux__)
  GTEST_SKIP() << "resident-set measurement needs /proc/self/statm";
#else
  const std::string path = temp_index_path("large");
  const std::size_t key_count = 400000;
  const std::string padding(24, 'x');
  IndexBuilderConfig config;
  config.num_shards = 8;
  IndexBuilder builder(config);
  builder.begin(path);
  std::string key;
  for (std::size_t i = 0; i < key_count; ++i) {
    key = "key-" + std::to_string(i) + "-" + padding;
    builder.add(key);
  }
  const auto stats = builder.finish();
  ASSERT_EQ(stats.keys_distinct, key_count);
  ASSERT_GT(stats.file_bytes, 25u * 1024 * 1024);
  // Bounded build memory: one shard at a time, never the whole index.
  EXPECT_LT(stats.peak_shard_bytes, stats.file_bytes / 4);

  evict_from_page_cache(path);
  const std::size_t rss_before = resident_bytes();
  const MappedMatcher mapped(path);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    // A thin, even sample of the key space: 100 hits + 100 misses fault in
    // a few hundred cold pages (MADV_RANDOM, no readahead) of a ~10k-page
    // file.
    const std::string hit =
        "key-" + std::to_string(i * (key_count / 100)) + "-" + padding;
    const std::string miss = "miss-" + std::to_string(i);
    if (mapped.contains(hit)) ++hits;
    EXPECT_FALSE(mapped.contains(miss));
  }
  const std::size_t rss_after = resident_bytes();
  EXPECT_EQ(hits, 100u);

  const std::size_t growth =
      rss_after > rss_before ? rss_after - rss_before : 0;
  EXPECT_LT(growth, mapped.file_bytes() / 3)
      << "probing resident growth " << growth << " of "
      << mapped.file_bytes() << "-byte index — index loaded, not paged?";
  std::remove(path.c_str());
#endif
}

}  // namespace
}  // namespace passflow::guessing
