// Determinism of the parallel guessing path: pooled samplers, pooled
// matching, and pipelined generation must reproduce the single-threaded
// run's metrics exactly (same checkpoints, same matched passwords, in the
// same order). Runs under the `thread_safety` CTest label.
#include "guessing/harness.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "guessing/dynamic_sampler.hpp"
#include "guessing/static_sampler.hpp"
#include "test_support.hpp"
#include "util/thread_pool.hpp"

namespace passflow::guessing {
namespace {

using passflow::testing::tiny_trained_flow;

// A target set the samplers can actually hit: every 5th guess of a warmup
// run over the same model, deduplicated by Matcher.
std::vector<std::string> reachable_targets() {
  const auto& env = tiny_trained_flow();
  StaticSamplerConfig config;
  config.seed = 404;
  StaticSampler sampler(env.model, env.encoder, config);
  std::vector<std::string> warmup;
  sampler.generate(5000, warmup);
  std::vector<std::string> targets;
  for (std::size_t i = 0; i < warmup.size(); i += 5) {
    targets.push_back(warmup[i]);
  }
  return targets;
}

void expect_same_run(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
    EXPECT_EQ(a.checkpoints[i].guesses, b.checkpoints[i].guesses);
    EXPECT_EQ(a.checkpoints[i].unique, b.checkpoints[i].unique);
    EXPECT_EQ(a.checkpoints[i].matched, b.checkpoints[i].matched);
    EXPECT_DOUBLE_EQ(a.checkpoints[i].matched_percent,
                     b.checkpoints[i].matched_percent);
  }
  EXPECT_EQ(a.matched_passwords, b.matched_passwords);
  EXPECT_EQ(a.sample_non_matched, b.sample_non_matched);
}

TEST(ParallelHarness, PooledStaticSamplerOutputIsIdentical) {
  const auto& env = tiny_trained_flow();
  util::ThreadPool pool(4);

  StaticSamplerConfig serial_config;
  serial_config.seed = 21;
  StaticSampler serial(env.model, env.encoder, serial_config);

  StaticSamplerConfig pooled_config;
  pooled_config.seed = 21;
  pooled_config.pool = &pool;
  StaticSampler pooled(env.model, env.encoder, pooled_config);

  std::vector<std::string> serial_out;
  std::vector<std::string> pooled_out;
  serial.generate(4096, serial_out);
  pooled.generate(4096, pooled_out);
  EXPECT_EQ(serial_out, pooled_out);
}

TEST(ParallelHarness, PooledDynamicSamplerOutputIsIdentical) {
  const auto& env = tiny_trained_flow();
  util::ThreadPool pool(4);

  auto make_run = [&](util::ThreadPool* sampler_pool) {
    DynamicSamplerConfig config;
    config.seed = 33;
    config.alpha = 0;
    config.batch_size = 512;
    config.pool = sampler_pool;
    DynamicSampler sampler(env.model, env.encoder, config);
    std::vector<std::string> out;
    sampler.generate(1024, out);
    // Feed matches so the mixture path (Eq. 14) is exercised too.
    sampler.on_match(3, out[3]);
    sampler.on_match(700, out[700]);
    sampler.generate(2048, out);
    return out;
  };

  EXPECT_EQ(make_run(nullptr), make_run(&pool));
}

TEST(ParallelHarness, StaticRunMatchesSerialBitwise) {
  const auto& env = tiny_trained_flow();
  const HashSetMatcher matcher(reachable_targets());
  util::ThreadPool pool(4);

  auto run = [&](bool parallel) {
    StaticSamplerConfig config;
    config.seed = 55;
    config.batch_size = 1024;
    if (parallel) config.pool = &pool;
    StaticSampler sampler(env.model, env.encoder, config);
    HarnessConfig harness;
    harness.budget = 20000;
    harness.chunk_size = 2048;
    if (parallel) {
      harness.pool = &pool;
      harness.overlap_generation = true;
    }
    return run_guessing(sampler, matcher, harness);
  };

  const RunResult serial = run(false);
  const RunResult parallel = run(true);
  // The run must actually find matches, or the comparison is vacuous.
  ASSERT_GT(serial.final().matched, 0u);
  expect_same_run(serial, parallel);
}

TEST(ParallelHarness, DynamicRunMatchesSerialBitwise) {
  // DynamicSampler consumes match feedback, so the harness must refuse to
  // pipeline generation even when asked — and with the pool only speeding
  // up inverse/decode/matching, the metrics must not change.
  const auto& env = tiny_trained_flow();
  const HashSetMatcher matcher(reachable_targets());
  util::ThreadPool pool(4);

  auto run = [&](bool parallel) {
    DynamicSamplerConfig config = table1_parameters(20000);
    config.seed = 66;
    config.batch_size = 1024;
    if (parallel) config.pool = &pool;
    DynamicSampler sampler(env.model, env.encoder, config);
    HarnessConfig harness;
    harness.budget = 20000;
    harness.chunk_size = 2048;
    if (parallel) {
      harness.pool = &pool;
      harness.overlap_generation = true;  // ignored: feedback generator
    }
    return run_guessing(sampler, matcher, harness);
  };

  const RunResult serial = run(false);
  const RunResult parallel = run(true);
  ASSERT_GT(serial.final().matched, 0u);
  expect_same_run(serial, parallel);
}

// Stateless generator with a deterministic stream, used to pin the overlap
// machinery itself (chunk schedule, pipelined call order) independently of
// the flow.
class CountingGenerator : public GuessGenerator {
 public:
  void generate(std::size_t n, std::vector<std::string>& out) override {
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back("g" + std::to_string(cursor_++));
    }
  }
  std::string name() const override { return "counting"; }

 private:
  std::size_t cursor_ = 0;
};

TEST(ParallelHarness, OverlappedScheduleCoversExactBudget) {
  HashSetMatcher matcher({"g7", "g1000", "g54000", "nope"});
  util::ThreadPool pool(2);

  auto run = [&](bool overlap) {
    CountingGenerator generator;
    HarnessConfig harness;
    harness.budget = 54321;
    harness.chunk_size = 1000;
    harness.pool = overlap ? &pool : nullptr;
    harness.overlap_generation = overlap;
    return run_guessing(generator, matcher, harness);
  };

  const RunResult serial = run(false);
  const RunResult parallel = run(true);
  EXPECT_EQ(parallel.final().guesses, 54321u);
  EXPECT_EQ(parallel.final().matched, 3u);
  expect_same_run(serial, parallel);
}

TEST(ParallelHarness, OverlappedCustomCheckpointsStayExact) {
  HashSetMatcher matcher({"g5"});
  util::ThreadPool pool(2);

  auto run = [&](bool overlap) {
    CountingGenerator generator;
    HarnessConfig harness;
    harness.budget = 5000;
    harness.chunk_size = 4096;  // larger than checkpoint spacing
    harness.checkpoints = {10, 100, 2500, 5000};
    harness.pool = overlap ? &pool : nullptr;
    harness.overlap_generation = overlap;
    return run_guessing(generator, matcher, harness);
  };

  const RunResult serial = run(false);
  const RunResult parallel = run(true);
  ASSERT_EQ(parallel.checkpoints.size(), 4u);
  EXPECT_EQ(parallel.checkpoints[0].guesses, 10u);
  EXPECT_EQ(parallel.checkpoints[2].guesses, 2500u);
  expect_same_run(serial, parallel);
}

}  // namespace
}  // namespace passflow::guessing
