// AttackScheduler behavior suite (single-threaded step() driving): fair
// slice allocation, pause/resume, mid-run add/remove, aggregate stats and
// the argument contract. The core invariant throughout: a scenario driven
// by the scheduler — under any interleaving — reports metrics bitwise
// identical to the same session run alone, because its chunk schedule and
// generate() order are its own serial ones. Concurrent run() driving lives
// in scheduler_parallel_test.cpp.
#include "guessing/scheduler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "reference_harness.hpp"

namespace passflow::guessing {
namespace {

using testing::MixingGenerator;
using testing::ReferenceConfig;
using testing::reference_run;

std::vector<std::string> mixing_targets(std::size_t period = 1 << 14) {
  std::vector<std::string> targets;
  for (std::size_t v = 0; v < period; v += 7) {
    targets.push_back("g" + std::to_string(v));
  }
  return targets;
}

SessionConfig chunked_config(std::size_t budget, std::size_t chunk_size) {
  SessionConfig config;
  config.budget = budget;
  config.chunk_size = chunk_size;
  config.checkpoints = {budget};  // one chunk per schedule slot
  return config;
}

RunResult expected_run(const Matcher& matcher, std::size_t period,
                       std::size_t budget, std::size_t chunk_size) {
  MixingGenerator generator(period);
  ReferenceConfig config;
  config.budget = budget;
  config.chunk_size = chunk_size;
  config.checkpoints = {budget};
  return reference_run(generator, matcher, config);
}

TEST(AttackScheduler, DrivesEveryScenarioToItsSoloMetrics) {
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 3;
  AttackScheduler scheduler(fleet);

  // Different periods => genuinely different guess streams per scenario.
  const std::size_t periods[] = {1 << 14, 1 << 13, 1 << 12};
  MixingGenerator generators[] = {MixingGenerator(periods[0]),
                                  MixingGenerator(periods[1]),
                                  MixingGenerator(periods[2])};
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < 3; ++i) {
    ScenarioOptions options;
    options.session = chunked_config(20000 + 1000 * i, 512);
    ids.push_back(scheduler.add_scenario(generators[i], matcher, options));
  }

  std::size_t slices = 0;
  while (scheduler.step()) ++slices;
  EXPECT_TRUE(scheduler.finished());
  EXPECT_GT(slices, 3u);

  for (std::size_t i = 0; i < 3; ++i) {
    const RunResult expected =
        expected_run(matcher, periods[i], 20000 + 1000 * i, 512);
    ASSERT_GT(expected.final().matched, 0u);
    const RunResult actual = scheduler.result(ids[i]);
    PF_EXPECT_SAME_RUN(expected, actual);
    EXPECT_EQ(scheduler.scenario(ids[i]).status, ScenarioStatus::kFinished);
  }
}

TEST(AttackScheduler, WeightedFairnessSplitsSlicesByWeight) {
  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator light, heavy;
  ScenarioOptions light_options;
  light_options.weight = 1.0;
  light_options.session = chunked_config(10000, 100);  // 100 chunks
  ScenarioOptions heavy_options;
  heavy_options.weight = 3.0;
  heavy_options.session = chunked_config(10000, 100);
  const std::size_t light_id =
      scheduler.add_scenario(light, matcher, light_options);
  const std::size_t heavy_id =
      scheduler.add_scenario(heavy, matcher, heavy_options);

  for (int i = 0; i < 40; ++i) ASSERT_TRUE(scheduler.step());

  const std::size_t light_chunks = scheduler.scenario(light_id).chunks_driven;
  const std::size_t heavy_chunks = scheduler.scenario(heavy_id).chunks_driven;
  EXPECT_EQ(light_chunks + heavy_chunks, 40u);
  // Virtual-time fairness: the weight-3 scenario gets ~3x the slices while
  // both are runnable (exact split depends on float accumulation order,
  // which is deterministic but not worth hand-computing).
  EXPECT_GE(heavy_chunks, 27u);
  EXPECT_LE(heavy_chunks, 33u);

  // The allocation is a pure function of the config: a second identical
  // scheduler makes the identical decisions.
  MixingGenerator light2, heavy2;
  AttackScheduler replay(fleet);
  const std::size_t light2_id =
      replay.add_scenario(light2, matcher, light_options);
  const std::size_t heavy2_id =
      replay.add_scenario(heavy2, matcher, heavy_options);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(replay.step());
  EXPECT_EQ(replay.scenario(light2_id).chunks_driven, light_chunks);
  EXPECT_EQ(replay.scenario(heavy2_id).chunks_driven, heavy_chunks);
}

TEST(AttackScheduler, EqualWeightsRoundRobin) {
  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator a, b;
  ScenarioOptions options;
  options.session = chunked_config(5000, 100);
  const std::size_t a_id = scheduler.add_scenario(a, matcher, options);
  const std::size_t b_id = scheduler.add_scenario(b, matcher, options);

  for (int i = 0; i < 10; ++i) ASSERT_TRUE(scheduler.step());
  EXPECT_EQ(scheduler.scenario(a_id).chunks_driven, 5u);
  EXPECT_EQ(scheduler.scenario(b_id).chunks_driven, 5u);
}

TEST(AttackScheduler, PauseStopsSlicesAndResumeRestartsThem) {
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator a, b;
  ScenarioOptions options;
  options.session = chunked_config(8000, 500);
  const std::size_t a_id = scheduler.add_scenario(a, matcher, options);
  const std::size_t b_id = scheduler.add_scenario(b, matcher, options);

  scheduler.pause_scenario(a_id);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(scheduler.step());
  EXPECT_EQ(scheduler.scenario(a_id).chunks_driven, 0u);
  EXPECT_EQ(scheduler.scenario(a_id).status, ScenarioStatus::kPaused);
  EXPECT_EQ(scheduler.scenario(b_id).chunks_driven, 4u);

  scheduler.resume_scenario(a_id);
  while (scheduler.step()) {
  }
  // The pause cost A nothing: its stream is its own, so the full run still
  // matches the solo metrics bitwise.
  const RunResult expected = expected_run(matcher, 1 << 14, 8000, 500);
  PF_EXPECT_SAME_RUN(expected, scheduler.result(a_id));
  PF_EXPECT_SAME_RUN(expected, scheduler.result(b_id));
}

TEST(AttackScheduler, StartPausedScenarioWaitsForResume) {
  HashSetMatcher matcher({"nothing"});
  AttackScheduler scheduler;
  MixingGenerator generator;
  ScenarioOptions options;
  options.start_paused = true;
  options.session = chunked_config(1000, 100);
  const std::size_t id = scheduler.add_scenario(generator, matcher, options);
  EXPECT_FALSE(scheduler.step());  // nothing runnable
  EXPECT_TRUE(scheduler.finished());
  scheduler.resume_scenario(id);
  EXPECT_TRUE(scheduler.step());
}

TEST(AttackScheduler, MidRunAddIsDrivenFromItsOwnStart) {
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 2;
  AttackScheduler scheduler(fleet);

  MixingGenerator first;
  ScenarioOptions options;
  options.session = chunked_config(12000, 500);
  scheduler.add_scenario(first, matcher, options);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(scheduler.step());

  MixingGenerator late(1 << 12);
  ScenarioOptions late_options;
  late_options.session = chunked_config(6000, 500);
  const std::size_t late_id =
      scheduler.add_scenario(late, matcher, late_options);
  while (scheduler.step()) {
  }

  const RunResult expected = expected_run(matcher, 1 << 12, 6000, 500);
  PF_EXPECT_SAME_RUN(expected, scheduler.result(late_id));
}

TEST(AttackScheduler, RemoveReturnsThePartialRunAtAChunkBoundary) {
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator generator;
  ScenarioOptions options;
  options.session = chunked_config(20000, 500);
  const std::size_t id = scheduler.add_scenario(generator, matcher, options);
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(scheduler.step());

  const RunResult partial = scheduler.remove_scenario(id);
  EXPECT_EQ(partial.final().guesses, 7u * 500u);
  EXPECT_EQ(scheduler.scenario_count(), 0u);
  EXPECT_THROW(scheduler.result(id), std::out_of_range);

  // The partial result is exactly a prefix of the solo run.
  MixingGenerator solo_generator;
  AttackSession solo(solo_generator, matcher, chunked_config(20000, 500));
  solo.run_until(7 * 500);
  PF_EXPECT_SAME_RUN(solo.result(), partial);
}

TEST(AttackScheduler, AggregateCountsStatusesAndTotals) {
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator a, b, c;
  ScenarioOptions small;
  small.session = chunked_config(1000, 500);
  ScenarioOptions big;
  big.session = chunked_config(100000, 500);
  ScenarioOptions parked;
  parked.start_paused = true;
  parked.session = chunked_config(1000, 500);

  const std::size_t a_id = scheduler.add_scenario(a, matcher, small);
  scheduler.add_scenario(b, matcher, big);
  scheduler.add_scenario(c, matcher, parked);

  // Drive until the small scenario finishes.
  while (scheduler.scenario(a_id).status != ScenarioStatus::kFinished) {
    ASSERT_TRUE(scheduler.step());
  }

  const SchedulerStats stats = scheduler.aggregate();
  EXPECT_EQ(stats.scenarios, 3u);
  EXPECT_EQ(stats.finished, 1u);
  EXPECT_EQ(stats.paused, 1u);
  EXPECT_EQ(stats.running, 1u);
  EXPECT_GE(stats.produced, 1000u);
  EXPECT_TRUE(stats.unique_union_valid);  // both drive exact trackers
  EXPECT_GT(stats.unique_union, 0u);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(AttackScheduler, UniqueUnionInvalidWhenTrackingIsOff) {
  HashSetMatcher matcher({"nothing"});
  AttackScheduler scheduler;
  MixingGenerator generator;
  ScenarioOptions options;
  options.session = chunked_config(1000, 500);
  options.session.unique_tracking = UniqueTracking::kOff;
  scheduler.add_scenario(generator, matcher, options);
  while (scheduler.step()) {
  }
  EXPECT_FALSE(scheduler.aggregate().unique_union_valid);
}

TEST(AttackScheduler, RejectsBadArguments) {
  HashSetMatcher matcher({"x"});
  MixingGenerator generator;

  SchedulerConfig zero_slice;
  zero_slice.slice_chunks = 0;
  EXPECT_THROW(AttackScheduler{zero_slice}, std::invalid_argument);

  AttackScheduler scheduler;
  ScenarioOptions bad_weight;
  bad_weight.weight = 0.0;
  EXPECT_THROW(scheduler.add_scenario(generator, matcher, bad_weight),
               std::invalid_argument);
  EXPECT_THROW(scheduler.scenario(99), std::out_of_range);
  EXPECT_THROW(scheduler.pause_scenario(99), std::out_of_range);
  EXPECT_THROW(scheduler.remove_scenario(99), std::out_of_range);
}

TEST(AttackScheduler, SliceErrorsSurfaceAndParkTheScenario) {
  class ThrowingGenerator : public GuessGenerator {
   public:
    void generate(std::size_t n, std::vector<std::string>& out) override {
      if (calls_++ == 2) throw std::runtime_error("generator exploded");
      for (std::size_t i = 0; i < n; ++i) out.push_back("g");
    }
    std::string name() const override { return "throwing"; }

   private:
    int calls_ = 0;
  };

  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);
  ThrowingGenerator generator;
  ScenarioOptions options;
  options.session = chunked_config(5000, 500);
  const std::size_t id = scheduler.add_scenario(generator, matcher, options);

  ASSERT_TRUE(scheduler.step());
  ASSERT_TRUE(scheduler.step());
  EXPECT_THROW(scheduler.step(), std::runtime_error);
  EXPECT_EQ(scheduler.scenario(id).status, ScenarioStatus::kFinished);
  EXPECT_FALSE(scheduler.step());  // the broken scenario takes no more slices
}

TEST(AttackScheduler, ResultIsRepeatable) {
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator generator;
  ScenarioOptions options;
  options.session = chunked_config(8000, 500);
  const std::size_t id = scheduler.add_scenario(generator, matcher, options);

  // Mid-run: two result() calls at the same chunk boundary agree.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(scheduler.step());
  PF_EXPECT_SAME_RUN(scheduler.result(id), scheduler.result(id));

  while (scheduler.step()) {
  }
  // Finished: result() is not single-shot; every call returns the full run.
  const RunResult first = scheduler.result(id);
  const RunResult second = scheduler.result(id);
  PF_EXPECT_SAME_RUN(first, second);
  EXPECT_EQ(first.final().guesses, 8000u);
  PF_EXPECT_SAME_RUN(expected_run(matcher, 1 << 14, 8000, 500), second);
}

// A pipeline error that lands after the fleet stops being driven — here a
// producer failing behind a paused scenario — has no driver left to
// rethrow it. aggregate() must surface it (after releasing the quiesce
// gate), not swallow it into a parked exception_ptr forever.
TEST(AttackScheduler, AggregateSurfacesPipelineErrorFromDrainedFleet) {
  // generate #1 succeeds; generate #2 parks until released, then throws —
  // so the first slice is deterministically clean and the error lands only
  // once the test has paused the scenario.
  class LatchedThrowingGenerator : public GuessGenerator {
   public:
    void generate(std::size_t n, std::vector<std::string>& out) override {
      if (calls_++ == 0) {
        for (std::size_t i = 0; i < n; ++i) out.push_back("g");
        return;
      }
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return released_; });
      throw std::runtime_error("producer exploded");
    }
    std::string name() const override { return "latched-throwing"; }
    void release() {
      {
        std::lock_guard<std::mutex> lock(mu_);
        released_ = true;
      }
      cv_.notify_all();
    }

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    bool released_ = false;
    int calls_ = 0;
  };

  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);
  LatchedThrowingGenerator generator;
  ScenarioOptions options;
  options.session = chunked_config(800, 100);
  options.session.pipeline_depth = 2;  // producer runs ahead of the slices
  const std::size_t id = scheduler.add_scenario(generator, matcher, options);

  ASSERT_TRUE(scheduler.step());  // consumes chunk 1; producer blocks on #2
  scheduler.pause_scenario(id);   // fleet drained: no driver will ever run
  EXPECT_FALSE(scheduler.step());
  generator.release();            // the error lands on the producer thread

  // The error is stored asynchronously; poll until an aggregate() trips
  // over it while merging the broken session's sketch state.
  bool surfaced = false;
  for (int i = 0; i < 500 && !surfaced; ++i) {
    try {
      scheduler.aggregate();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    } catch (const std::runtime_error& error) {
      surfaced = true;
      EXPECT_STREQ(error.what(), "producer exploded");
    }
  }
  EXPECT_TRUE(surfaced);

  // The broken scenario is parked as finished, the error was consumed
  // (not resurfaced forever), and the scheduler stays usable.
  EXPECT_EQ(scheduler.scenario(id).status, ScenarioStatus::kFinished);
  EXPECT_TRUE(scheduler.finished());
  const SchedulerStats after = scheduler.aggregate();  // must not throw
  EXPECT_EQ(after.finished, 1u);
  // The torn-down session's tracker still merges: the fold state for every
  // chunk it actually consumed survives the error.
  EXPECT_TRUE(after.unique_union_valid);
}

}  // namespace
}  // namespace passflow::guessing
