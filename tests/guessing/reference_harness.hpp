// Reference implementation of the seed's serial run_guessing loop, kept
// verbatim as the gold standard the AttackSession equivalence suite (and
// the guessing bench's baseline arm) compares against. Any divergence
// between this loop and the session engine is a regression by definition.
#pragma once

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "guessing/generator.hpp"
#include "guessing/matcher.hpp"
#include "guessing/metrics.hpp"
#include "util/hash.hpp"

namespace passflow::guessing::testing {

struct ReferenceConfig {
  std::size_t budget = 100000;
  std::vector<std::size_t> checkpoints;  // empty => powers of ten
  std::size_t chunk_size = 16384;
  std::size_t non_matched_samples = 40;
  bool track_unique = true;
  bool deliver_feedback = true;
};

// The seed serial loop: generate -> match -> feed matches back ->
// checkpoint, one chunk at a time on the calling thread.
inline RunResult reference_run(GuessGenerator& generator,
                               const Matcher& matcher,
                               ReferenceConfig config) {
  if (config.checkpoints.empty()) {
    config.checkpoints = power_of_ten_checkpoints(config.budget);
  }
  std::sort(config.checkpoints.begin(), config.checkpoints.end());

  RunResult result;
  std::unordered_set<std::string> unique_guesses;
  std::unordered_set<std::string> matched_set;
  std::unordered_set<std::string> non_matched_seen;

  std::size_t produced = 0;
  std::size_t checkpoint_index = 0;

  std::vector<std::string> batch;
  while (produced < config.budget) {
    const std::size_t next_stop =
        checkpoint_index < config.checkpoints.size()
            ? config.checkpoints[checkpoint_index]
            : config.budget;
    const std::size_t chunk =
        std::min(config.chunk_size, next_stop - produced);

    batch.clear();
    generator.generate(chunk, batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::string& guess = batch[i];
      if (config.track_unique) unique_guesses.insert(guess);
      if (matcher.contains(guess)) {
        if (matched_set.insert(guess).second) {
          result.matched_passwords.push_back(guess);
          if (config.deliver_feedback) generator.on_match(i, guess);
        }
      } else if (result.sample_non_matched.size() <
                     config.non_matched_samples &&
                 !guess.empty() && non_matched_seen.insert(guess).second) {
        result.sample_non_matched.push_back(guess);
      }
    }
    produced += batch.size();

    while (checkpoint_index < config.checkpoints.size() &&
           produced >= config.checkpoints[checkpoint_index]) {
      Checkpoint cp;
      cp.guesses = config.checkpoints[checkpoint_index];
      cp.unique = unique_guesses.size();
      cp.matched = matched_set.size();
      cp.matched_percent =
          matcher.test_set_size() > 0
              ? 100.0 * static_cast<double>(cp.matched) /
                    static_cast<double>(matcher.test_set_size())
              : 0.0;
      result.checkpoints.push_back(cp);
      ++checkpoint_index;
    }
  }

  if (result.checkpoints.empty() ||
      result.checkpoints.back().guesses != produced) {
    Checkpoint cp;
    cp.guesses = produced;
    cp.unique = unique_guesses.size();
    cp.matched = matched_set.size();
    cp.matched_percent =
        matcher.test_set_size() > 0
            ? 100.0 * static_cast<double>(cp.matched) /
                  static_cast<double>(matcher.test_set_size())
            : 0.0;
    result.checkpoints.push_back(cp);
  }
  return result;
}

// Asserts every metric of two runs is identical (timing excluded).
#define PF_EXPECT_SAME_RUN(a, b)                                          \
  do {                                                                    \
    const ::passflow::guessing::RunResult& run_a = (a);                   \
    const ::passflow::guessing::RunResult& run_b = (b);                   \
    ASSERT_EQ(run_a.checkpoints.size(), run_b.checkpoints.size());        \
    for (std::size_t cp_i = 0; cp_i < run_a.checkpoints.size(); ++cp_i) { \
      EXPECT_EQ(run_a.checkpoints[cp_i].guesses,                          \
                run_b.checkpoints[cp_i].guesses);                         \
      EXPECT_EQ(run_a.checkpoints[cp_i].unique,                           \
                run_b.checkpoints[cp_i].unique);                          \
      EXPECT_EQ(run_a.checkpoints[cp_i].matched,                          \
                run_b.checkpoints[cp_i].matched);                         \
      EXPECT_DOUBLE_EQ(run_a.checkpoints[cp_i].matched_percent,           \
                       run_b.checkpoints[cp_i].matched_percent);          \
    }                                                                     \
    EXPECT_EQ(run_a.matched_passwords, run_b.matched_passwords);          \
    EXPECT_EQ(run_a.sample_non_matched, run_b.sample_non_matched);        \
  } while (0)

// Deterministic feedback-free stream with duplicates and matcher hits:
// guess i is "g<mix(i) % period>", so the stream revisits values and the
// unique count stays below the produced count. Supports save/resume.
class MixingGenerator : public GuessGenerator {
 public:
  explicit MixingGenerator(std::size_t period = 1 << 14)
      : period_(period) {}

  void generate(std::size_t n, std::vector<std::string>& out) override {
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(value_at(cursor_++));
    }
  }
  std::string name() const override { return "mixing"; }

  bool supports_state_serialization() const override { return true; }
  void save_state(std::ostream& out) const override {
    const std::uint64_t cursor = cursor_;
    out.write(reinterpret_cast<const char*>(&cursor), sizeof(cursor));
  }
  void load_state(std::istream& in) override {
    std::uint64_t cursor = 0;
    in.read(reinterpret_cast<char*>(&cursor), sizeof(cursor));
    cursor_ = cursor;
  }

  std::string value_at(std::size_t i) const {
    return "g" + std::to_string(util::mix64(i) % period_);
  }

 private:
  std::size_t period_;
  std::size_t cursor_ = 0;
};

}  // namespace passflow::guessing::testing
