// One behavioral contract, every Matcher implementation.
//
// Each test runs value-parameterized against HashSetMatcher, ShardedMatcher
// at K in {1, 4, 7}, and the disk-backed MappedMatcher (built through
// IndexBuilder into a temp file). Anything added to the Matcher interface
// belongs here first: the attack engine treats all implementations as
// interchangeable, so behavioral drift between them silently corrupts
// metrics.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "guessing/mapped_matcher.hpp"
#include "guessing/matcher.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace passflow::guessing {
namespace {

class MatcherConformance : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<const Matcher> make_matcher(
      const std::vector<std::string>& keys) {
    const std::string& kind = GetParam();
    if (kind == "hashset") return std::make_unique<HashSetMatcher>(keys);
    if (kind == "sharded_k1") return std::make_unique<ShardedMatcher>(keys, 1);
    if (kind == "sharded_k4") return std::make_unique<ShardedMatcher>(keys, 4);
    if (kind == "sharded_k7") return std::make_unique<ShardedMatcher>(keys, 7);
    EXPECT_EQ(kind, "mapped");
    static int counter = 0;
    const std::string path = ::testing::TempDir() + "conformance_" +
                             std::to_string(counter++) + ".pfidx";
    IndexBuilderConfig config;
    config.num_shards = 3;
    IndexBuilder::build(keys, path, config);
    index_paths_.push_back(path);
    return std::make_unique<MappedMatcher>(path);
  }

  void TearDown() override {
    for (const auto& path : index_paths_) std::remove(path.c_str());
  }

 private:
  std::vector<std::string> index_paths_;
};

TEST_P(MatcherConformance, EmptyTestSet) {
  const auto matcher = make_matcher({});
  EXPECT_EQ(matcher->test_set_size(), 0u);
  EXPECT_FALSE(matcher->contains("anything"));
  EXPECT_FALSE(matcher->contains(""));
  std::vector<char> membership;
  matcher->contains_batch({"a", "", "b"}, nullptr, membership);
  EXPECT_EQ(membership, (std::vector<char>{0, 0, 0}));
}

TEST_P(MatcherConformance, EmptyStringIsAValidKey) {
  const auto matcher = make_matcher({"", "alpha"});
  EXPECT_EQ(matcher->test_set_size(), 2u);
  EXPECT_TRUE(matcher->contains(""));
  EXPECT_TRUE(matcher->contains("alpha"));
  EXPECT_FALSE(matcher->contains(" "));
}

TEST_P(MatcherConformance, DuplicateKeysAreDeduplicated) {
  const auto matcher = make_matcher({"x", "x", "y", "y", "y", "x"});
  EXPECT_EQ(matcher->test_set_size(), 2u);
  EXPECT_TRUE(matcher->contains("x"));
  EXPECT_TRUE(matcher->contains("y"));
  EXPECT_FALSE(matcher->contains("z"));
}

TEST_P(MatcherConformance, NonAsciiAndEmbeddedNulBytes) {
  // Real leaked passwords are raw bytes, not text: UTF-8, Latin-1 high
  // bytes, control characters, even NULs must round-trip exactly.
  const std::vector<std::string> keys = {
      std::string("p\xC3\xA4ssw\xC3\xB6rd"),   // UTF-8 umlauts
      std::string("\xFF\xFE\x80\x7F"),          // high / boundary bytes
      std::string("nu\0ll", 5),                 // embedded NUL
      std::string("tab\tnewline\n"),            // control characters
  };
  const auto matcher = make_matcher(keys);
  EXPECT_EQ(matcher->test_set_size(), keys.size());
  for (const auto& key : keys) EXPECT_TRUE(matcher->contains(key));
  EXPECT_FALSE(matcher->contains(std::string("nu\0l", 4)));
  EXPECT_FALSE(matcher->contains("null"));
  EXPECT_FALSE(matcher->contains(std::string("\xFF\xFE\x80")));
  EXPECT_FALSE(matcher->contains("tab\tnewline"));
}

TEST_P(MatcherConformance, ContainsBatchEqualsPerKeyContains) {
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < 600; ++i) {
    keys.push_back("pw" + std::to_string(i * 3));
  }
  const auto matcher = make_matcher(keys);
  // Above kParallelBatchThreshold so the pooled paths engage.
  std::vector<std::string> batch;
  for (std::size_t i = 0; i < 3000; ++i) {
    batch.push_back("pw" + std::to_string(util::mix64(i) % 2400));
  }
  batch.push_back("");

  std::vector<char> serial;
  matcher->contains_batch(batch, nullptr, serial);
  ASSERT_EQ(serial.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(serial[i] != 0, matcher->contains(batch[i])) << batch[i];
  }

  util::ThreadPool pool(4);
  std::vector<char> pooled;
  matcher->contains_batch(batch, &pool, pooled);
  EXPECT_EQ(serial, pooled);
}

TEST_P(MatcherConformance, MissHeavyWorkload) {
  // The realistic regime: almost every guess misses. No false positives,
  // and the few hits still land.
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < 200; ++i) {
    keys.push_back("target" + std::to_string(i));
  }
  const auto matcher = make_matcher(keys);
  std::vector<std::string> batch;
  for (std::size_t i = 0; i < 5000; ++i) {
    batch.push_back("miss" + std::to_string(i));
    if (i % 50 == 0) batch.push_back("target" + std::to_string(i / 50));
  }
  std::vector<char> membership;
  matcher->contains_batch(batch, nullptr, membership);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const bool expected = batch[i].rfind("target", 0) == 0;
    EXPECT_EQ(membership[i] != 0, expected) << batch[i];
    if (membership[i] != 0) ++hits;
  }
  EXPECT_EQ(hits, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMatchers, MatcherConformance,
    ::testing::Values("hashset", "sharded_k1", "sharded_k4", "sharded_k7",
                      "mapped"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace passflow::guessing
