// AttackScheduler QoS suite: soft deadlines (effective-weight escalation),
// per-scenario guess-rate caps (token buckets at pick time), driver
// parking, and the resume/late-join virtual-time rules. Runs under the
// `thread_safety` CTest label so the TSan job covers the run() paths. The
// load-bearing invariant throughout: QoS changes only *when* a scenario is
// driven, never *what* it computes — per-scenario metrics stay bitwise
// equal to solo runs with any mix of deadlines and caps.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "guessing/scheduler.hpp"
#include "reference_harness.hpp"

namespace passflow::guessing {
namespace {

using testing::MixingGenerator;
using testing::ReferenceConfig;
using testing::reference_run;

std::vector<std::string> mixing_targets(std::size_t period = 1 << 14) {
  std::vector<std::string> targets;
  for (std::size_t v = 0; v < period; v += 7) {
    targets.push_back("g" + std::to_string(v));
  }
  return targets;
}

SessionConfig chunked_config(std::size_t budget, std::size_t chunk_size) {
  SessionConfig config;
  config.budget = budget;
  config.chunk_size = chunk_size;
  config.checkpoints = {budget};
  return config;
}

RunResult expected_run(const Matcher& matcher, std::size_t period,
                       std::size_t budget, std::size_t chunk_size) {
  MixingGenerator generator(period);
  ReferenceConfig config;
  config.budget = budget;
  config.chunk_size = chunk_size;
  config.checkpoints = {budget};
  return reference_run(generator, matcher, config);
}

// (a) A scenario past its soft deadline overtakes an equal-weight peer:
// with deadline_boost = 4 its virtual clock advances at 1/4 the rate, so
// it should take ~4 slices for every one the on-time peer gets.
TEST(SchedulerQoS, PastDeadlineScenarioOvertakesEqualWeightPeer) {
  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  fleet.deadline_boost = 4.0;
  AttackScheduler scheduler(fleet);

  MixingGenerator late, on_time;
  ScenarioOptions late_options;
  late_options.session = chunked_config(10000, 100);  // 100 chunks
  late_options.deadline_seconds = 1e-6;  // past before the first slice
  ScenarioOptions peer_options;
  peer_options.session = chunked_config(10000, 100);
  const std::size_t late_id =
      scheduler.add_scenario(late, matcher, late_options);
  const std::size_t peer_id =
      scheduler.add_scenario(on_time, matcher, peer_options);

  for (int i = 0; i < 50; ++i) ASSERT_TRUE(scheduler.step());

  const std::size_t late_chunks = scheduler.scenario(late_id).chunks_driven;
  const std::size_t peer_chunks = scheduler.scenario(peer_id).chunks_driven;
  EXPECT_EQ(late_chunks + peer_chunks, 50u);
  // ~4:1 (the first slice or two may land before the 1us deadline is
  // observed, so the split is asserted as a band, not an exact count).
  EXPECT_GE(late_chunks, 35u);
  EXPECT_LE(late_chunks, 45u);
  EXPECT_TRUE(scheduler.scenario(late_id).past_deadline);
  EXPECT_FALSE(scheduler.scenario(peer_id).past_deadline);
  EXPECT_EQ(scheduler.aggregate().deadline_missed, 1u);
}

// (b) A rate-capped scenario's wall-clock achieved guesses/s converges on
// its cap (within 10%) while an uncapped peer absorbs the slack.
TEST(SchedulerQoS, RateCapHoldsAchievedRateWithinTenPercent) {
  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  fleet.max_concurrent = 2;
  AttackScheduler scheduler(fleet);

  const double cap = 1000.0;  // guesses/s
  MixingGenerator capped, uncapped;
  ScenarioOptions capped_options;
  // 24 chunks of 25 guesses: one chunk per ~25ms of refill, so the token
  // waits dominate and per-slice overhead (even under TSan) is noise.
  capped_options.session = chunked_config(600, 25);
  capped_options.rate_cap = cap;
  ScenarioOptions uncapped_options;
  uncapped_options.session = chunked_config(30000, 1000);
  const std::size_t capped_id =
      scheduler.add_scenario(capped, matcher, capped_options);
  const std::size_t uncapped_id =
      scheduler.add_scenario(uncapped, matcher, uncapped_options);

  scheduler.run();
  EXPECT_TRUE(scheduler.finished());

  const ScenarioSnapshot capped_snap = scheduler.scenario(capped_id);
  const ScenarioSnapshot uncapped_snap = scheduler.scenario(uncapped_id);
  ASSERT_EQ(capped_snap.status, ScenarioStatus::kFinished);
  ASSERT_EQ(uncapped_snap.status, ScenarioStatus::kFinished);
  EXPECT_EQ(capped_snap.rate_cap, cap);
  EXPECT_GE(capped_snap.achieved_guesses_per_second, 0.90 * cap);
  EXPECT_LE(capped_snap.achieved_guesses_per_second, 1.10 * cap);
  // The uncapped peer was never throttled: it ran flat out while the
  // capped scenario's bucket refilled.
  EXPECT_GT(uncapped_snap.achieved_guesses_per_second,
            capped_snap.achieved_guesses_per_second);
}

// (c) Resume-starvation regression: a scenario paused for 10k chunks of
// fleet progress must resume at the fleet's virtual now and take its
// weight-proportional share — not monopolize every slice until its stale
// virtual clock "catches up".
TEST(SchedulerQoS, ResumedScenarioTakesFairShareNotEverything) {
  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator runner, parked;
  ScenarioOptions options;
  options.session = chunked_config(200000, 10);  // 20k chunks each
  const std::size_t runner_id =
      scheduler.add_scenario(runner, matcher, options);
  const std::size_t parked_id =
      scheduler.add_scenario(parked, matcher, options);

  scheduler.pause_scenario(parked_id);
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(scheduler.step());
  ASSERT_EQ(scheduler.scenario(runner_id).chunks_driven, 10000u);
  ASSERT_EQ(scheduler.scenario(parked_id).chunks_driven, 0u);

  scheduler.resume_scenario(parked_id);
  const std::size_t runner_before = scheduler.scenario(runner_id).chunks_driven;
  const std::size_t parked_before = scheduler.scenario(parked_id).chunks_driven;
  for (int i = 0; i < 400; ++i) ASSERT_TRUE(scheduler.step());
  const std::size_t runner_share =
      scheduler.scenario(runner_id).chunks_driven - runner_before;
  const std::size_t parked_share =
      scheduler.scenario(parked_id).chunks_driven - parked_before;
  EXPECT_EQ(runner_share + parked_share, 400u);
  // Equal weights => ~50/50. Before the fix the resumed scenario took all
  // 400 slices (10000 chunks of virtual time to catch up on).
  EXPECT_GE(parked_share, 150u);
  EXPECT_LE(parked_share, 250u);
}

// Companion regression: the late-join virtual-now scan must ignore paused
// scenarios, or a parked scenario's frozen clock drags newcomers into the
// past and they monopolize the fleet exactly like a stale resume.
TEST(SchedulerQoS, LateJoinIgnoresPausedVirtualClocks) {
  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator parked, runner, late;
  ScenarioOptions options;
  options.session = chunked_config(200000, 10);
  const std::size_t parked_id =
      scheduler.add_scenario(parked, matcher, options);
  const std::size_t runner_id =
      scheduler.add_scenario(runner, matcher, options);
  scheduler.pause_scenario(parked_id);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(scheduler.step());

  const std::size_t late_id = scheduler.add_scenario(late, matcher, options);
  const std::size_t runner_before = scheduler.scenario(runner_id).chunks_driven;
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(scheduler.step());
  const std::size_t late_share = scheduler.scenario(late_id).chunks_driven;
  const std::size_t runner_share =
      scheduler.scenario(runner_id).chunks_driven - runner_before;
  EXPECT_EQ(late_share + runner_share, 200u);
  EXPECT_GE(late_share, 60u);
  EXPECT_LE(late_share, 140u);
}

// The bitwise invariant with every QoS knob engaged at once: deadlines and
// caps reorder slices in time but never change what a session computes.
TEST(SchedulerQoS, MetricsStayBitwiseEqualToSoloRunsUnderQoS) {
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 2;
  fleet.deadline_boost = 8.0;
  AttackScheduler scheduler(fleet);

  const std::size_t periods[] = {1 << 14, 1 << 13, 1 << 12};
  MixingGenerator generators[] = {MixingGenerator(periods[0]),
                                  MixingGenerator(periods[1]),
                                  MixingGenerator(periods[2])};
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < 3; ++i) {
    ScenarioOptions options;
    options.session = chunked_config(20000, 500);
    if (i == 0) options.deadline_seconds = 1e-6;  // boosted from slice one
    if (i == 1) {
      options.rate_cap = 500000.0;  // throttled but far from the bottleneck
      options.session.pipeline_depth = 2;  // capped + pipelined together
    }
    ids.push_back(scheduler.add_scenario(generators[i], matcher, options));
  }

  while (scheduler.step()) {
  }
  EXPECT_TRUE(scheduler.finished());

  for (std::size_t i = 0; i < 3; ++i) {
    const RunResult expected =
        expected_run(matcher, periods[i], 20000, 500);
    ASSERT_GT(expected.final().matched, 0u);
    PF_EXPECT_SAME_RUN(expected, scheduler.result(ids[i]));
  }
  const SchedulerStats stats = scheduler.aggregate();
  EXPECT_EQ(stats.finished, 3u);
  EXPECT_EQ(stats.deadline_missed, 1u);  // latched even after its deadline
  EXPECT_TRUE(scheduler.scenario(ids[0]).past_deadline);
}

// run() drivers with nothing eligible must park on the cv (visible via
// SchedulerStats::parked_drivers), not spin, and still finish the fleet.
TEST(SchedulerQoS, DriversParkWhileEveryRunnableScenarioIsCapped) {
  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  fleet.max_concurrent = 2;
  AttackScheduler scheduler(fleet);

  MixingGenerator generator;
  ScenarioOptions options;
  options.session = chunked_config(250, 25);  // 10 chunks at ~25ms apart
  options.rate_cap = 1000.0;
  scheduler.add_scenario(generator, matcher, options);

  std::thread runner([&] { scheduler.run(); });
  // Between bucket refills both drivers are parked; sample until we catch
  // them at it (each aggregate quiesces briefly, so the loop is bounded).
  std::size_t max_parked = 0;
  for (int i = 0; i < 200 && !scheduler.finished(); ++i) {
    const SchedulerStats stats = scheduler.aggregate();
    max_parked = std::max(max_parked, stats.parked_drivers);
    if (max_parked > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  runner.join();
  EXPECT_GE(max_parked, 1u);
  EXPECT_LE(max_parked, 2u);
  EXPECT_TRUE(scheduler.finished());
  // step()-style driving has no drivers to park.
  EXPECT_EQ(scheduler.aggregate().parked_drivers, 0u);
}

// step() on a fleet whose only runnable scenario is momentarily capped out
// must sleep to the refill and drive it — throttled is not drained.
TEST(SchedulerQoS, StepSleepsThroughAnEmptyBucketInsteadOfReturningFalse) {
  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator generator;
  ScenarioOptions options;
  options.session = chunked_config(100, 50);  // two chunks
  options.rate_cap = 1000.0;
  scheduler.add_scenario(generator, matcher, options);

  // Both buckets start empty, so both slices cross an empty-bucket wait.
  EXPECT_TRUE(scheduler.step());
  EXPECT_TRUE(scheduler.step());
  EXPECT_FALSE(scheduler.step());  // now genuinely drained
  EXPECT_TRUE(scheduler.finished());
}

TEST(SchedulerQoS, RejectsInvalidQoSArguments) {
  HashSetMatcher matcher({"x"});
  MixingGenerator generator;

  SchedulerConfig bad_boost;
  bad_boost.deadline_boost = 0.5;
  EXPECT_THROW(AttackScheduler{bad_boost}, std::invalid_argument);

  SchedulerConfig bad_burst;
  bad_burst.rate_cap_burst_seconds = 0.0;
  EXPECT_THROW(AttackScheduler{bad_burst}, std::invalid_argument);

  AttackScheduler scheduler;
  ScenarioOptions negative_deadline;
  negative_deadline.deadline_seconds = -1.0;
  EXPECT_THROW(scheduler.add_scenario(generator, matcher, negative_deadline),
               std::invalid_argument);
  ScenarioOptions negative_cap;
  negative_cap.rate_cap = -5.0;
  EXPECT_THROW(scheduler.add_scenario(generator, matcher, negative_cap),
               std::invalid_argument);
}

}  // namespace
}  // namespace passflow::guessing
