#include "guessing/conditional.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "data/alphabet.hpp"
#include "test_support.hpp"

namespace passflow::guessing {
namespace {

class ConditionalTest : public ::testing::Test {
 protected:
  ConditionalTest()
      : encoder_(passflow::testing::tiny_trained_flow().encoder),
        model_(passflow::testing::tiny_trained_flow().model) {}

  ConditionalConfig fast_config() {
    ConditionalConfig config;
    config.rounds = 6;
    config.batch_size = 128;
    return config;
  }

  const data::Encoder& encoder_;
  const flow::FlowModel& model_;
};

TEST_F(ConditionalTest, CompletionsMatchThePattern) {
  ConditionalGuesser guesser(model_, encoder_, fast_config());
  const auto completions = guesser.complete("jim**1", 20);
  ASSERT_FALSE(completions.empty());
  for (const auto& guess : completions) {
    ASSERT_EQ(guess.password.size(), 6u);
    EXPECT_EQ(guess.password.substr(0, 3), "jim");
    EXPECT_EQ(guess.password[5], '1');
  }
}

TEST_F(ConditionalTest, ResultsAreUniqueAndSorted) {
  ConditionalGuesser guesser(model_, encoder_, fast_config());
  const auto completions = guesser.complete("ab****", 50);
  std::unordered_set<std::string> seen;
  for (std::size_t i = 0; i < completions.size(); ++i) {
    EXPECT_TRUE(seen.insert(completions[i].password).second);
    if (i > 0) {
      EXPECT_LE(completions[i].log_prob, completions[i - 1].log_prob);
    }
  }
}

TEST_F(ConditionalTest, NoWildcardsReturnsThePatternItself) {
  ConditionalGuesser guesser(model_, encoder_, fast_config());
  const auto completions = guesser.complete("abc123", 5);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].password, "abc123");
}

TEST_F(ConditionalTest, CountCapsResults) {
  ConditionalGuesser guesser(model_, encoder_, fast_config());
  const auto completions = guesser.complete("a*****", 3);
  EXPECT_LE(completions.size(), 3u);
}

TEST_F(ConditionalTest, RejectsBadPatterns) {
  ConditionalGuesser guesser(model_, encoder_, fast_config());
  EXPECT_THROW(guesser.complete("", 5), std::invalid_argument);
  EXPECT_THROW(guesser.complete("waytoolongpattern", 5),
               std::invalid_argument);
  EXPECT_THROW(guesser.complete("AB**", 5), std::invalid_argument);
}

TEST_F(ConditionalTest, AllWildcardPatternYieldsFullLengthPasswords) {
  ConditionalGuesser guesser(model_, encoder_, fast_config());
  const auto completions = guesser.complete("******", 10);
  for (const auto& guess : completions) {
    EXPECT_EQ(guess.password.size(), 6u);
  }
}

TEST_F(ConditionalTest, TrainedModelRanksCorpusLikeCompletionsHigher) {
  // The shared fixture's flow is trained on the toy corpus, which contains
  // "123456" — so it should appear among the completions of "1234**".
  ConditionalConfig config;
  config.rounds = 40;
  config.batch_size = 256;
  ConditionalGuesser guesser(model_, encoder_, config);
  const auto completions = guesser.complete("1234**", 200);
  bool found = false;
  for (const auto& guess : completions) {
    if (guess.password == "123456") {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace passflow::guessing
