#include "guessing/conditional.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "data/alphabet.hpp"
#include "test_support.hpp"

namespace passflow::guessing {
namespace {

class ConditionalTest : public ::testing::Test {
 protected:
  ConditionalTest()
      : rng_(31),
        encoder_(data::Alphabet::compact(), 6),
        model_(passflow::testing::tiny_flow_config(), rng_) {
    for (nn::Param* p : model_.parameters()) {
      if (p->name.find("s_scale") != std::string::npos) continue;
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        p->value.data()[i] += static_cast<float>(rng_.normal(0.0, 0.1));
      }
    }
  }

  ConditionalConfig fast_config() {
    ConditionalConfig config;
    config.rounds = 6;
    config.batch_size = 128;
    return config;
  }

  util::Rng rng_;
  data::Encoder encoder_;
  flow::FlowModel model_;
};

TEST_F(ConditionalTest, CompletionsMatchThePattern) {
  ConditionalGuesser guesser(model_, encoder_, fast_config());
  const auto completions = guesser.complete("jim**1", 20);
  ASSERT_FALSE(completions.empty());
  for (const auto& guess : completions) {
    ASSERT_EQ(guess.password.size(), 6u);
    EXPECT_EQ(guess.password.substr(0, 3), "jim");
    EXPECT_EQ(guess.password[5], '1');
  }
}

TEST_F(ConditionalTest, ResultsAreUniqueAndSorted) {
  ConditionalGuesser guesser(model_, encoder_, fast_config());
  const auto completions = guesser.complete("ab****", 50);
  std::unordered_set<std::string> seen;
  for (std::size_t i = 0; i < completions.size(); ++i) {
    EXPECT_TRUE(seen.insert(completions[i].password).second);
    if (i > 0) {
      EXPECT_LE(completions[i].log_prob, completions[i - 1].log_prob);
    }
  }
}

TEST_F(ConditionalTest, NoWildcardsReturnsThePatternItself) {
  ConditionalGuesser guesser(model_, encoder_, fast_config());
  const auto completions = guesser.complete("abc123", 5);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].password, "abc123");
}

TEST_F(ConditionalTest, CountCapsResults) {
  ConditionalGuesser guesser(model_, encoder_, fast_config());
  const auto completions = guesser.complete("a*****", 3);
  EXPECT_LE(completions.size(), 3u);
}

TEST_F(ConditionalTest, RejectsBadPatterns) {
  ConditionalGuesser guesser(model_, encoder_, fast_config());
  EXPECT_THROW(guesser.complete("", 5), std::invalid_argument);
  EXPECT_THROW(guesser.complete("waytoolongpattern", 5),
               std::invalid_argument);
  EXPECT_THROW(guesser.complete("AB**", 5), std::invalid_argument);
}

TEST_F(ConditionalTest, AllWildcardPatternYieldsFullLengthPasswords) {
  ConditionalGuesser guesser(model_, encoder_, fast_config());
  const auto completions = guesser.complete("******", 10);
  for (const auto& guess : completions) {
    EXPECT_EQ(guess.password.size(), 6u);
  }
}

TEST_F(ConditionalTest, TrainedModelRanksCorpusLikeCompletionsHigher) {
  // Train the tiny flow on the toy corpus, then complete "1234**": the
  // corpus contains "123456", which should appear among the completions.
  passflow::testing::QuietLogs quiet;
  flow::TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 64;
  tc.log_every = 0;
  flow::Trainer trainer(model_, tc);
  trainer.train(passflow::testing::toy_corpus(40), encoder_);

  ConditionalConfig config;
  config.rounds = 40;
  config.batch_size = 256;
  ConditionalGuesser guesser(model_, encoder_, config);
  const auto completions = guesser.complete("1234**", 200);
  bool found = false;
  for (const auto& guess : completions) {
    if (guess.password == "123456") {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace passflow::guessing
