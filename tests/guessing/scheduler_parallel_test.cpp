// AttackScheduler concurrency suite, run under the `thread_safety` CTest
// label (and its TSan/ASan jobs): multi-driver run() over a shared sharded
// matcher and one pool must reproduce every scenario's solo metrics
// bitwise; scenarios added/paused/resumed/removed mid-run must neither
// race nor corrupt anyone else's run; and the fleet-wide merged sketch
// must equal the sketch of the union of all streams exactly.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "guessing/scheduler.hpp"
#include "reference_harness.hpp"
#include "util/cardinality_sketch.hpp"
#include "util/thread_pool.hpp"

namespace passflow::guessing {
namespace {

using testing::MixingGenerator;
using testing::ReferenceConfig;
using testing::reference_run;

std::vector<std::string> mixing_targets(std::size_t period = 1 << 14) {
  std::vector<std::string> targets;
  for (std::size_t v = 0; v < period; v += 7) {
    targets.push_back("g" + std::to_string(v));
  }
  return targets;
}

SessionConfig chunked_config(std::size_t budget, std::size_t chunk_size) {
  SessionConfig config;
  config.budget = budget;
  config.chunk_size = chunk_size;
  config.checkpoints = {budget};
  return config;
}

RunResult expected_run(const Matcher& matcher, std::size_t period,
                       std::size_t budget, std::size_t chunk_size) {
  MixingGenerator generator(period);
  ReferenceConfig config;
  config.budget = budget;
  config.chunk_size = chunk_size;
  config.checkpoints = {budget};
  return reference_run(generator, matcher, config);
}

// Four concurrent drivers, four scenarios with pipelined sessions, one
// shared ShardedMatcher, one pool: every scenario must land exactly on its
// solo metrics no matter how slices interleaved.
TEST(SchedulerParallel, ConcurrentRunMatchesSoloMetricsBitwise) {
  const auto targets = mixing_targets();
  auto matcher = std::make_shared<const ShardedMatcher>(targets, 4);
  HashSetMatcher reference_matcher(targets);
  util::ThreadPool pool(4);

  SchedulerConfig fleet;
  fleet.pool = &pool;
  fleet.slice_chunks = 2;
  fleet.max_concurrent = 4;
  AttackScheduler scheduler(fleet);

  const std::size_t periods[] = {1 << 14, 1 << 13, 1 << 12, 1 << 11};
  std::vector<std::unique_ptr<MixingGenerator>> generators;
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < 4; ++i) {
    generators.push_back(std::make_unique<MixingGenerator>(periods[i]));
    ScenarioOptions options;
    options.session = chunked_config(30000, 1000);
    options.session.pipeline_depth = (i % 2 == 0) ? 2 : 0;  // mixed modes
    options.session.unique_shards = (i == 1) ? 4 : 1;
    ids.push_back(
        scheduler.add_scenario(*generators[i], MatcherRef(matcher), options));
  }

  scheduler.run();
  EXPECT_TRUE(scheduler.finished());

  for (std::size_t i = 0; i < 4; ++i) {
    const RunResult expected =
        expected_run(reference_matcher, periods[i], 30000, 1000);
    ASSERT_GT(expected.final().matched, 0u);
    const RunResult actual = scheduler.result(ids[i]);
    PF_EXPECT_SAME_RUN(expected, actual);
  }
}

// Scenarios added, paused, resumed and removed from another thread while
// run() is live. The test is scheduling-robust: whatever work run() did
// not get to (e.g. everything finished before the late add) is completed
// by a final run() — semantically a plain continuation — so the end-state
// assertions are deterministic even though the interleaving is not.
TEST(SchedulerParallel, MidRunAddRemovePauseResume) {
  const auto targets = mixing_targets();
  auto matcher = std::make_shared<const ShardedMatcher>(targets, 2);
  HashSetMatcher reference_matcher(targets);
  util::ThreadPool pool(4);

  SchedulerConfig fleet;
  fleet.pool = &pool;
  fleet.slice_chunks = 1;
  fleet.max_concurrent = 2;
  AttackScheduler scheduler(fleet);

  MixingGenerator pipelined_generator(1 << 14);
  MixingGenerator removed_generator(1 << 13);
  MixingGenerator late_generator(1 << 12);

  ScenarioOptions pipelined;
  pipelined.session = chunked_config(60000, 500);
  pipelined.session.pipeline_depth = 2;
  const std::size_t pipelined_id =
      scheduler.add_scenario(pipelined_generator, MatcherRef(matcher),
                             pipelined);

  ScenarioOptions removable;
  removable.session = chunked_config(60000, 500);
  const std::size_t removed_id = scheduler.add_scenario(
      removed_generator, MatcherRef(matcher), removable);

  std::thread runner([&] { scheduler.run(); });

  ScenarioOptions late;
  late.session = chunked_config(20000, 500);
  const std::size_t late_id =
      scheduler.add_scenario(late_generator, MatcherRef(matcher), late);

  scheduler.pause_scenario(pipelined_id);
  const SchedulerStats mid = scheduler.aggregate();  // quiesce while live
  EXPECT_EQ(mid.scenarios, 3u);
  scheduler.resume_scenario(pipelined_id);

  const RunResult partial = scheduler.remove_scenario(removed_id);
  EXPECT_EQ(partial.final().guesses % 500u, 0u);
  EXPECT_LE(partial.final().guesses, 60000u);

  runner.join();
  scheduler.run();  // mop up anything the live run missed (no-op if none)
  EXPECT_TRUE(scheduler.finished());

  // The removed scenario's partial result is a prefix of its solo run.
  if (partial.final().guesses > 0) {
    MixingGenerator solo_generator(1 << 13);
    AttackSession solo(solo_generator, reference_matcher,
                       chunked_config(60000, 500));
    solo.run_until(partial.final().guesses);
    PF_EXPECT_SAME_RUN(solo.result(), partial);
  }

  // The survivors still land exactly on their solo metrics.
  PF_EXPECT_SAME_RUN(expected_run(reference_matcher, 1 << 14, 60000, 500),
                     scheduler.result(pipelined_id));
  PF_EXPECT_SAME_RUN(expected_run(reference_matcher, 1 << 12, 20000, 500),
                     scheduler.result(late_id));
}

// The fleet-wide union sketch must equal — register for register, so
// estimate for estimate — one sketch fed every scenario's stream, for
// sketch-mode sessions, exact-mode sessions, and a mix of both.
TEST(SchedulerParallel, MergedSketchEqualsUnionOfStreams) {
  const auto targets = mixing_targets();
  HashSetMatcher matcher(targets);
  util::ThreadPool pool(2);

  const std::size_t periods[] = {1 << 13, 1 << 12, 1 << 11};
  const std::size_t budgets[] = {20000, 15000, 10000};
  const unsigned precision = 12;

  util::CardinalitySketch reference(precision);
  for (std::size_t i = 0; i < 3; ++i) {
    MixingGenerator generator(periods[i]);
    for (std::size_t g = 0; g < budgets[i]; ++g) {
      reference.add(generator.value_at(g));
    }
  }

  for (const bool mixed : {false, true}) {
    SchedulerConfig fleet;
    fleet.pool = &pool;
    fleet.max_concurrent = 3;
    fleet.unique_union_precision_bits = precision;
    AttackScheduler scheduler(fleet);
    std::vector<std::unique_ptr<MixingGenerator>> generators;
    for (std::size_t i = 0; i < 3; ++i) {
      generators.push_back(std::make_unique<MixingGenerator>(periods[i]));
      ScenarioOptions options;
      options.session = chunked_config(budgets[i], 1000);
      options.session.pipeline_depth = (i == 2) ? 2 : 0;
      // mixed: one exact tracker among the sketches — exact keys re-add
      // into the union through the same hash, so the union stays exact.
      if (mixed && i == 1) {
        options.session.unique_tracking = UniqueTracking::kExact;
      } else {
        options.session.unique_tracking = UniqueTracking::kSketch;
        options.session.sketch_precision_bits = precision;
      }
      scheduler.add_scenario(*generators[i], matcher, options);
    }
    scheduler.run();

    const SchedulerStats stats = scheduler.aggregate();
    ASSERT_TRUE(stats.unique_union_valid);
    EXPECT_EQ(stats.unique_union, reference.estimate());
  }
}

// Hammer aggregate() from a second thread while drivers run: quiesce must
// neither race (TSan) nor deadlock, and totals must be monotone-plausible.
TEST(SchedulerParallel, AggregateWhileRunningIsSafe) {
  const auto targets = mixing_targets();
  HashSetMatcher matcher(targets);
  util::ThreadPool pool(2);

  SchedulerConfig fleet;
  fleet.pool = &pool;
  fleet.slice_chunks = 1;
  fleet.max_concurrent = 2;
  AttackScheduler scheduler(fleet);

  MixingGenerator a(1 << 14), b(1 << 13);
  ScenarioOptions options;
  options.session = chunked_config(40000, 500);
  options.session.pipeline_depth = 2;
  scheduler.add_scenario(a, matcher, options);
  scheduler.add_scenario(b, matcher, options);

  std::thread runner([&] { scheduler.run(); });
  std::size_t last_produced = 0;
  for (int i = 0; i < 20; ++i) {
    const SchedulerStats stats = scheduler.aggregate();
    EXPECT_GE(stats.produced, last_produced);
    last_produced = stats.produced;
  }
  runner.join();
  EXPECT_EQ(scheduler.aggregate().produced, 2u * 40000u);
}

// Two threads hammer aggregate() concurrently (the quiesce gate is a
// counter — before the fix the first finisher dropped the gate under the
// second's merge) while a third churns add/pause/resume mid-run. TSan
// guards the races; the asserts guard liveness and monotonicity.
TEST(SchedulerParallel, ConcurrentAggregatesComposeUnderChurn) {
  const auto targets = mixing_targets();
  HashSetMatcher matcher(targets);
  util::ThreadPool pool(2);

  SchedulerConfig fleet;
  fleet.pool = &pool;
  fleet.slice_chunks = 1;
  fleet.max_concurrent = 2;
  AttackScheduler scheduler(fleet);

  MixingGenerator a(1 << 14), b(1 << 13), late_generator(1 << 12);
  ScenarioOptions options;
  options.session = chunked_config(40000, 500);
  options.session.pipeline_depth = 2;
  const std::size_t a_id = scheduler.add_scenario(a, matcher, options);
  scheduler.add_scenario(b, matcher, options);

  std::thread runner([&] { scheduler.run(); });

  std::thread aggregators[2];
  for (auto& aggregator : aggregators) {
    aggregator = std::thread([&] {
      std::size_t last_produced = 0;
      for (int i = 0; i < 15; ++i) {
        const SchedulerStats stats = scheduler.aggregate();
        EXPECT_GE(stats.produced, last_produced);
        EXPECT_LE(stats.parked_drivers, 2u);
        last_produced = stats.produced;
      }
    });
  }

  ScenarioOptions late;
  late.session = chunked_config(20000, 500);
  const std::size_t late_id =
      scheduler.add_scenario(late_generator, matcher, late);
  scheduler.pause_scenario(a_id);
  scheduler.resume_scenario(a_id);

  for (auto& aggregator : aggregators) aggregator.join();
  runner.join();
  scheduler.run();  // mop up anything the live run missed (no-op if none)
  EXPECT_TRUE(scheduler.finished());

  EXPECT_EQ(scheduler.aggregate().produced, 2u * 40000u + 20000u);
  PF_EXPECT_SAME_RUN(expected_run(matcher, 1 << 12, 20000, 500),
                     scheduler.result(late_id));
}

// aggregate() and save_state() hammered from different threads while the
// drivers run: both quiesce through the same counter gate, and save_state
// additionally parks on the result()-copy reservation
// (quiesced_for_save_locked, whose mu_.assert_held() makes the capability
// part of the quiesce path itself). The gates must compose — no deadlock,
// no torn snapshot — and every mid-run freeze must thaw into a fleet that
// finishes bitwise-equal to a never-interrupted run.
TEST(SchedulerParallel, ConcurrentAggregateAndSaveStateCompose) {
  const auto targets = mixing_targets();
  HashSetMatcher matcher(targets);
  util::ThreadPool pool(2);

  SchedulerConfig fleet;
  fleet.pool = &pool;
  fleet.slice_chunks = 1;
  fleet.max_concurrent = 2;
  AttackScheduler scheduler(fleet);

  const std::size_t periods[] = {1 << 14, 1 << 13};
  MixingGenerator a(periods[0]), b(periods[1]);
  ScenarioOptions options;
  options.session = chunked_config(40000, 500);
  options.session.pipeline_depth = 2;
  std::vector<std::size_t> ids;
  ids.push_back(scheduler.add_scenario(a, matcher, options));
  ids.push_back(scheduler.add_scenario(b, matcher, options));

  std::thread runner([&] { scheduler.run(); });

  std::thread aggregator([&] {
    std::size_t last_produced = 0;
    for (int i = 0; i < 15; ++i) {
      const SchedulerStats stats = scheduler.aggregate();
      EXPECT_GE(stats.produced, last_produced);
      last_produced = stats.produced;
    }
  });

  // Freeze repeatedly from this thread while the aggregator and drivers
  // are live; keep the last snapshot for the thaw check below.
  std::stringstream snapshot;
  for (int i = 0; i < 10; ++i) {
    std::stringstream out;
    scheduler.save_state(out);
    snapshot = std::move(out);
  }

  aggregator.join();
  runner.join();
  scheduler.run();  // mop up anything the live run missed (no-op if none)
  EXPECT_TRUE(scheduler.finished());
  EXPECT_EQ(scheduler.aggregate().produced, 2u * 40000u);

  // The live fleet kept running after each freeze; the snapshot itself
  // must still be a consistent slice-boundary state.
  std::vector<std::unique_ptr<MixingGenerator>> thawed_generators;
  for (const std::size_t period : periods) {
    thawed_generators.push_back(std::make_unique<MixingGenerator>(period));
  }
  AttackScheduler thawed(fleet);
  thawed.load_state(
      snapshot, [&](const AttackScheduler::ScenarioThawInfo& info)
                    -> AttackScheduler::ScenarioBinding {
        return {*thawed_generators.at(info.index), matcher};
      });
  while (thawed.step()) {
  }
  for (std::size_t i = 0; i < 2; ++i) {
    PF_EXPECT_SAME_RUN(expected_run(matcher, periods[i], 40000, 500),
                       thawed.result(ids[i]));
  }
}

}  // namespace
}  // namespace passflow::guessing
