#include "guessing/harness.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace passflow::guessing {
namespace {

// Scripted generator: replays a fixed sequence and records feedback.
class ScriptedGenerator : public GuessGenerator {
 public:
  explicit ScriptedGenerator(std::vector<std::string> script)
      : script_(std::move(script)) {}

  void generate(std::size_t n, std::vector<std::string>& out) override {
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(script_[cursor_ % script_.size()]);
      ++cursor_;
    }
    ++generate_calls_;
  }

  void on_match(std::size_t index_in_batch,
                const std::string& password) override {
    match_indices_.push_back(index_in_batch);
    match_passwords_.push_back(password);
  }

  std::string name() const override { return "scripted"; }

  std::size_t cursor_ = 0;
  std::size_t generate_calls_ = 0;
  std::vector<std::size_t> match_indices_;
  std::vector<std::string> match_passwords_;

 private:
  std::vector<std::string> script_;
};

TEST(Harness, GeneratesExactBudget) {
  ScriptedGenerator gen({"a", "b", "c"});
  HashSetMatcher matcher({"nothing"});
  HarnessConfig config;
  config.budget = 95;
  config.chunk_size = 10;
  const auto result = run_guessing(gen, matcher, config);
  EXPECT_EQ(gen.cursor_, 95u);
  EXPECT_EQ(result.final().guesses, 95u);
}

TEST(Harness, CountsEachMatchedPasswordOnce) {
  // "hit" appears many times in the stream but counts once.
  ScriptedGenerator gen({"hit", "miss", "hit", "miss2"});
  HashSetMatcher matcher({"hit"});
  HarnessConfig config;
  config.budget = 100;
  const auto result = run_guessing(gen, matcher, config);
  EXPECT_EQ(result.final().matched, 1u);
  EXPECT_EQ(gen.match_passwords_.size(), 1u);
  EXPECT_EQ(gen.match_passwords_[0], "hit");
}

TEST(Harness, MatchedPercentUsesTestSetSize) {
  ScriptedGenerator gen({"a", "b", "x", "y"});
  HashSetMatcher matcher({"a", "b", "c", "d"});  // 4 entries, 2 matched
  HarnessConfig config;
  config.budget = 40;
  const auto result = run_guessing(gen, matcher, config);
  EXPECT_EQ(result.final().matched, 2u);
  EXPECT_DOUBLE_EQ(result.final().matched_percent, 50.0);
}

TEST(Harness, UniqueCountsDistinctGuesses) {
  ScriptedGenerator gen({"a", "b", "a", "a"});
  HashSetMatcher matcher({});
  HarnessConfig config;
  config.budget = 100;
  const auto result = run_guessing(gen, matcher, config);
  EXPECT_EQ(result.final().unique, 2u);
}

TEST(Harness, CheckpointsAreMonotone) {
  ScriptedGenerator gen({"a", "b", "c", "d", "e", "hit"});
  HashSetMatcher matcher({"hit"});
  HarnessConfig config;
  config.budget = 10000;
  const auto result = run_guessing(gen, matcher, config);
  ASSERT_GE(result.checkpoints.size(), 3u);
  for (std::size_t i = 1; i < result.checkpoints.size(); ++i) {
    EXPECT_GE(result.checkpoints[i].guesses,
              result.checkpoints[i - 1].guesses);
    EXPECT_GE(result.checkpoints[i].matched,
              result.checkpoints[i - 1].matched);
    EXPECT_GE(result.checkpoints[i].unique,
              result.checkpoints[i - 1].unique);
  }
}

TEST(Harness, DefaultCheckpointsArePowersOfTen) {
  ScriptedGenerator gen({"a"});
  HashSetMatcher matcher({});
  HarnessConfig config;
  config.budget = 1000;
  const auto result = run_guessing(gen, matcher, config);
  std::vector<std::size_t> guesses;
  for (const auto& cp : result.checkpoints) guesses.push_back(cp.guesses);
  EXPECT_EQ(guesses, (std::vector<std::size_t>{10, 100, 1000}));
}

TEST(Harness, CustomCheckpointsRespected) {
  ScriptedGenerator gen({"a"});
  HashSetMatcher matcher({});
  HarnessConfig config;
  config.budget = 50;
  config.checkpoints = {25, 50};
  const auto result = run_guessing(gen, matcher, config);
  ASSERT_EQ(result.checkpoints.size(), 2u);
  EXPECT_EQ(result.checkpoints[0].guesses, 25u);
  EXPECT_EQ(result.checkpoints[1].guesses, 50u);
}

TEST(Harness, OnMatchIndexPointsIntoLastBatch) {
  // Script: chunk_size=4 so batch = {m0,m1,m2,hit}; index of "hit" is 3.
  ScriptedGenerator gen({"m0", "m1", "m2", "hit"});
  HashSetMatcher matcher({"hit"});
  HarnessConfig config;
  config.budget = 4;
  config.chunk_size = 4;
  run_guessing(gen, matcher, config);
  ASSERT_EQ(gen.match_indices_.size(), 1u);
  EXPECT_EQ(gen.match_indices_[0], 3u);
}

TEST(Harness, NonMatchedSamplesAreDistinctNonMatches) {
  ScriptedGenerator gen({"hit", "n1", "n2", "n1"});
  HashSetMatcher matcher({"hit"});
  HarnessConfig config;
  config.budget = 100;
  config.non_matched_samples = 10;
  const auto result = run_guessing(gen, matcher, config);
  EXPECT_EQ(result.sample_non_matched.size(), 2u);
  for (const auto& s : result.sample_non_matched) {
    EXPECT_FALSE(matcher.contains(s));
  }
}

TEST(Harness, TrackUniqueOffReportsZeroUnique) {
  ScriptedGenerator gen({"a", "b"});
  HashSetMatcher matcher({});
  HarnessConfig config;
  config.budget = 20;
  config.track_unique = false;
  const auto result = run_guessing(gen, matcher, config);
  EXPECT_EQ(result.final().unique, 0u);
}

TEST(Harness, ChunksNeverCrossCheckpoints) {
  // With chunk_size larger than the checkpoint spacing, the harness must
  // shrink chunks so metrics at checkpoints are exact.
  ScriptedGenerator gen({"a"});
  HashSetMatcher matcher({});
  HarnessConfig config;
  config.budget = 100;
  config.chunk_size = 64;
  config.checkpoints = {10, 100};
  const auto result = run_guessing(gen, matcher, config);
  EXPECT_EQ(result.checkpoints[0].guesses, 10u);
}

}  // namespace
}  // namespace passflow::guessing
