#include "guessing/matcher.hpp"

#include <gtest/gtest.h>

#include "guessing/metrics.hpp"

namespace passflow::guessing {
namespace {

TEST(Matcher, ContainsExactMatchesOnly) {
  Matcher matcher({"alpha", "beta"});
  EXPECT_TRUE(matcher.contains("alpha"));
  EXPECT_TRUE(matcher.contains("beta"));
  EXPECT_FALSE(matcher.contains("Alpha"));
  EXPECT_FALSE(matcher.contains("alph"));
  EXPECT_FALSE(matcher.contains(""));
}

TEST(Matcher, SizeDeduplicates) {
  Matcher matcher({"x", "x", "y"});
  EXPECT_EQ(matcher.test_set_size(), 2u);
}

TEST(Matcher, EmptyTestSet) {
  Matcher matcher({});
  EXPECT_EQ(matcher.test_set_size(), 0u);
  EXPECT_FALSE(matcher.contains("anything"));
}

TEST(Checkpoints, PowersOfTenUpToBudget) {
  const auto points = power_of_ten_checkpoints(100000);
  EXPECT_EQ(points, (std::vector<std::size_t>{10, 100, 1000, 10000, 100000}));
}

TEST(Checkpoints, NonPowerBudgetAppended) {
  const auto points = power_of_ten_checkpoints(2500);
  EXPECT_EQ(points, (std::vector<std::size_t>{10, 100, 1000, 2500}));
}

TEST(Checkpoints, TinyBudget) {
  const auto points = power_of_ten_checkpoints(5);
  EXPECT_EQ(points, (std::vector<std::size_t>{5}));
}

TEST(RunResult, AtFindsCheckpoint) {
  RunResult result;
  Checkpoint cp;
  cp.guesses = 100;
  cp.matched = 7;
  result.checkpoints.push_back(cp);
  EXPECT_EQ(result.at(100).matched, 7u);
  EXPECT_THROW(result.at(999), std::out_of_range);
}

}  // namespace
}  // namespace passflow::guessing
