#include "guessing/matcher.hpp"

#include <gtest/gtest.h>

#include "guessing/metrics.hpp"

namespace passflow::guessing {
namespace {

TEST(Matcher, ContainsExactMatchesOnly) {
  HashSetMatcher matcher({"alpha", "beta"});
  EXPECT_TRUE(matcher.contains("alpha"));
  EXPECT_TRUE(matcher.contains("beta"));
  EXPECT_FALSE(matcher.contains("Alpha"));
  EXPECT_FALSE(matcher.contains("alph"));
  EXPECT_FALSE(matcher.contains(""));
}

TEST(Matcher, SizeDeduplicates) {
  HashSetMatcher matcher({"x", "x", "y"});
  EXPECT_EQ(matcher.test_set_size(), 2u);
}

TEST(Matcher, EmptyTestSet) {
  HashSetMatcher matcher({});
  EXPECT_EQ(matcher.test_set_size(), 0u);
  EXPECT_FALSE(matcher.contains("anything"));
}

TEST(Matcher, ShardedRejectsZeroShards) {
  // shard_of computes hash % num_shards; zero shards must fail loudly at
  // construction, not divide by zero on the first probe.
  EXPECT_THROW(ShardedMatcher({"alpha"}, 0), std::invalid_argument);
  EXPECT_THROW(ShardedMatcher({}, 0), std::invalid_argument);
}

TEST(Matcher, ContainsBatchMatchesPerItemProbes) {
  HashSetMatcher matcher({"alpha", "beta", "gamma"});
  const std::vector<std::string> batch = {"alpha", "nope", "gamma", "",
                                          "beta", "alpha"};
  std::vector<char> membership;
  matcher.contains_batch(batch, nullptr, membership);
  ASSERT_EQ(membership.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(membership[i] != 0, matcher.contains(batch[i])) << batch[i];
  }
}

TEST(Matcher, ContainsBatchPooledAgreesWithSerial) {
  // Above the parallel threshold, pooled and serial bulk matching must
  // fill identical membership vectors (for both matcher layouts).
  std::vector<std::string> test_set;
  for (std::size_t i = 0; i < 500; ++i) {
    test_set.push_back("pw" + std::to_string(i * 3));
  }
  std::vector<std::string> batch;
  for (std::size_t i = 0; i < 3000; ++i) {
    batch.push_back("pw" + std::to_string(i));
  }
  util::ThreadPool pool(4);

  const HashSetMatcher hashset(test_set);
  const ShardedMatcher sharded(test_set, 4);
  for (const Matcher* matcher :
       {static_cast<const Matcher*>(&hashset),
        static_cast<const Matcher*>(&sharded)}) {
    std::vector<char> serial;
    std::vector<char> pooled;
    matcher->contains_batch(batch, nullptr, serial);
    matcher->contains_batch(batch, &pool, pooled);
    EXPECT_EQ(serial, pooled) << matcher->name();
  }
}

TEST(Checkpoints, PowersOfTenUpToBudget) {
  const auto points = power_of_ten_checkpoints(100000);
  EXPECT_EQ(points, (std::vector<std::size_t>{10, 100, 1000, 10000, 100000}));
}

TEST(Checkpoints, NonPowerBudgetAppended) {
  const auto points = power_of_ten_checkpoints(2500);
  EXPECT_EQ(points, (std::vector<std::size_t>{10, 100, 1000, 2500}));
}

TEST(Checkpoints, TinyBudget) {
  const auto points = power_of_ten_checkpoints(5);
  EXPECT_EQ(points, (std::vector<std::size_t>{5}));
}

TEST(RunResult, AtFindsCheckpoint) {
  RunResult result;
  Checkpoint cp;
  cp.guesses = 100;
  cp.matched = 7;
  result.checkpoints.push_back(cp);
  EXPECT_EQ(result.at(100).matched, 7u);
  EXPECT_THROW(result.at(999), std::out_of_range);
}

}  // namespace
}  // namespace passflow::guessing
