// Determinism of the pipelined AttackSession: the persistent producer at
// any depth, the tracker stage, sharded matching across the pool, and
// mid-pipeline save/resume must all reproduce the serial run's metrics
// exactly. Runs under the `thread_safety` CTest label (and its TSan job).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "guessing/session.hpp"
#include "guessing/static_sampler.hpp"
#include "reference_harness.hpp"
#include "test_support.hpp"
#include "util/thread_pool.hpp"

namespace passflow::guessing {
namespace {

using passflow::testing::tiny_trained_flow;
using testing::MixingGenerator;
using testing::ReferenceConfig;
using testing::reference_run;

std::vector<std::string> mixing_targets(std::size_t period = 1 << 14) {
  std::vector<std::string> targets;
  for (std::size_t v = 0; v < period; v += 7) {
    targets.push_back("g" + std::to_string(v));
  }
  return targets;
}

RunResult expected_mixing_run(const Matcher& matcher, std::size_t budget,
                              std::size_t chunk_size) {
  MixingGenerator generator;
  ReferenceConfig config;
  config.budget = budget;
  config.chunk_size = chunk_size;
  // The pipelined session never delivers feedback; MixingGenerator
  // ignores it, so the streams are identical either way.
  return reference_run(generator, matcher, config);
}

TEST(SessionParallel, EveryPipelineDepthMatchesSerialBitwise) {
  HashSetMatcher matcher(mixing_targets());
  util::ThreadPool pool(4);
  const RunResult expected = expected_mixing_run(matcher, 54321, 1000);
  ASSERT_GT(expected.final().matched, 0u);

  for (const std::size_t depth : {1u, 2u, 4u, 8u}) {
    MixingGenerator generator;
    SessionConfig config;
    config.budget = 54321;
    config.chunk_size = 1000;
    config.pipeline_depth = depth;
    config.pool = &pool;
    AttackSession session(generator, matcher, config);
    session.run();
    const RunResult actual = session.result();
    PF_EXPECT_SAME_RUN(expected, actual);
  }
}

TEST(SessionParallel, DepthWithShardedMatcherAndShardedTracker) {
  const auto targets = mixing_targets();
  HashSetMatcher reference_matcher(targets);
  util::ThreadPool pool(4);
  const RunResult expected = expected_mixing_run(reference_matcher, 40000, 2048);

  ShardedMatcher sharded(targets, 4);
  MixingGenerator generator;
  SessionConfig config;
  config.budget = 40000;
  config.chunk_size = 2048;
  config.pipeline_depth = 4;
  config.unique_shards = 4;
  config.pool = &pool;
  AttackSession session(generator, sharded, config);
  session.run();
  PF_EXPECT_SAME_RUN(expected, session.result());
}

TEST(SessionParallel, PipelinedSkipsOnMatchForFeedbackFreeGenerators) {
  class Probe : public MixingGenerator {
   public:
    void on_match(std::size_t, const std::string&) override { ++calls; }
    std::size_t calls = 0;
  };
  HashSetMatcher matcher(mixing_targets());
  Probe generator;
  SessionConfig config;
  config.budget = 20000;
  config.chunk_size = 1000;
  config.pipeline_depth = 2;
  AttackSession session(generator, matcher, config);
  session.run();
  EXPECT_GT(session.result().final().matched, 0u);
  EXPECT_EQ(generator.calls, 0u);
}

TEST(SessionParallel, FeedbackGeneratorFallsBackToSerial) {
  class FeedbackProbe : public MixingGenerator {
   public:
    void on_match(std::size_t, const std::string&) override { ++calls; }
    bool uses_match_feedback() const override { return true; }
    std::size_t calls = 0;
  };
  HashSetMatcher matcher(mixing_targets());
  const RunResult expected = expected_mixing_run(matcher, 20000, 1000);

  FeedbackProbe generator;
  SessionConfig config;
  config.budget = 20000;
  config.chunk_size = 1000;
  config.pipeline_depth = 8;  // must be ignored
  AttackSession session(generator, matcher, config);
  session.run();
  EXPECT_GT(generator.calls, 0u);  // serial path delivers feedback
  PF_EXPECT_SAME_RUN(expected, session.result());
}

TEST(SessionParallel, SaveMidPipelineResumeEqualsUninterrupted) {
  HashSetMatcher matcher(mixing_targets());
  util::ThreadPool pool(2);
  const RunResult expected = expected_mixing_run(matcher, 60000, 1000);

  // Freeze a depth-4 session mid-run: chunks already generated ahead of
  // consumption must be carried by the state stream.
  MixingGenerator first_gen;
  SessionConfig config;
  config.budget = 60000;
  config.chunk_size = 1000;
  config.pipeline_depth = 4;
  config.pool = &pool;
  AttackSession first(first_gen, matcher, config);
  first.run_until(29000);
  std::stringstream frozen;
  first.save_state(frozen);

  // Thaw into a different pipeline shape (depth 2): metrics must not care.
  MixingGenerator second_gen;
  SessionConfig resumed_config = config;
  resumed_config.pipeline_depth = 2;
  AttackSession second(second_gen, matcher, resumed_config);
  second.load_state(frozen);
  second.run();
  PF_EXPECT_SAME_RUN(expected, second.result());
}

TEST(SessionParallel, PipelinedSaveResumesIntoSerialSession) {
  HashSetMatcher matcher(mixing_targets());
  const RunResult expected = expected_mixing_run(matcher, 30000, 1000);

  MixingGenerator first_gen;
  SessionConfig config;
  config.budget = 30000;
  config.chunk_size = 1000;
  config.pipeline_depth = 8;
  AttackSession first(first_gen, matcher, config);
  first.run_until(4000);
  std::stringstream frozen;
  first.save_state(frozen);

  MixingGenerator second_gen;
  SessionConfig serial_config = config;
  serial_config.pipeline_depth = 0;
  AttackSession second(second_gen, matcher, serial_config);
  second.load_state(frozen);
  second.run();
  PF_EXPECT_SAME_RUN(expected, second.result());
}

TEST(SessionParallel, StaticSamplerPipelinedMatchesSerial) {
  const auto& env = tiny_trained_flow();
  util::ThreadPool pool(4);

  // A target set the sampler can actually hit: every 5th guess of a
  // warmup run over the same model.
  std::vector<std::string> targets;
  {
    StaticSamplerConfig warmup_config;
    warmup_config.seed = 404;
    StaticSampler warmup(env.model, env.encoder, warmup_config);
    std::vector<std::string> guesses;
    warmup.generate(5000, guesses);
    for (std::size_t i = 0; i < guesses.size(); i += 5) {
      targets.push_back(guesses[i]);
    }
  }
  HashSetMatcher matcher(targets);

  auto run = [&](std::size_t depth, util::ThreadPool* sampler_pool) {
    StaticSamplerConfig sampler_config;
    sampler_config.seed = 55;
    sampler_config.batch_size = 1024;
    sampler_config.pool = sampler_pool;
    StaticSampler sampler(env.model, env.encoder, sampler_config);
    SessionConfig config;
    config.budget = 20000;
    config.chunk_size = 2048;
    config.pipeline_depth = depth;
    config.pool = sampler_pool;
    AttackSession session(sampler, matcher, config);
    session.run();
    return session.result();
  };

  const RunResult serial = run(0, nullptr);
  ASSERT_GT(serial.final().matched, 0u);
  for (const std::size_t depth : {1u, 4u}) {
    const RunResult pipelined = run(depth, &pool);
    PF_EXPECT_SAME_RUN(serial, pipelined);
  }
}

TEST(SessionParallel, StaticSamplerSaveResumeMidPipeline) {
  const auto& env = tiny_trained_flow();
  HashSetMatcher matcher({"unlikely"});

  auto make_session = [&](StaticSampler& sampler) {
    SessionConfig config;
    config.budget = 16000;
    config.chunk_size = 1024;
    config.pipeline_depth = 3;
    return std::make_unique<AttackSession>(sampler, matcher, config);
  };

  StaticSamplerConfig sampler_config;
  sampler_config.seed = 77;
  StaticSampler whole_sampler(env.model, env.encoder, sampler_config);
  auto whole = make_session(whole_sampler);
  whole->run();
  const RunResult expected = whole->result();

  StaticSampler first_sampler(env.model, env.encoder, sampler_config);
  auto first = make_session(first_sampler);
  first->run_until(6000);
  std::stringstream frozen;
  first->save_state(frozen);

  StaticSampler second_sampler(env.model, env.encoder, sampler_config);
  auto second = make_session(second_sampler);
  second->load_state(frozen);
  second->run();
  PF_EXPECT_SAME_RUN(expected, second->result());
}

TEST(SessionParallel, ConcurrentSessionsShareOneMatcher) {
  // Two pipelined sessions attack the same shared matcher from two
  // threads; each must reproduce its own serial reference exactly.
  auto matcher = std::make_shared<const HashSetMatcher>(mixing_targets());
  const RunResult expected = expected_mixing_run(*matcher, 30000, 1000);

  auto attack = [&](RunResult& out) {
    MixingGenerator generator;
    SessionConfig config;
    config.budget = 30000;
    config.chunk_size = 1000;
    config.pipeline_depth = 4;
    AttackSession session(generator, MatcherRef(matcher), config);
    session.run();
    out = session.result();
  };

  RunResult a;
  RunResult b;
  std::thread ta(attack, std::ref(a));
  std::thread tb(attack, std::ref(b));
  ta.join();
  tb.join();
  PF_EXPECT_SAME_RUN(expected, a);
  PF_EXPECT_SAME_RUN(expected, b);
}

TEST(SessionParallel, DestructorJoinsMidRunPipeline) {
  HashSetMatcher matcher(mixing_targets());
  MixingGenerator generator;
  SessionConfig config;
  config.budget = 500000;
  config.chunk_size = 1000;
  config.pipeline_depth = 8;
  {
    AttackSession session(generator, matcher, config);
    session.run_until(5000);
    // Drop the session with a full pipeline in flight.
  }
  SUCCEED();
}

TEST(SessionParallel, ProducerExceptionSurfacesInStep) {
  class Exploding : public MixingGenerator {
   public:
    void generate(std::size_t n, std::vector<std::string>& out) override {
      if (++calls > 3) throw std::runtime_error("generator blew up");
      MixingGenerator::generate(n, out);
    }
    std::string name() const override { return "exploding"; }
    std::size_t calls = 0;
  };
  HashSetMatcher matcher({});
  Exploding generator;
  SessionConfig config;
  config.budget = 100000;
  config.chunk_size = 1000;
  config.pipeline_depth = 2;
  AttackSession session(generator, matcher, config);
  EXPECT_THROW(
      {
        while (session.step()) {
        }
      },
      std::runtime_error);
}

// A pipeline error must leave the session retryable: a step() retried
// after the throw restarts the pipeline with the consumed-but-unfolded
// tracker backlog re-seeded (tracked_chunks_ short by the backlog, drain
// re-spawned, erroring chunk requeued) — before the fix the leftover
// chunks skewed the tracked/consumed accounting and the next checkpoint
// sync barrier deadlocked. The generator throws *before* touching its
// stream state, so every retry replays the identical stream and the final
// metrics must still be bitwise equal to the serial reference.
TEST(SessionParallel, PipelineErrorRetryReplaysStreamBitwise) {
  // Throws on every 5th generate() call, stream state untouched.
  class ThrowEveryFifth : public GuessGenerator {
   public:
    void generate(std::size_t n, std::vector<std::string>& out) override {
      if (++calls_ % 5 == 0) {
        throw std::runtime_error("transient generator failure");
      }
      inner_.generate(n, out);
    }
    std::string name() const override { return "throw-every-5th"; }

   private:
    MixingGenerator inner_;
    int calls_ = 0;
  };

  HashSetMatcher matcher(mixing_targets());
  util::ThreadPool pool(2);

  SessionConfig config;
  config.budget = 40000;
  config.chunk_size = 500;  // 80 chunks => ~16 error/restart cycles
  config.checkpoints = {5000, 10000, 20000, 30000, 40000};
  config.pipeline_depth = 3;
  config.pool = &pool;  // tracker stage = pool drain task (the fixed path)

  ThrowEveryFifth generator;
  AttackSession session(generator, matcher, config);
  std::size_t errors = 0;
  while (!session.finished()) {
    try {
      if (!session.step()) break;
    } catch (const std::runtime_error&) {
      ++errors;  // surfaced once per failed generate; session stays usable
    }
  }
  EXPECT_GE(errors, 10u);
  EXPECT_TRUE(session.finished());

  MixingGenerator reference_generator;
  ReferenceConfig reference;
  reference.budget = config.budget;
  reference.chunk_size = config.chunk_size;
  reference.checkpoints = config.checkpoints;
  PF_EXPECT_SAME_RUN(
      reference_run(reference_generator, matcher, reference),
      session.result());
}

// Same retry machinery, but the error comes from the matcher on the
// producer thread. The generator's stream had already advanced past the
// dropped chunk, so bitwise equality is off the table — what must hold is
// the accounting: the session completes its exact budget, every checkpoint
// lands, and nothing deadlocks on the tracker barrier.
TEST(SessionParallel, PipelineErrorFromMatcherKeepsAccountingConsistent) {
  class ThrowingMatcher : public Matcher {
   public:
    explicit ThrowingMatcher(const std::vector<std::string>& targets)
        : inner_(targets) {}
    bool contains(const std::string& password) const override {
      return inner_.contains(password);
    }
    std::size_t test_set_size() const override {
      return inner_.test_set_size();
    }
    std::string name() const override { return "throwing-matcher"; }
    void contains_batch(const std::vector<std::string>& batch,
                        util::ThreadPool* pool,
                        std::vector<char>& out) const override {
      if (++calls_ % 7 == 0) {
        throw std::runtime_error("transient matcher failure");
      }
      inner_.contains_batch(batch, pool, out);
    }

   private:
    HashSetMatcher inner_;
    mutable std::atomic<int> calls_{0};
  };

  ThrowingMatcher matcher(mixing_targets());
  util::ThreadPool pool(2);

  SessionConfig config;
  config.budget = 30000;
  config.chunk_size = 500;
  config.checkpoints = {10000, 20000, 30000};
  config.pipeline_depth = 2;
  config.pool = &pool;

  MixingGenerator generator;
  AttackSession session(generator, matcher, config);
  std::size_t errors = 0;
  while (!session.finished()) {
    try {
      if (!session.step()) break;
    } catch (const std::runtime_error&) {
      ++errors;
    }
  }
  EXPECT_GE(errors, 1u);
  EXPECT_TRUE(session.finished());

  const RunResult result = session.result();
  EXPECT_EQ(result.final().guesses, 30000u);
  ASSERT_EQ(result.checkpoints.size(), 3u);
  for (const Checkpoint& cp : result.checkpoints) {
    // Unique can never exceed produced, and the tracker folded every
    // consumed chunk exactly once — no double-folds from requeued chunks.
    EXPECT_LE(cp.unique, cp.guesses);
    EXPECT_GT(cp.unique, 0u);
  }
}

}  // namespace
}  // namespace passflow::guessing
