// Fleet freeze/thaw suite: AttackScheduler::save_state / load_state. The
// core invariant mirrors the session suite's — a fleet frozen at any slice
// boundary and thawed in a fresh scheduler finishes with per-scenario
// metrics bitwise identical to a never-interrupted run — plus the QoS
// ledger semantics: virtual clocks resume the same fair split, deadlines
// re-anchor by remaining time, latched outcomes survive, and corrupt
// streams leave the thawing scheduler untouched.
#include "guessing/scheduler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "reference_harness.hpp"

namespace passflow::guessing {
namespace {

using testing::MixingGenerator;
using testing::ReferenceConfig;
using testing::reference_run;

std::vector<std::string> mixing_targets(std::size_t period = 1 << 14) {
  std::vector<std::string> targets;
  for (std::size_t v = 0; v < period; v += 7) {
    targets.push_back("g" + std::to_string(v));
  }
  return targets;
}

SessionConfig chunked_config(std::size_t budget, std::size_t chunk_size) {
  SessionConfig config;
  config.budget = budget;
  config.chunk_size = chunk_size;
  config.checkpoints = {budget};
  return config;
}

RunResult expected_run(const Matcher& matcher, std::size_t period,
                       std::size_t budget, std::size_t chunk_size) {
  MixingGenerator generator(period);
  ReferenceConfig config;
  config.budget = budget;
  config.chunk_size = chunk_size;
  config.checkpoints = {budget};
  return reference_run(generator, matcher, config);
}

// Resolver over a bank of generators indexed by thaw order, asserting the
// saved registration order and labels round-trip.
struct GeneratorBank {
  std::vector<std::unique_ptr<MixingGenerator>> generators;
  const Matcher& matcher;

  AttackScheduler::ScenarioResolver resolver() {
    return [this](const AttackScheduler::ScenarioThawInfo& info)
               -> AttackScheduler::ScenarioBinding {
      EXPECT_LT(info.index, generators.size());
      return {*generators.at(info.index), matcher};
    };
  }
};

TEST(AttackSchedulerState, FrozenFleetFinishesBitwiseEqualExactTracking) {
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 3;
  const std::size_t periods[] = {1 << 14, 1 << 13, 1 << 12};
  const std::size_t budgets[] = {20000, 21000, 22000};

  AttackScheduler scheduler(fleet);
  MixingGenerator generators[] = {MixingGenerator(periods[0]),
                                  MixingGenerator(periods[1]),
                                  MixingGenerator(periods[2])};
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < 3; ++i) {
    ScenarioOptions options;
    options.name = "scn-" + std::to_string(i);
    options.weight = 1.0 + static_cast<double>(i);
    options.session = chunked_config(budgets[i], 512);
    ids.push_back(scheduler.add_scenario(generators[i], matcher, options));
  }

  for (int i = 0; i < 11; ++i) ASSERT_TRUE(scheduler.step());
  std::stringstream frozen;
  scheduler.save_state(frozen);
  // The saved fleet keeps running here too: freeze is a snapshot, not a
  // shutdown. (We drop it instead — the thawed one is the fleet under test.)

  GeneratorBank bank{{}, matcher};
  for (const std::size_t period : periods) {
    bank.generators.push_back(std::make_unique<MixingGenerator>(period));
  }
  AttackScheduler thawed(fleet);
  thawed.load_state(frozen, bank.resolver());

  ASSERT_EQ(thawed.scenario_count(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const ScenarioSnapshot snap = thawed.scenario(ids[i]);
    EXPECT_EQ(snap.name, "scn-" + std::to_string(i));
    EXPECT_DOUBLE_EQ(snap.weight, 1.0 + static_cast<double>(i));
  }

  while (thawed.step()) {
  }
  for (std::size_t i = 0; i < 3; ++i) {
    const RunResult expected =
        expected_run(matcher, periods[i], budgets[i], 512);
    ASSERT_GT(expected.final().matched, 0u);
    PF_EXPECT_SAME_RUN(expected, thawed.result(ids[i]));
    EXPECT_EQ(thawed.scenario(ids[i]).status, ScenarioStatus::kFinished);
  }
}

TEST(AttackSchedulerState, FrozenFleetFinishesBitwiseEqualSketchTracking) {
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 2;
  AttackScheduler scheduler(fleet);

  MixingGenerator generator(1 << 13);
  ScenarioOptions options;
  options.session = chunked_config(24000, 500);
  options.session.unique_tracking = UniqueTracking::kSketch;
  options.session.sketch_precision_bits = 14;
  const std::size_t id = scheduler.add_scenario(generator, matcher, options);

  for (int i = 0; i < 9; ++i) ASSERT_TRUE(scheduler.step());
  std::stringstream frozen;
  scheduler.save_state(frozen);

  GeneratorBank bank{{}, matcher};
  bank.generators.push_back(std::make_unique<MixingGenerator>(1 << 13));
  AttackScheduler thawed(fleet);
  thawed.load_state(frozen, bank.resolver());
  while (thawed.step()) {
  }

  // Sketch mode: compare against the same session run uninterrupted (the
  // reference loop tracks exactly; the sketch estimate must match the
  // sketch estimate, bitwise, not the exact count).
  MixingGenerator solo_generator(1 << 13);
  AttackSession solo(solo_generator, matcher, options.session);
  solo.run();
  PF_EXPECT_SAME_RUN(solo.result(), thawed.result(id));

  const SchedulerStats stats = thawed.aggregate();
  EXPECT_TRUE(stats.unique_union_valid);
  EXPECT_GT(stats.unique_union, 0u);
}

TEST(AttackSchedulerState, ResumedScheduleMakesTheSameFairShareDecisions) {
  // Virtual clocks are part of the state: 20 slices, freeze, thaw, 20 more
  // must allocate exactly like 40 uninterrupted slices.
  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  ScenarioOptions light_options;
  light_options.weight = 1.0;
  light_options.session = chunked_config(10000, 100);
  ScenarioOptions heavy_options;
  heavy_options.weight = 3.0;
  heavy_options.session = chunked_config(10000, 100);

  MixingGenerator light, heavy;
  AttackScheduler uninterrupted(fleet);
  const std::size_t light_id =
      uninterrupted.add_scenario(light, matcher, light_options);
  const std::size_t heavy_id =
      uninterrupted.add_scenario(heavy, matcher, heavy_options);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(uninterrupted.step());

  MixingGenerator light2, heavy2;
  AttackScheduler first_half(fleet);
  first_half.add_scenario(light2, matcher, light_options);
  first_half.add_scenario(heavy2, matcher, heavy_options);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(first_half.step());
  std::stringstream frozen;
  first_half.save_state(frozen);

  GeneratorBank bank{{}, matcher};
  bank.generators.push_back(std::make_unique<MixingGenerator>());
  bank.generators.push_back(std::make_unique<MixingGenerator>());
  AttackScheduler second_half(fleet);
  second_half.load_state(frozen, bank.resolver());
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(second_half.step());

  EXPECT_EQ(second_half.scenario(light_id).chunks_driven,
            uninterrupted.scenario(light_id).chunks_driven);
  EXPECT_EQ(second_half.scenario(heavy_id).chunks_driven,
            uninterrupted.scenario(heavy_id).chunks_driven);
}

TEST(AttackSchedulerState, PausedAndFinishedStatusesSurviveThaw) {
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator small, parked;
  ScenarioOptions small_options;
  small_options.session = chunked_config(1000, 500);
  ScenarioOptions parked_options;
  parked_options.start_paused = true;
  parked_options.session = chunked_config(1000, 500);
  const std::size_t small_id =
      scheduler.add_scenario(small, matcher, small_options);
  const std::size_t parked_id =
      scheduler.add_scenario(parked, matcher, parked_options);

  while (scheduler.scenario(small_id).status != ScenarioStatus::kFinished) {
    ASSERT_TRUE(scheduler.step());
  }
  const RunResult finished_before = scheduler.result(small_id);
  std::stringstream frozen;
  scheduler.save_state(frozen);

  GeneratorBank bank{{}, matcher};
  bank.generators.push_back(std::make_unique<MixingGenerator>());
  bank.generators.push_back(std::make_unique<MixingGenerator>());
  AttackScheduler thawed(fleet);
  thawed.load_state(frozen, bank.resolver());

  // Finished stays finished (results queryable, bitwise identical);
  // paused stays paused (takes no slices until resumed).
  EXPECT_EQ(thawed.scenario(small_id).status, ScenarioStatus::kFinished);
  PF_EXPECT_SAME_RUN(finished_before, thawed.result(small_id));
  EXPECT_EQ(thawed.scenario(parked_id).status, ScenarioStatus::kPaused);
  EXPECT_FALSE(thawed.step());
  EXPECT_TRUE(thawed.finished());

  thawed.resume_scenario(parked_id);
  while (thawed.step()) {
  }
  PF_EXPECT_SAME_RUN(expected_run(matcher, 1 << 14, 1000, 500),
                     thawed.result(parked_id));
}

TEST(AttackSchedulerState, ScenarioThawedPastDeadlineEscalatesAndLatches) {
  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator generator;
  ScenarioOptions options;
  options.deadline_seconds = 0.01;
  options.session = chunked_config(2000, 500);
  const std::size_t id = scheduler.add_scenario(generator, matcher, options);
  ASSERT_TRUE(scheduler.step());
  // Let the (soft) deadline lapse before freezing, so the save carries a
  // negative remaining time.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::stringstream frozen;
  scheduler.save_state(frozen);

  GeneratorBank bank{{}, matcher};
  bank.generators.push_back(std::make_unique<MixingGenerator>());
  AttackScheduler thawed(fleet);
  thawed.load_state(frozen, bank.resolver());

  // Past immediately on thaw — no grace period from re-anchoring — so
  // deadline_boost escalation is active from the very first pick.
  EXPECT_TRUE(thawed.scenario(id).past_deadline);
  EXPECT_EQ(thawed.aggregate().deadline_missed, 1u);

  while (thawed.step()) {
  }
  // Latched at finish: it finished late, and stays marked late.
  EXPECT_EQ(thawed.scenario(id).status, ScenarioStatus::kFinished);
  EXPECT_TRUE(thawed.scenario(id).past_deadline);
  EXPECT_EQ(thawed.aggregate().deadline_missed, 1u);
}

TEST(AttackSchedulerState, OnTimeFinishLatchSurvivesThawAndTime) {
  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator generator;
  ScenarioOptions options;
  options.deadline_seconds = 30.0;  // comfortably met
  options.session = chunked_config(1000, 500);
  const std::size_t id = scheduler.add_scenario(generator, matcher, options);
  while (scheduler.step()) {
  }
  ASSERT_EQ(scheduler.scenario(id).status, ScenarioStatus::kFinished);
  ASSERT_FALSE(scheduler.scenario(id).past_deadline);
  std::stringstream frozen;
  scheduler.save_state(frozen);

  GeneratorBank bank{{}, matcher};
  bank.generators.push_back(std::make_unique<MixingGenerator>());
  AttackScheduler thawed(fleet);
  thawed.load_state(frozen, bank.resolver());

  // A scenario that finished on time is on time forever — even thawed,
  // even once its original deadline instant is long past.
  EXPECT_FALSE(thawed.scenario(id).past_deadline);
  EXPECT_EQ(thawed.aggregate().deadline_missed, 0u);
}

TEST(AttackSchedulerState, RateCapLedgerSurvivesThaw) {
  HashSetMatcher matcher({"nothing"});
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator generator;
  ScenarioOptions options;
  options.rate_cap = 1e9;  // effectively uncapped, but the ledger is live
  options.session = chunked_config(3000, 500);
  const std::size_t id = scheduler.add_scenario(generator, matcher, options);
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(scheduler.step());
  std::stringstream frozen;
  scheduler.save_state(frozen);

  GeneratorBank bank{{}, matcher};
  bank.generators.push_back(std::make_unique<MixingGenerator>());
  AttackScheduler thawed(fleet);
  thawed.load_state(frozen, bank.resolver());

  EXPECT_DOUBLE_EQ(thawed.scenario(id).rate_cap, 1e9);
  while (thawed.step()) {
  }
  EXPECT_EQ(thawed.scenario(id).status, ScenarioStatus::kFinished);
  EXPECT_GT(thawed.scenario(id).achieved_guesses_per_second, 0.0);
  PF_EXPECT_SAME_RUN(expected_run(matcher, 1 << 14, 3000, 500),
                     thawed.result(id));
}

TEST(AttackSchedulerState, SaveIsASnapshotNotAShutdown) {
  // The frozen fleet keeps driving after save_state returns, and still
  // finishes with its solo metrics.
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);
  MixingGenerator generator;
  ScenarioOptions options;
  options.session = chunked_config(8000, 500);
  const std::size_t id = scheduler.add_scenario(generator, matcher, options);

  for (int i = 0; i < 5; ++i) ASSERT_TRUE(scheduler.step());
  std::stringstream frozen;
  scheduler.save_state(frozen);
  while (scheduler.step()) {
  }
  PF_EXPECT_SAME_RUN(expected_run(matcher, 1 << 14, 8000, 500),
                     scheduler.result(id));
}

TEST(AttackSchedulerState, LoadRequiresFreshSchedulerAndResolver) {
  HashSetMatcher matcher({"x"});
  SchedulerConfig fleet;
  AttackScheduler source(fleet);
  MixingGenerator generator;
  ScenarioOptions options;
  options.session = chunked_config(1000, 500);
  source.add_scenario(generator, matcher, options);
  std::stringstream frozen;
  source.save_state(frozen);

  GeneratorBank bank{{}, matcher};
  bank.generators.push_back(std::make_unique<MixingGenerator>());

  AttackScheduler used(fleet);
  MixingGenerator other;
  used.add_scenario(other, matcher, options);
  EXPECT_THROW(used.load_state(frozen, bank.resolver()), std::logic_error);

  frozen.clear();
  frozen.seekg(0);
  AttackScheduler fresh(fleet);
  EXPECT_THROW(fresh.load_state(frozen, nullptr), std::invalid_argument);
}

TEST(AttackSchedulerState, CorruptStreamLeavesThawingSchedulerUntouched) {
  HashSetMatcher matcher({"x"});
  SchedulerConfig fleet;
  AttackScheduler source(fleet);
  MixingGenerator generator;
  ScenarioOptions options;
  options.session = chunked_config(2000, 500);
  source.add_scenario(generator, matcher, options);
  std::stringstream frozen;
  source.save_state(frozen);
  const std::string good = frozen.str();

  GeneratorBank bank{{}, matcher};
  bank.generators.push_back(std::make_unique<MixingGenerator>());
  bank.generators.push_back(std::make_unique<MixingGenerator>());

  {
    std::stringstream bad_magic("NOTMAGIC" + good.substr(8));
    AttackScheduler target(fleet);
    EXPECT_THROW(target.load_state(bad_magic, bank.resolver()),
                 std::runtime_error);
    EXPECT_EQ(target.scenario_count(), 0u);
  }
  {
    std::stringstream truncated(good.substr(0, good.size() / 2));
    AttackScheduler target(fleet);
    EXPECT_THROW(target.load_state(truncated, bank.resolver()),
                 std::runtime_error);
    EXPECT_EQ(target.scenario_count(), 0u);
    // Still fresh: a later clean load must succeed.
    std::stringstream intact(good);
    target.load_state(intact, bank.resolver());
    EXPECT_EQ(target.scenario_count(), 1u);
    while (target.step()) {
    }
    EXPECT_TRUE(target.finished());
  }
}

TEST(AttackSchedulerState, RemovedScenariosAreExcludedFromTheSave) {
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  AttackScheduler scheduler(fleet);

  MixingGenerator keep, drop;
  ScenarioOptions options;
  options.session = chunked_config(8000, 500);
  const std::size_t keep_id = scheduler.add_scenario(keep, matcher, options);
  const std::size_t drop_id = scheduler.add_scenario(drop, matcher, options);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(scheduler.step());
  scheduler.remove_scenario(drop_id);

  std::stringstream frozen;
  scheduler.save_state(frozen);

  GeneratorBank bank{{}, matcher};
  bank.generators.push_back(std::make_unique<MixingGenerator>());
  AttackScheduler thawed(fleet);
  thawed.load_state(frozen, bank.resolver());
  EXPECT_EQ(thawed.scenario_count(), 1u);
  EXPECT_NO_THROW(thawed.scenario(keep_id));
  EXPECT_THROW(thawed.scenario(drop_id), std::out_of_range);

  // Ids keep advancing from where the source fleet left off: a new
  // scenario added post-thaw must not collide with the removed id's
  // successor space.
  MixingGenerator late;
  const std::size_t late_id = thawed.add_scenario(late, matcher, options);
  EXPECT_GT(late_id, drop_id);
}

TEST(AttackSchedulerState, SaveUnderConcurrentDriversIsAConsistentCut) {
  // Freeze while run() drivers are live: the quiesce gate must produce a
  // chunk-boundary-consistent snapshot, and the thawed fleet still ends
  // bitwise equal to solo runs.
  HashSetMatcher matcher(mixing_targets());
  SchedulerConfig fleet;
  fleet.slice_chunks = 1;
  fleet.max_concurrent = 4;
  const std::size_t periods[] = {1 << 14, 1 << 12};
  AttackScheduler scheduler(fleet);
  MixingGenerator a(periods[0]), b(periods[1]);
  ScenarioOptions options;
  options.session = chunked_config(60000, 250);
  std::vector<std::size_t> ids;
  ids.push_back(scheduler.add_scenario(a, matcher, options));
  ids.push_back(scheduler.add_scenario(b, matcher, options));

  std::thread driver([&] { scheduler.run(); });
  // Freeze repeatedly while the fleet is hot; keep the last snapshot.
  std::stringstream frozen;
  for (int i = 0; i < 5; ++i) {
    std::stringstream snap;
    scheduler.save_state(snap);
    frozen = std::move(snap);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  driver.join();

  GeneratorBank bank{{}, matcher};
  for (const std::size_t period : periods) {
    bank.generators.push_back(std::make_unique<MixingGenerator>(period));
  }
  AttackScheduler thawed(fleet);
  thawed.load_state(frozen, bank.resolver());
  thawed.run();
  for (std::size_t i = 0; i < 2; ++i) {
    PF_EXPECT_SAME_RUN(expected_run(matcher, periods[i], 60000, 250),
                       thawed.result(ids[i]));
  }
}

}  // namespace
}  // namespace passflow::guessing
