// AttackSession::load_state hardening suite, driven by the golden corrupt
// fixtures in tests/fixtures/state/ (see its README for the damage table).
// Two properties under test: every damaged stream is rejected with the
// right message class, and a rejected load POISONS the session — no
// half-thawed attack may ever step to silently-wrong metrics.
#include "guessing/session.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "reference_harness.hpp"
#include "util/cardinality_sketch.hpp"
#include "util/serial_io.hpp"

namespace passflow::guessing {
namespace {

using testing::MixingGenerator;
using testing::ReferenceConfig;
using testing::reference_run;

std::string fixture_path(const std::string& name) {
  return std::string(PASSFLOW_TEST_FIXTURE_DIR) + "/state/" + name;
}

std::ifstream open_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  return in;
}

std::vector<std::string> mixing_targets(std::size_t period = 1 << 14) {
  std::vector<std::string> targets;
  for (std::size_t v = 0; v < period; v += 7) {
    targets.push_back("g" + std::to_string(v));
  }
  return targets;
}

// The run shape the golden fixtures were saved under (see the README).
SessionConfig fixture_config() {
  SessionConfig config;
  config.budget = 20000;
  config.chunk_size = 1000;
  config.checkpoints = {20000};
  return config;
}

void expect_throws_containing(const std::function<void()>& fn,
                              const std::string& needle) {
  try {
    fn();
    FAIL() << "expected an exception mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

// A session whose load_state threw must be poisoned: stepping, reporting,
// saving or merging it throws std::logic_error instead of running on
// half-thawed state.
void expect_poisoned(AttackSession& session) {
  EXPECT_THROW(session.step(), std::logic_error);
  EXPECT_THROW(session.result(), std::logic_error);
  std::ostringstream out;
  EXPECT_THROW(session.save_state(out), std::logic_error);
  util::CardinalitySketch sketch(14);
  EXPECT_THROW(session.merge_unique_sketch(sketch), std::logic_error);
}

TEST(SessionStateErrors, ValidFixtureThawsAndFinishesBitwiseEqual) {
  HashSetMatcher matcher(mixing_targets());
  MixingGenerator generator;
  AttackSession session(generator, matcher, fixture_config());
  auto in = open_fixture("valid.state");
  session.load_state(in);
  EXPECT_EQ(session.stats().produced, 7000u);
  session.run();

  MixingGenerator reference_generator;
  ReferenceConfig reference;
  reference.budget = 20000;
  reference.chunk_size = 1000;
  reference.checkpoints = {20000};
  const RunResult expected =
      reference_run(reference_generator, matcher, reference);
  ASSERT_GT(expected.final().matched, 0u);
  PF_EXPECT_SAME_RUN(expected, session.result());
}

TEST(SessionStateErrors, BadMagicIsRejectedAndPoisons) {
  HashSetMatcher matcher(mixing_targets());
  MixingGenerator generator;
  AttackSession session(generator, matcher, fixture_config());
  auto in = open_fixture("bad_magic.state");
  expect_throws_containing([&] { session.load_state(in); }, "bad magic");
  expect_poisoned(session);
}

TEST(SessionStateErrors, WrongFormatVersionIsRejectedAndPoisons) {
  // The format version lives inside the magic tag (PFSESS1), so a version
  // bump reads as a magic mismatch — still a loud, early rejection.
  HashSetMatcher matcher(mixing_targets());
  MixingGenerator generator;
  AttackSession session(generator, matcher, fixture_config());
  auto in = open_fixture("wrong_version.state");
  expect_throws_containing([&] { session.load_state(in); }, "bad magic");
  expect_poisoned(session);
}

TEST(SessionStateErrors, TruncatedStreamIsRejectedAndPoisons) {
  HashSetMatcher matcher(mixing_targets());
  MixingGenerator generator;
  AttackSession session(generator, matcher, fixture_config());
  auto in = open_fixture("truncated.state");
  expect_throws_containing([&] { session.load_state(in); }, "truncated");
  expect_poisoned(session);
}

TEST(SessionStateErrors, ConfigShapeMismatchIsRejectedAndPoisons) {
  // config_mismatch.state is a perfectly intact save — of a different run
  // shape. The config echo must reject it before any state is trusted.
  HashSetMatcher matcher(mixing_targets());
  MixingGenerator generator;
  AttackSession session(generator, matcher, fixture_config());
  auto in = open_fixture("config_mismatch.state");
  expect_throws_containing([&] { session.load_state(in); },
                           "does not match this config");
  expect_poisoned(session);
}

TEST(SessionStateErrors, GeneratorNameMismatchIsRejectedAndPoisons) {
  class RenamedMixing : public MixingGenerator {
   public:
    std::string name() const override { return "not-mixing"; }
  };
  HashSetMatcher matcher(mixing_targets());
  RenamedMixing generator;
  AttackSession session(generator, matcher, fixture_config());
  auto in = open_fixture("valid.state");
  expect_throws_containing([&] { session.load_state(in); },
                           "produced by generator");
  expect_poisoned(session);
}

TEST(SessionStateErrors, PoisonedLoadRejectsASecondLoadAttempt) {
  // Retrying a load on a poisoned session must throw too: partial state
  // from the first attempt could otherwise mix into the second.
  HashSetMatcher matcher(mixing_targets());
  MixingGenerator generator;
  AttackSession session(generator, matcher, fixture_config());
  auto bad = open_fixture("truncated.state");
  EXPECT_THROW(session.load_state(bad), std::runtime_error);
  auto good = open_fixture("valid.state");
  EXPECT_THROW(session.load_state(good), std::logic_error);
}

TEST(SessionStateErrors, FailedLoadDoesNotPoisonOtherSessions) {
  HashSetMatcher matcher(mixing_targets());
  MixingGenerator broken_generator, clean_generator;
  AttackSession broken(broken_generator, matcher, fixture_config());
  auto bad = open_fixture("bad_magic.state");
  EXPECT_THROW(broken.load_state(bad), std::runtime_error);

  AttackSession clean(clean_generator, matcher, fixture_config());
  auto good = open_fixture("valid.state");
  clean.load_state(good);
  clean.run();
  EXPECT_EQ(clean.result().final().guesses, 20000u);
}

TEST(SessionStateErrors, ImplausibleLengthFieldIsACleanErrorNotAnAllocation) {
  // Flip a length prefix to a huge value: the bounded reader must reject
  // it as corruption before attempting a multi-gigabyte allocation.
  std::ifstream in(fixture_path("valid.state"), std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::stringstream bytes;
  bytes << in.rdbuf();
  std::string raw = bytes.str();
  // The generator-name length prefix sits right after the 8-byte magic;
  // stamp it with a value far past kMaxSerializedLength.
  const std::uint64_t huge = util::io::kMaxSerializedLength * 64;
  for (std::size_t b = 0; b < 8; ++b) {
    raw[8 + b] = static_cast<char>((huge >> (8 * b)) & 0xFF);
  }
  HashSetMatcher matcher(mixing_targets());
  MixingGenerator generator;
  AttackSession session(generator, matcher, fixture_config());
  std::istringstream corrupt(raw);
  expect_throws_containing([&] { session.load_state(corrupt); },
                           "implausible serialized length");
  expect_poisoned(session);
}

}  // namespace
}  // namespace passflow::guessing
