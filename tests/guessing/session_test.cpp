// AttackSession equivalence and behavior suite (serial paths): the session
// must reproduce the seed run_guessing loop's metrics bitwise, sharded
// matchers must agree with the single hash set for every shard count, the
// sketch tracker must land within 2% of exact on a million-guess stream,
// and save/resume must be indistinguishable from an uninterrupted run.
// The pipelined (multi-threaded) paths live in session_parallel_test.cpp.
#include "guessing/session.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "guessing/harness.hpp"
#include "reference_harness.hpp"

namespace passflow::guessing {
namespace {

using testing::MixingGenerator;
using testing::ReferenceConfig;
using testing::reference_run;

// Target set the MixingGenerator actually hits: every 7th distinct value.
std::vector<std::string> mixing_targets(std::size_t period = 1 << 14) {
  MixingGenerator generator(period);
  std::vector<std::string> targets;
  for (std::size_t v = 0; v < period; v += 7) {
    targets.push_back("g" + std::to_string(v));
  }
  return targets;
}

SessionConfig base_config(std::size_t budget) {
  SessionConfig config;
  config.budget = budget;
  config.chunk_size = 1000;
  return config;
}

TEST(AttackSession, SerialRunMatchesReferenceBitwise) {
  HashSetMatcher matcher(mixing_targets());

  MixingGenerator ref_gen;
  ReferenceConfig ref_config;
  ref_config.budget = 54321;
  ref_config.chunk_size = 1000;
  const RunResult expected = reference_run(ref_gen, matcher, ref_config);

  MixingGenerator gen;
  AttackSession session(gen, matcher, base_config(54321));
  session.run();
  const RunResult actual = session.result();

  ASSERT_GT(expected.final().matched, 0u);
  PF_EXPECT_SAME_RUN(expected, actual);
}

TEST(AttackSession, CustomCheckpointsAndNoTrackingMatchReference) {
  HashSetMatcher matcher(mixing_targets());

  ReferenceConfig ref_config;
  ref_config.budget = 5000;
  ref_config.chunk_size = 4096;  // larger than checkpoint spacing
  ref_config.checkpoints = {10, 100, 2500, 5000};
  ref_config.track_unique = false;
  MixingGenerator ref_gen;
  const RunResult expected = reference_run(ref_gen, matcher, ref_config);

  SessionConfig config;
  config.budget = 5000;
  config.chunk_size = 4096;
  config.checkpoints = {2500, 10, 5000, 100};  // session sorts
  config.unique_tracking = UniqueTracking::kOff;
  MixingGenerator gen;
  AttackSession session(gen, matcher, config);
  session.run();

  const RunResult actual = session.result();
  ASSERT_EQ(actual.checkpoints.size(), 4u);
  EXPECT_EQ(actual.checkpoints[0].guesses, 10u);
  EXPECT_EQ(actual.final().unique, 0u);
  PF_EXPECT_SAME_RUN(expected, actual);
}

TEST(AttackSession, WrapperRunGuessingMatchesReference) {
  HashSetMatcher matcher(mixing_targets());

  MixingGenerator ref_gen;
  ReferenceConfig ref_config;
  ref_config.budget = 20000;
  ref_config.chunk_size = 777;
  const RunResult expected = reference_run(ref_gen, matcher, ref_config);

  MixingGenerator gen;
  HarnessConfig harness;
  harness.budget = 20000;
  harness.chunk_size = 777;
  const RunResult actual = run_guessing(gen, matcher, harness);
  PF_EXPECT_SAME_RUN(expected, actual);
}

TEST(AttackSession, StepAdvancesOneChunkAtATime) {
  HashSetMatcher matcher({"nothing"});
  MixingGenerator gen;
  SessionConfig config;
  config.budget = 3500;
  config.chunk_size = 1000;
  config.checkpoints = {3500};
  AttackSession session(gen, matcher, config);

  EXPECT_TRUE(session.step());
  EXPECT_EQ(session.stats().produced, 1000u);
  EXPECT_TRUE(session.step());
  EXPECT_EQ(session.stats().produced, 2000u);
  EXPECT_TRUE(session.step());
  EXPECT_TRUE(session.step());  // final short chunk
  EXPECT_EQ(session.stats().produced, 3500u);
  EXPECT_TRUE(session.finished());
  EXPECT_FALSE(session.step());  // exhausted: no-op
  EXPECT_EQ(session.stats().produced, 3500u);
}

TEST(AttackSession, RunUntilStopsAtTarget) {
  HashSetMatcher matcher({"nothing"});
  MixingGenerator gen;
  AttackSession session(gen, matcher, base_config(100000));

  const SessionStats& stats = session.run_until(30000);
  EXPECT_GE(stats.produced, 30000u);
  EXPECT_LT(stats.produced, 100000u);
  EXPECT_FALSE(stats.finished);

  session.run();
  EXPECT_EQ(session.stats().produced, 100000u);
  EXPECT_TRUE(session.stats().finished);
}

TEST(AttackSession, MidRunResultAppendsPartialCheckpoint) {
  HashSetMatcher matcher(mixing_targets());
  MixingGenerator gen;
  AttackSession session(gen, matcher, base_config(100000));
  session.run_until(5000);

  const RunResult mid = session.result();
  EXPECT_EQ(mid.final().guesses, session.stats().produced);
  // The partial snapshot must agree with a reference run truncated at the
  // same produced count.
  MixingGenerator ref_gen;
  ReferenceConfig ref_config;
  ref_config.budget = mid.final().guesses;
  ref_config.chunk_size = 1000;
  const RunResult expected = reference_run(ref_gen, matcher, ref_config);
  EXPECT_EQ(mid.final().unique, expected.final().unique);
  EXPECT_EQ(mid.final().matched, expected.final().matched);
}

TEST(AttackSession, StatsTrackProgressMonotonically) {
  HashSetMatcher matcher(mixing_targets());
  MixingGenerator gen;
  AttackSession session(gen, matcher, base_config(20000));
  std::size_t last_produced = 0;
  std::size_t last_matched = 0;
  while (session.step()) {
    const SessionStats& stats = session.stats();
    EXPECT_GT(stats.produced, last_produced);
    EXPECT_GE(stats.matched, last_matched);
    last_produced = stats.produced;
    last_matched = stats.matched;
  }
  EXPECT_GT(session.stats().guesses_per_second, 0.0);
}

// ---- feedback generators (serial path delivers on_match) -----------------

class FeedbackProbe : public MixingGenerator {
 public:
  void on_match(std::size_t index_in_batch,
                const std::string& password) override {
    match_indices.push_back(index_in_batch);
    match_passwords.push_back(password);
  }
  bool uses_match_feedback() const override { return true; }
  std::string name() const override { return "feedback-probe"; }

  std::vector<std::size_t> match_indices;
  std::vector<std::string> match_passwords;
};

TEST(AttackSession, FeedbackGeneratorReceivesOnMatchSerially) {
  HashSetMatcher matcher(mixing_targets());

  FeedbackProbe ref_gen;
  ReferenceConfig ref_config;
  ref_config.budget = 10000;
  ref_config.chunk_size = 1000;
  const RunResult expected = reference_run(ref_gen, matcher, ref_config);

  FeedbackProbe gen;
  AttackSession session(gen, matcher, base_config(10000));
  session.run();

  ASSERT_FALSE(ref_gen.match_passwords.empty());
  EXPECT_EQ(gen.match_indices, ref_gen.match_indices);
  EXPECT_EQ(gen.match_passwords, ref_gen.match_passwords);
  PF_EXPECT_SAME_RUN(expected, session.result());
}

// ---- sharded matcher -----------------------------------------------------

TEST(ShardedMatcher, AgreesWithHashSetOnProbes) {
  const auto targets = mixing_targets();
  HashSetMatcher reference(targets);
  for (const std::size_t shards : {1u, 4u, 7u}) {
    ShardedMatcher sharded(targets, shards);
    EXPECT_EQ(sharded.test_set_size(), reference.test_set_size());
    EXPECT_EQ(sharded.shard_count(), shards);
    MixingGenerator gen;
    std::vector<std::string> probes;
    gen.generate(5000, probes);
    for (const auto& probe : probes) {
      EXPECT_EQ(sharded.contains(probe), reference.contains(probe)) << probe;
    }
  }
}

TEST(ShardedMatcher, ShardsPartitionTheTestSet) {
  const auto targets = mixing_targets();
  ShardedMatcher sharded(targets, 5);
  std::size_t total = 0;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    total += sharded.shard_size(s);
  }
  EXPECT_EQ(total, sharded.test_set_size());
}

TEST(ShardedMatcher, SessionMetricsIdenticalForAnyShardCount) {
  const auto targets = mixing_targets();
  HashSetMatcher reference_matcher(targets);

  MixingGenerator ref_gen;
  ReferenceConfig ref_config;
  ref_config.budget = 30000;
  ref_config.chunk_size = 1000;
  const RunResult expected =
      reference_run(ref_gen, reference_matcher, ref_config);
  ASSERT_GT(expected.final().matched, 0u);

  for (const std::size_t shards : {1u, 4u, 7u}) {
    ShardedMatcher sharded(targets, shards);
    MixingGenerator gen;
    AttackSession session(gen, sharded, base_config(30000));
    session.run();
    const RunResult actual = session.result();
    PF_EXPECT_SAME_RUN(expected, actual);
  }
}

TEST(ShardedMatcher, ZeroShardsThrows) {
  EXPECT_THROW(ShardedMatcher({}, 0), std::invalid_argument);
}

// ---- sketch unique tracking ----------------------------------------------

TEST(AttackSession, SketchUniqueWithinTwoPercentOnMillionGuesses) {
  // 10^6 guesses over a duplicated stream (~2^17 distinct values): the
  // sketch estimate at every checkpoint must stay within 2% of the exact
  // tracker's count on the identical stream.
  HashSetMatcher matcher({"unreachable"});

  SessionConfig exact_config = base_config(1000000);
  exact_config.chunk_size = 16384;
  MixingGenerator exact_gen(1 << 17);
  AttackSession exact_session(exact_gen, matcher, exact_config);
  exact_session.run();
  const RunResult exact = exact_session.result();

  SessionConfig sketch_config = exact_config;
  sketch_config.unique_tracking = UniqueTracking::kSketch;
  sketch_config.sketch_precision_bits = 14;
  MixingGenerator sketch_gen(1 << 17);
  AttackSession sketch_session(sketch_gen, matcher, sketch_config);
  sketch_session.run();
  const RunResult sketch = sketch_session.result();

  ASSERT_EQ(exact.checkpoints.size(), sketch.checkpoints.size());
  for (std::size_t i = 0; i < exact.checkpoints.size(); ++i) {
    const double exact_unique =
        static_cast<double>(exact.checkpoints[i].unique);
    const double sketch_unique =
        static_cast<double>(sketch.checkpoints[i].unique);
    EXPECT_NEAR(sketch_unique, exact_unique, 0.02 * exact_unique)
        << "at checkpoint " << exact.checkpoints[i].guesses;
  }
}

TEST(AttackSession, ExactShardedTrackerCountsIdentically) {
  HashSetMatcher matcher(mixing_targets());

  MixingGenerator ref_gen;
  ReferenceConfig ref_config;
  ref_config.budget = 30000;
  ref_config.chunk_size = 1000;
  const RunResult expected = reference_run(ref_gen, matcher, ref_config);

  for (const std::size_t shards : {2u, 5u}) {
    SessionConfig config = base_config(30000);
    config.unique_shards = shards;
    MixingGenerator gen;
    AttackSession session(gen, matcher, config);
    session.run();
    PF_EXPECT_SAME_RUN(expected, session.result());
  }
}

// ---- save / resume -------------------------------------------------------

TEST(AttackSession, SaveResumeEqualsUninterruptedRun) {
  HashSetMatcher matcher(mixing_targets());

  MixingGenerator whole_gen;
  AttackSession whole(whole_gen, matcher, base_config(50000));
  whole.run();
  const RunResult expected = whole.result();

  MixingGenerator first_gen;
  AttackSession first(first_gen, matcher, base_config(50000));
  first.run_until(23000);
  std::stringstream frozen;
  first.save_state(frozen);

  MixingGenerator second_gen;
  AttackSession second(second_gen, matcher, base_config(50000));
  second.load_state(frozen);
  EXPECT_EQ(second.stats().produced, first.stats().produced);
  second.run();

  PF_EXPECT_SAME_RUN(expected, second.result());
}

TEST(AttackSession, SavedSessionKeepsRunningAfterSave) {
  HashSetMatcher matcher(mixing_targets());

  MixingGenerator whole_gen;
  AttackSession whole(whole_gen, matcher, base_config(40000));
  whole.run();
  const RunResult expected = whole.result();

  MixingGenerator gen;
  AttackSession session(gen, matcher, base_config(40000));
  session.run_until(11000);
  std::stringstream frozen;
  session.save_state(frozen);  // snapshot, then keep going
  session.run();
  PF_EXPECT_SAME_RUN(expected, session.result());
}

TEST(AttackSession, SaveResumeWithSketchTracker) {
  HashSetMatcher matcher(mixing_targets());

  SessionConfig config = base_config(40000);
  config.unique_tracking = UniqueTracking::kSketch;

  MixingGenerator whole_gen;
  AttackSession whole(whole_gen, matcher, config);
  whole.run();
  const RunResult expected = whole.result();

  MixingGenerator first_gen;
  AttackSession first(first_gen, matcher, config);
  first.run_until(17000);
  std::stringstream frozen;
  first.save_state(frozen);

  MixingGenerator second_gen;
  AttackSession second(second_gen, matcher, config);
  second.load_state(frozen);
  second.run();
  PF_EXPECT_SAME_RUN(expected, second.result());
}

TEST(AttackSession, SaveStateRequiresSerializableGenerator) {
  class Opaque : public GuessGenerator {
   public:
    void generate(std::size_t n, std::vector<std::string>& out) override {
      for (std::size_t i = 0; i < n; ++i) out.push_back("x");
    }
    std::string name() const override { return "opaque"; }
  };
  HashSetMatcher matcher({});
  Opaque gen;
  AttackSession session(gen, matcher, base_config(1000));
  session.run_until(500);
  std::stringstream out;
  EXPECT_THROW(session.save_state(out), std::logic_error);
}

TEST(AttackSession, LoadStateValidatesRunShape) {
  HashSetMatcher matcher({});
  MixingGenerator gen;
  AttackSession session(gen, matcher, base_config(10000));
  session.run_until(3000);
  std::stringstream frozen;
  session.save_state(frozen);

  MixingGenerator other_gen;
  AttackSession mismatched(other_gen, matcher, base_config(20000));
  EXPECT_THROW(mismatched.load_state(frozen), std::runtime_error);

  MixingGenerator late_gen;
  AttackSession already_running(late_gen, matcher, base_config(10000));
  already_running.run_until(1000);
  frozen.clear();
  frozen.seekg(0);
  EXPECT_THROW(already_running.load_state(frozen), std::logic_error);
}

TEST(AttackSession, LoadStateRejectsDifferentGenerator) {
  class RenamedMixing : public MixingGenerator {
   public:
    std::string name() const override { return "other-strategy"; }
  };
  HashSetMatcher matcher({});
  MixingGenerator gen;
  AttackSession session(gen, matcher, base_config(10000));
  session.run_until(3000);
  std::stringstream frozen;
  session.save_state(frozen);

  RenamedMixing other_gen;
  AttackSession other(other_gen, matcher, base_config(10000));
  EXPECT_THROW(other.load_state(frozen), std::runtime_error);
}

TEST(AttackSession, SharedMatcherOwnershipWorks) {
  auto matcher = std::make_shared<const HashSetMatcher>(mixing_targets());
  MixingGenerator gen;
  SessionConfig config = base_config(10000);
  AttackSession session(gen, MatcherRef(matcher), config);
  session.run();
  EXPECT_GT(session.result().final().matched, 0u);
}

TEST(AttackSession, ZeroChunkSizeRejected) {
  HashSetMatcher matcher({});
  MixingGenerator gen;
  SessionConfig config;
  config.chunk_size = 0;
  EXPECT_THROW(AttackSession(gen, matcher, config), std::invalid_argument);
}

}  // namespace
}  // namespace passflow::guessing
