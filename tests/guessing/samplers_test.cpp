// Tests for StaticSampler, DynamicSampler (Algorithm 1), Gaussian Smoothing
// and PivotSampler on a small untrained/randomized flow — the sampler logic
// is independent of model quality.
#include <gtest/gtest.h>

#include <unordered_set>

#include "data/alphabet.hpp"
#include "guessing/dynamic_sampler.hpp"
#include "guessing/harness.hpp"
#include "guessing/pivot_sampler.hpp"
#include "guessing/static_sampler.hpp"
#include "test_support.hpp"

namespace passflow::guessing {
namespace {

class SamplerTest : public ::testing::Test {
 protected:
  // The shared trained tiny flow is a non-trivial map, which is all the
  // sampler logic needs; training happens once per process.
  SamplerTest()
      : encoder_(passflow::testing::tiny_trained_flow().encoder),
        model_(passflow::testing::tiny_trained_flow().model) {}

  const data::Encoder& encoder_;
  const flow::FlowModel& model_;
};

TEST_F(SamplerTest, StaticProducesRequestedCount) {
  StaticSampler sampler(model_, encoder_);
  std::vector<std::string> out;
  sampler.generate(1000, out);
  EXPECT_EQ(out.size(), 1000u);
}

TEST_F(SamplerTest, StaticIsDeterministicPerSeed) {
  StaticSamplerConfig config;
  config.seed = 5;
  StaticSampler a(model_, encoder_, config);
  StaticSampler b(model_, encoder_, config);
  std::vector<std::string> out_a, out_b;
  a.generate(200, out_a);
  b.generate(200, out_b);
  EXPECT_EQ(out_a, out_b);
}

TEST_F(SamplerTest, StaticOutputsAreDecodable) {
  StaticSampler sampler(model_, encoder_);
  std::vector<std::string> out;
  sampler.generate(500, out);
  for (const auto& p : out) {
    EXPECT_LE(p.size(), 6u);
    EXPECT_TRUE(encoder_.alphabet().validates(p)) << p;
  }
}

TEST_F(SamplerTest, StaticNameReflectsSmoothing) {
  StaticSamplerConfig config;
  EXPECT_EQ(StaticSampler(model_, encoder_, config).name(), "PassFlow-Static");
  config.smoothing.enabled = true;
  EXPECT_EQ(StaticSampler(model_, encoder_, config).name(),
            "PassFlow-Static+GS");
}

TEST_F(SamplerTest, DynamicStaysStaticBeforeAlphaMatches) {
  DynamicSamplerConfig config;
  config.alpha = 10;
  DynamicSampler sampler(model_, encoder_, config);
  std::vector<std::string> out;
  sampler.generate(100, out);
  EXPECT_FALSE(sampler.dynamic_active());
  // Register fewer than alpha matches.
  for (std::size_t i = 0; i < 10; ++i) sampler.on_match(i, out[i]);
  EXPECT_FALSE(sampler.dynamic_active());  // needs strictly more than alpha
  sampler.on_match(10, out[10]);
  EXPECT_TRUE(sampler.dynamic_active());
}

TEST_F(SamplerTest, DynamicRegistersMatchLatents) {
  DynamicSampler sampler(model_, encoder_);
  std::vector<std::string> out;
  sampler.generate(50, out);
  EXPECT_EQ(sampler.match_count(), 0u);
  sampler.on_match(3, out[3]);
  sampler.on_match(7, out[7]);
  EXPECT_EQ(sampler.match_count(), 2u);
}

TEST_F(SamplerTest, DynamicIgnoresOutOfRangeIndex) {
  DynamicSampler sampler(model_, encoder_);
  std::vector<std::string> out;
  sampler.generate(10, out);
  sampler.on_match(9999, "whatever");
  EXPECT_EQ(sampler.match_count(), 0u);
}

TEST_F(SamplerTest, PhiAgesOutComponentsAfterGamma) {
  DynamicSamplerConfig config;
  config.alpha = 0;  // activate immediately after the first match
  config.gamma = 2;
  config.batch_size = 64;
  DynamicSampler sampler(model_, encoder_, config);
  std::vector<std::string> out;
  sampler.generate(64, out);
  sampler.on_match(0, out[0]);
  EXPECT_EQ(sampler.active_component_count(), 1u);

  // Each generate() call with an active component ages it by one.
  out.clear();
  sampler.generate(64, out);  // age 0 -> 1
  EXPECT_EQ(sampler.active_component_count(), 1u);
  out.clear();
  sampler.generate(64, out);  // age 1 -> 2 == gamma -> inactive
  EXPECT_EQ(sampler.active_component_count(), 0u);
  EXPECT_FALSE(sampler.dynamic_active());
}

TEST_F(SamplerTest, PhiDisabledKeepsComponentsActiveForever) {
  DynamicSamplerConfig config;
  config.alpha = 0;
  config.gamma = 1;
  config.use_phi = false;  // Fig. 5 "without phi" mode
  config.batch_size = 32;
  DynamicSampler sampler(model_, encoder_, config);
  std::vector<std::string> out;
  sampler.generate(32, out);
  sampler.on_match(0, out[0]);
  for (int i = 0; i < 5; ++i) {
    out.clear();
    sampler.generate(32, out);
  }
  EXPECT_EQ(sampler.active_component_count(), 1u);
}

TEST_F(SamplerTest, DynamicSamplesConcentrateNearMatchedLatent) {
  // With a tiny sigma, guesses after a match should frequently repeat the
  // matched password (that is exactly the collision behavior §III-C
  // describes).
  DynamicSamplerConfig config;
  config.alpha = 0;
  config.sigma = 0.001;  // tight ball: the trained flow is a sharper map
                         // than the old perturbed-identity fixture
  config.gamma = 1000000;
  config.batch_size = 256;
  DynamicSampler sampler(model_, encoder_, config);
  std::vector<std::string> out;
  sampler.generate(256, out);
  const std::string matched = out[17];
  sampler.on_match(17, matched);

  out.clear();
  sampler.generate(256, out);
  std::size_t repeats = 0;
  for (const auto& p : out) {
    if (p == matched) ++repeats;
  }
  EXPECT_GT(repeats, 128u);  // strong concentration
}

TEST_F(SamplerTest, GaussianSmoothingReducesCollisions) {
  // Same setup as above, but with GS enabled the repeated-password rate
  // must drop substantially (§III-C's motivation).
  DynamicSamplerConfig base;
  base.alpha = 0;
  base.sigma = 0.01;
  base.gamma = 1000000;
  base.batch_size = 512;

  auto collision_rate = [&](bool with_gs) {
    DynamicSamplerConfig config = base;
    config.smoothing.enabled = with_gs;
    config.smoothing.sigma_bins = 0.8;
    DynamicSampler sampler(model_, encoder_, config);
    std::vector<std::string> out;
    sampler.generate(512, out);
    sampler.on_match(0, out[0]);
    out.clear();
    sampler.generate(512, out);
    std::unordered_set<std::string> unique(out.begin(), out.end());
    return 1.0 - static_cast<double>(unique.size()) / 512.0;
  };

  const double without_gs = collision_rate(false);
  const double with_gs = collision_rate(true);
  EXPECT_LT(with_gs, without_gs);
}

TEST_F(SamplerTest, Table1ParameterSchedule) {
  EXPECT_EQ(table1_parameters(10000).alpha, 1u);
  EXPECT_EQ(table1_parameters(10000).gamma, 2u);
  EXPECT_EQ(table1_parameters(100000).alpha, 1u);
  EXPECT_EQ(table1_parameters(1000000).alpha, 5u);
  EXPECT_EQ(table1_parameters(10000000).alpha, 50u);
  EXPECT_EQ(table1_parameters(10000000).gamma, 10u);
  EXPECT_DOUBLE_EQ(table1_parameters(100000000).sigma, 0.15);
  EXPECT_DOUBLE_EQ(table1_parameters(10000).sigma, 0.12);
}

TEST_F(SamplerTest, DynamicNameReflectsConfiguration) {
  DynamicSamplerConfig config;
  EXPECT_EQ(DynamicSampler(model_, encoder_, config).name(),
            "PassFlow-Dynamic");
  config.smoothing.enabled = true;
  EXPECT_EQ(DynamicSampler(model_, encoder_, config).name(),
            "PassFlow-Dynamic+GS");
  config.smoothing.enabled = false;
  config.use_phi = false;
  EXPECT_EQ(DynamicSampler(model_, encoder_, config).name(),
            "PassFlow-Dynamic-nophi");
}

TEST_F(SamplerTest, PhiKindNamesRoundTrip) {
  for (const std::string name : {"step", "linear", "exponential", "uniform"}) {
    EXPECT_EQ(phi_kind_name(parse_phi_kind(name)), name);
  }
  EXPECT_THROW(parse_phi_kind("quadratic"), std::invalid_argument);
}

TEST_F(SamplerTest, LinearPhiAgesOutAtGamma) {
  DynamicSamplerConfig config;
  config.alpha = 0;
  config.gamma = 3;
  config.phi_kind = PhiKind::kLinear;
  config.batch_size = 32;
  DynamicSampler sampler(model_, encoder_, config);
  std::vector<std::string> out;
  sampler.generate(32, out);
  sampler.on_match(0, out[0]);
  // Ages 0,1,2 keep positive weight; age 3 == gamma drops to zero.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sampler.active_component_count(), 1u) << "iteration " << i;
    out.clear();
    sampler.generate(32, out);
  }
  EXPECT_EQ(sampler.active_component_count(), 0u);
}

TEST_F(SamplerTest, ExponentialPhiDecaysButSurvivesGamma) {
  DynamicSamplerConfig config;
  config.alpha = 0;
  config.gamma = 2;
  config.phi_kind = PhiKind::kExponential;
  config.batch_size = 32;
  DynamicSampler sampler(model_, encoder_, config);
  std::vector<std::string> out;
  sampler.generate(32, out);
  sampler.on_match(0, out[0]);
  // exp(-age/gamma) stays above the 0.01 cutoff well past gamma.
  for (int i = 0; i < 4; ++i) {
    out.clear();
    sampler.generate(32, out);
  }
  EXPECT_EQ(sampler.active_component_count(), 1u);
}

TEST_F(SamplerTest, PivotSamplerReturnsUniquePasswords) {
  PivotSampler pivot(model_, encoder_, "jimmy1");
  util::Rng rng(7);
  const auto samples = pivot.sample_unique(10, 0.15, rng);
  EXPECT_EQ(samples.size(), 10u);
  std::unordered_set<std::string> unique(samples.begin(), samples.end());
  EXPECT_EQ(unique.size(), samples.size());
}

TEST_F(SamplerTest, PivotSamplerSmallSigmaStaysCloseToPivot) {
  // At sigma -> 0 every sample decodes to the pivot itself, so requesting
  // many unique strings must stop at max_attempts with few results.
  PivotSampler pivot(model_, encoder_, "abc123");
  util::Rng rng(8);
  const auto samples = pivot.sample_unique(50, 1e-6, rng, 2048);
  EXPECT_LT(samples.size(), 5u);
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples[0], "abc123");  // round-trip of the pivot
}

TEST_F(SamplerTest, PivotLatentMatchesForwardPass) {
  PivotSampler pivot(model_, encoder_, "pass12");
  const auto z = pivot.pivot_latent();
  EXPECT_EQ(z.size(), 6u);
}

TEST_F(SamplerTest, SmoothingSigmaZeroIsNoop) {
  nn::Matrix x(3, 4, 0.25f);
  util::Rng rng(9);
  apply_gaussian_smoothing(x, 0.0, encoder_.bin_width(), rng);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(x.data()[i], 0.25f);
  }
}

TEST_F(SamplerTest, SmoothingPerturbationScalesWithSigma) {
  util::Rng rng(10);
  nn::Matrix x_small(100, 10, 0.5f);
  nn::Matrix x_large(100, 10, 0.5f);
  apply_gaussian_smoothing(x_small, 0.1, encoder_.bin_width(), rng);
  apply_gaussian_smoothing(x_large, 2.0, encoder_.bin_width(), rng);
  double dev_small = 0.0, dev_large = 0.0;
  for (std::size_t i = 0; i < x_small.size(); ++i) {
    dev_small += std::abs(x_small.data()[i] - 0.5);
    dev_large += std::abs(x_large.data()[i] - 0.5);
  }
  EXPECT_LT(dev_small, dev_large / 5.0);
}

}  // namespace
}  // namespace passflow::guessing
