#include "data/alphabet.hpp"

#include <gtest/gtest.h>

namespace passflow::data {
namespace {

TEST(Alphabet, PadIsCodeZero) {
  const Alphabet& a = Alphabet::standard();
  EXPECT_EQ(a.char_of(0), '\0');
}

TEST(Alphabet, StandardContainsExpectedClasses) {
  const Alphabet& a = Alphabet::standard();
  EXPECT_TRUE(a.contains('a'));
  EXPECT_TRUE(a.contains('z'));
  EXPECT_TRUE(a.contains('0'));
  EXPECT_TRUE(a.contains('9'));
  EXPECT_TRUE(a.contains('A'));
  EXPECT_TRUE(a.contains('!'));
  EXPECT_FALSE(a.contains(' '));
  EXPECT_FALSE(a.contains('\n'));
}

TEST(Alphabet, CompactIsLowercaseAndDigitsOnly) {
  const Alphabet& a = Alphabet::compact();
  EXPECT_EQ(a.size(), 37u);  // PAD + 26 + 10
  EXPECT_TRUE(a.contains('m'));
  EXPECT_TRUE(a.contains('5'));
  EXPECT_FALSE(a.contains('M'));
  EXPECT_FALSE(a.contains('!'));
}

TEST(Alphabet, CodeCharRoundTrip) {
  const Alphabet& a = Alphabet::standard();
  for (std::size_t code = 1; code < a.size(); ++code) {
    const char c = a.char_of(code);
    const auto back = a.code_of(c);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, code);
  }
}

TEST(Alphabet, CodeOfUnknownIsNullopt) {
  EXPECT_FALSE(Alphabet::compact().code_of('~').has_value());
}

TEST(Alphabet, CharOfOutOfRangeThrows) {
  const Alphabet& a = Alphabet::compact();
  EXPECT_THROW(a.char_of(a.size()), std::out_of_range);
}

TEST(Alphabet, ValidatesAcceptsGoodRejectsBad) {
  const Alphabet& a = Alphabet::compact();
  EXPECT_TRUE(a.validates("abc123"));
  EXPECT_TRUE(a.validates(""));
  EXPECT_FALSE(a.validates("ABC"));
  EXPECT_FALSE(a.validates("with space"));
  EXPECT_FALSE(a.validates(std::string(1, '\0')));
}

TEST(Alphabet, SanitizeReplacesOutOfAlphabet) {
  const Alphabet& a = Alphabet::compact();
  EXPECT_EQ(a.sanitize("He llo!", 'x'), "xexllox");
  EXPECT_EQ(a.sanitize("abc"), "abc");
  EXPECT_EQ(a.sanitize("aBc", 'q'), "aqc");
}

TEST(Alphabet, DuplicateSymbolThrows) {
  EXPECT_THROW(Alphabet("aa"), std::invalid_argument);
}

TEST(Alphabet, SizeIncludesPad) {
  Alphabet a("xyz");
  EXPECT_EQ(a.size(), 4u);
}

}  // namespace
}  // namespace passflow::data
