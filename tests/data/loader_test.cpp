#include "data/loader.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace passflow::data {
namespace {

TEST(Loader, KeepsValidLines) {
  std::istringstream in("abc123\nqwerty\n");
  LoadStats stats;
  const auto passwords =
      load_password_lines(in, Alphabet::compact(), {}, &stats);
  EXPECT_EQ(passwords, (std::vector<std::string>{"abc123", "qwerty"}));
  EXPECT_EQ(stats.kept, 2u);
  EXPECT_EQ(stats.total_lines, 2u);
}

TEST(Loader, StripsCarriageReturns) {
  std::istringstream in("abc\r\nxyz\r\n");
  const auto passwords = load_password_lines(in, Alphabet::compact(), {});
  EXPECT_EQ(passwords, (std::vector<std::string>{"abc", "xyz"}));
}

TEST(Loader, FiltersTooLongAndCountsThem) {
  LoadOptions options;
  options.max_length = 4;
  std::istringstream in("ok12\ntoolongline\nfine\n");
  LoadStats stats;
  const auto passwords =
      load_password_lines(in, Alphabet::compact(), options, &stats);
  EXPECT_EQ(passwords.size(), 2u);
  EXPECT_EQ(stats.too_long, 1u);
}

TEST(Loader, FiltersOutOfAlphabet) {
  std::istringstream in("good1\nBad!\nok\n");
  LoadStats stats;
  const auto passwords =
      load_password_lines(in, Alphabet::compact(), {}, &stats);
  EXPECT_EQ(passwords, (std::vector<std::string>{"good1", "ok"}));
  EXPECT_EQ(stats.out_of_alphabet, 1u);
}

TEST(Loader, LowercaseFoldRescuesMixedCase) {
  LoadOptions options;
  options.lowercase = true;
  std::istringstream in("MiXeD1\n");
  const auto passwords =
      load_password_lines(in, Alphabet::compact(), options);
  EXPECT_EQ(passwords, (std::vector<std::string>{"mixed1"}));
}

TEST(Loader, SkipsEmptyLines) {
  std::istringstream in("\n\nreal\n");
  LoadStats stats;
  const auto passwords =
      load_password_lines(in, Alphabet::compact(), {}, &stats);
  EXPECT_EQ(passwords.size(), 1u);
  EXPECT_EQ(stats.empty, 2u);
}

TEST(Loader, MaxEntriesStopsEarly) {
  LoadOptions options;
  options.max_entries = 2;
  std::istringstream in("a1\nb2\nc3\nd4\n");
  const auto passwords =
      load_password_lines(in, Alphabet::compact(), options);
  EXPECT_EQ(passwords.size(), 2u);
}

TEST(Loader, MissingFileThrows) {
  EXPECT_THROW(load_password_file("/no/such/file.txt", Alphabet::compact()),
               std::runtime_error);
}

TEST(Loader, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "pf_loader_test.txt";
  {
    std::ofstream out(path);
    out << "hello1\nworld2\n";
  }
  const auto passwords = load_password_file(path, Alphabet::compact());
  EXPECT_EQ(passwords.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace passflow::data
