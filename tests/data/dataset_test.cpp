#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace passflow::data {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  Encoder encoder_{Alphabet::compact(), 8};
};

TEST_F(DatasetTest, RejectsEmpty) {
  EXPECT_THROW(Dataset({}, encoder_), std::invalid_argument);
}

TEST_F(DatasetTest, RejectsUnrepresentablePassword) {
  EXPECT_THROW(Dataset({"waytoolongpassword"}, encoder_),
               std::invalid_argument);
  EXPECT_THROW(Dataset({"UPPER"}, encoder_), std::invalid_argument);
}

TEST_F(DatasetTest, BatchesCoverEpochExactlyOnce) {
  std::vector<std::string> passwords;
  for (int i = 0; i < 10; ++i) passwords.push_back("pw" + std::to_string(i));
  Dataset dataset(passwords, encoder_);
  util::Rng rng(1);
  dataset.start_epoch(rng);

  nn::Matrix batch;
  std::multiset<std::string> seen;
  std::size_t total = 0;
  while (dataset.next_batch(3, rng, batch) > 0) {
    total += batch.rows();
    for (const auto& p : encoder_.decode_batch(batch)) seen.insert(p);
  }
  EXPECT_EQ(total, passwords.size());
  for (const auto& p : passwords) EXPECT_EQ(seen.count(p), 1u);
}

TEST_F(DatasetTest, NextBatchReturnsZeroAtEnd) {
  Dataset dataset({"one1"}, encoder_);
  util::Rng rng(2);
  dataset.start_epoch(rng);
  nn::Matrix batch;
  EXPECT_EQ(dataset.next_batch(8, rng, batch), 1u);
  EXPECT_EQ(dataset.next_batch(8, rng, batch), 0u);
}

TEST_F(DatasetTest, StartEpochReshuffles) {
  std::vector<std::string> passwords;
  for (int i = 0; i < 50; ++i) passwords.push_back("p" + std::to_string(i));
  Dataset dataset(passwords, encoder_);
  util::Rng rng(3);

  auto epoch_order = [&]() {
    dataset.start_epoch(rng);
    nn::Matrix batch;
    std::vector<std::string> order;
    while (dataset.next_batch(50, rng, batch) > 0) {
      const auto decoded = encoder_.decode_batch(batch);
      order.insert(order.end(), decoded.begin(), decoded.end());
    }
    return order;
  };
  EXPECT_NE(epoch_order(), epoch_order());
}

TEST_F(DatasetTest, BatchesPerEpochCeils) {
  std::vector<std::string> passwords(10, "same");
  Dataset dataset(passwords, encoder_);
  EXPECT_EQ(dataset.batches_per_epoch(3), 4u);
  EXPECT_EQ(dataset.batches_per_epoch(5), 2u);
  EXPECT_EQ(dataset.batches_per_epoch(100), 1u);
}

}  // namespace
}  // namespace passflow::data
