#include "data/synthetic_rockyou.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "data/alphabet.hpp"

namespace passflow::data {
namespace {

TEST(SyntheticRockyou, DeterministicForSameSeed) {
  SyntheticRockyou a({}, 7);
  SyntheticRockyou b({}, 7);
  EXPECT_EQ(a.generate(500), b.generate(500));
}

TEST(SyntheticRockyou, DifferentSeedsDiffer) {
  SyntheticRockyou a({}, 1);
  SyntheticRockyou b({}, 2);
  EXPECT_NE(a.generate(100), b.generate(100));
}

TEST(SyntheticRockyou, RespectsLengthBounds) {
  CorpusConfig config;
  config.max_length = 10;
  config.min_length = 4;
  SyntheticRockyou gen(config, 11);
  for (const auto& p : gen.generate(5000)) {
    EXPECT_GE(p.size(), 4u) << p;
    EXPECT_LE(p.size(), 10u) << p;
  }
}

TEST(SyntheticRockyou, AllPasswordsInStandardAlphabet) {
  SyntheticRockyou gen({}, 13);
  const Alphabet& alphabet = Alphabet::standard();
  for (const auto& p : gen.generate(5000)) {
    EXPECT_TRUE(alphabet.validates(p)) << p;
  }
}

TEST(SyntheticRockyou, HeadIsHeavyLikeRealLeaks) {
  SyntheticRockyou gen({}, 17);
  const auto corpus = gen.generate(50000);
  std::unordered_map<std::string, int> counts;
  for (const auto& p : corpus) ++counts[p];
  // The most frequent password should dominate the mean frequency
  // massively, as "123456" does in RockYou.
  int max_count = 0;
  for (const auto& [_, c] : counts) max_count = std::max(max_count, c);
  const double mean_count =
      static_cast<double>(corpus.size()) / static_cast<double>(counts.size());
  EXPECT_GT(max_count, 20.0 * mean_count);
}

TEST(SyntheticRockyou, HasSubstantialUniqueSupport) {
  SyntheticRockyou gen({}, 19);
  const auto corpus = gen.generate(50000);
  std::unordered_set<std::string> unique(corpus.begin(), corpus.end());
  // Heavy head but long tail: a large fraction of distinct strings.
  EXPECT_GT(unique.size(), corpus.size() / 10);
}

TEST(SyntheticRockyou, ContainsClassicPatterns) {
  SyntheticRockyou gen({}, 23);
  const auto corpus = gen.generate(100000);
  std::unordered_set<std::string> unique(corpus.begin(), corpus.end());
  EXPECT_TRUE(unique.count("123456"));
  EXPECT_TRUE(unique.count("password") || unique.count("iloveyou") ||
              unique.count("qwerty"));
}

TEST(MakeSplit, TrainHasRequestedSize) {
  SyntheticRockyou gen({}, 29);
  const auto corpus = gen.generate(20000);
  util::Rng rng(1);
  const auto split = make_rockyou_style_split(corpus, 5000, rng);
  EXPECT_EQ(split.train.size(), 5000u);
}

TEST(MakeSplit, TrainSizeClampedToPartition) {
  SyntheticRockyou gen({}, 31);
  const auto corpus = gen.generate(1000);
  util::Rng rng(2);
  const auto split = make_rockyou_style_split(corpus, 100000, rng);
  EXPECT_EQ(split.train.size(), 800u);  // 80% of 1000
}

TEST(MakeSplit, TestSetIsUnique) {
  SyntheticRockyou gen({}, 37);
  const auto corpus = gen.generate(30000);
  util::Rng rng(3);
  const auto split = make_rockyou_style_split(corpus, 5000, rng);
  std::unordered_set<std::string> seen;
  for (const auto& p : split.test_unique) {
    EXPECT_TRUE(seen.insert(p).second) << "duplicate in test set: " << p;
  }
}

TEST(MakeSplit, TestSetDisjointFromTrain) {
  SyntheticRockyou gen({}, 41);
  const auto corpus = gen.generate(30000);
  util::Rng rng(4);
  const auto split = make_rockyou_style_split(corpus, 5000, rng);
  const std::unordered_set<std::string> train(split.train.begin(),
                                              split.train.end());
  for (const auto& p : split.test_unique) {
    EXPECT_FALSE(train.count(p)) << "leaked into test: " << p;
  }
}

TEST(MakeSplit, TestSetNonEmptyOnRealisticCorpus) {
  SyntheticRockyou gen({}, 43);
  const auto corpus = gen.generate(30000);
  util::Rng rng(5);
  const auto split = make_rockyou_style_split(corpus, 5000, rng);
  EXPECT_GT(split.test_unique.size(), 500u);
}

TEST(FocusedCorpus, OutputsCompactAlphabetOnly) {
  data::SyntheticRockyou gen(focused_corpus_config(8), 51);
  const Alphabet& compact = Alphabet::compact();
  for (const auto& p : gen.generate(5000)) {
    EXPECT_TRUE(compact.validates(p)) << p;
    EXPECT_LE(p.size(), 8u);
  }
}

TEST(FocusedCorpus, SmallerSupportThanDefault) {
  // The focused preset concentrates the distribution: fewer distinct
  // strings for the same number of draws.
  SyntheticRockyou focused(focused_corpus_config(8), 53);
  CorpusConfig default_config;
  default_config.max_length = 8;
  SyntheticRockyou standard(default_config, 53);
  auto count_unique = [](std::vector<std::string> corpus) {
    std::unordered_set<std::string> unique(corpus.begin(), corpus.end());
    return unique.size();
  };
  EXPECT_LT(count_unique(focused.generate(30000)),
            count_unique(standard.generate(30000)));
}

TEST(FocusedCorpus, StillHeavyTailed) {
  SyntheticRockyou gen(focused_corpus_config(8), 57);
  const auto corpus = gen.generate(30000);
  std::unordered_map<std::string, int> counts;
  for (const auto& p : corpus) ++counts[p];
  int max_count = 0;
  for (const auto& [_, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 100);                // heavy head
  EXPECT_GT(counts.size(), 2000u);          // long tail
}

class CorpusSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CorpusSizeTest, GenerateProducesExactCount) {
  SyntheticRockyou gen({}, 47);
  EXPECT_EQ(gen.generate(GetParam()).size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CorpusSizeTest,
                         ::testing::Values(0, 1, 10, 1000, 12345));

}  // namespace
}  // namespace passflow::data
