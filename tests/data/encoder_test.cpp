#include "data/encoder.hpp"

#include <gtest/gtest.h>

#include <string>

namespace passflow::data {
namespace {

TEST(Encoder, DimMatchesMaxLength) {
  Encoder enc(Alphabet::compact(), 10);
  EXPECT_EQ(enc.dim(), 10u);
}

TEST(Encoder, RejectsZeroLength) {
  EXPECT_THROW(Encoder(Alphabet::compact(), 0), std::invalid_argument);
}

TEST(Encoder, EncodeDecodeRoundTrip) {
  Encoder enc(Alphabet::compact(), 8);
  const std::vector<std::string> cases = {"abc",    "password", "12345678",
                                          "a1b2c3", "z",        ""};
  for (const std::string& password : cases) {
    EXPECT_EQ(enc.decode(enc.encode(password)), password) << password;
  }
}

TEST(Encoder, EncodeRejectsTooLong) {
  Encoder enc(Alphabet::compact(), 4);
  EXPECT_THROW(enc.encode("toolong"), std::invalid_argument);
}

TEST(Encoder, EncodeRejectsOutOfAlphabet) {
  Encoder enc(Alphabet::compact(), 8);
  EXPECT_THROW(enc.encode("ABC"), std::invalid_argument);
}

TEST(Encoder, ValuesAreInUnitInterval) {
  Encoder enc(Alphabet::compact(), 8);
  const auto features = enc.encode("abc123");
  for (float f : features) {
    EXPECT_GT(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Encoder, PadFillsTail) {
  Encoder enc(Alphabet::compact(), 6);
  const auto features = enc.encode("ab");
  // Positions 2..5 are PAD (code 0), whose bin center is 0.5*bin_width.
  const float pad_value = 0.5f * enc.bin_width();
  for (std::size_t i = 2; i < 6; ++i) {
    EXPECT_FLOAT_EQ(features[i], pad_value);
  }
}

TEST(Encoder, DecodeStopsAtInteriorPad) {
  Encoder enc(Alphabet::compact(), 6);
  auto features = enc.encode("abcdef");
  features[2] = 0.5f * enc.bin_width();  // force PAD at position 2
  EXPECT_EQ(enc.decode(features), "ab");
}

TEST(Encoder, DecodeClampsOutOfRangeValues) {
  Encoder enc(Alphabet::compact(), 3);
  // Values beyond 1.0 clamp to the last symbol; below 0 clamp to PAD.
  std::vector<float> features = {5.0f, 0.1f, -3.0f};
  const std::string decoded = enc.decode(features);
  ASSERT_FALSE(decoded.empty());
  EXPECT_EQ(decoded[0], '9');  // last symbol of the compact alphabet
}

TEST(Encoder, DequantizedStaysInBin) {
  Encoder enc(Alphabet::compact(), 8);
  util::Rng rng(1);
  const std::string password = "secret12";
  const auto exact = enc.encode(password);
  for (int trial = 0; trial < 200; ++trial) {
    const auto noisy = enc.encode_dequantized(password, rng);
    // Every dequantized vector must decode back to the same password.
    EXPECT_EQ(enc.decode(noisy), password);
    for (std::size_t i = 0; i < noisy.size(); ++i) {
      EXPECT_NEAR(noisy[i], exact[i], 0.5f * enc.bin_width() + 1e-6f);
    }
  }
}

TEST(Encoder, BatchEncodingMatchesSingle) {
  Encoder enc(Alphabet::compact(), 8);
  const std::vector<std::string> passwords = {"aaa", "bb1", "c2c2"};
  const nn::Matrix batch = enc.encode_batch(passwords);
  ASSERT_EQ(batch.rows(), 3u);
  for (std::size_t r = 0; r < passwords.size(); ++r) {
    const auto single = enc.encode(passwords[r]);
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_FLOAT_EQ(batch(r, c), single[c]);
    }
  }
}

TEST(Encoder, DecodeBatchRoundTrip) {
  Encoder enc(Alphabet::compact(), 8);
  const std::vector<std::string> passwords = {"hello", "w0rld", "12ab"};
  const auto decoded = enc.decode_batch(enc.encode_batch(passwords));
  EXPECT_EQ(decoded, passwords);
}

// Property sweep: random passwords over the alphabet round-trip through
// both deterministic and dequantized encodings.
class EncoderRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(EncoderRoundTripTest, RandomPasswordsRoundTrip) {
  const Alphabet& alphabet = Alphabet::standard();
  Encoder enc(alphabet, 10);
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t len = rng.uniform_index(11);
    std::string password;
    for (std::size_t i = 0; i < len; ++i) {
      // Codes 1..size-1 (skip PAD).
      password += alphabet.char_of(1 + rng.uniform_index(alphabet.size() - 1));
    }
    EXPECT_EQ(enc.decode(enc.encode(password)), password);
    EXPECT_EQ(enc.decode(enc.encode_dequantized(password, rng)), password);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace passflow::data
