// Unit coverage of the distributed fleet's pure pieces: protocol message
// round-trips and decode validation, shard-range splitting, the reconnect
// backoff schedule, and Worker construction contracts. No sockets here —
// transport and multi-process behavior live in distributed_fleet_test.
#include "dist/protocol.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "dist/backoff.hpp"
#include "dist/worker.hpp"
#include "guessing/scheduler.hpp"
#include "guessing/unique_tracker.hpp"

namespace passflow::dist {
namespace {

AssignMsg sample_assign() {
  AssignMsg assign;
  assign.task_id = 42;
  assign.scenario_id = 7;
  assign.name = "markov static";
  assign.generator_spec = "mixing:4096";
  assign.matcher_spec = "index:/tmp/test.pfidx";
  assign.session.budget = 123456;
  assign.session.chunk_size = 777;
  assign.session.non_matched_samples = 13;
  assign.session.unique_tracking = guessing::UniqueTracking::kSketch;
  assign.session.unique_shards = 4;
  assign.session.sketch_precision_bits = 12;
  assign.session.pipeline_depth = 3;
  assign.session.log_progress = true;
  assign.session.checkpoints = {100, 10000, 123456};
  assign.shard_begin = 2;
  assign.shard_end = 5;
  assign.checkpoint_chunks = 8;
  assign.union_precision_bits = 14;
  assign.resume_state = std::string("state\0bytes\n\xff", 13);
  return assign;
}

TEST(Protocol, HelloRoundTrips) {
  HelloMsg hello;
  hello.pid = 12345;
  hello.label = "worker-a";
  const Message decoded = decode(encode(hello));
  const auto& out = std::get<HelloMsg>(decoded);
  EXPECT_EQ(out.protocol_version, kProtocolVersion);
  EXPECT_EQ(out.pid, 12345u);
  EXPECT_EQ(out.label, "worker-a");
}

TEST(Protocol, AssignRoundTripsEveryField) {
  const AssignMsg assign = sample_assign();
  const Message decoded = decode(encode(assign));
  const auto& out = std::get<AssignMsg>(decoded);
  EXPECT_EQ(out.task_id, assign.task_id);
  EXPECT_EQ(out.scenario_id, assign.scenario_id);
  EXPECT_EQ(out.name, assign.name);
  EXPECT_EQ(out.generator_spec, assign.generator_spec);
  EXPECT_EQ(out.matcher_spec, assign.matcher_spec);
  EXPECT_EQ(out.session.budget, assign.session.budget);
  EXPECT_EQ(out.session.chunk_size, assign.session.chunk_size);
  EXPECT_EQ(out.session.non_matched_samples,
            assign.session.non_matched_samples);
  EXPECT_EQ(out.session.unique_tracking, assign.session.unique_tracking);
  EXPECT_EQ(out.session.unique_shards, assign.session.unique_shards);
  EXPECT_EQ(out.session.sketch_precision_bits,
            assign.session.sketch_precision_bits);
  EXPECT_EQ(out.session.pipeline_depth, assign.session.pipeline_depth);
  EXPECT_EQ(out.session.log_progress, assign.session.log_progress);
  EXPECT_EQ(out.session.checkpoints, assign.session.checkpoints);
  EXPECT_EQ(out.session.pool, nullptr);  // never travels
  EXPECT_EQ(out.shard_begin, assign.shard_begin);
  EXPECT_EQ(out.shard_end, assign.shard_end);
  EXPECT_EQ(out.checkpoint_chunks, assign.checkpoint_chunks);
  EXPECT_EQ(out.union_precision_bits, assign.union_precision_bits);
  EXPECT_EQ(out.resume_state, assign.resume_state);
}

TEST(Protocol, ResultRoundTripsRunResult) {
  ResultMsg result;
  result.task_id = 9;
  result.test_set_size = 500;
  result.sketch = std::string("\x01\x02\x00\x03", 4);
  guessing::Checkpoint cp;
  cp.guesses = 1000;
  cp.unique = 900;
  cp.matched = 17;
  cp.matched_percent = 3.4;
  result.result.checkpoints = {cp};
  result.result.matched_passwords = {"alpha", "beta"};
  result.result.sample_non_matched = {"zzz"};
  result.result.seconds = 1.25;

  const Message decoded = decode(encode(result));
  const auto& out = std::get<ResultMsg>(decoded);
  EXPECT_EQ(out.task_id, 9u);
  EXPECT_EQ(out.test_set_size, 500u);
  EXPECT_EQ(out.sketch, result.sketch);
  ASSERT_EQ(out.result.checkpoints.size(), 1u);
  EXPECT_EQ(out.result.checkpoints[0].guesses, 1000u);
  EXPECT_EQ(out.result.checkpoints[0].unique, 900u);
  EXPECT_EQ(out.result.checkpoints[0].matched, 17u);
  EXPECT_DOUBLE_EQ(out.result.checkpoints[0].matched_percent, 3.4);
  EXPECT_EQ(out.result.matched_passwords, result.result.matched_passwords);
  EXPECT_EQ(out.result.sample_non_matched, result.result.sample_non_matched);
  EXPECT_DOUBLE_EQ(out.result.seconds, 1.25);
}

TEST(Protocol, SmallMessagesRoundTrip) {
  EXPECT_EQ(std::get<WelcomeMsg>(decode(encode(WelcomeMsg{31}))).worker_id,
            31u);
  EXPECT_EQ(std::get<HeartbeatMsg>(decode(encode(HeartbeatMsg{777})))
                .produced_total,
            777u);
  CheckpointMsg checkpoint;
  checkpoint.task_id = 3;
  checkpoint.state = std::string("\0\0frozen", 8);
  const Message decoded = decode(encode(checkpoint));
  const auto& out = std::get<CheckpointMsg>(decoded);
  EXPECT_EQ(out.task_id, 3u);
  EXPECT_EQ(out.state, checkpoint.state);
  EXPECT_TRUE(
      std::holds_alternative<ShutdownMsg>(decode(encode(ShutdownMsg{}))));
}

TEST(Protocol, MessageNamesAreStable) {
  EXPECT_STREQ(message_name(HelloMsg{}), "Hello");
  EXPECT_STREQ(message_name(AssignMsg{}), "Assign");
  EXPECT_STREQ(message_name(ShutdownMsg{}), "Shutdown");
  EXPECT_STREQ(message_name(StrengthQueryMsg{}), "StrengthQuery");
  EXPECT_STREQ(message_name(StrengthReplyMsg{}), "StrengthReply");
}

TEST(Protocol, StrengthQueryRoundTripsHostileCandidates) {
  StrengthQueryMsg query;
  query.request_id = 0xdeadbeefcafe1234ull;
  // Candidates are arbitrary bytes: empty, embedded NUL, non-ASCII.
  query.candidates = {"123456", "", std::string("we\x00ird", 6),
                      "p\xc3\xa4ss", std::string(300, 'q')};
  const Message decoded = decode(encode(query));
  const auto& out = std::get<StrengthQueryMsg>(decoded);
  EXPECT_EQ(out.request_id, query.request_id);
  EXPECT_EQ(out.candidates, query.candidates);
}

TEST(Protocol, StrengthReplyRoundTripsEstimatesAndInfinities) {
  StrengthReplyMsg reply;
  reply.request_id = 77;
  reply.status = StrengthStatus::kOk;
  StrengthEstimate weak;
  weak.log_prob = -2.5;
  weak.guess_number = 3.0;
  weak.in_index = true;
  weak.representable = true;
  StrengthEstimate unrepresentable;
  unrepresentable.log_prob = -std::numeric_limits<double>::infinity();
  unrepresentable.guess_number = std::numeric_limits<double>::infinity();
  unrepresentable.in_index = true;
  unrepresentable.representable = false;
  StrengthEstimate plain;
  plain.log_prob = -33.125;
  plain.guess_number = 1e9;
  reply.estimates = {weak, unrepresentable, plain};

  const Message decoded = decode(encode(reply));
  const auto& out = std::get<StrengthReplyMsg>(decoded);
  EXPECT_EQ(out.request_id, 77u);
  EXPECT_EQ(out.status, StrengthStatus::kOk);
  ASSERT_EQ(out.estimates.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.estimates[i].log_prob, reply.estimates[i].log_prob);
    EXPECT_EQ(out.estimates[i].guess_number, reply.estimates[i].guess_number);
    EXPECT_EQ(out.estimates[i].in_index, reply.estimates[i].in_index);
    EXPECT_EQ(out.estimates[i].representable, reply.estimates[i].representable);
  }

  StrengthReplyMsg refusal;
  refusal.request_id = 78;
  refusal.status = StrengthStatus::kOverloaded;
  const auto& refused =
      std::get<StrengthReplyMsg>(decode(encode(refusal)));
  EXPECT_EQ(refused.status, StrengthStatus::kOverloaded);
  EXPECT_TRUE(refused.estimates.empty());
}

TEST(Protocol, StrengthReplyRejectsInvalidStatusAndFlags) {
  StrengthReplyMsg reply;
  reply.request_id = 1;
  reply.estimates.resize(1);
  // Payload layout: tag u64 | request_id u64 | status u64 | count u64 |
  // estimate {log_prob f64 | guess_number f64 | flags u64}.
  std::string bad_status = encode(Message{reply});
  bad_status[16] = 7;
  EXPECT_THROW(decode(bad_status), std::runtime_error);
  std::string bad_flags = encode(Message{reply});
  bad_flags[48] = 0x0F;
  EXPECT_THROW(decode(bad_flags), std::runtime_error);
}

TEST(Protocol, StrengthMessagesRejectTruncationAndTrailingBytes) {
  StrengthQueryMsg query;
  query.request_id = 5;
  query.candidates = {"abc", "de"};
  const std::string query_payload = encode(Message{query});
  for (std::size_t length = 0; length < query_payload.size(); ++length) {
    EXPECT_THROW(decode(query_payload.substr(0, length)), std::runtime_error)
        << "query truncated at " << length;
  }
  EXPECT_THROW(decode(query_payload + "x"), std::runtime_error);

  StrengthReplyMsg reply;
  reply.estimates.resize(2);
  const std::string reply_payload = encode(Message{reply});
  for (std::size_t length = 0; length < reply_payload.size(); ++length) {
    EXPECT_THROW(decode(reply_payload.substr(0, length)), std::runtime_error)
        << "reply truncated at " << length;
  }
  EXPECT_THROW(decode(reply_payload + "x"), std::runtime_error);
}

TEST(Protocol, DecodeRejectsUnknownTag) {
  std::string payload(8, '\0');
  payload[0] = '\x63';  // tag 99
  EXPECT_THROW(decode(payload), std::runtime_error);
}

TEST(Protocol, DecodeRejectsTruncationAndTrailingBytes) {
  const std::string good = encode(sample_assign());
  EXPECT_THROW(decode(good.substr(0, good.size() / 2)), std::runtime_error);
  EXPECT_THROW(decode(good + "x"), std::runtime_error);
  EXPECT_THROW(decode(std::string()), std::runtime_error);
}

TEST(Protocol, DecodeRejectsInvalidTrackingMode) {
  AssignMsg assign = sample_assign();
  std::string payload = encode(assign);
  // The tracking-mode field sits at a fixed offset: tag + task + scenario
  // + 3 length-prefixed strings + 3 config u64s. Find it by flipping it
  // through encode of a modified struct instead of offset arithmetic.
  assign.session.unique_tracking = guessing::UniqueTracking::kOff;
  const std::string payload_off = encode(assign);
  ASSERT_EQ(payload.size(), payload_off.size());
  std::size_t diff = payload.size();
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (payload[i] != payload_off[i]) {
      diff = i;
      break;
    }
  }
  ASSERT_LT(diff, payload.size());
  payload[diff] = '\x17';  // tracking mode 23: out of range
  EXPECT_THROW(decode(payload), std::runtime_error);
}

TEST(ShardRanges, PartitionsWithBalancedSizes) {
  const auto ranges = guessing::split_shard_ranges(10, 3);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[0].end, 4u);  // remainder shard goes first
  EXPECT_EQ(ranges[1].begin, 4u);
  EXPECT_EQ(ranges[1].end, 7u);
  EXPECT_EQ(ranges[2].begin, 7u);
  EXPECT_EQ(ranges[2].end, 10u);
}

TEST(ShardRanges, CoversEveryShardExactlyOnce) {
  for (std::size_t shards = 1; shards <= 17; ++shards) {
    for (std::size_t parts = 1; parts <= 6; ++parts) {
      const auto ranges = guessing::split_shard_ranges(shards, parts);
      std::size_t covered = 0;
      std::size_t expect_begin = 0;
      for (const auto& range : ranges) {
        EXPECT_EQ(range.begin, expect_begin);
        EXPECT_LT(range.begin, range.end);
        covered += range.end - range.begin;
        expect_begin = range.end;
      }
      EXPECT_EQ(covered, shards);
      EXPECT_EQ(ranges.size(), std::min(parts, shards));
    }
  }
}

TEST(ShardRanges, RejectsZeroCounts) {
  EXPECT_THROW(guessing::split_shard_ranges(0, 2), std::invalid_argument);
  EXPECT_THROW(guessing::split_shard_ranges(8, 0), std::invalid_argument);
}

TEST(Backoff, GrowsToCapAndExhausts) {
  BackoffPolicy policy;
  policy.initial_delay_seconds = 0.1;
  policy.multiplier = 2.0;
  policy.max_delay_seconds = 0.5;
  policy.max_attempts = 4;
  Backoff backoff(policy);
  EXPECT_FALSE(backoff.exhausted());
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.1);
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.2);
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.4);
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.5);  // capped
  EXPECT_TRUE(backoff.exhausted());
  backoff.reset();
  EXPECT_FALSE(backoff.exhausted());
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.1);
}

TEST(Worker, RejectsNullFactory) {
  EXPECT_THROW(Worker(WorkerConfig{}, ScenarioFactory{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace passflow::dist
