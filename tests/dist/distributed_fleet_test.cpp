// Multi-process integration suite for the distributed fleet: a coordinator
// in the test process, worker processes forked around it, everything over
// real localhost sockets. The load-bearing property throughout is the
// bitwise guarantee: per-scenario metrics (checkpoint counters, matched
// password lists, merged sketch registers) from a distributed run equal a
// single-process AttackScheduler/AttackSession run of the same scenarios —
// including when a worker is SIGKILLed mid-attack and its assignment is
// thawed from the last received checkpoint on a survivor.
//
// Fork discipline (same as crash_recovery_test): the parent is
// single-threaded at every fork() (the coordinator runs inline, no pools),
// children never touch gtest, communicate exit status only, and die by
// _exit so no destructors or buffers replay.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/framing.hpp"
#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "dist/worker.hpp"
#include "guessing/mapped_matcher.hpp"
#include "guessing/matcher.hpp"
#include "guessing/reference_harness.hpp"
#include "guessing/scheduler.hpp"
#include "guessing/session.hpp"
#include "util/cardinality_sketch.hpp"
#include "util/checkpoint.hpp"
#include "util/timer.hpp"

namespace passflow::dist {
namespace {

using guessing::testing::MixingGenerator;

// Matcher keys that the mixing stream can hit: "g<v>" for v in [0, period)
// stepping by `stride`.
std::vector<std::string> target_keys(std::size_t period, std::size_t stride) {
  std::vector<std::string> keys;
  for (std::size_t v = 0; v < period; v += stride) {
    keys.push_back("g" + std::to_string(v));
  }
  return keys;
}

// The one deterministic spec resolver every worker (and scenario author)
// in this suite shares — the distributed analogue of the crash suite's
// ScenarioResolver. Two workers given the same spec bind bit-identical
// generators/matchers, which is what makes reassignment lossless.
//   generator: "mixing:<period>"
//   matcher:   "targets:<period>:<stride>"  (HashSetMatcher)
//              "index:<path>"               (MappedMatcher; shard range
//                                            applied when non-zero)
WorkerBinding fleet_factory(const AssignedScenario& scenario) {
  WorkerBinding binding;
  const std::string& gen = scenario.generator_spec;
  if (gen.rfind("mixing:", 0) == 0) {
    binding.generator =
        std::make_unique<MixingGenerator>(std::stoull(gen.substr(7)));
  } else {
    throw std::invalid_argument("fleet_factory: unknown generator spec " +
                                gen);
  }
  const std::string& match = scenario.matcher_spec;
  if (match.rfind("targets:", 0) == 0) {
    const std::string rest = match.substr(8);
    const std::size_t colon = rest.find(':');
    binding.matcher = std::make_shared<guessing::HashSetMatcher>(target_keys(
        std::stoull(rest.substr(0, colon)),
        std::stoull(rest.substr(colon + 1))));
  } else if (match.rfind("index:", 0) == 0) {
    const std::string path = match.substr(6);
    if (scenario.shard_end > 0) {
      binding.matcher = std::make_shared<guessing::MappedMatcher>(
          path, scenario.shard_begin, scenario.shard_end);
    } else {
      binding.matcher = std::make_shared<guessing::MappedMatcher>(path);
    }
  } else {
    throw std::invalid_argument("fleet_factory: unknown matcher spec " +
                                match);
  }
  return binding;
}

// Child body: serve until Shutdown, then exit 0. Exit 41 marks any error —
// the parent's waitpid assertions turn that into a test failure.
[[noreturn]] void worker_child(std::uint16_t port, const char* label) {
  WorkerConfig config;
  config.port = port;
  config.label = label;
  config.heartbeat_interval_seconds = 0.05;
  config.reconnect.initial_delay_seconds = 0.01;
  config.reconnect.max_delay_seconds = 0.1;
  config.reconnect.max_attempts = 20;
  try {
    Worker worker(config, fleet_factory);
    worker.run();
  } catch (const std::exception&) {
    ::_exit(41);
  }
  ::_exit(0);
}

pid_t spawn_worker(std::uint16_t port, const char* label) {
  const pid_t pid = ::fork();
  if (pid == 0) worker_child(port, label);
  return pid;
}

void expect_clean_exit(pid_t pid) {
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status))
      << "worker died by signal instead of exiting (status " << status << ")";
  ASSERT_EQ(WEXITSTATUS(status), 0);
}

void expect_killed_by_sigkill(pid_t pid) {
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "worker exited instead of dying by signal (status " << status << ")";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

std::string sketch_bytes(const util::CardinalitySketch& sketch) {
  std::ostringstream out;
  sketch.save(out);
  return out.str();
}

TEST(DistributedFleet, TwoWorkersTwoScenariosMatchSingleProcessBitwise) {
  guessing::SessionConfig wide;
  wide.budget = 20000;
  wide.chunk_size = 500;
  wide.checkpoints = {10000, 20000};
  wide.unique_tracking = guessing::UniqueTracking::kExact;

  guessing::SessionConfig sketchy;
  sketchy.budget = 18000;
  sketchy.chunk_size = 600;
  sketchy.checkpoints = {18000};
  sketchy.unique_tracking = guessing::UniqueTracking::kSketch;
  sketchy.sketch_precision_bits = 14;

  CoordinatorConfig config;
  config.checkpoint_chunks = 4;
  Coordinator coordinator(config);

  DistScenario first;
  first.name = "wide";
  first.generator_spec = "mixing:16384";
  first.matcher_spec = "targets:16384:7";
  first.session = wide;
  const std::size_t wide_id = coordinator.add_scenario(first);

  DistScenario second;
  second.name = "sketchy";
  second.generator_spec = "mixing:4096";
  second.matcher_spec = "targets:4096:5";
  second.session = sketchy;
  const std::size_t sketchy_id = coordinator.add_scenario(second);

  const pid_t worker_a = spawn_worker(coordinator.port(), "a");
  ASSERT_NE(worker_a, -1);
  const pid_t worker_b = spawn_worker(coordinator.port(), "b");
  ASSERT_NE(worker_b, -1);

  coordinator.run();
  expect_clean_exit(worker_a);
  expect_clean_exit(worker_b);

  // The same fleet in one process, through AttackScheduler.
  MixingGenerator wide_generator(16384), sketchy_generator(4096);
  guessing::HashSetMatcher wide_matcher(target_keys(16384, 7));
  guessing::HashSetMatcher sketchy_matcher(target_keys(4096, 5));
  guessing::AttackScheduler scheduler;
  guessing::ScenarioOptions wide_options;
  wide_options.name = "wide";
  wide_options.session = wide;
  const std::size_t local_wide =
      scheduler.add_scenario(wide_generator, wide_matcher, wide_options);
  guessing::ScenarioOptions sketchy_options;
  sketchy_options.name = "sketchy";
  sketchy_options.session = sketchy;
  const std::size_t local_sketchy = scheduler.add_scenario(
      sketchy_generator, sketchy_matcher, sketchy_options);
  while (scheduler.step()) {
  }

  const ScenarioOutcome& wide_out = coordinator.outcome(wide_id);
  EXPECT_TRUE(wide_out.complete);
  EXPECT_EQ(wide_out.parts, 1u);
  EXPECT_EQ(wide_out.reassignments, 0u);
  EXPECT_EQ(wide_out.test_set_size, wide_matcher.test_set_size());
  PF_EXPECT_SAME_RUN(scheduler.result(local_wide), wide_out.result);

  const ScenarioOutcome& sketchy_out = coordinator.outcome(sketchy_id);
  PF_EXPECT_SAME_RUN(scheduler.result(local_sketchy), sketchy_out.result);

  // Merged sketch registers must be bitwise the single-process ones.
  for (const std::size_t id : {wide_id, sketchy_id}) {
    const ScenarioOutcome& outcome = coordinator.outcome(id);
    ASSERT_TRUE(outcome.sketch_valid) << outcome.name;
    MixingGenerator generator(id == wide_id ? 16384 : 4096);
    const guessing::HashSetMatcher& matcher =
        id == wide_id ? wide_matcher : sketchy_matcher;
    guessing::AttackSession session(generator, matcher,
                                    id == wide_id ? wide : sketchy);
    while (session.step()) {
    }
    util::CardinalitySketch expected(14);
    ASSERT_TRUE(session.merge_unique_sketch(expected));
    EXPECT_EQ(sketch_bytes(outcome.sketch), sketch_bytes(expected))
        << outcome.name;
  }

  const CoordinatorStats stats = coordinator.stats();
  EXPECT_EQ(stats.workers_registered, 2u);
  EXPECT_EQ(stats.tasks, 2u);
  EXPECT_EQ(stats.tasks_done, 2u);
  EXPECT_EQ(stats.produced, wide.budget + sketchy.budget);
  EXPECT_GT(stats.matched, 0u);
  EXPECT_TRUE(stats.unique_union_valid);
  EXPECT_GT(stats.unique_union, 0u);
}

TEST(DistributedFleet, KilledWorkerIsReassignedFromCheckpointAndStillMatches) {
  guessing::SessionConfig session;
  session.budget = 2000000;
  session.chunk_size = 2000;
  session.checkpoints = {1000000, 2000000};
  session.unique_tracking = guessing::UniqueTracking::kSketch;
  session.sketch_precision_bits = 14;

  CoordinatorConfig config;
  config.checkpoint_chunks = 8;  // freeze every 16k guesses
  Coordinator coordinator(config);

  DistScenario scenario;
  scenario.name = "survivor";
  scenario.generator_spec = "mixing:8192";
  scenario.matcher_spec = "targets:8192:3";
  scenario.session = session;
  const std::size_t sid = coordinator.add_scenario(scenario);

  const pid_t worker_a = spawn_worker(coordinator.port(), "victim-or-not");
  ASSERT_NE(worker_a, -1);
  const pid_t worker_b = spawn_worker(coordinator.port(), "survivor");
  ASSERT_NE(worker_b, -1);

  // Pump until the assigned worker has shipped a few session freezes, then
  // SIGKILL it mid-attack — no destructors, no goodbye frame.
  while (!coordinator.finished() && coordinator.checkpoints_received(sid) < 3) {
    coordinator.poll_once(20);
  }
  ASSERT_FALSE(coordinator.finished())
      << "fleet finished before the kill point; grow the budget";
  const std::uint64_t victim_pid = coordinator.assigned_worker_pid(sid);
  ASSERT_NE(victim_pid, 0u);
  ASSERT_TRUE(victim_pid == static_cast<std::uint64_t>(worker_a) ||
              victim_pid == static_cast<std::uint64_t>(worker_b));
  ::kill(static_cast<pid_t>(victim_pid), SIGKILL);
  expect_killed_by_sigkill(static_cast<pid_t>(victim_pid));

  coordinator.run();
  const pid_t survivor = victim_pid == static_cast<std::uint64_t>(worker_a)
                             ? worker_b
                             : worker_a;
  expect_clean_exit(survivor);

  const ScenarioOutcome& outcome = coordinator.outcome(sid);
  EXPECT_GE(outcome.reassignments, 1u);
  EXPECT_GE(coordinator.stats().workers_lost, 1u);

  // Thawed-on-a-survivor metrics must equal a never-interrupted run.
  MixingGenerator generator(8192);
  guessing::HashSetMatcher matcher(target_keys(8192, 3));
  guessing::AttackSession reference(generator, matcher, session);
  while (reference.step()) {
  }
  PF_EXPECT_SAME_RUN(reference.result(), outcome.result);

  util::CardinalitySketch expected(14);
  ASSERT_TRUE(reference.merge_unique_sketch(expected));
  ASSERT_TRUE(outcome.sketch_valid);
  EXPECT_EQ(sketch_bytes(outcome.sketch), sketch_bytes(expected));
}

TEST(DistributedFleet, ShardSplitScenarioMatchesWholeMatcherRun) {
  const std::string index_path =
      ::testing::TempDir() + "pf_dist_split.pfidx";
  guessing::IndexBuilderConfig build_config;
  build_config.num_shards = 8;
  guessing::IndexBuilder::build(target_keys(4096, 3), index_path,
                                build_config);

  guessing::SessionConfig session;
  session.budget = 12000;
  session.chunk_size = 400;
  session.checkpoints = {6000, 12000};
  session.unique_tracking = guessing::UniqueTracking::kExact;

  CoordinatorConfig config;
  config.checkpoint_chunks = 4;
  Coordinator coordinator(config);

  DistScenario scenario;
  scenario.name = "split";
  scenario.generator_spec = "mixing:4096";
  scenario.matcher_spec = "index:" + index_path;
  scenario.session = session;
  scenario.shard_splits = 2;
  scenario.shard_count = 8;
  const std::size_t sid = coordinator.add_scenario(scenario);

  const pid_t worker_a = spawn_worker(coordinator.port(), "left");
  ASSERT_NE(worker_a, -1);
  const pid_t worker_b = spawn_worker(coordinator.port(), "right");
  ASSERT_NE(worker_b, -1);

  coordinator.run();
  expect_clean_exit(worker_a);
  expect_clean_exit(worker_b);

  // Whole-matcher single-process reference.
  MixingGenerator generator(4096);
  auto matcher = std::make_shared<guessing::MappedMatcher>(index_path);
  guessing::AttackSession reference(generator, guessing::MatcherRef(matcher),
                                    session);
  while (reference.step()) {
  }
  const guessing::RunResult expected = reference.result();

  const ScenarioOutcome& outcome = coordinator.outcome(sid);
  EXPECT_EQ(outcome.parts, 2u);
  EXPECT_EQ(outcome.test_set_size, matcher->test_set_size());
  ASSERT_EQ(outcome.result.checkpoints.size(), expected.checkpoints.size());
  for (std::size_t i = 0; i < expected.checkpoints.size(); ++i) {
    EXPECT_EQ(outcome.result.checkpoints[i].guesses,
              expected.checkpoints[i].guesses);
    EXPECT_EQ(outcome.result.checkpoints[i].unique,
              expected.checkpoints[i].unique);
    EXPECT_EQ(outcome.result.checkpoints[i].matched,
              expected.checkpoints[i].matched);
    EXPECT_DOUBLE_EQ(outcome.result.checkpoints[i].matched_percent,
                     expected.checkpoints[i].matched_percent);
  }
  // Each part reports its matches in stream order; across parts the merge
  // concatenates in part order, so compare as multisets.
  std::vector<std::string> got = outcome.result.matched_passwords;
  std::vector<std::string> want = expected.matched_passwords;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);

  // Register-max union of the two parts == the whole run's sketch.
  ASSERT_TRUE(outcome.sketch_valid);
  util::CardinalitySketch expected_sketch(14);
  ASSERT_TRUE(reference.merge_unique_sketch(expected_sketch));
  EXPECT_EQ(sketch_bytes(outcome.sketch), sketch_bytes(expected_sketch));

  std::remove(index_path.c_str());
}

TEST(DistributedFleet, SilentWorkerIsBuriedOnHeartbeatTimeoutAndRequeued) {
  CoordinatorConfig config;
  config.heartbeat_timeout_seconds = 0.2;
  Coordinator coordinator(config);

  DistScenario scenario;
  scenario.name = "stalled";
  scenario.generator_spec = "mixing:4096";
  scenario.matcher_spec = "targets:4096:5";
  scenario.session.budget = 10000;
  const std::size_t sid = coordinator.add_scenario(scenario);

  // A hand-rolled client that registers, accepts the assignment, then goes
  // silent — a wedged worker whose socket stays open.
  Connection ghost = connect_to("127.0.0.1", coordinator.port());
  HelloMsg hello;
  hello.pid = 999999;
  hello.label = "ghost";
  send_message(ghost, hello);

  util::Timer deadline;
  while (coordinator.assigned_worker_pid(sid) == 0 &&
         deadline.elapsed_seconds() < 5.0) {
    coordinator.poll_once(10);
  }
  ASSERT_EQ(coordinator.assigned_worker_pid(sid), 999999u);
  EXPECT_TRUE(std::holds_alternative<WelcomeMsg>(recv_message(ghost)));
  EXPECT_TRUE(std::holds_alternative<AssignMsg>(recv_message(ghost)));

  deadline.reset();
  while (coordinator.stats().workers_lost == 0 &&
         deadline.elapsed_seconds() < 5.0) {
    coordinator.poll_once(20);
  }
  EXPECT_EQ(coordinator.stats().workers_lost, 1u);
  EXPECT_GE(coordinator.stats().reassignments, 1u);
  // The task is pending again, waiting for a live worker.
  EXPECT_EQ(coordinator.assigned_worker_pid(sid), 0u);
  EXPECT_FALSE(coordinator.finished());
}

TEST(DistributedTransport, FramesRoundTripBothWays) {
  Listener listener;
  Connection dialed = connect_to("127.0.0.1", listener.port());
  ASSERT_TRUE(listener.pending(1000));
  Connection accepted = listener.accept_connection();

  const std::string binary_payload("ping \0 payload", 14);
  dialed.send_frame(binary_payload);
  accepted.send_frame(std::string(100000, '\x7e'));  // spans several reads
  EXPECT_EQ(accepted.recv_frame(), binary_payload);
  EXPECT_EQ(dialed.recv_frame(), std::string(100000, '\x7e'));

  // Back-to-back frames delivered in one segment: after the first
  // recv_frame the second sits in the streambuf where poll() cannot see
  // it; readable() must still report it.
  const std::string two_frames = util::encode_checkpoint_frame("first") +
                                 util::encode_checkpoint_frame("second");
  ASSERT_EQ(::send(dialed.fd(), two_frames.data(), two_frames.size(), 0),
            static_cast<ssize_t>(two_frames.size()));
  EXPECT_EQ(accepted.recv_frame(), "first");
  EXPECT_TRUE(accepted.has_buffered());
  EXPECT_TRUE(accepted.readable(0));
  EXPECT_EQ(accepted.recv_frame(), "second");
}

TEST(DistributedTransport, RawGarbageOnTheWireIsRejectedLoudly) {
  Listener listener;
  Connection dialed = connect_to("127.0.0.1", listener.port());
  ASSERT_TRUE(listener.pending(1000));
  Connection accepted = listener.accept_connection();

  const std::string garbage = "definitely not a CRC frame";
  ASSERT_EQ(::send(dialed.fd(), garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  dialed.close();  // EOF after the garbage
  EXPECT_THROW(accepted.recv_frame(), std::runtime_error);
}

TEST(DistributedTransport, PeerEofIsALoudErrorNotAnEmptyFrame) {
  Listener listener;
  Connection dialed = connect_to("127.0.0.1", listener.port());
  ASSERT_TRUE(listener.pending(1000));
  Connection accepted = listener.accept_connection();
  dialed.close();
  EXPECT_TRUE(accepted.readable(1000));  // EOF counts as readable
  EXPECT_THROW(accepted.recv_frame(), std::runtime_error);
}

#else  // !unix

TEST(DistributedFleet, RequiresPosix) {
  GTEST_SKIP() << "the socket transport and fork harness require POSIX";
}

#endif

}  // namespace
}  // namespace passflow::dist
