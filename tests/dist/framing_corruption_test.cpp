// Protocol-framing corruption suite for the coordinator<->worker wire
// format, in the style of the session-state error suite: one captured
// valid exchange, then systematic damage. Properties under test:
//
//  * Truncation at EVERY byte length either throws or yields a strict
//    prefix of the exchange (a clean stop is only legal at an exact frame
//    boundary) — a torn read never produces a wrong or extra message.
//  * A single bit flipped ANYWHERE makes some frame throw, and every frame
//    before the damaged one still decodes identically — CRC32 detects all
//    single-bit errors, so a corrupt frame can never merge silently.
//  * The golden fixtures in tests/fixtures/dist/ keep being rejected with
//    the same message class for as long as frame format PFCKPT1 exists,
//    and valid_exchange.bin pins the wire bytes (encoder drift is loud).
//
// Fixtures are deterministic functions of the encoder, so a missing file
// is seeded on first run (then committed); a present file is authoritative.
#include "dist/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/checkpoint.hpp"

namespace passflow::dist {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(PASSFLOW_TEST_FIXTURE_DIR) + "/dist/" + name;
}

// Reads the named fixture; when absent, seeds it with `expected` so the
// suite can regenerate its own corpus after an intentional format bump.
std::string load_or_seed(const std::string& name, const std::string& expected) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  if (in.is_open()) {
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
  }
  std::ofstream out(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(out.is_open()) << "cannot seed fixture " << name;
  out.write(expected.data(), static_cast<std::streamsize>(expected.size()));
  return expected;
}

// A representative coordinator<->worker conversation: handshake, an
// assignment carrying opaque resume bytes, liveness, a frozen session
// checkpoint, the result with its sketch, and shutdown. Deterministic —
// these exact bytes are pinned by valid_exchange.bin.
std::vector<Message> captured_exchange() {
  HelloMsg hello;
  hello.pid = 4242;
  hello.label = "worker-gold";

  AssignMsg assign;
  assign.task_id = 1;
  assign.scenario_id = 0;
  assign.name = "golden scenario";
  assign.generator_spec = "mixing:4096";
  assign.matcher_spec = "set:512";
  assign.session.budget = 9000;
  assign.session.chunk_size = 300;
  assign.session.checkpoints = {3000, 9000};
  assign.shard_begin = 0;
  assign.shard_end = 0;
  assign.checkpoint_chunks = 4;
  assign.union_precision_bits = 14;
  assign.resume_state = std::string("\x00\x01opaque\xff resume bytes", 22);

  CheckpointMsg checkpoint;
  checkpoint.task_id = 1;
  checkpoint.state = std::string("frozen\x00session\x7f", 15);

  ResultMsg result;
  result.task_id = 1;
  result.test_set_size = 512;
  result.sketch = std::string(64, '\x02');
  guessing::Checkpoint cp;
  cp.guesses = 9000;
  cp.unique = 8100;
  cp.matched = 33;
  cp.matched_percent = 100.0 * 33 / 512;
  result.result.checkpoints = {cp};
  result.result.matched_passwords = {"g7", "g77"};
  result.result.seconds = 0.5;

  return {hello,          WelcomeMsg{1}, assign,        HeartbeatMsg{3000},
          checkpoint,     result,        ShutdownMsg{}};
}

// A representative credential-screening conversation: handshake, a query
// whose candidates include empty, NUL-bearing and non-ASCII strings, an Ok
// reply with infinite estimates for the unrepresentable ones, and an
// Overloaded refusal. Deterministic — pinned by serving_exchange.bin.
std::vector<Message> captured_serving_exchange() {
  HelloMsg hello;
  hello.label = "screening-client";

  StrengthQueryMsg query;
  query.request_id = 7;
  query.candidates = {"123456", "tr0ub4dor", "",
                      std::string("we\x00ird", 6), "p\xc3\xa4ss"};

  StrengthReplyMsg ok;
  ok.request_id = 7;
  ok.status = StrengthStatus::kOk;
  StrengthEstimate weak;
  weak.log_prob = -3.25;
  weak.guess_number = 12.5;
  weak.in_index = true;
  weak.representable = true;
  StrengthEstimate unrepresentable;
  unrepresentable.log_prob = -std::numeric_limits<double>::infinity();
  unrepresentable.guess_number = std::numeric_limits<double>::infinity();
  unrepresentable.in_index = true;
  unrepresentable.representable = false;
  StrengthEstimate plain;
  plain.log_prob = -17.75;
  plain.guess_number = 99004.0;
  ok.estimates = {weak, plain, plain, unrepresentable, unrepresentable};

  StrengthReplyMsg overloaded;
  overloaded.request_id = 8;
  overloaded.status = StrengthStatus::kOverloaded;

  return {hello, WelcomeMsg{3}, query, ok, overloaded};
}

std::string frame_bytes(const std::vector<Message>& messages) {
  std::string bytes;
  for (const auto& message : messages) {
    bytes += util::encode_checkpoint_frame(encode(message));
  }
  return bytes;
}

// Decodes frames until EOF or error. On error, `out` holds every message
// decoded before it and the exception propagates.
std::vector<Message> read_messages(const std::string& bytes,
                                   std::vector<Message>* out = nullptr) {
  std::vector<Message> local;
  std::vector<Message>& messages = out ? *out : local;
  std::istringstream in(bytes);
  while (in.peek() != std::char_traits<char>::eof()) {
    messages.push_back(
        decode(util::CheckpointStore::read_frame(in, "dist frame")));
  }
  return messages;
}

bool same_message(const Message& a, const Message& b) {
  return encode(a) == encode(b);
}

void expect_message_prefix(const std::vector<Message>& got,
                           const std::vector<Message>& expected,
                           const std::string& what) {
  ASSERT_LE(got.size(), expected.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(same_message(got[i], expected[i]))
        << what << ": message " << i << " diverged ("
        << message_name(got[i]) << " vs " << message_name(expected[i]) << ")";
  }
}

void expect_rejected(const std::string& bytes, const std::string& needle,
                     const std::string& what) {
  std::istringstream in(bytes);
  try {
    decode(util::CheckpointStore::read_frame(in, "dist frame"));
    FAIL() << what << ": expected rejection mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << what << ": message was: " << e.what();
  }
}

// Fixture body shared by the coordinator/worker and serving exchanges:
// both run the identical truncation and bit-flip sweeps over their own
// captured conversation.
class FramingCorruptionBase : public ::testing::Test {
 protected:
  void init(std::vector<Message> messages) {
    expected_ = std::move(messages);
    exchange_ = frame_bytes(expected_);
    // Frame boundaries: clean truncation stops are legal exactly here.
    std::string prefix;
    boundaries_.push_back(0);
    for (const auto& message : expected_) {
      prefix += util::encode_checkpoint_frame(encode(message));
      boundaries_.push_back(prefix.size());
    }
  }

  bool at_boundary(std::size_t length) const {
    for (const std::size_t b : boundaries_) {
      if (b == length) return true;
    }
    return false;
  }

  void run_truncation_sweep() {
    for (std::size_t length = 0; length < exchange_.size(); ++length) {
      const std::string torn = exchange_.substr(0, length);
      std::vector<Message> got;
      bool threw = false;
      try {
        read_messages(torn, &got);
      } catch (const std::runtime_error&) {
        threw = true;
      }
      expect_message_prefix(got, expected_,
                            "truncated at " + std::to_string(length));
      if (!threw) {
        // No error is only acceptable when the cut landed exactly between
        // frames — then the reader saw N intact frames and a clean EOF.
        EXPECT_TRUE(at_boundary(length))
            << "silent stop at mid-frame truncation length " << length;
      }
    }
  }

  void run_bit_flip_sweep() {
    for (std::size_t byte = 0; byte < exchange_.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string damaged = exchange_;
        damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
        std::vector<Message> got;
        bool threw = false;
        try {
          read_messages(damaged, &got);
        } catch (const std::runtime_error&) {
          threw = true;
        }
        EXPECT_TRUE(threw) << "bit " << bit << " of byte " << byte
                           << " flipped without any loud failure";
        // Frames that end before the damaged byte are untouched and must
        // decode identically; nothing past the damage may surface.
        expect_message_prefix(got, expected_,
                              "bit flip at byte " + std::to_string(byte));
        std::size_t intact = 0;
        while (intact + 1 < boundaries_.size() &&
               boundaries_[intact + 1] <= byte) {
          ++intact;
        }
        EXPECT_LE(got.size(), intact)
            << "a frame containing byte " << byte
            << " decoded despite damage";
      }
    }
  }

  std::vector<Message> expected_;
  std::string exchange_;
  std::vector<std::size_t> boundaries_;
};

class FramingCorruption : public FramingCorruptionBase {
 protected:
  void SetUp() override { init(captured_exchange()); }
};

class ServingFramingCorruption : public FramingCorruptionBase {
 protected:
  void SetUp() override { init(captured_serving_exchange()); }
};

TEST_F(FramingCorruption, GoldenExchangePinsTheWireBytes) {
  const std::string golden = load_or_seed("valid_exchange.bin", exchange_);
  EXPECT_EQ(golden, exchange_)
      << "wire format drifted from tests/fixtures/dist/valid_exchange.bin — "
         "a frame or message byte layout changed";
  const auto messages = read_messages(golden);
  ASSERT_EQ(messages.size(), expected_.size());
  expect_message_prefix(messages, expected_, "golden exchange");
}

TEST_F(FramingCorruption, TruncationAtEveryLengthIsLoudOrAStrictPrefix) {
  run_truncation_sweep();
}

TEST_F(FramingCorruption, EverySingleBitFlipIsDetected) {
  run_bit_flip_sweep();
}

TEST_F(ServingFramingCorruption, GoldenServingExchangePinsTheWireBytes) {
  const std::string golden = load_or_seed("serving_exchange.bin", exchange_);
  EXPECT_EQ(golden, exchange_)
      << "serving wire format drifted from "
         "tests/fixtures/dist/serving_exchange.bin — a frame or message "
         "byte layout changed";
  const auto messages = read_messages(golden);
  ASSERT_EQ(messages.size(), expected_.size());
  expect_message_prefix(messages, expected_, "golden serving exchange");
}

TEST_F(ServingFramingCorruption, TruncationAtEveryLengthIsLoudOrAStrictPrefix) {
  run_truncation_sweep();
}

TEST_F(ServingFramingCorruption, EverySingleBitFlipIsDetected) {
  run_bit_flip_sweep();
}

// Intact frames (the CRC passes) whose strength payloads are semantically
// invalid: the protocol decoder must reject each with its specific error.
TEST_F(ServingFramingCorruption, GoldenCorruptStrengthFramesStayRejected) {
  StrengthReplyMsg reply;
  reply.request_id = 7;
  reply.estimates.resize(1);

  // Payload layout: tag u64 | request_id u64 | status u64 | count u64 |
  // estimate {log_prob f64 | guess_number f64 | flags u64}.
  std::string bad_status = encode(Message{reply});
  bad_status[16] = 7;
  std::string bad_flags = encode(Message{reply});
  bad_flags[48] = 0x0F;

  StrengthQueryMsg query;
  query.request_id = 9;
  query.candidates = {"abc"};
  std::string trailing = encode(Message{query}) + '\x00';

  expect_rejected(
      load_or_seed("strength_bad_status.bin",
                   util::encode_checkpoint_frame(bad_status)),
      "invalid strength status", "strength_bad_status.bin");
  expect_rejected(load_or_seed("strength_bad_flags.bin",
                               util::encode_checkpoint_frame(bad_flags)),
                  "invalid strength flags", "strength_bad_flags.bin");
  expect_rejected(load_or_seed("strength_trailing.bin",
                               util::encode_checkpoint_frame(trailing)),
                  "trailing bytes", "strength_trailing.bin");
}

TEST_F(FramingCorruption, GoldenCorruptFramesStayRejected) {
  const std::string valid = util::encode_checkpoint_frame(
      encode(HeartbeatMsg{12345}));

  std::string bad_magic = valid;
  bad_magic[0] = 'X';
  std::string truncated = valid.substr(0, (valid.size() * 3) / 5);
  std::string bad_crc = valid;
  bad_crc[24] = static_cast<char>(bad_crc[24] ^ 0x40);  // payload byte
  std::string bad_trailer = valid;
  bad_trailer.back() = '?';
  // An intact frame whose payload is not a protocol message: framing
  // passes, the decoder must still reject it.
  std::string unknown_tag =
      util::encode_checkpoint_frame(std::string(8, '\x63'));

  expect_rejected(load_or_seed("bad_magic.bin", bad_magic), "bad magic",
                  "bad_magic.bin");
  expect_rejected(load_or_seed("truncated.bin", truncated), "truncated",
                  "truncated.bin");
  expect_rejected(load_or_seed("bad_crc.bin", bad_crc), "checksum mismatch",
                  "bad_crc.bin");
  expect_rejected(load_or_seed("bad_trailer.bin", bad_trailer), "bad trailer",
                  "bad_trailer.bin");
  expect_rejected(load_or_seed("unknown_tag.bin", unknown_tag), "unknown tag",
                  "unknown_tag.bin");
}

TEST_F(FramingCorruption, ImplausibleLengthIsACleanErrorNotAnAllocation) {
  std::string frame = util::encode_checkpoint_frame(encode(ShutdownMsg{}));
  // Stamp the payload-length field (bytes 16..24 of the header) with a
  // value far past the 1 GiB cap: must reject before allocating.
  const std::uint64_t huge = 1ull << 62;
  for (std::size_t b = 0; b < 8; ++b) {
    frame[16 + b] = static_cast<char>((huge >> (8 * b)) & 0xFF);
  }
  expect_rejected(frame, "implausible payload length", "length bomb");
}

}  // namespace
}  // namespace passflow::dist
