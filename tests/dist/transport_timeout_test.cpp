// Regression tests for the EINTR deadline bug: poll-based waits used to
// restart ::poll with the FULL original timeout after every EINTR, so under
// a steady signal stream (interval shorter than the timeout) they never ran
// down the clock and blocked indefinitely. The fix tracks an absolute
// steady_clock deadline across retries; these tests run each wait under a
// SIGALRM storm and assert it still returns close to the requested bound.
#include <gtest/gtest.h>

#include "dist/transport.hpp"
#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/time.h>

namespace {

using passflow::dist::Connection;
using passflow::dist::Listener;
using passflow::dist::connect_to;
using passflow::dist::transport_available;
using passflow::dist::wait_any_readable;

void on_alarm(int) {}  // exists only to make ::poll return EINTR

// Fires SIGALRM every few milliseconds for the object's lifetime, with a
// handler installed WITHOUT SA_RESTART so every blocking poll is
// interrupted. The interval (3 ms) is far below the timeouts under test
// (150 ms), so the unfixed full-timeout restart would never terminate.
class SigalrmStorm {
 public:
  SigalrmStorm() {
    struct sigaction action {};
    action.sa_handler = on_alarm;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: poll must see EINTR
    EXPECT_EQ(0, sigaction(SIGALRM, &action, &previous_action_));
    itimerval timer{};
    timer.it_interval.tv_usec = 3000;
    timer.it_value.tv_usec = 3000;
    EXPECT_EQ(0, setitimer(ITIMER_REAL, &timer, &previous_timer_));
  }

  ~SigalrmStorm() {
    setitimer(ITIMER_REAL, &previous_timer_, nullptr);
    sigaction(SIGALRM, &previous_action_, nullptr);
  }

 private:
  struct sigaction previous_action_ {};
  itimerval previous_timer_{};
};

constexpr int kTimeoutMs = 150;
// Generous upper bound: the unfixed code overshoots without limit (each of
// the ~50 interruptions re-arms the full 150 ms), the fixed code finishes
// at ~150 ms even on a loaded CI box.
constexpr double kMinSeconds = 0.120;
constexpr double kMaxSeconds = 5.0;

TEST(TransportTimeout, ReadableHonorsDeadlineUnderSignalStorm) {
  if (!transport_available()) GTEST_SKIP() << "no POSIX transport";
  Listener listener(0);
  Connection client = connect_to("127.0.0.1", listener.port());

  SigalrmStorm storm;
  passflow::util::Timer timer;
  const bool ready = client.readable(kTimeoutMs);
  const double seconds = timer.elapsed_seconds();

  EXPECT_FALSE(ready) << "nothing was ever sent";
  EXPECT_GE(seconds, kMinSeconds);
  EXPECT_LE(seconds, kMaxSeconds)
      << "readable() blocked far past its timeout under EINTR";
}

TEST(TransportTimeout, ListenerPendingHonorsDeadlineUnderSignalStorm) {
  if (!transport_available()) GTEST_SKIP() << "no POSIX transport";
  Listener listener(0);

  SigalrmStorm storm;
  passflow::util::Timer timer;
  const bool ready = listener.pending(kTimeoutMs);
  const double seconds = timer.elapsed_seconds();

  EXPECT_FALSE(ready) << "nobody ever dialed";
  EXPECT_GE(seconds, kMinSeconds);
  EXPECT_LE(seconds, kMaxSeconds)
      << "pending() blocked far past its timeout under EINTR";
}

TEST(TransportTimeout, WaitAnyReadableHonorsDeadlineUnderSignalStorm) {
  if (!transport_available()) GTEST_SKIP() << "no POSIX transport";
  Listener listener(0);
  Connection a = connect_to("127.0.0.1", listener.port());
  Connection b = connect_to("127.0.0.1", listener.port());

  SigalrmStorm storm;
  passflow::util::Timer timer;
  const bool ready = wait_any_readable({a.fd(), b.fd()}, kTimeoutMs);
  const double seconds = timer.elapsed_seconds();

  EXPECT_FALSE(ready) << "nothing was ever sent";
  EXPECT_GE(seconds, kMinSeconds);
  EXPECT_LE(seconds, kMaxSeconds)
      << "wait_any_readable() blocked far past its timeout under EINTR";
}

// The zero/negative timeouts keep their meaning under interruption: 0 never
// blocks even while signals land, and data arriving makes waits return
// early (well before the deadline) exactly as without a storm.
TEST(TransportTimeout, ZeroTimeoutAndDataStillBehaveUnderSignalStorm) {
  if (!transport_available()) GTEST_SKIP() << "no POSIX transport";
  Listener listener(0);
  Connection client = connect_to("127.0.0.1", listener.port());
  Connection server = listener.accept_connection();

  SigalrmStorm storm;
  passflow::util::Timer timer;
  EXPECT_FALSE(client.readable(0));
  EXPECT_LE(timer.elapsed_seconds(), 1.0) << "zero timeout must not block";

  server.send_frame("ping");
  EXPECT_TRUE(client.readable(10'000)) << "data pending: no full wait";
  EXPECT_LE(timer.elapsed_seconds(), 5.0);
  EXPECT_EQ("ping", client.recv_frame());
}

}  // namespace

#else  // !POSIX

TEST(TransportTimeout, SkippedWithoutPosixTransport) {
  GTEST_SKIP() << "no POSIX transport on this platform";
}

#endif
