#include "nn/matrix.hpp"

#include <gtest/gtest.h>

namespace passflow::nn {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructorFills) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(m(r, c), 1.5f);
  }
}

TEST(Matrix, ElementAccessIsRowMajor) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  EXPECT_FLOAT_EQ(m.data()[0], 1);
  EXPECT_FLOAT_EQ(m.data()[1], 2);
  EXPECT_FLOAT_EQ(m.data()[2], 3);
  EXPECT_FLOAT_EQ(m.data()[3], 4);
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m(1, 2), 6);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, SliceRows) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const Matrix s = m.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_FLOAT_EQ(s(0, 0), 3);
  EXPECT_FLOAT_EQ(s(1, 1), 6);
}

TEST(Matrix, SliceRowsRejectsBadRange) {
  const Matrix m(3, 2);
  EXPECT_THROW(m.slice_rows(2, 4), std::out_of_range);
  EXPECT_THROW(m.slice_rows(2, 1), std::out_of_range);
}

TEST(Matrix, SetRows) {
  Matrix m(3, 2);
  const Matrix src = Matrix::from_rows({{7, 8}});
  m.set_rows(1, src);
  EXPECT_FLOAT_EQ(m(1, 0), 7);
  EXPECT_FLOAT_EQ(m(1, 1), 8);
  EXPECT_FLOAT_EQ(m(0, 0), 0);
}

TEST(Matrix, SetRowsRejectsOverflow) {
  Matrix m(2, 2);
  const Matrix src(2, 2);
  EXPECT_THROW(m.set_rows(1, src), std::out_of_range);
}

TEST(Matrix, Transposed) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_FLOAT_EQ(t(2, 1), 6);
  EXPECT_FLOAT_EQ(t(0, 1), 4);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix m = Matrix::from_rows({{3, 4}});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, FillAndZero) {
  Matrix m(2, 2, 9.0f);
  m.zero();
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 0.0);
  m.fill(2.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 2.0f);
}

TEST(Matrix, SameShape) {
  EXPECT_TRUE(Matrix(2, 3).same_shape(Matrix(2, 3)));
  EXPECT_FALSE(Matrix(2, 3).same_shape(Matrix(3, 2)));
}

TEST(Matrix, ShapeString) {
  EXPECT_EQ(Matrix(4, 7).shape_string(), "[4x7]");
}

}  // namespace
}  // namespace passflow::nn
