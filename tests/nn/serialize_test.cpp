#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "nn/linear.hpp"
#include "util/rng.hpp"

namespace passflow::nn {
namespace {

TEST(Serialize, RoundTripPreservesValues) {
  util::Rng rng(1);
  Linear source(4, 3, rng, Init::kXavier, "layer");
  Linear dest(4, 3, rng, Init::kXavier, "layer");

  std::stringstream stream;
  save_params(stream, source.parameters());
  load_params(stream, dest.parameters());

  for (std::size_t i = 0; i < source.weight().value.size(); ++i) {
    EXPECT_FLOAT_EQ(dest.weight().value.data()[i],
                    source.weight().value.data()[i]);
  }
  for (std::size_t i = 0; i < source.bias().value.size(); ++i) {
    EXPECT_FLOAT_EQ(dest.bias().value.data()[i],
                    source.bias().value.data()[i]);
  }
}

TEST(Serialize, RejectsNameMismatch) {
  util::Rng rng(2);
  Linear source(2, 2, rng, Init::kXavier, "alpha");
  Linear dest(2, 2, rng, Init::kXavier, "beta");
  std::stringstream stream;
  save_params(stream, source.parameters());
  EXPECT_THROW(load_params(stream, dest.parameters()), std::runtime_error);
}

TEST(Serialize, RejectsShapeMismatch) {
  util::Rng rng(3);
  Linear source(2, 2, rng, Init::kXavier, "layer");
  Linear dest(2, 3, rng, Init::kXavier, "layer");
  std::stringstream stream;
  save_params(stream, source.parameters());
  EXPECT_THROW(load_params(stream, dest.parameters()), std::runtime_error);
}

TEST(Serialize, RejectsCountMismatch) {
  util::Rng rng(4);
  Linear source(2, 2, rng, Init::kXavier, "layer");
  std::stringstream stream;
  save_params(stream, source.parameters());
  auto params = source.parameters();
  params.pop_back();
  EXPECT_THROW(load_params(stream, params), std::runtime_error);
}

TEST(Serialize, RejectsBadMagic) {
  util::Rng rng(5);
  Linear dest(2, 2, rng, Init::kXavier, "layer");
  std::stringstream stream("NOTACKPT this is garbage");
  EXPECT_THROW(load_params(stream, dest.parameters()), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  util::Rng rng(6);
  Linear source(8, 8, rng, Init::kXavier, "layer");
  std::stringstream stream;
  save_params(stream, source.parameters());
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_params(truncated, source.parameters()),
               std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  util::Rng rng(7);
  Linear source(3, 3, rng, Init::kXavier, "layer");
  Linear dest(3, 3, rng, Init::kXavier, "layer");
  const std::string path = ::testing::TempDir() + "pf_ckpt_test.bin";
  save_params_file(path, source.parameters());
  load_params_file(path, dest.parameters());
  EXPECT_FLOAT_EQ(dest.weight().value(2, 2), source.weight().value(2, 2));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  util::Rng rng(8);
  Linear dest(2, 2, rng, Init::kXavier, "layer");
  EXPECT_THROW(load_params_file("/nonexistent/ckpt.bin", dest.parameters()),
               std::runtime_error);
}

}  // namespace
}  // namespace passflow::nn
