#include "nn/ops.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.hpp"

namespace passflow::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal());
  }
  return m;
}

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < b.cols(); ++c) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a(r, k)) * b(k, c);
      }
      out(r, c) = static_cast<float>(acc);
    }
  }
  return out;
}

void expect_close(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.same_shape(b)) << a.shape_string() << " vs "
                               << b.shape_string();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "at flat index " << i;
  }
}

TEST(Ops, MatmulKnownValues) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19);
  EXPECT_FLOAT_EQ(c(0, 1), 22);
  EXPECT_FLOAT_EQ(c(1, 0), 43);
  EXPECT_FLOAT_EQ(c(1, 1), 50);
}

// Property sweep: blocked/OpenMP GEMM variants agree with the naive
// reference across shapes including ones that cross the parallel threshold.
class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, MatmulMatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(100 + m * 7 + k * 3 + n);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  expect_close(matmul(a, b), naive_matmul(a, b));
}

TEST_P(GemmShapeTest, MatmulTnMatchesTransposedNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(200 + m * 7 + k * 3 + n);
  const Matrix a = random_matrix(k, m, rng);  // (k x m), used as a^T
  const Matrix b = random_matrix(k, n, rng);
  Matrix out;
  matmul_tn(a, b, out);
  expect_close(out, naive_matmul(a.transposed(), b));
}

TEST_P(GemmShapeTest, MatmulNtMatchesTransposedNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(300 + m * 7 + k * 3 + n);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(n, k, rng);  // (n x k), used as b^T
  Matrix out;
  matmul_nt(a, b, out);
  expect_close(out, naive_matmul(a, b.transposed()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(33, 65, 17),
                      std::make_tuple(128, 64, 96),
                      std::make_tuple(1, 256, 1)));

TEST(Ops, AddSubHadamardScaleAxpy) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{10, 20}, {30, 40}});
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a(1, 1), 44);
  sub_inplace(a, b);
  EXPECT_FLOAT_EQ(a(1, 1), 4);
  hadamard_inplace(a, b);
  EXPECT_FLOAT_EQ(a(0, 1), 40);
  scale_inplace(a, 0.5f);
  EXPECT_FLOAT_EQ(a(0, 1), 20);
  axpy_inplace(a, 2.0f, b);
  EXPECT_FLOAT_EQ(a(0, 0), 25);  // 5 + 2*10
}

TEST(Ops, AddRowVector) {
  Matrix a(2, 3, 1.0f);
  const Matrix row = Matrix::from_rows({{1, 2, 3}});
  add_row_vector(a, row);
  EXPECT_FLOAT_EQ(a(0, 0), 2);
  EXPECT_FLOAT_EQ(a(1, 2), 4);
}

TEST(Ops, ColumnSum) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  Matrix out;
  column_sum(a, out);
  EXPECT_EQ(out.rows(), 1u);
  EXPECT_FLOAT_EQ(out(0, 0), 9);
  EXPECT_FLOAT_EQ(out(0, 1), 12);
}

TEST(Ops, SumAndSquaredSum) {
  const Matrix a = Matrix::from_rows({{1, -2}, {3, -4}});
  EXPECT_DOUBLE_EQ(sum(a), -2.0);
  EXPECT_DOUBLE_EQ(squared_sum(a), 30.0);
}

}  // namespace
}  // namespace passflow::nn
