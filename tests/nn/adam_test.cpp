#include "nn/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.hpp"
#include "nn/ops.hpp"
#include "util/rng.hpp"

namespace passflow::nn {
namespace {

TEST(Adam, MinimizesQuadratic) {
  // Minimize f(w) = 0.5*||w - target||^2 directly through a Param.
  Param w("w", Matrix(1, 4));
  const Matrix target = Matrix::from_rows({{1, -2, 3, -4}});
  AdamConfig config;
  config.learning_rate = 0.05;
  Adam adam({&w}, config);
  for (int step = 0; step < 2000; ++step) {
    w.grad = w.value;
    sub_inplace(w.grad, target);
    adam.step();
    w.grad.zero();
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.value(0, i), target(0, i), 1e-2);
  }
}

TEST(Adam, StepCountAdvances) {
  Param w("w", Matrix(1, 1));
  Adam adam({&w});
  EXPECT_EQ(adam.step_count(), 0);
  w.grad.fill(1.0f);
  adam.step();
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the first Adam update is ~lr * sign(grad).
  Param w("w", Matrix(1, 1));
  AdamConfig config;
  config.learning_rate = 0.1;
  Adam adam({&w}, config);
  w.grad.fill(3.0f);
  adam.step();
  EXPECT_NEAR(w.value(0, 0), -0.1, 1e-4);
}

TEST(Adam, ClipNormBoundsUpdateMagnitude) {
  Param w("w", Matrix(1, 2));
  AdamConfig config;
  config.learning_rate = 0.1;
  config.clip_norm = 1.0;
  Adam adam({&w}, config);
  w.grad.fill(1000.0f);  // norm >> clip
  adam.step();
  // The clipped gradient has norm 1; Adam normalizes per-coordinate anyway,
  // so just assert the update stayed bounded and finite.
  EXPECT_TRUE(std::isfinite(w.value(0, 0)));
  EXPECT_LT(std::abs(w.value(0, 0)), 0.2);
}

TEST(Adam, WeightDecayShrinksWeightsWithZeroGrad) {
  Param w("w", Matrix(1, 1, 1.0f));
  AdamConfig config;
  config.learning_rate = 0.1;
  config.weight_decay = 0.5;
  Adam adam({&w}, config);
  w.grad.zero();
  adam.step();
  EXPECT_LT(w.value(0, 0), 1.0f);
}

TEST(Adam, TrainsLinearRegression) {
  util::Rng rng(77);
  Linear layer(3, 1, rng, Init::kXavier);
  // Ground truth: y = 2*x0 - x1 + 0.5*x2 + 1.
  const Matrix true_w = Matrix::from_rows({{2}, {-1}, {0.5}});

  AdamConfig config;
  config.learning_rate = 0.02;
  Adam adam(layer.parameters(), config);

  for (int step = 0; step < 3000; ++step) {
    Matrix x(16, 3);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x.data()[i] = static_cast<float>(rng.normal());
    }
    Matrix y = matmul(x, true_w);
    for (std::size_t r = 0; r < y.rows(); ++r) y(r, 0) += 1.0f;

    layer.zero_grad();
    Matrix pred = layer.forward(x);
    Matrix grad = pred;
    sub_inplace(grad, y);
    scale_inplace(grad, 2.0f / 16.0f);
    layer.backward(grad);
    adam.step();
  }
  EXPECT_NEAR(layer.weight().value(0, 0), 2.0, 0.05);
  EXPECT_NEAR(layer.weight().value(1, 0), -1.0, 0.05);
  EXPECT_NEAR(layer.weight().value(2, 0), 0.5, 0.05);
  EXPECT_NEAR(layer.bias().value(0, 0), 1.0, 0.05);
}

}  // namespace
}  // namespace passflow::nn
