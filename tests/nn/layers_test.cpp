// Gradient checks and behavioral tests for Linear / Activation /
// ResidualBlock / Mlp / ResNetST. The loss used everywhere is
// L = sum(output^2) / 2, whose output gradient is simply the output itself.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hpp"
#include "nn/gradcheck.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/ops.hpp"
#include "nn/residual.hpp"
#include "util/rng.hpp"

namespace passflow::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng,
                     double stddev = 1.0) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return m;
}

double half_squared(const Matrix& m) { return 0.5 * squared_sum(m); }

// Runs forward+backward once under L = 0.5*||f(x)||^2 and checks both
// parameter and input gradients numerically.
void check_module_gradients(Module& module, Matrix input,
                            double tolerance = 2e-2) {
  module.zero_grad();
  const Matrix out = module.forward(input);
  const Matrix grad_in = module.backward(out);  // dL/d(out) = out

  const auto loss = [&]() {
    return half_squared(module.forward_inference(input));
  };
  const auto param_result =
      check_param_gradients(loss, module.parameters(), 1e-3, 32);
  EXPECT_LT(param_result.max_rel_error, tolerance)
      << "param abs err " << param_result.max_abs_error;

  const auto input_result =
      check_input_gradients(loss, input, grad_in, 1e-3, 32);
  EXPECT_LT(input_result.max_rel_error, tolerance)
      << "input abs err " << input_result.max_abs_error;
}

TEST(Linear, ForwardComputesAffineMap) {
  util::Rng rng(1);
  Linear layer(2, 2, rng, Init::kZero);
  layer.weight().value = Matrix::from_rows({{1, 2}, {3, 4}});
  layer.bias().value = Matrix::from_rows({{10, 20}});
  const Matrix out = layer.forward(Matrix::from_rows({{1, 1}}));
  EXPECT_FLOAT_EQ(out(0, 0), 14);  // 1*1 + 1*3 + 10
  EXPECT_FLOAT_EQ(out(0, 1), 26);  // 1*2 + 1*4 + 20
}

TEST(Linear, GradientsMatchNumeric) {
  util::Rng rng(2);
  Linear layer(5, 4, rng, Init::kXavier);
  check_module_gradients(layer, random_matrix(8, 5, rng));
}

TEST(Linear, ZeroInitProducesBiasOnlyOutput) {
  util::Rng rng(3);
  Linear layer(4, 3, rng, Init::kZero);
  const Matrix out = layer.forward(random_matrix(2, 4, rng));
  EXPECT_DOUBLE_EQ(out.frobenius_norm(), 0.0);
}

TEST(Linear, HeInitVarianceScalesWithFanIn) {
  util::Rng rng(4);
  Linear layer(1000, 50, rng, Init::kHe);
  const double norm_sq = squared_sum(layer.weight().value);
  const double variance = norm_sq / (1000.0 * 50.0);
  EXPECT_NEAR(variance, 2.0 / 1000.0, 0.0005);
}

class ActivationKindTest : public ::testing::TestWithParam<ActKind> {};

TEST_P(ActivationKindTest, GradientMatchesNumeric) {
  util::Rng rng(5);
  Activation act(GetParam());
  Matrix input = random_matrix(6, 7, rng);
  act.zero_grad();
  const Matrix out = act.forward(input);
  const Matrix grad_in = act.backward(out);
  const auto loss = [&]() { return half_squared(act.forward_inference(input)); };
  const auto result = check_input_gradients(loss, input, grad_in, 1e-4, 42);
  EXPECT_LT(result.max_rel_error, 2e-2);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ActivationKindTest,
                         ::testing::Values(ActKind::kRelu, ActKind::kLeakyRelu,
                                           ActKind::kTanh, ActKind::kSigmoid));

TEST(Activation, ReluClampsNegatives) {
  Activation relu(ActKind::kRelu);
  const Matrix out = relu.forward(Matrix::from_rows({{-1, 0, 2}}));
  EXPECT_FLOAT_EQ(out(0, 0), 0);
  EXPECT_FLOAT_EQ(out(0, 1), 0);
  EXPECT_FLOAT_EQ(out(0, 2), 2);
}

TEST(Activation, TanhIsBounded) {
  Activation tanh_act(ActKind::kTanh);
  const Matrix out = tanh_act.forward(Matrix::from_rows({{-100, 100}}));
  EXPECT_NEAR(out(0, 0), -1.0f, 1e-6);
  EXPECT_NEAR(out(0, 1), 1.0f, 1e-6);
}

TEST(Activation, SigmoidAtZeroIsHalf) {
  Activation sig(ActKind::kSigmoid);
  const Matrix out = sig.forward(Matrix::from_rows({{0}}));
  EXPECT_FLOAT_EQ(out(0, 0), 0.5f);
}

TEST(ResidualBlock, GradientsMatchNumeric) {
  util::Rng rng(6);
  ResidualBlock block(6, rng);
  check_module_gradients(block, random_matrix(5, 6, rng));
}

TEST(ResidualBlock, SkipConnectionPreservesSignalAtZeroWeights) {
  util::Rng rng(7);
  ResidualBlock block(4, rng);
  for (Param* p : block.parameters()) p->value.zero();
  const Matrix input = random_matrix(3, 4, rng);
  const Matrix out = block.forward(input);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], input.data()[i]);
  }
}

TEST(Mlp, GradientsMatchNumeric) {
  util::Rng rng(8);
  Mlp mlp(4, {8, 8}, 3, rng);
  check_module_gradients(mlp, random_matrix(6, 4, rng));
}

TEST(Mlp, FinalActivationBoundsOutput) {
  util::Rng rng(9);
  Mlp mlp(4, {16}, 2, rng, ActKind::kRelu, /*has_final_act=*/true,
          ActKind::kSigmoid);
  const Matrix out = mlp.forward(random_matrix(20, 4, rng, 5.0));
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Sigmoid output; float32 saturates to exactly 0/1 for large logits.
    EXPECT_GE(out.data()[i], 0.0f);
    EXPECT_LE(out.data()[i], 1.0f);
  }
}

TEST(Mlp, ParameterCountMatchesArchitecture) {
  util::Rng rng(10);
  Mlp mlp(4, {8}, 3, rng);
  // fc0: 4*8+8, out: 8*3+3
  EXPECT_EQ(mlp.parameter_count(), 4u * 8 + 8 + 8 * 3 + 3);
}

TEST(ResNetST, ZeroInitHeadsStartAtZero) {
  util::Rng rng(11);
  ResNetST st(6, 16, 2, 6, rng);
  const Matrix input = random_matrix(4, 6, rng);
  auto out = st.forward_inference(input);
  EXPECT_DOUBLE_EQ(out.s_raw.frobenius_norm(), 0.0);
  EXPECT_DOUBLE_EQ(out.t.frobenius_norm(), 0.0);
}

TEST(ResNetST, GradientsMatchNumericThroughBothHeads) {
  util::Rng rng(12);
  ResNetST st(5, 12, 1, 5, rng);
  // Give the heads non-zero weights so gradients flow meaningfully.
  for (Param* p : st.parameters()) {
    if (p->value.rows() > 0 && p->name.find(".s.") != std::string::npos) {
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        p->value.data()[i] = static_cast<float>(rng.normal(0.0, 0.3));
      }
    }
  }
  Matrix input = random_matrix(4, 5, rng);

  for (Param* p : st.parameters()) p->grad.zero();
  auto out = st.forward(input);
  // L = 0.5*(||s_raw||^2 + ||t||^2)
  const Matrix grad_in = st.backward(out.s_raw, out.t);

  const auto loss = [&]() {
    auto o = st.forward_inference(input);
    return half_squared(o.s_raw) + half_squared(o.t);
  };
  // float32 central differences carry ~1e-3 absolute noise; accept either a
  // tight relative or a tight absolute error.
  const auto params_result =
      check_param_gradients(loss, st.parameters(), 1e-3, 16);
  EXPECT_TRUE(params_result.max_rel_error < 3e-2 ||
              params_result.max_abs_error < 5e-3)
      << "rel " << params_result.max_rel_error << " abs "
      << params_result.max_abs_error;
  const auto input_result =
      check_input_gradients(loss, input, grad_in, 1e-3, 20);
  EXPECT_TRUE(input_result.max_rel_error < 3e-2 ||
              input_result.max_abs_error < 5e-3)
      << "rel " << input_result.max_rel_error << " abs "
      << input_result.max_abs_error;
}

}  // namespace
}  // namespace passflow::nn
