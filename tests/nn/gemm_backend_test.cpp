// Cross-checks every compiled GEMM backend against the naive reference over
// a shape sweep, and pins down the dispatch/override plumbing.
#include "nn/gemm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "nn/ops.hpp"
#include "util/rng.hpp"

namespace passflow::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal());
  }
  return m;
}

// Relative tolerance: |x - ref| <= tol * max(1, |ref|).
void expect_rel_close(const Matrix& got, const Matrix& ref, float tol = 1e-4f) {
  ASSERT_TRUE(got.same_shape(ref))
      << got.shape_string() << " vs " << ref.shape_string();
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float r = ref.data()[i];
    const float bound = tol * std::max(1.0f, std::abs(r));
    ASSERT_NEAR(got.data()[i], r, bound) << "at flat index " << i;
  }
}

std::vector<gemm::Backend> backends_under_test() {
  std::vector<gemm::Backend> backends = {gemm::Backend::kBlocked};
  if (gemm::available(gemm::Backend::kBlas)) {
    backends.push_back(gemm::Backend::kBlas);
  }
  return backends;
}

// Shape sweep: minimal, odd, prime, micro-kernel-boundary, tall/skinny,
// wide/flat and square-256 shapes; (m, k, n).
class GemmBackendShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmBackendShapeTest, NnMatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(1000 + m * 131 + k * 17 + n);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix ref;
  gemm::gemm_nn(gemm::Backend::kNaive, a, b, ref);
  for (gemm::Backend be : backends_under_test()) {
    Matrix out;
    gemm::gemm_nn(be, a, b, out);
    SCOPED_TRACE(gemm::backend_name(be));
    expect_rel_close(out, ref);
  }
}

TEST_P(GemmBackendShapeTest, TnMatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(2000 + m * 131 + k * 17 + n);
  const Matrix a = random_matrix(k, m, rng);  // used as a^T
  const Matrix b = random_matrix(k, n, rng);
  Matrix ref;
  gemm::gemm_tn(gemm::Backend::kNaive, a, b, ref);
  for (gemm::Backend be : backends_under_test()) {
    Matrix out;
    gemm::gemm_tn(be, a, b, out);
    SCOPED_TRACE(gemm::backend_name(be));
    expect_rel_close(out, ref);
  }
}

TEST_P(GemmBackendShapeTest, NtMatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(3000 + m * 131 + k * 17 + n);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(n, k, rng);  // used as b^T
  Matrix ref;
  gemm::gemm_nt(gemm::Backend::kNaive, a, b, ref);
  for (gemm::Backend be : backends_under_test()) {
    Matrix out;
    gemm::gemm_nt(be, a, b, out);
    SCOPED_TRACE(gemm::backend_name(be));
    expect_rel_close(out, ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmBackendShapeTest,
    ::testing::Values(
        std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
        std::make_tuple(3, 5, 7), std::make_tuple(4, 16, 16),
        std::make_tuple(5, 17, 33),            // just past micro-tile edges
        std::make_tuple(13, 1, 13),            // k = 1
        std::make_tuple(1, 256, 1),            // dot product
        std::make_tuple(512, 8, 4),            // tall and skinny
        std::make_tuple(4, 8, 512),            // wide and flat
        std::make_tuple(129, 385, 17),         // one past MC/KC block edges
        std::make_tuple(256, 256, 256)));      // bench shape

TEST(GemmBackend, BlockedIsDeterministic) {
  util::Rng rng(42);
  const Matrix a = random_matrix(200, 300, rng);
  const Matrix b = random_matrix(300, 100, rng);
  Matrix out1, out2;
  gemm::gemm_nn(gemm::Backend::kBlocked, a, b, out1);
  gemm::gemm_nn(gemm::Backend::kBlocked, a, b, out2);
  ASSERT_EQ(out1.size(), out2.size());
  EXPECT_EQ(0, std::memcmp(out1.data(), out2.data(),
                           out1.size() * sizeof(float)));
}

TEST(GemmBackend, OutStorageIsReusedAcrossCalls) {
  util::Rng rng(7);
  const Matrix a = random_matrix(64, 32, rng);
  const Matrix b = random_matrix(32, 48, rng);
  Matrix out;
  gemm::gemm_nn(gemm::Backend::kBlocked, a, b, out);
  const float* data_before = out.data();
  gemm::gemm_nn(gemm::Backend::kBlocked, a, b, out);
  EXPECT_EQ(data_before, out.data())
      << "same-shape GEMM into a warm out matrix must not reallocate";
}

TEST(GemmBackend, RuntimeOverrideDrivesOpsMatmul) {
  const gemm::Backend saved = gemm::active_backend();
  util::Rng rng(9);
  const Matrix a = random_matrix(20, 30, rng);
  const Matrix b = random_matrix(30, 10, rng);

  gemm::set_backend(gemm::Backend::kNaive);
  EXPECT_EQ(gemm::active_backend(), gemm::Backend::kNaive);
  const Matrix via_naive = matmul(a, b);

  gemm::set_backend(gemm::Backend::kBlocked);
  const Matrix via_blocked = matmul(a, b);

  gemm::set_backend(saved);
  expect_rel_close(via_blocked, via_naive);
}

TEST(GemmBackend, UnavailableBackendFallsBackToBlocked) {
  const gemm::Backend saved = gemm::active_backend();
  gemm::set_backend(gemm::Backend::kBlas);
  if (gemm::available(gemm::Backend::kBlas)) {
    EXPECT_EQ(gemm::active_backend(), gemm::Backend::kBlas);
  } else {
    EXPECT_EQ(gemm::active_backend(), gemm::Backend::kBlocked);
  }
  gemm::set_backend(saved);
}

TEST(GemmBackend, NamesRoundTrip) {
  EXPECT_EQ(gemm::parse_backend("naive"), gemm::Backend::kNaive);
  EXPECT_EQ(gemm::parse_backend("blocked"), gemm::Backend::kBlocked);
  EXPECT_EQ(gemm::parse_backend("blas"), gemm::Backend::kBlas);
  EXPECT_EQ(gemm::parse_backend("nonsense"), gemm::Backend::kBlocked);
  EXPECT_STREQ(gemm::backend_name(gemm::Backend::kNaive), "naive");
  EXPECT_STREQ(gemm::backend_name(gemm::Backend::kBlocked), "blocked");
  EXPECT_STREQ(gemm::backend_name(gemm::Backend::kBlas), "blas");
}

TEST(GemmBackend, DegenerateShapes) {
  for (gemm::Backend be : backends_under_test()) {
    SCOPED_TRACE(gemm::backend_name(be));
    // k = 0: out must be all zeros.
    Matrix a(3, 0), b(0, 4), out;
    gemm::gemm_nn(be, a, b, out);
    ASSERT_EQ(out.rows(), 3u);
    ASSERT_EQ(out.cols(), 4u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out.data()[i], 0.0f);
    }
    // m = 0 / n = 0: empty result, no crash.
    Matrix a2(0, 5), b2(5, 4), out2;
    gemm::gemm_nn(be, a2, b2, out2);
    EXPECT_EQ(out2.rows(), 0u);
    EXPECT_EQ(out2.cols(), 4u);
  }
}

}  // namespace
}  // namespace passflow::nn
