// Table II: % of test-set passwords matched vs number of guesses, for
// PassGAN, GAN (Pasquini et al.), CWAE and the three PassFlow variants.
//
// The paper reports budgets 10^4..10^8 on the real RockYou split; this bench
// runs the same protocol at the configured scale (see bench_support.hpp and
// EXPERIMENTS.md). The property under test is the *ordering*:
//   PassFlow-Dynamic+GS > GAN-Pasquini > PassFlow-Dynamic > PassGAN
//   > PassFlow-Static > CWAE   (at the largest budget)
// and PassFlow trains on a fraction of the data the baselines see.
#include "bench_support.hpp"
#include "guessing/dynamic_sampler.hpp"
#include "guessing/static_sampler.hpp"

namespace pf = passflow;
using pf::bench::BenchEnv;
using pf::bench::BenchScale;

namespace {

struct MethodRow {
  std::string name;
  std::vector<double> matched_percent;
};

MethodRow row_from(const std::string& name,
                   const pf::guessing::RunResult& result,
                   const BenchScale& scale) {
  MethodRow row{name, {}};
  for (std::size_t budget : scale.budgets) {
    row.matched_percent.push_back(result.at(budget).matched_percent);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  BenchScale scale = pf::bench::scale_from_flags(flags);
  // PassFlow trains on a much smaller subsample (§V-A: 300K of 23.5M);
  // baselines see the full training split.
  scale.flow_train_divisor = static_cast<std::size_t>(
      flags.get_int("flow-train-divisor",
                    static_cast<long long>(scale.flow_train_divisor)));

  BenchEnv env(scale);
  pf::guessing::HashSetMatcher matcher(env.split.test_unique);

  const std::vector<std::string> flow_train = env.flow_train_subset(scale);
  PF_LOG_INFO << "flow train subset: " << flow_train.size()
              << " of " << env.split.train.size();

  auto model = pf::bench::train_flow(env, scale, {}, &flow_train);
  auto cwae = pf::bench::train_cwae(env, scale);
  auto passgan =
      pf::bench::train_gan(env, scale, pf::baselines::passgan_config());
  auto pasquini =
      pf::bench::train_gan(env, scale, pf::baselines::pasquini_gan_config());

  std::vector<MethodRow> rows;

  {
    pf::baselines::GanSampler sampler(*passgan, env.encoder, scale.seed + 10);
    rows.push_back(row_from("PassGAN (Hitaj et al.)",
                            run_schedule(sampler, matcher, scale), scale));
  }
  {
    pf::baselines::GanSampler sampler(*pasquini, env.encoder, scale.seed + 11);
    rows.push_back(row_from("GAN (Pasquini et al.)",
                            run_schedule(sampler, matcher, scale), scale));
  }
  {
    pf::baselines::CwaeSampler sampler(*cwae, env.encoder, scale.seed + 12);
    rows.push_back(row_from("CWAE (Pasquini et al.)",
                            run_schedule(sampler, matcher, scale), scale));
  }
  {
    pf::guessing::StaticSamplerConfig config;
    config.seed = scale.seed + 13;
    config.pool = &pf::util::shared_pool();
    pf::guessing::StaticSampler sampler(*model, env.encoder, config);
    rows.push_back(row_from("PassFlow-Static",
                            run_schedule(sampler, matcher, scale), scale));
  }
  {
    auto config = pf::guessing::table1_parameters(scale.budgets.back());
    config.seed = scale.seed + 14;
    config.pool = &pf::util::shared_pool();
    pf::guessing::DynamicSampler sampler(*model, env.encoder, config);
    rows.push_back(row_from("PassFlow-Dynamic",
                            run_schedule(sampler, matcher, scale), scale));
  }
  {
    auto config = pf::guessing::table1_parameters(scale.budgets.back());
    config.seed = scale.seed + 15;
    config.pool = &pf::util::shared_pool();
    config.smoothing.enabled = true;
    pf::guessing::DynamicSampler sampler(*model, env.encoder, config);
    rows.push_back(row_from("PassFlow-Dynamic+GS",
                            run_schedule(sampler, matcher, scale), scale));
  }

  std::vector<std::string> header = {"Method"};
  for (std::size_t budget : scale.budgets) {
    header.push_back(std::to_string(budget));
  }
  pf::util::TextTable table(header);
  pf::util::CsvWriter csv(pf::bench::output_path("table2_guessing.csv"),
                          header);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.name};
    for (double percent : row.matched_percent) {
      cells.push_back(pf::bench::format_percent(percent));
    }
    table.add_row(cells);
    csv.write_row(cells);
  }

  std::printf("\nTable II: %% of matched passwords over the synthetic "
              "RockYou test set (%zu unique)\n",
              matcher.test_set_size());
  std::printf("(scale=%s; flow trained on %zu samples, baselines on %zu)\n\n",
              scale.name.c_str(), flow_train.size(), env.split.train.size());
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
