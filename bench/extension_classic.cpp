// Extension: classic password-guessing tools vs PassFlow.
//
// §I motivates PassFlow against rule-based tools (HashCat/JtR) and §VI's
// related work opens with Weir et al.'s PCFG and Markov models. The paper's
// tables only compare neural models; this bench adds the classic anchors on
// the same protocol: PCFG (probability-order enumeration), PCFG (sampling),
// Markov-2, a rule-based wordlist attack, and PassFlow-Dynamic+GS.
//
// Expected shape: the enumerating PCFG and the rule engine are strong at
// small budgets (they spend their budget on the head of the distribution —
// but the test protocol removes train-set passwords, so their head guesses
// are mostly already-known strings); generative models keep finding new
// matches as budgets grow.
#include "baselines/markov.hpp"
#include "baselines/pcfg.hpp"
#include "baselines/rules.hpp"
#include "bench_support.hpp"
#include "guessing/dynamic_sampler.hpp"

namespace pf = passflow;
using pf::bench::BenchEnv;
using pf::bench::BenchScale;

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const BenchScale scale = pf::bench::scale_from_flags(flags);

  BenchEnv env(scale);
  pf::guessing::HashSetMatcher matcher(env.split.test_unique);
  const std::vector<std::string> flow_train = env.flow_train_subset(scale);

  struct Row {
    std::string name;
    pf::guessing::RunResult result;
  };
  std::vector<Row> rows;

  {
    pf::baselines::PcfgModel pcfg(scale.max_length);
    pcfg.train(env.split.train);
    PF_LOG_INFO << "pcfg: " << pcfg.structure_count() << " base structures";
    pf::baselines::PcfgEnumerator enumerator(pcfg);
    rows.push_back({enumerator.name(),
                    run_schedule(enumerator, matcher, scale)});
    pf::baselines::PcfgSampler sampler(pcfg, scale.seed + 100);
    rows.push_back({sampler.name(), run_schedule(sampler, matcher, scale)});
  }
  {
    pf::baselines::MarkovModel markov(env.encoder.alphabet(), 2,
                                      scale.max_length);
    markov.train(env.split.train);
    pf::baselines::MarkovSampler sampler(markov, scale.seed + 101);
    rows.push_back({sampler.name(), run_schedule(sampler, matcher, scale)});
  }
  {
    pf::baselines::RuleEngine rules(
        pf::baselines::wordlist_from_corpus(env.split.train, 20000),
        pf::baselines::default_ruleset(), scale.max_length);
    rows.push_back({rules.name(), run_schedule(rules, matcher, scale)});
  }
  {
    auto model = pf::bench::train_flow(env, scale, {}, &flow_train);
    auto config = pf::guessing::table1_parameters(scale.budgets.back());
    config.seed = scale.seed + 102;
    config.smoothing.enabled = true;
    pf::guessing::DynamicSampler sampler(*model, env.encoder, config);
    rows.push_back({sampler.name(), run_schedule(sampler, matcher, scale)});
  }

  std::vector<std::string> header = {"Method"};
  for (std::size_t budget : scale.budgets) {
    header.push_back(std::to_string(budget));
  }
  pf::util::TextTable table(header);
  pf::util::CsvWriter csv(pf::bench::output_path("extension_classic.csv"),
                          header);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.name};
    for (std::size_t budget : scale.budgets) {
      cells.push_back(
          pf::bench::format_percent(row.result.at(budget).matched_percent));
    }
    table.add_row(cells);
    csv.write_row(cells);
  }

  std::printf("\nExtension: classic tools vs PassFlow — matched %% over the "
              "synthetic RockYou test set (%zu unique, scale=%s)\n\n",
              matcher.test_set_size(), scale.name.c_str());
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
