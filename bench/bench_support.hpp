// Shared experiment environment for the bench binaries.
//
// Every bench accepts --scale={smoke,default,paper} plus overrides, builds
// the same seeded synthetic-RockYou split (DESIGN.md substitution #1) and
// trains models with architecture ratios matching §IV-D. "paper" uses the
// paper's exact hyper-parameters (18x256x2 couplings, 300K train, 400
// epochs, 10^8 guesses) and exists for completeness — it is not expected to
// run in CI-sized time budgets. EXPERIMENTS.md records which scale produced
// the committed outputs.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/cwae.hpp"
#include "baselines/gan.hpp"
#include "baselines/markov.hpp"
#include "data/synthetic_rockyou.hpp"
#include "flow/trainer.hpp"
#include "guessing/harness.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace passflow::bench {

struct BenchScale {
  std::string name = "default";
  std::size_t corpus_size = 120000;
  std::size_t train_size = 24000;
  std::size_t max_length = 8;  // paper uses 10; 8 keeps CPU training sane
  bool focused_corpus = true;  // reduced pattern support (DESIGN.md §2)
  // Flow architecture (paper: 18 couplings, hidden 256, 2 blocks).
  std::size_t couplings = 10;
  std::size_t hidden = 128;
  std::size_t residual_blocks = 2;
  std::size_t epochs = 40;
  std::size_t batch_size = 512;  // paper batch size
  double lr_decay = 0.98;
  // Fraction of the training partition the *flow* sees: the paper's
  // headline "orders of magnitude less data" claim (§V-A). Baselines train
  // on the full partition.
  std::size_t flow_train_divisor = 4;
  // Guess budgets reported in the tables (paper: 1e4..1e8). 3e5 is the
  // largest budget that keeps the full bench suite within ~30 CPU-minutes;
  // pass --budget to extend (1e6 reproduces the calibration runs in
  // EXPERIMENTS.md).
  std::vector<std::size_t> budgets = {10000, 100000, 300000};
  // Baseline training epochs.
  std::size_t baseline_epochs = 10;
  std::uint64_t seed = 20220614;  // DSN 2022 :-)
};

inline BenchScale make_scale(const std::string& name) {
  BenchScale scale;
  scale.name = name;
  if (name == "smoke") {
    scale.corpus_size = 20000;
    scale.train_size = 5000;
    scale.couplings = 6;
    scale.hidden = 48;
    scale.residual_blocks = 1;
    scale.epochs = 5;
    scale.budgets = {1000, 10000};
    scale.baseline_epochs = 3;
  } else if (name == "default") {
    // defaults above
  } else if (name == "paper") {
    scale.corpus_size = 36000000;
    scale.train_size = 23500000;
    scale.max_length = 10;
    scale.focused_corpus = false;
    scale.couplings = 18;
    scale.hidden = 256;
    scale.residual_blocks = 2;
    scale.epochs = 400;
    scale.lr_decay = 1.0;
    scale.flow_train_divisor = 78;  // 300K of 23.5M
    scale.budgets = {10000, 100000, 1000000, 10000000, 100000000};
    scale.baseline_epochs = 100;
  } else {
    throw std::invalid_argument("unknown --scale: " + name);
  }
  return scale;
}

inline BenchScale scale_from_flags(const util::Flags& flags) {
  BenchScale scale = make_scale(flags.get_string("scale", "default"));
  scale.corpus_size = static_cast<std::size_t>(
      flags.get_int("corpus", static_cast<long long>(scale.corpus_size)));
  scale.train_size = static_cast<std::size_t>(
      flags.get_int("train-size", static_cast<long long>(scale.train_size)));
  scale.couplings = static_cast<std::size_t>(
      flags.get_int("couplings", static_cast<long long>(scale.couplings)));
  scale.hidden = static_cast<std::size_t>(
      flags.get_int("hidden", static_cast<long long>(scale.hidden)));
  scale.epochs = static_cast<std::size_t>(
      flags.get_int("epochs", static_cast<long long>(scale.epochs)));
  scale.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<long long>(scale.seed)));
  if (flags.has("budget")) {
    scale.budgets = {static_cast<std::size_t>(flags.get_int("budget", 10000))};
  }
  return scale;
}

// Corpus + split + encoder, shared by all benches for a given scale/seed.
struct BenchEnv {
  explicit BenchEnv(const BenchScale& scale)
      : encoder(scale.focused_corpus ? data::Alphabet::compact()
                                     : data::Alphabet::standard(),
                scale.max_length) {
    data::CorpusConfig corpus_config =
        scale.focused_corpus ? data::focused_corpus_config(scale.max_length)
                             : data::CorpusConfig{};
    corpus_config.max_length = scale.max_length;
    data::SyntheticRockyou generator(corpus_config, scale.seed);
    util::Timer timer;
    const auto corpus = generator.generate(scale.corpus_size);
    util::Rng rng(scale.seed + 1);
    split = data::make_rockyou_style_split(corpus, scale.train_size, rng);
    PF_LOG_INFO << "corpus: " << corpus.size() << " raw, train "
                << split.train.size() << ", test "
                << split.test_unique.size() << " unique ("
                << util::format_duration(timer.elapsed_seconds()) << ")";
  }

  // The subsample the flow trains on (paper trains PassFlow on ~1/78 of the
  // data the baselines use, §V-A).
  std::vector<std::string> flow_train_subset(const BenchScale& scale) const {
    const std::size_t count = std::max<std::size_t>(
        1000, split.train.size() / std::max<std::size_t>(
                                       1, scale.flow_train_divisor));
    return {split.train.begin(),
            split.train.begin() + std::min(count, split.train.size())};
  }

  data::Encoder encoder;
  data::DatasetSplit split;
};

inline flow::FlowConfig flow_config_for(const BenchScale& scale,
                                        flow::MaskConfig mask = {}) {
  flow::FlowConfig config;
  config.dim = scale.max_length;
  config.num_couplings = scale.couplings;
  config.hidden = scale.hidden;
  config.residual_blocks = scale.residual_blocks;
  config.mask = mask;
  return config;
}

inline std::unique_ptr<flow::FlowModel> train_flow(
    const BenchEnv& env, const BenchScale& scale,
    flow::MaskConfig mask = {},
    const std::vector<std::string>* train_override = nullptr) {
  util::Rng rng(scale.seed + 2);
  auto model =
      std::make_unique<flow::FlowModel>(flow_config_for(scale, mask), rng);
  flow::TrainConfig train_config;
  train_config.epochs = scale.epochs;
  train_config.batch_size = scale.batch_size;
  train_config.lr_decay = scale.lr_decay;
  train_config.log_every = 0;
  train_config.seed = scale.seed + 3;
  flow::Trainer trainer(*model, train_config);
  util::Timer timer;
  const auto result = trainer.train(
      train_override ? *train_override : env.split.train, env.encoder);
  PF_LOG_INFO << "flow[" << flow::scheme_name(mask) << "] trained: best nll="
              << result.best_validation_nll << " @epoch " << result.best_epoch
              << " (" << util::format_duration(timer.elapsed_seconds()) << ")";
  return model;
}

inline std::unique_ptr<baselines::Cwae> train_cwae(const BenchEnv& env,
                                                   const BenchScale& scale) {
  util::Rng rng(scale.seed + 4);
  baselines::CwaeConfig config;
  config.epochs = scale.baseline_epochs;
  auto model = std::make_unique<baselines::Cwae>(env.encoder, config, rng);
  util::Timer timer;
  const double loss = model->train(env.split.train);
  PF_LOG_INFO << "cwae trained: loss=" << loss << " ("
              << util::format_duration(timer.elapsed_seconds()) << ")";
  return model;
}

inline std::unique_ptr<baselines::Gan> train_gan(
    const BenchEnv& env, const BenchScale& scale, baselines::GanConfig config) {
  util::Rng rng(scale.seed + 5);
  config.epochs = scale.baseline_epochs;
  auto model = std::make_unique<baselines::Gan>(env.encoder, config, rng);
  util::Timer timer;
  model->train(env.split.train);
  PF_LOG_INFO << config.label << " trained ("
              << util::format_duration(timer.elapsed_seconds()) << ")";
  return model;
}

// Runs one generator across the full budget schedule, reporting metrics at
// each budget.
inline guessing::RunResult run_schedule(guessing::GuessGenerator& generator,
                                        const guessing::Matcher& matcher,
                                        const BenchScale& scale) {
  guessing::HarnessConfig config;
  config.budget = scale.budgets.back();
  config.checkpoints = scale.budgets;
  // Parallel matching plus pipelined generation (a no-op for feedback
  // generators); metrics stay identical to a serial run.
  config.pool = &util::shared_pool();
  config.overlap_generation = true;
  util::Timer timer;
  auto result = run_guessing(generator, matcher, config);
  PF_LOG_INFO << generator.name() << ": " << result.final().matched
              << " matched / " << result.final().unique << " unique in "
              << util::format_duration(timer.elapsed_seconds());
  return result;
}

inline std::string format_percent(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}

// Output directory for CSVs (created by the build; fall back to cwd).
inline std::string output_path(const std::string& filename) {
  return filename;  // benches run from the build tree; keep outputs local
}

}  // namespace passflow::bench
