// google-benchmark microbenchmarks for the flow itself: forward, inverse and
// NLL-backward throughput at paper architecture (18x256x2) and at the bench
// default (8x96x2), plus encoder and sampler throughput, the GEMM backend
// size sweep and the train-step (serial vs pooled) comparison behind
// BENCH_gemm.json.
#include <benchmark/benchmark.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "data/encoder.hpp"
#include "flow/flow_model.hpp"
#include "guessing/harness.hpp"
#include "guessing/matcher.hpp"
#include "guessing/static_sampler.hpp"
#include "nn/gemm.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace pf = passflow;

pf::nn::Matrix random_batch(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  pf::util::Rng rng(seed);
  pf::nn::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal(0.5, 0.2));
  }
  return m;
}

pf::flow::FlowConfig config_for(int couplings, int hidden) {
  pf::flow::FlowConfig config;
  config.dim = 10;
  config.num_couplings = static_cast<std::size_t>(couplings);
  config.hidden = static_cast<std::size_t>(hidden);
  config.residual_blocks = 2;
  return config;
}

void BM_FlowForward(benchmark::State& state) {
  pf::util::Rng rng(1);
  pf::flow::FlowModel model(
      config_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))),
      rng);
  const pf::nn::Matrix x = random_batch(
      static_cast<std::size_t>(state.range(2)), 10, 2);
  for (auto _ : state) {
    const auto z = model.forward_inference(x);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(2));
}
BENCHMARK(BM_FlowForward)
    ->Args({8, 96, 2048})    // bench default architecture
    ->Args({18, 256, 2048})  // paper architecture (§IV-D)
    ->Args({18, 256, 512});

void BM_FlowInverse(benchmark::State& state) {
  pf::util::Rng rng(3);
  pf::flow::FlowModel model(
      config_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))),
      rng);
  const pf::nn::Matrix z = random_batch(
      static_cast<std::size_t>(state.range(2)), 10, 4);
  for (auto _ : state) {
    const auto x = model.inverse(z);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(2));
}
BENCHMARK(BM_FlowInverse)->Args({8, 96, 2048})->Args({18, 256, 2048});

void BM_FlowNllBackward(benchmark::State& state) {
  pf::util::Rng rng(5);
  pf::flow::FlowModel model(
      config_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))),
      rng);
  const pf::nn::Matrix x = random_batch(512, 10, 6);
  for (auto _ : state) {
    model.zero_grad();
    benchmark::DoNotOptimize(model.nll_backward(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_FlowNllBackward)->Args({8, 96})->Args({18, 256});

void BM_EncoderDecodeBatch(benchmark::State& state) {
  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  const pf::nn::Matrix x = random_batch(4096, 10, 7);
  for (auto _ : state) {
    const auto decoded = encoder.decode_batch(x);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_EncoderDecodeBatch);

void BM_StaticGuessThroughput(benchmark::State& state) {
  pf::util::Rng rng(8);
  pf::flow::FlowModel model(config_for(8, 96), rng);
  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  pf::guessing::StaticSampler sampler(model, encoder);
  std::vector<std::string> out;
  for (auto _ : state) {
    out.clear();
    sampler.generate(4096, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_StaticGuessThroughput);

// ---- multi-core guessing hot path ----------------------------------------
// The *Parallel variants run the same work through util::shared_pool();
// comparing them against the serial benchmarks above gives the wall-clock
// speedup of the batched inverse+decode path (output is bitwise identical).

void BM_FlowInverseParallel(benchmark::State& state) {
  pf::util::Rng rng(3);
  pf::flow::FlowModel model(
      config_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))),
      rng);
  const pf::nn::Matrix z = random_batch(
      static_cast<std::size_t>(state.range(2)), 10, 4);
  pf::util::ThreadPool& pool = pf::util::shared_pool();
  for (auto _ : state) {
    const auto x = model.inverse(z, &pool);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(2));
}
BENCHMARK(BM_FlowInverseParallel)->Args({8, 96, 2048})->Args({18, 256, 2048});

void BM_StaticGuessThroughputParallel(benchmark::State& state) {
  pf::util::Rng rng(8);
  pf::flow::FlowModel model(config_for(8, 96), rng);
  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  pf::guessing::StaticSamplerConfig config;
  config.pool = &pf::util::shared_pool();
  pf::guessing::StaticSampler sampler(model, encoder, config);
  std::vector<std::string> out;
  for (auto _ : state) {
    out.clear();
    sampler.generate(4096, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_StaticGuessThroughputParallel);

// End-to-end harness run (generate -> match at 32k budget); range(0)
// selects the serial loop (0) or pool matching + pipelined generation (1).
void BM_GuessingHarness(benchmark::State& state) {
  pf::util::Rng rng(9);
  pf::flow::FlowModel model(config_for(8, 96), rng);
  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  const bool parallel = state.range(0) != 0;

  // Target set drawn from the sampler itself so matches actually occur.
  pf::guessing::StaticSamplerConfig warmup_config;
  warmup_config.seed = 77;
  pf::guessing::StaticSampler warmup(model, encoder, warmup_config);
  std::vector<std::string> targets;
  warmup.generate(4096, targets);
  pf::guessing::HashSetMatcher matcher(targets);

  for (auto _ : state) {
    pf::guessing::StaticSamplerConfig config;
    config.seed = 42;
    if (parallel) config.pool = &pf::util::shared_pool();
    pf::guessing::StaticSampler sampler(model, encoder, config);
    pf::guessing::HarnessConfig harness;
    harness.budget = 32768;
    harness.chunk_size = 8192;
    if (parallel) {
      harness.pool = &pf::util::shared_pool();
      harness.overlap_generation = true;
    }
    const auto result = run_guessing(sampler, matcher, harness);
    benchmark::DoNotOptimize(result.checkpoints.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_GuessingHarness)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ---- GEMM backend size sweep ---------------------------------------------
// Single-threaded on purpose (OpenMP pinned to one thread for the timed
// region) so the numbers isolate kernel quality from core count; this is
// the bench behind the ">=3x blocked vs naive at 256^3" acceptance line in
// BENCH_gemm.json. range(0) selects the backend, range(1) the square size.
// Caveat: the pinning only reaches OpenMP — a BLAS with its own thread
// pool (e.g. pthread OpenBLAS) ignores it, so for a fair blas datapoint
// also export OPENBLAS_NUM_THREADS=1 (or the vendor equivalent).

void BM_GemmSquare(benchmark::State& state) {
  const auto backend = static_cast<pf::nn::gemm::Backend>(state.range(0));
  if (!pf::nn::gemm::available(backend)) {
    state.SkipWithError("backend not compiled in");
    return;
  }
  const auto size = static_cast<std::size_t>(state.range(1));
  const pf::nn::Matrix a = random_batch(size, size, 11);
  const pf::nn::Matrix b = random_batch(size, size, 12);
  pf::nn::Matrix out;
#ifdef _OPENMP
  const int saved_threads = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  for (auto _ : state) {
    pf::nn::gemm::gemm_nn(backend, a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
#ifdef _OPENMP
  omp_set_num_threads(saved_threads);
#endif
  state.SetLabel(pf::nn::gemm::backend_name(backend));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(size) *
                          static_cast<int64_t>(size) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_GemmSquare)
    ->ArgNames({"backend", "n"})
    ->Args({0, 64})->Args({1, 64})
    ->Args({0, 128})->Args({1, 128})
    ->Args({0, 256})->Args({1, 256})
    ->Args({0, 384})->Args({1, 384})
    ->Args({2, 256});  // skipped unless a BLAS was compiled in

// The three GEMM flavors at the training hot-path shape (batch 512, hidden
// 256): nn is the forward matmul, tn the weight gradient, nt the input
// gradient.
void BM_GemmTrainShapes(benchmark::State& state) {
  const auto backend = static_cast<pf::nn::gemm::Backend>(state.range(0));
  if (!pf::nn::gemm::available(backend)) {
    state.SkipWithError("backend not compiled in");
    return;
  }
  const pf::nn::Matrix x = random_batch(512, 256, 13);
  const pf::nn::Matrix w = random_batch(256, 256, 14);
  pf::nn::Matrix h, dw, dx;
#ifdef _OPENMP
  const int saved_threads = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  for (auto _ : state) {
    pf::nn::gemm::gemm_nn(backend, x, w, h);     // forward
    pf::nn::gemm::gemm_tn(backend, x, h, dw);    // weight gradient
    pf::nn::gemm::gemm_nt(backend, h, w, dx);    // input gradient
    benchmark::DoNotOptimize(dw.data());
    benchmark::DoNotOptimize(dx.data());
  }
#ifdef _OPENMP
  omp_set_num_threads(saved_threads);
#endif
  state.SetLabel(pf::nn::gemm::backend_name(backend));
}
BENCHMARK(BM_GemmTrainShapes)->ArgNames({"backend"})->Arg(0)->Arg(1);

// ---- training step: serial vs batch-parallel -----------------------------
// One zero_grad + nll_backward at batch 512; range(2) = 0 runs the serial
// path, 1 shards the batch across util::shared_pool() with the
// deterministic tree reduction.

void BM_TrainStep(benchmark::State& state) {
  pf::util::Rng rng(15);
  pf::flow::FlowModel model(
      config_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))),
      rng);
  const pf::nn::Matrix x = random_batch(512, 10, 16);
  pf::util::ThreadPool* pool =
      state.range(2) != 0 ? &pf::util::shared_pool() : nullptr;
  for (auto _ : state) {
    model.zero_grad();
    benchmark::DoNotOptimize(model.nll_backward(x, pool));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_TrainStep)
    ->ArgNames({"couplings", "hidden", "pooled"})
    ->Args({8, 96, 0})->Args({8, 96, 1})
    ->Args({18, 256, 0})->Args({18, 256, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
