// google-benchmark microbenchmarks for the flow itself: forward, inverse and
// NLL-backward throughput at paper architecture (18x256x2) and at the bench
// default (8x96x2), plus encoder and sampler throughput.
#include <benchmark/benchmark.h>

#include "data/encoder.hpp"
#include "flow/flow_model.hpp"
#include "guessing/harness.hpp"
#include "guessing/matcher.hpp"
#include "guessing/static_sampler.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace pf = passflow;

pf::nn::Matrix random_batch(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  pf::util::Rng rng(seed);
  pf::nn::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal(0.5, 0.2));
  }
  return m;
}

pf::flow::FlowConfig config_for(int couplings, int hidden) {
  pf::flow::FlowConfig config;
  config.dim = 10;
  config.num_couplings = static_cast<std::size_t>(couplings);
  config.hidden = static_cast<std::size_t>(hidden);
  config.residual_blocks = 2;
  return config;
}

void BM_FlowForward(benchmark::State& state) {
  pf::util::Rng rng(1);
  pf::flow::FlowModel model(
      config_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))),
      rng);
  const pf::nn::Matrix x = random_batch(
      static_cast<std::size_t>(state.range(2)), 10, 2);
  for (auto _ : state) {
    const auto z = model.forward_inference(x);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(2));
}
BENCHMARK(BM_FlowForward)
    ->Args({8, 96, 2048})    // bench default architecture
    ->Args({18, 256, 2048})  // paper architecture (§IV-D)
    ->Args({18, 256, 512});

void BM_FlowInverse(benchmark::State& state) {
  pf::util::Rng rng(3);
  pf::flow::FlowModel model(
      config_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))),
      rng);
  const pf::nn::Matrix z = random_batch(
      static_cast<std::size_t>(state.range(2)), 10, 4);
  for (auto _ : state) {
    const auto x = model.inverse(z);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(2));
}
BENCHMARK(BM_FlowInverse)->Args({8, 96, 2048})->Args({18, 256, 2048});

void BM_FlowNllBackward(benchmark::State& state) {
  pf::util::Rng rng(5);
  pf::flow::FlowModel model(
      config_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))),
      rng);
  const pf::nn::Matrix x = random_batch(512, 10, 6);
  for (auto _ : state) {
    model.zero_grad();
    benchmark::DoNotOptimize(model.nll_backward(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_FlowNllBackward)->Args({8, 96})->Args({18, 256});

void BM_EncoderDecodeBatch(benchmark::State& state) {
  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  const pf::nn::Matrix x = random_batch(4096, 10, 7);
  for (auto _ : state) {
    const auto decoded = encoder.decode_batch(x);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_EncoderDecodeBatch);

void BM_StaticGuessThroughput(benchmark::State& state) {
  pf::util::Rng rng(8);
  pf::flow::FlowModel model(config_for(8, 96), rng);
  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  pf::guessing::StaticSampler sampler(model, encoder);
  std::vector<std::string> out;
  for (auto _ : state) {
    out.clear();
    sampler.generate(4096, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_StaticGuessThroughput);

// ---- multi-core guessing hot path ----------------------------------------
// The *Parallel variants run the same work through util::shared_pool();
// comparing them against the serial benchmarks above gives the wall-clock
// speedup of the batched inverse+decode path (output is bitwise identical).

void BM_FlowInverseParallel(benchmark::State& state) {
  pf::util::Rng rng(3);
  pf::flow::FlowModel model(
      config_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))),
      rng);
  const pf::nn::Matrix z = random_batch(
      static_cast<std::size_t>(state.range(2)), 10, 4);
  pf::util::ThreadPool& pool = pf::util::shared_pool();
  for (auto _ : state) {
    const auto x = model.inverse(z, &pool);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(2));
}
BENCHMARK(BM_FlowInverseParallel)->Args({8, 96, 2048})->Args({18, 256, 2048});

void BM_StaticGuessThroughputParallel(benchmark::State& state) {
  pf::util::Rng rng(8);
  pf::flow::FlowModel model(config_for(8, 96), rng);
  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  pf::guessing::StaticSamplerConfig config;
  config.pool = &pf::util::shared_pool();
  pf::guessing::StaticSampler sampler(model, encoder, config);
  std::vector<std::string> out;
  for (auto _ : state) {
    out.clear();
    sampler.generate(4096, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_StaticGuessThroughputParallel);

// End-to-end harness run (generate -> match at 32k budget); range(0)
// selects the serial loop (0) or pool matching + pipelined generation (1).
void BM_GuessingHarness(benchmark::State& state) {
  pf::util::Rng rng(9);
  pf::flow::FlowModel model(config_for(8, 96), rng);
  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  const bool parallel = state.range(0) != 0;

  // Target set drawn from the sampler itself so matches actually occur.
  pf::guessing::StaticSamplerConfig warmup_config;
  warmup_config.seed = 77;
  pf::guessing::StaticSampler warmup(model, encoder, warmup_config);
  std::vector<std::string> targets;
  warmup.generate(4096, targets);
  pf::guessing::Matcher matcher(targets);

  for (auto _ : state) {
    pf::guessing::StaticSamplerConfig config;
    config.seed = 42;
    if (parallel) config.pool = &pf::util::shared_pool();
    pf::guessing::StaticSampler sampler(model, encoder, config);
    pf::guessing::HarnessConfig harness;
    harness.budget = 32768;
    harness.chunk_size = 8192;
    if (parallel) {
      harness.pool = &pf::util::shared_pool();
      harness.overlap_generation = true;
    }
    const auto result = run_guessing(sampler, matcher, harness);
    benchmark::DoNotOptimize(result.checkpoints.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_GuessingHarness)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
