// Table VI: matched passwords for PassFlow trained with three masking
// strategies — horizontal, char-run-2 and char-run-1 (§V-C). The paper's
// finding to reproduce: char-run-1 wins at every budget.
#include "bench_support.hpp"
#include "guessing/static_sampler.hpp"

namespace pf = passflow;
using pf::bench::BenchEnv;
using pf::bench::BenchScale;

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const BenchScale scale = pf::bench::scale_from_flags(flags);

  BenchEnv env(scale);
  pf::guessing::HashSetMatcher matcher(env.split.test_unique);
  const std::vector<std::string> flow_train = env.flow_train_subset(scale);

  const std::vector<std::string> schemes = {"horizontal", "char-run-2",
                                            "char-run-1"};
  std::vector<pf::guessing::RunResult> results;
  for (const auto& scheme : schemes) {
    auto model = pf::bench::train_flow(
        env, scale, pf::flow::parse_mask_config(scheme), &flow_train);
    pf::guessing::StaticSamplerConfig config;
    config.seed = scale.seed + 50;  // identical sampling noise per scheme
    pf::guessing::StaticSampler sampler(*model, env.encoder, config);
    results.push_back(run_schedule(sampler, matcher, scale));
  }

  std::vector<std::string> header = {"Guesses"};
  for (const auto& scheme : schemes) header.push_back(scheme + " Matched");
  pf::util::TextTable table(header);
  pf::util::CsvWriter csv(pf::bench::output_path("table6_masking.csv"),
                          header);
  for (std::size_t budget : scale.budgets) {
    std::vector<std::string> cells = {
        pf::util::with_thousands(static_cast<long long>(budget))};
    for (const auto& result : results) {
      cells.push_back(pf::util::with_thousands(
          static_cast<long long>(result.at(budget).matched)));
    }
    table.add_row(cells);
    csv.write_row(cells);
  }

  std::printf("\nTable VI: matched passwords by masking strategy "
              "(static sampling, scale=%s)\n\n", scale.name.c_str());
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
