// Table V: first 10 unique passwords sampled around the pivot "jimmy91" for
// sigma in {0.05, 0.08, 0.10, 0.15} — the locality/bounded-sampling
// demonstration of §V-B.
#include "analysis/latent_stats.hpp"
#include "bench_support.hpp"
#include "guessing/pivot_sampler.hpp"

namespace pf = passflow;
using pf::bench::BenchEnv;
using pf::bench::BenchScale;

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  BenchScale scale = pf::bench::scale_from_flags(flags);
  const std::string pivot = flags.get_string("pivot", "jimmy91");

  BenchEnv env(scale);
  const std::vector<std::string> flow_train = env.flow_train_subset(scale);
  auto model = pf::bench::train_flow(env, scale, {}, &flow_train);

  const std::vector<double> sigmas = {0.05, 0.08, 0.10, 0.15};
  pf::guessing::PivotSampler sampler(*model, env.encoder, pivot);

  std::vector<std::vector<std::string>> columns;
  for (double sigma : sigmas) {
    pf::util::Rng rng(scale.seed + 40);
    auto samples = sampler.sample_unique(10, sigma, rng);
    while (samples.size() < 10) samples.push_back("-");
    columns.push_back(std::move(samples));
  }

  std::vector<std::string> header;
  for (double sigma : sigmas) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "sigma=%.2f", sigma);
    header.emplace_back(buf);
  }
  pf::util::TextTable table(header);
  pf::util::CsvWriter csv(pf::bench::output_path("table5_pivot.csv"), header);
  for (std::size_t row = 0; row < 10; ++row) {
    std::vector<std::string> cells;
    for (const auto& column : columns) cells.push_back(column[row]);
    table.add_row(cells);
    csv.write_row(cells);
  }

  std::printf("\nTable V: first 10 unique passwords around pivot \"%s\" "
              "(scale=%s)\n\n", pivot.c_str(), scale.name.c_str());
  std::fputs(table.render().c_str(), stdout);

  // Locality check (§V-B): smaller sigma should keep samples closer to the
  // pivot in edit distance.
  std::printf("\nMean edit distance to pivot by sigma:\n");
  for (std::size_t i = 0; i < sigmas.size(); ++i) {
    double mean_distance = 0.0;
    std::size_t counted = 0;
    for (const auto& sample : columns[i]) {
      if (sample == "-") continue;
      mean_distance += static_cast<double>(
          pf::analysis::edit_distance(sample, pivot));
      ++counted;
    }
    if (counted > 0) mean_distance /= static_cast<double>(counted);
    std::printf("  sigma=%.2f: %.2f\n", sigmas[i], mean_distance);
  }
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
