// Credential-screening service bench: reply latency percentiles vs offered
// load, at micro-batch sizes {1, K}. Emits the JSON recorded in
// BENCH_serving.json.
//
//   ./serving_bench [--dim 6] [--couplings 4] [--hidden 32] [--epochs 8]
//                   [--corpus 2000] [--keys 2000] [--batch 32]
//                   [--pending 4096] [--calibration 1024]
//                   [--loads 500,2000,8000] [--queries 2000]
//                   [--index-path serving_bench.pfidx]
//                   [--out BENCH_serving.json]
//
// Shape: one StrengthServer thread per arm over a shared tiny trained
// flow + mapped index; an open-loop client paces single-candidate queries
// at the offered QPS over one pipelined connection and timestamps each
// reply (matched by request_id — Overloaded refusals jump the queue).
// p50/p99 cover Ok replies; refusals are counted, never dropped.
//
// Before any arm runs, batched scoring is cross-checked against
// one-at-a-time scoring over the wire and the bench FAILS (exit 1) on any
// bitwise divergence — batching may only ever trade latency, not answers.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/alphabet.hpp"
#include "data/encoder.hpp"
#include "flow/flow_model.hpp"
#include "flow/trainer.hpp"
#include "guessing/mapped_matcher.hpp"
#include "serve/strength_client.hpp"
#include "serve/strength_server.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pf = passflow;

namespace {

std::vector<std::size_t> parse_loads(const std::string& spec) {
  std::vector<std::size_t> loads;
  std::stringstream in(spec);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) loads.push_back(std::stoul(token));
  }
  return loads;
}

std::vector<std::string> synthetic_corpus(std::size_t count, std::size_t dim,
                                          pf::util::Rng& rng) {
  const std::string chars = "abcdefghijklmnopqrstuvwxyz0123456789";
  // Zipf-ish repetition so the flow has structure to learn.
  std::vector<std::string> base;
  const std::size_t distinct = std::max<std::size_t>(count / 8, 16);
  for (std::size_t i = 0; i < distinct; ++i) {
    const std::size_t length = 3 + rng.uniform_index(dim - 2);
    std::string word;
    for (std::size_t c = 0; c < length; ++c) {
      word += chars[rng.uniform_index(chars.size())];
    }
    base.push_back(word);
  }
  std::vector<std::string> corpus;
  corpus.reserve(count);
  pf::util::ZipfSampler zipf(base.size(), 1.05);
  for (std::size_t i = 0; i < count; ++i) {
    corpus.push_back(base[zipf.sample(rng)]);
  }
  return corpus;
}

double quantile_ms(std::vector<double> sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const std::size_t n = sorted_seconds.size();
  std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted_seconds[idx] * 1000.0;
}

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

struct Arm {
  std::size_t max_batch = 0;
  std::size_t offered_qps = 0;
  double achieved_qps = 0.0;
  std::size_t sent = 0;
  std::size_t ok = 0;
  std::size_t overloaded = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const auto dim = static_cast<std::size_t>(flags.get_int("dim", 6));
  const auto couplings =
      static_cast<std::size_t>(flags.get_int("couplings", 4));
  const auto hidden = static_cast<std::size_t>(flags.get_int("hidden", 32));
  const auto epochs = static_cast<std::size_t>(flags.get_int("epochs", 8));
  const auto corpus_size =
      static_cast<std::size_t>(flags.get_int("corpus", 2000));
  const auto key_count = static_cast<std::size_t>(flags.get_int("keys", 2000));
  const auto max_batch = static_cast<std::size_t>(flags.get_int("batch", 32));
  const auto pending =
      static_cast<std::size_t>(flags.get_int("pending", 4096));
  const auto calibration =
      static_cast<std::size_t>(flags.get_int("calibration", 1024));
  const auto queries =
      static_cast<std::size_t>(flags.get_int("queries", 2000));
  const std::vector<std::size_t> loads =
      parse_loads(flags.get_string("loads", "500,2000,8000"));
  const std::string index_path =
      flags.get_string("index-path", "serving_bench.pfidx");
  const std::string out_path = flags.get_string("out", "");

  if (!pf::dist::transport_available()) {
    std::fprintf(stderr, "serving_bench: no POSIX transport; skipping\n");
    return 0;
  }
  pf::util::set_log_level(pf::util::LogLevel::kWarn);

  std::printf(
      "serving_bench: dim=%zu couplings=%zu hidden=%zu epochs=%zu "
      "keys=%zu batch=%zu queries=%zu\n",
      dim, couplings, hidden, epochs, key_count, max_batch, queries);

  // ---- setup: tiny trained flow + mapped index -------------------------
  pf::data::Encoder encoder(pf::data::Alphabet::compact(), dim);
  pf::util::Rng rng(1234);
  pf::flow::FlowConfig model_config;
  model_config.dim = dim;
  model_config.num_couplings = couplings;
  model_config.hidden = hidden;
  model_config.residual_blocks = 1;
  pf::util::Rng init_rng(23);
  pf::flow::FlowModel model(model_config, init_rng);
  const std::vector<std::string> corpus =
      synthetic_corpus(corpus_size, dim, rng);
  {
    pf::flow::TrainConfig train_config;
    train_config.epochs = epochs;
    train_config.batch_size = 64;
    train_config.log_every = 0;
    train_config.seed = 29;
    pf::flow::Trainer trainer(model, train_config);
    pf::util::Timer timer;
    trainer.train(corpus, encoder);
    std::printf("  trained in %.2fs\n", timer.elapsed_seconds());
  }
  {
    std::vector<std::string> keys;
    keys.reserve(key_count);
    pf::util::Rng key_rng(77);
    const std::vector<std::string> key_words =
        synthetic_corpus(key_count, dim, key_rng);
    keys.assign(key_words.begin(), key_words.end());
    pf::guessing::IndexBuilder::build(keys, index_path);
  }
  const auto matcher =
      std::make_shared<pf::guessing::MappedMatcher>(index_path);

  // Candidate pool: alternating index members and misses.
  std::vector<std::string> pool;
  {
    pf::util::Rng pool_rng(99);
    const std::vector<std::string> words =
        synthetic_corpus(1024, dim, pool_rng);
    for (std::size_t i = 0; i < words.size(); ++i) {
      pool.push_back(i % 2 == 0 ? words[i] : words[i] + "9");
    }
  }

  const auto make_config = [&](std::size_t batch) {
    pf::serve::StrengthServerConfig config;
    config.max_batch = batch;
    config.max_pending_candidates = pending;
    config.calibration_samples = calibration;
    return config;
  };

  // ---- cross-check: batching may never change an answer ----------------
  {
    pf::serve::StrengthServer batched(make_config(max_batch), model, encoder,
                                      matcher);
    std::thread server_thread([&] { batched.run(); });
    pf::serve::StrengthClient client("127.0.0.1", batched.port());
    const std::vector<std::string> sample(pool.begin(), pool.begin() + 64);
    const pf::dist::StrengthReplyMsg all = client.query(sample);
    bool identical = all.status == pf::dist::StrengthStatus::kOk &&
                     all.estimates.size() == sample.size();
    for (std::size_t i = 0; identical && i < sample.size(); ++i) {
      const pf::dist::StrengthReplyMsg one = client.query({sample[i]});
      identical = one.status == pf::dist::StrengthStatus::kOk &&
                  one.estimates.size() == 1 &&
                  bits(one.estimates[0].log_prob) ==
                      bits(all.estimates[i].log_prob) &&
                  bits(one.estimates[0].guess_number) ==
                      bits(all.estimates[i].guess_number) &&
                  one.estimates[0].in_index == all.estimates[i].in_index;
    }
    batched.request_stop();
    server_thread.join();
    if (!identical) {
      std::fprintf(
          stderr,
          "FATAL: batched strength replies diverged from one-at-a-time\n");
      std::remove(index_path.c_str());
      return 1;
    }
    std::printf(
        "  cross-check: 64 batched replies bitwise identical to "
        "one-at-a-time\n");
  }

  // ---- arms: {1, K} x offered load -------------------------------------
  std::vector<Arm> arms;
  for (const std::size_t batch : {std::size_t{1}, max_batch}) {
    for (const std::size_t qps : loads) {
      pf::serve::StrengthServer server(make_config(batch), model, encoder,
                                       matcher);
      std::thread server_thread([&] { server.run(); });
      Arm arm;
      arm.max_batch = batch;
      arm.offered_qps = qps;
      {
        pf::serve::StrengthClient client("127.0.0.1", server.port());
        // send_ts[id - 1] = send time of request id (ids are sequential).
        std::vector<double> send_ts(queries, 0.0);
        std::vector<double> ok_latency;
        ok_latency.reserve(queries);
        pf::util::Timer timer;
        std::size_t received = 0;
        while (received < queries) {
          const double now = timer.elapsed_seconds();
          bool progressed = false;
          if (arm.sent < queries &&
              now >= static_cast<double>(arm.sent) /
                         static_cast<double>(qps)) {
            const std::uint64_t id =
                client.send_query({pool[arm.sent % pool.size()]});
            send_ts[id - 1] = timer.elapsed_seconds();
            ++arm.sent;
            progressed = true;
          }
          while (client.reply_ready(0)) {
            const pf::dist::StrengthReplyMsg reply = client.recv_reply();
            const double latency =
                timer.elapsed_seconds() - send_ts[reply.request_id - 1];
            if (reply.status == pf::dist::StrengthStatus::kOk) {
              ok_latency.push_back(latency);
              ++arm.ok;
            } else {
              ++arm.overloaded;
            }
            ++received;
            progressed = true;
          }
          if (!progressed) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
        }
        arm.achieved_qps =
            static_cast<double>(received) / timer.elapsed_seconds();
        std::sort(ok_latency.begin(), ok_latency.end());
        arm.p50_ms = quantile_ms(ok_latency, 0.50);
        arm.p99_ms = quantile_ms(ok_latency, 0.99);
      }
      server.request_stop();
      server_thread.join();
      const auto& stats = server.stats();
      arm.mean_batch =
          stats.batches == 0
              ? 0.0
              : static_cast<double>(stats.candidates_scored) /
                    static_cast<double>(stats.batches);
      arms.push_back(arm);
      std::printf(
          "  batch=%-3zu offered=%6zu qps  achieved=%8.0f  p50=%7.3f ms  "
          "p99=%7.3f ms  ok=%zu overloaded=%zu  mean_batch=%.2f\n",
          arm.max_batch, arm.offered_qps, arm.achieved_qps, arm.p50_ms,
          arm.p99_ms, arm.ok, arm.overloaded, arm.mean_batch);
    }
  }

  // ---- JSON record -----------------------------------------------------
  std::stringstream json;
  json << "{\n"
       << "  \"bench\": \"serving_bench\",\n"
       << "  \"config\": { \"dim\": " << dim << ", \"couplings\": "
       << couplings << ", \"hidden\": " << hidden << ", \"epochs\": "
       << epochs << ", \"keys\": " << key_count << ", \"max_batch\": "
       << max_batch << ", \"max_pending_candidates\": " << pending
       << ", \"calibration_samples\": " << calibration
       << ", \"queries_per_arm\": " << queries << " },\n"
       << "  \"cross_check\": { \"candidates\": 64, "
          "\"bitwise_identical\": true },\n"
       << "  \"note\": \"open-loop single-candidate queries over one "
          "pipelined connection; p50/p99 cover Ok replies; overloaded "
          "counts admission refusals (loud, never dropped); mean_batch "
          "shows how many candidates the server coalesced per forward "
          "pass\",\n"
       << "  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const Arm& arm = arms[i];
    json << "    { \"max_batch\": " << arm.max_batch << ", \"offered_qps\": "
         << arm.offered_qps << ", \"achieved_qps\": "
         << static_cast<long long>(arm.achieved_qps) << ", \"sent\": "
         << arm.sent << ", \"ok\": " << arm.ok << ", \"overloaded\": "
         << arm.overloaded << ", \"p50_ms\": " << arm.p50_ms
         << ", \"p99_ms\": " << arm.p99_ms << ", \"mean_batch\": "
         << arm.mean_batch << " }" << (i + 1 < arms.size() ? "," : "")
         << "\n";
  }
  json << "  ]\n"
       << "}\n";

  std::printf("%s", json.str().c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::remove(index_path.c_str());
  return 0;
}
