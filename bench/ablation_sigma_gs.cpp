// Ablation: the sigma / collision trade-off of §III-C.
//
// Sweeps the dynamic-sampling mixture sigma with GS on and off, reporting
// unique and matched counts. Expected shape:
//   * small sigma, no GS  -> few unique (collisions), matches limited;
//   * small sigma, GS     -> uniqueness restored, most matches;
//   * large sigma         -> many unique but fewer matches (search too wide).
#include "bench_support.hpp"
#include "guessing/dynamic_sampler.hpp"

namespace pf = passflow;
using pf::bench::BenchEnv;
using pf::bench::BenchScale;

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const BenchScale scale = pf::bench::scale_from_flags(flags);

  BenchEnv env(scale);
  pf::guessing::HashSetMatcher matcher(env.split.test_unique);
  const std::vector<std::string> flow_train = env.flow_train_subset(scale);
  auto model = pf::bench::train_flow(env, scale, {}, &flow_train);

  const std::vector<double> sigmas = {0.05, 0.10, 0.15, 0.30};
  const std::size_t budget =
      std::min<std::size_t>(scale.budgets.back(), 100000);

  pf::util::TextTable table({"sigma", "GS", "Unique", "Matched"});
  pf::util::CsvWriter csv(pf::bench::output_path("ablation_sigma_gs.csv"),
                          {"sigma", "gs", "unique", "matched"});
  for (double sigma : sigmas) {
    for (bool gs : {false, true}) {
      pf::guessing::DynamicSamplerConfig config;
      config.alpha = 1;
      config.sigma = sigma;
      config.gamma = 4;
      config.seed = scale.seed + 90;
      config.smoothing.enabled = gs;
      pf::guessing::DynamicSampler sampler(*model, env.encoder, config);
      pf::guessing::HarnessConfig harness;
      harness.budget = budget;
      const auto result = run_guessing(sampler, matcher, harness);
      table.add_row(
          {pf::bench::format_percent(sigma), gs ? "on" : "off",
           pf::util::with_thousands(
               static_cast<long long>(result.final().unique)),
           pf::util::with_thousands(
               static_cast<long long>(result.final().matched))});
      csv.write_row({std::to_string(sigma), gs ? "1" : "0",
                     std::to_string(result.final().unique),
                     std::to_string(result.final().matched)});
    }
  }

  std::printf("\nAblation: dynamic-sampling sigma vs collisions, with and "
              "without Gaussian Smoothing (%zu guesses, scale=%s)\n\n",
              budget, scale.name.c_str());
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
