// google-benchmark microbenchmarks for the nn substrate: GEMM variants and
// elementwise kernels at the shapes PassFlow actually uses.
#include <benchmark/benchmark.h>

#include "nn/ops.hpp"
#include "util/rng.hpp"

namespace {

using passflow::nn::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  passflow::util::Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal());
  }
  return m;
}

void BM_Matmul(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto hidden = static_cast<std::size_t>(state.range(1));
  const Matrix a = random_matrix(batch, hidden, 1);
  const Matrix b = random_matrix(hidden, hidden, 2);
  Matrix out;
  for (auto _ : state) {
    passflow::nn::matmul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch *
                          hidden * hidden * 2);
}
BENCHMARK(BM_Matmul)
    ->Args({512, 256})
    ->Args({2048, 256})
    ->Args({512, 96})
    ->Args({2048, 96});

void BM_MatmulTn(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(batch, 256, 3);
  const Matrix b = random_matrix(batch, 256, 4);
  Matrix out;
  for (auto _ : state) {
    passflow::nn::matmul_tn(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MatmulTn)->Arg(512)->Arg(2048);

void BM_MatmulNt(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(batch, 256, 5);
  const Matrix b = random_matrix(256, 256, 6);
  Matrix out;
  for (auto _ : state) {
    passflow::nn::matmul_nt(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MatmulNt)->Arg(512)->Arg(2048);

void BM_AddInplace(benchmark::State& state) {
  Matrix a = random_matrix(2048, 256, 7);
  const Matrix b = random_matrix(2048, 256, 8);
  for (auto _ : state) {
    passflow::nn::add_inplace(a, b);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_AddInplace);

}  // namespace

BENCHMARK_MAIN();
