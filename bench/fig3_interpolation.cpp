// Figure 3: interpolation in latent space between "jimmy91" and "123456",
// decoded back to the password space at each step (Algorithm 2).
#include "analysis/latent_stats.hpp"
#include "bench_support.hpp"
#include "guessing/interpolation.hpp"

namespace pf = passflow;
using pf::bench::BenchEnv;
using pf::bench::BenchScale;

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  BenchScale scale = pf::bench::scale_from_flags(flags);
  const std::string start = flags.get_string("start", "jimmy91");
  const std::string target = flags.get_string("target", "123456");
  const std::size_t steps = static_cast<std::size_t>(
      flags.get_int("steps", 14));

  BenchEnv env(scale);
  const std::vector<std::string> flow_train = env.flow_train_subset(scale);
  auto model = pf::bench::train_flow(env, scale, {}, &flow_train);

  const auto path =
      pf::guessing::interpolate(*model, env.encoder, start, target, steps);

  std::printf("\nFigure 3: latent interpolation \"%s\" -> \"%s\" "
              "(left-to-right, scale=%s)\n\n",
              start.c_str(), target.c_str(), scale.name.c_str());
  pf::util::CsvWriter csv(pf::bench::output_path("fig3_interpolation.csv"),
                          {"step", "password", "log_prob"});
  const auto log_probs =
      model->log_prob(env.encoder.encode_batch([&] {
        // Re-encode decoded strings for density evaluation; filter nothing
        // since decode always produces representable passwords.
        return path;
      }()));
  for (std::size_t i = 0; i < path.size(); ++i) {
    std::printf("%s ", path[i].c_str());
    csv.write_row({std::to_string(i), path[i],
                   std::to_string(log_probs[i])});
  }
  std::printf("\n");

  // Smoothness evidence (§V-B): intermediate samples should have density in
  // the same ballpark as the endpoints, far above random strings.
  double mid_lp = 0.0;
  for (std::size_t i = 1; i + 1 < path.size(); ++i) mid_lp += log_probs[i];
  mid_lp /= static_cast<double>(path.size() - 2);
  std::printf("\nendpoint log-probs: %.2f / %.2f; mean intermediate: %.2f\n",
              log_probs.front(), log_probs.back(), mid_lp);

  // Consecutive samples should be similar (shared structure).
  double mean_step_edit = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    mean_step_edit += static_cast<double>(
        pf::analysis::edit_distance(path[i - 1], path[i]));
  }
  mean_step_edit /= static_cast<double>(path.size() - 1);
  std::printf("mean edit distance between consecutive samples: %.2f\n",
              mean_step_edit);
  std::printf("CSV written to %s\n", csv.path().c_str());
  return 0;
}
