// Figure 5: matched percentage of PassFlow-Dynamic with and without the
// penalization function phi, across guess budgets.
//
// "Without phi" = phi == 1 (uniform mixture weighting regardless of how long
// a match has conditioned the prior), which the paper shows stagnates in
// already-explored regions. The property to reproduce: with-phi >= without-
// phi at every budget, with the gap growing with budget.
#include "bench_support.hpp"
#include "guessing/dynamic_sampler.hpp"

namespace pf = passflow;
using pf::bench::BenchEnv;
using pf::bench::BenchScale;

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const BenchScale scale = pf::bench::scale_from_flags(flags);

  BenchEnv env(scale);
  pf::guessing::HashSetMatcher matcher(env.split.test_unique);
  const std::vector<std::string> flow_train = env.flow_train_subset(scale);
  auto model = pf::bench::train_flow(env, scale, {}, &flow_train);

  auto run_variant = [&](bool use_phi, pf::guessing::PhiKind kind =
                                           pf::guessing::PhiKind::kStep) {
    auto config = pf::guessing::table1_parameters(scale.budgets.back());
    config.seed = scale.seed + 80;
    config.use_phi = use_phi;
    config.phi_kind = kind;
    pf::guessing::DynamicSampler sampler(*model, env.encoder, config);
    return run_schedule(sampler, matcher, scale);
  };
  const auto with_phi = run_variant(true);
  const auto without_phi = run_variant(false);

  pf::util::TextTable table(
      {"Guesses", "Without phi (%)", "With phi (%)", "Delta (pp)"});
  pf::util::CsvWriter csv(pf::bench::output_path("fig5_phi.csv"),
                          {"guesses", "without_phi_percent",
                           "with_phi_percent", "delta_pp"});
  for (std::size_t budget : scale.budgets) {
    const double without = without_phi.at(budget).matched_percent;
    const double with = with_phi.at(budget).matched_percent;
    table.add_row({pf::util::with_thousands(static_cast<long long>(budget)),
                   pf::bench::format_percent(without),
                   pf::bench::format_percent(with),
                   pf::bench::format_percent(with - without)});
    csv.write_row({std::to_string(budget), pf::bench::format_percent(without),
                   pf::bench::format_percent(with),
                   pf::bench::format_percent(with - without)});
  }

  std::printf("\nFigure 5: PassFlow-Dynamic matches with vs without the "
              "penalization function phi (scale=%s)\n\n", scale.name.c_str());
  std::fputs(table.render().c_str(), stdout);

  // Extension (§VII): alternative penalization functions. The paper leaves
  // "the effects of different penalization functions" as future work; we
  // compare the step function against linear and exponential decay.
  const auto linear = run_variant(true, pf::guessing::PhiKind::kLinear);
  const auto exponential =
      run_variant(true, pf::guessing::PhiKind::kExponential);
  pf::util::TextTable ext({"Guesses", "step (%)", "linear (%)", "exp (%)"});
  for (std::size_t budget : scale.budgets) {
    ext.add_row({pf::util::with_thousands(static_cast<long long>(budget)),
                 pf::bench::format_percent(with_phi.at(budget).matched_percent),
                 pf::bench::format_percent(linear.at(budget).matched_percent),
                 pf::bench::format_percent(
                     exponential.at(budget).matched_percent)});
  }
  std::printf("\nExtension (§VII): penalization function variants\n\n");
  std::fputs(ext.render().c_str(), stdout);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
