// Figure 4: marginal performance improvement (in matches over the test set)
// of PassFlow models trained on increasing dataset sizes, relative to a
// baseline model trained on the smallest size.
//
// The paper uses baseline 50K and sizes {1e5, 3e5, 7e5, 2e6}: improvement
// jumps sharply, peaks at 300K (6x base) and plateaus. We keep the same
// ratios {2x, 6x, 14x, 40x} at the configured scale. The property to
// reproduce is the shape: sharp initial rise, then a plateau.
#include "bench_support.hpp"
#include "guessing/static_sampler.hpp"

namespace pf = passflow;
using pf::bench::BenchEnv;
using pf::bench::BenchScale;

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  BenchScale scale = pf::bench::scale_from_flags(flags);
  // Five trainings dominate this bench; shorter training still shows the
  // rise-then-plateau shape.
  scale.epochs = std::min<std::size_t>(scale.epochs, 20);

  BenchEnv env(scale);
  pf::guessing::HashSetMatcher matcher(env.split.test_unique);

  // Paper ratios relative to the 50K baseline.
  const std::size_t base = std::max<std::size_t>(
      400, static_cast<std::size_t>(
               flags.get_int("base-size",
                             static_cast<long long>(
                                 env.split.train.size() / 60))));
  const std::vector<std::size_t> ratios = {2, 6, 14, 40};

  const std::size_t budget =
      std::min<std::size_t>(scale.budgets.back(), 100000);
  auto evaluate = [&](std::size_t train_size) {
    train_size = std::min(train_size, env.split.train.size());
    std::vector<std::string> subset(env.split.train.begin(),
                                    env.split.train.begin() + train_size);
    auto model = pf::bench::train_flow(env, scale, {}, &subset);
    pf::guessing::StaticSamplerConfig config;
    config.seed = scale.seed + 70;
    pf::guessing::StaticSampler sampler(*model, env.encoder, config);
    pf::guessing::HarnessConfig harness;
    harness.budget = budget;
    return run_guessing(sampler, matcher, harness).final().matched;
  };

  const std::size_t baseline_matches = evaluate(base);
  PF_LOG_INFO << "baseline (" << base << " samples): " << baseline_matches
              << " matches";

  pf::util::TextTable table({"Train size", "Matched",
                             "Marginal improvement (%)"});
  pf::util::CsvWriter csv(pf::bench::output_path("fig4_trainsize.csv"),
                          {"train_size", "matched", "improvement_percent"});
  for (std::size_t ratio : ratios) {
    const std::size_t size = base * ratio;
    const std::size_t matched = evaluate(size);
    const double improvement =
        baseline_matches > 0
            ? 100.0 *
                  (static_cast<double>(matched) -
                   static_cast<double>(baseline_matches)) /
                  static_cast<double>(baseline_matches)
            : 0.0;
    table.add_row({pf::util::with_thousands(static_cast<long long>(size)),
                   pf::util::with_thousands(static_cast<long long>(matched)),
                   pf::bench::format_percent(improvement)});
    csv.write_row({std::to_string(size), std::to_string(matched),
                   pf::bench::format_percent(improvement)});
  }

  std::printf("\nFigure 4: marginal improvement vs training-set size "
              "(baseline %zu samples, %zu guesses, scale=%s)\n\n",
              base, budget, scale.name.c_str());
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
