// Multi-scenario scheduler throughput bench: N attack scenarios over one
// shared ShardedMatcher and one pool, run concurrently through
// AttackScheduler vs the same N sessions run serially one after another,
// plus a QoS arm (deadline-boosted scenario 0, rate-capped last scenario)
// reporting deadline misses and achieved-vs-cap rates. Emits the JSON
// recorded in BENCH_scheduler.json.
//
//   ./scheduler_bench [--scenarios 4] [--budget 1000000] [--chunk 8192]
//                     [--work 24] [--testset 100000] [--shards 8]
//                     [--threads 8] [--slice 4] [--pipeline 2]
//                     [--out BENCH_scheduler.json]
//
// --work sets the per-guess generation cost (mix64 iterations), standing
// in for the flow-inversion + decode cost of a real sampler. Every
// scenario's final metrics are cross-checked bitwise between the two arms
// before anything is reported, so a speedup can never come from dropping
// or corrupting work.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "guessing/matcher.hpp"
#include "guessing/metrics.hpp"
#include "guessing/scheduler.hpp"
#include "guessing/session.hpp"
#include "util/flags.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace pf = passflow;

namespace {

// Deterministic feedback-free stream with a tunable per-guess CPU cost:
// guess i is "g<mix64^(work)(seed + i) % period>". Different seeds give
// different streams, so N scenarios do N distinct attacks.
class WorkingStreamGenerator : public pf::guessing::GuessGenerator {
 public:
  WorkingStreamGenerator(std::size_t period, std::size_t work,
                         std::uint64_t seed)
      : period_(period), work_(work), seed_(seed) {}

  void generate(std::size_t n, std::vector<std::string>& out) override {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t value = seed_ + cursor_++;
      for (std::size_t w = 0; w < work_; ++w) value = pf::util::mix64(value);
      out.push_back("g" + std::to_string(value % period_));
    }
  }
  std::string name() const override { return "working-stream"; }

 private:
  std::size_t period_;
  std::size_t work_;
  std::uint64_t seed_;
  std::size_t cursor_ = 0;
};

bool same_run(const pf::guessing::RunResult& a,
              const pf::guessing::RunResult& b) {
  if (a.checkpoints.size() != b.checkpoints.size() ||
      a.matched_passwords != b.matched_passwords ||
      a.sample_non_matched != b.sample_non_matched) {
    return false;
  }
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
    if (a.checkpoints[i].guesses != b.checkpoints[i].guesses ||
        a.checkpoints[i].unique != b.checkpoints[i].unique ||
        a.checkpoints[i].matched != b.checkpoints[i].matched) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const auto scenarios =
      static_cast<std::size_t>(flags.get_int("scenarios", 4));
  const auto budget = static_cast<std::size_t>(
      flags.get_int("budget", 1000000));
  const auto chunk = static_cast<std::size_t>(flags.get_int("chunk", 8192));
  const auto work = static_cast<std::size_t>(flags.get_int("work", 24));
  const auto testset_size =
      static_cast<std::size_t>(flags.get_int("testset", 100000));
  const auto shards = static_cast<std::size_t>(flags.get_int("shards", 8));
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 8));
  const auto slice = static_cast<std::size_t>(flags.get_int("slice", 4));
  const auto pipeline =
      static_cast<std::size_t>(flags.get_int("pipeline", 2));
  const std::string out_path = flags.get_string("out", "");

  // Target set: an even sample of the streams' value space so matches
  // accumulate across the whole run for every scenario.
  const std::size_t period = budget * 3;
  std::vector<std::string> targets;
  targets.reserve(testset_size);
  const std::size_t stride = std::max<std::size_t>(1, period / testset_size);
  for (std::size_t v = 0; v < period && targets.size() < testset_size;
       v += stride) {
    targets.push_back("g" + std::to_string(v));
  }
  auto matcher =
      std::make_shared<const pf::guessing::ShardedMatcher>(targets, shards);
  pf::util::ThreadPool pool(threads);

  std::printf(
      "scheduler_bench: scenarios=%zu budget=%zu chunk=%zu work=%zu "
      "testset=%zu shards=%zu pool=%zu hardware=%u\n",
      scenarios, budget, chunk, work, targets.size(), shards, pool.size(),
      std::thread::hardware_concurrency());

  const auto make_session_config = [&] {
    pf::guessing::SessionConfig config;
    config.budget = budget;
    config.chunk_size = chunk;
    config.pipeline_depth = pipeline;
    config.pool = &pool;
    return config;
  };

  // ---- arm 1: the same N attacks, one AttackSession after another ------
  std::vector<pf::guessing::RunResult> serial_results;
  double serial_seconds = 0.0;
  {
    pf::util::Timer timer;
    for (std::size_t s = 0; s < scenarios; ++s) {
      WorkingStreamGenerator generator(period, work, 1000003 * (s + 1));
      pf::guessing::AttackSession session(generator,
                                          pf::guessing::MatcherRef(matcher),
                                          make_session_config());
      session.run();
      serial_results.push_back(session.result());
    }
    serial_seconds = timer.elapsed_seconds();
  }
  const double total_guesses = static_cast<double>(budget * scenarios);
  std::printf("  %-24s %7.2fs  %11.0f guesses/s\n", "serial_sessions",
              serial_seconds, total_guesses / serial_seconds);

  // ---- arm 2: the same N attacks, concurrent under AttackScheduler -----
  std::vector<pf::guessing::RunResult> fleet_results;
  double fleet_seconds = 0.0;
  {
    std::vector<std::unique_ptr<WorkingStreamGenerator>> generators;
    pf::guessing::SchedulerConfig fleet;
    fleet.pool = &pool;
    fleet.slice_chunks = slice;
    fleet.max_concurrent = scenarios;
    pf::guessing::AttackScheduler scheduler(fleet);
    std::vector<std::size_t> ids;
    for (std::size_t s = 0; s < scenarios; ++s) {
      generators.push_back(std::make_unique<WorkingStreamGenerator>(
          period, work, 1000003 * (s + 1)));
      pf::guessing::ScenarioOptions options;
      options.session = make_session_config();
      ids.push_back(scheduler.add_scenario(
          *generators[s], pf::guessing::MatcherRef(matcher), options));
    }
    pf::util::Timer timer;
    scheduler.run();
    fleet_seconds = timer.elapsed_seconds();
    for (const std::size_t id : ids) {
      fleet_results.push_back(scheduler.result(id));
    }
  }
  const double speedup = serial_seconds / fleet_seconds;
  std::printf("  %-24s %7.2fs  %11.0f guesses/s  (%.2fx)\n",
              "scheduler_concurrent", fleet_seconds,
              total_guesses / fleet_seconds, speedup);

  // ---- cross-check: concurrency must not change any metric -------------
  for (std::size_t s = 0; s < scenarios; ++s) {
    if (!same_run(serial_results[s], fleet_results[s])) {
      std::fprintf(stderr,
                   "FATAL: scenario %zu metrics diverged between arms\n", s);
      return 1;
    }
  }
  std::printf("  per-scenario metrics: bitwise identical across arms\n");

  // ---- arm 3: the same fleet under QoS knobs ---------------------------
  // Scenario 0 gets a deadline it cannot make (10% of the fair-share wall
  // time), so effective-weight escalation runs for most of the arm;
  // the last scenario is capped at half its fair-share rate, so the token
  // bucket throttles it for real. The headline check: QoS reorders slices
  // in time but every metric stays bitwise identical to the serial arm.
  const double fleet_rate_per_scenario =
      static_cast<double>(budget) / fleet_seconds;
  const double rate_cap = 0.5 * fleet_rate_per_scenario;
  const double deadline_seconds = 0.1 * fleet_seconds;
  const std::size_t capped_index = scenarios - 1;
  std::vector<pf::guessing::RunResult> qos_results;
  std::vector<pf::guessing::ScenarioSnapshot> qos_snaps;
  std::size_t qos_deadline_missed = 0;
  double qos_seconds = 0.0;
  {
    std::vector<std::unique_ptr<WorkingStreamGenerator>> generators;
    pf::guessing::SchedulerConfig fleet;
    fleet.pool = &pool;
    fleet.slice_chunks = slice;
    fleet.max_concurrent = scenarios;
    pf::guessing::AttackScheduler scheduler(fleet);
    std::vector<std::size_t> ids;
    for (std::size_t s = 0; s < scenarios; ++s) {
      generators.push_back(std::make_unique<WorkingStreamGenerator>(
          period, work, 1000003 * (s + 1)));
      pf::guessing::ScenarioOptions options;
      options.session = make_session_config();
      if (s == 0) options.deadline_seconds = deadline_seconds;
      if (s == capped_index) options.rate_cap = rate_cap;
      ids.push_back(scheduler.add_scenario(
          *generators[s], pf::guessing::MatcherRef(matcher), options));
    }
    pf::util::Timer timer;
    scheduler.run();
    qos_seconds = timer.elapsed_seconds();
    qos_deadline_missed = scheduler.aggregate().deadline_missed;
    for (const std::size_t id : ids) {
      qos_snaps.push_back(scheduler.scenario(id));
      qos_results.push_back(scheduler.result(id));
    }
  }
  std::printf("  %-24s %7.2fs  %11.0f guesses/s  (%.2fx)\n", "scheduler_qos",
              qos_seconds, total_guesses / qos_seconds,
              serial_seconds / qos_seconds);
  std::printf(
      "    deadline_missed=%zu  capped scenario %zu: cap=%.0f achieved=%.0f "
      "guesses/s\n",
      qos_deadline_missed, capped_index, rate_cap,
      qos_snaps[capped_index].achieved_guesses_per_second);
  for (std::size_t s = 0; s < scenarios; ++s) {
    if (!same_run(serial_results[s], qos_results[s])) {
      std::fprintf(
          stderr,
          "FATAL: scenario %zu metrics diverged under QoS scheduling\n", s);
      return 1;
    }
  }
  std::printf("  per-scenario metrics: bitwise identical under QoS\n");

  // ---- JSON record -----------------------------------------------------
  std::stringstream json;
  json << "{\n"
       << "  \"bench\": \"scheduler_bench\",\n"
       << "  \"config\": { \"scenarios\": " << scenarios << ", \"budget\": "
       << budget << ", \"chunk_size\": " << chunk << ", \"work\": " << work
       << ", \"test_set_size\": " << targets.size() << ", \"shards\": "
       << shards << ", \"pool_threads\": " << pool.size()
       << ", \"slice_chunks\": " << slice << ", \"pipeline_depth\": "
       << pipeline << ", \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << " },\n";
  if (std::thread::hardware_concurrency() < pool.size()) {
    json << "  \"note\": \"pool oversubscribed (" << pool.size()
         << " workers on " << std::thread::hardware_concurrency()
         << " hardware threads); concurrent-vs-serial speedup needs at "
            "least pool-size cores — on this host the arms measure "
            "scheduling overhead, not parallelism\",\n";
  }
  json << "  \"arms\": [\n";
  const auto arm_json = [&](const char* label, double seconds, bool last) {
    json << "    { \"label\": \"" << label << "\", \"seconds\": " << seconds
         << ", \"guesses_per_second\": "
         << static_cast<long long>(total_guesses / seconds)
         << ", \"speedup_vs_serial\": " << serial_seconds / seconds << " }"
         << (last ? "" : ",") << "\n";
  };
  arm_json("serial_sessions", serial_seconds, false);
  arm_json("scheduler_concurrent", fleet_seconds, false);
  arm_json("scheduler_qos", qos_seconds, true);
  json << "  ],\n"
       << "  \"qos\": {\n"
       << "    \"deadline_boost\": 4.0,\n"
       << "    \"deadline_missed\": " << qos_deadline_missed << ",\n"
       << "    \"scenarios\": [\n";
  for (std::size_t s = 0; s < scenarios; ++s) {
    json << "      { \"scenario\": " << s << ", \"deadline_seconds\": "
         << qos_snaps[s].deadline_seconds << ", \"past_deadline\": "
         << (qos_snaps[s].past_deadline ? "true" : "false")
         << ", \"rate_cap\": " << qos_snaps[s].rate_cap
         << ", \"achieved_guesses_per_second\": "
         << static_cast<long long>(qos_snaps[s].achieved_guesses_per_second)
         << " }" << (s + 1 < scenarios ? "," : "") << "\n";
  }
  json << "    ]\n  },\n"
       << "  \"scenario_metrics\": [\n";
  for (std::size_t s = 0; s < scenarios; ++s) {
    const auto& final_cp = fleet_results[s].final();
    json << "    { \"scenario\": " << s << ", \"matched\": "
         << final_cp.matched << ", \"unique\": " << final_cp.unique << " }"
         << (s + 1 < scenarios ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::printf("%s", json.str().c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
