// Figure 2: t-SNE projection of latent-space neighborhoods around the
// passwords "jaram" and "royal" over a background of latent points.
//
// Output: a CSV of 2-D coordinates labeled {background, jaram, royal} (the
// paper renders these as an image; the CSV is the plottable equivalent) plus
// printed neighbor samples and a quantitative cluster-separation statistic.
#include <cmath>

#include "analysis/tsne.hpp"
#include "bench_support.hpp"
#include "guessing/interpolation.hpp"

namespace pf = passflow;
using pf::bench::BenchEnv;
using pf::bench::BenchScale;

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  BenchScale scale = pf::bench::scale_from_flags(flags);
  const std::string pivot_a = flags.get_string("pivot-a", "jaram");
  const std::string pivot_b = flags.get_string("pivot-b", "royal");
  const std::size_t neighbors = static_cast<std::size_t>(
      flags.get_int("neighbors", 40));
  const std::size_t background = static_cast<std::size_t>(
      flags.get_int("background", 150));

  BenchEnv env(scale);
  const std::vector<std::string> flow_train = env.flow_train_subset(scale);
  auto model = pf::bench::train_flow(env, scale, {}, &flow_train);

  pf::util::Rng rng(scale.seed + 60);
  const std::size_t dim = env.encoder.dim();
  const std::size_t total = background + 2 * neighbors;
  pf::nn::Matrix latents(total, dim);
  std::vector<std::string> labels(total);

  // Background: latent images of random training passwords.
  for (std::size_t i = 0; i < background; ++i) {
    const auto& password =
        env.split.train[rng.uniform_index(env.split.train.size())];
    const auto z = pf::guessing::latent_of(*model, env.encoder, password);
    std::copy(z.begin(), z.end(), latents.row(i));
    labels[i] = "background";
  }
  // Neighborhoods of the two pivots.
  const double sigma = 0.08;
  auto add_neighborhood = [&](const std::string& pivot, std::size_t offset,
                              const std::string& label) {
    const auto z_pivot = pf::guessing::latent_of(*model, env.encoder, pivot);
    for (std::size_t i = 0; i < neighbors; ++i) {
      float* row = latents.row(offset + i);
      for (std::size_t d = 0; d < dim; ++d) {
        row[d] = static_cast<float>(z_pivot[d] + rng.normal(0.0, sigma));
      }
      labels[offset + i] = label;
    }
  };
  add_neighborhood(pivot_a, background, pivot_a);
  add_neighborhood(pivot_b, background + neighbors, pivot_b);

  pf::analysis::TsneConfig tsne_config;
  tsne_config.iterations = 400;
  tsne_config.perplexity = 20.0;
  const pf::nn::Matrix embedding = pf::analysis::tsne_embed(latents,
                                                            tsne_config);

  pf::util::CsvWriter csv(pf::bench::output_path("fig2_tsne.csv"),
                          {"x", "y", "label"});
  for (std::size_t i = 0; i < total; ++i) {
    csv.write_row({std::to_string(embedding(i, 0)),
                   std::to_string(embedding(i, 1)), labels[i]});
  }

  // Print decoded neighbor samples, as in the figure caption.
  auto print_neighbors = [&](const std::string& pivot, std::size_t offset) {
    const pf::nn::Matrix x = model->inverse(
        latents.slice_rows(offset, offset + std::min<std::size_t>(
                                                neighbors, 8)));
    std::printf("  around \"%s\": ", pivot.c_str());
    for (const auto& p : env.encoder.decode_batch(x)) {
      std::printf("%s ", p.c_str());
    }
    std::printf("\n");
  };
  std::printf("\nFigure 2: t-SNE of latent neighborhoods (scale=%s)\n",
              scale.name.c_str());
  print_neighbors(pivot_a, background);
  print_neighbors(pivot_b, background + neighbors);

  // Quantitative locality: the two neighborhood clusters should be compact
  // relative to their separation in the embedding.
  auto centroid = [&](std::size_t begin, std::size_t end) {
    double cx = 0.0, cy = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      cx += embedding(i, 0);
      cy += embedding(i, 1);
    }
    const double n = static_cast<double>(end - begin);
    return std::pair<double, double>{cx / n, cy / n};
  };
  auto spread = [&](std::size_t begin, std::size_t end) {
    const auto [cx, cy] = centroid(begin, end);
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double dx = embedding(i, 0) - cx;
      const double dy = embedding(i, 1) - cy;
      acc += std::sqrt(dx * dx + dy * dy);
    }
    return acc / static_cast<double>(end - begin);
  };
  const auto [ax, ay] = centroid(background, background + neighbors);
  const auto [bx, by] =
      centroid(background + neighbors, background + 2 * neighbors);
  const double separation =
      std::sqrt((ax - bx) * (ax - bx) + (ay - by) * (ay - by));
  const double mean_spread =
      0.5 * (spread(background, background + neighbors) +
             spread(background + neighbors, background + 2 * neighbors));
  std::printf("\ncluster separation / mean spread: %.2f (>1 means the two "
              "neighborhoods form distinct regions)\n",
              separation / mean_spread);
  std::printf("CSV written to %s\n", csv.path().c_str());
  return 0;
}
