// Guessing-engine throughput bench: the seed one-chunk-ahead harness vs the
// AttackSession pipeline at depths 1/2/4/8, on a feedback-free generator at
// the 10^7-guess scale. Emits the JSON recorded in BENCH_guessing.json.
//
//   ./guessing_bench [--budget 10000000] [--chunk 16384] [--period 6000000]
//                    [--testset 100000] [--depths 1,2,4,8] [--shards 4]
//                    [--out BENCH_guessing.json]
//
// The "before" arm reimplements the seed harness verbatim (one std::async
// ahead, pooled membership when >1 worker, serial unordered_set
// bookkeeping) because run_guessing is now a wrapper over the session
// engine. Every arm's final metrics are cross-checked for equality before
// anything is reported, so a speedup can never come from dropping work.
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "guessing/generator.hpp"
#include "guessing/matcher.hpp"
#include "guessing/metrics.hpp"
#include "guessing/session.hpp"
#include "util/flags.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace pf = passflow;

namespace {

// Deterministic feedback-free stream: guess i is "g<mix64(i) % period>",
// so the stream revisits values (unique < produced) and hits the test set
// throughout the run. Stands in for any sampler whose generation cost is
// small next to matching + unique tracking.
class HashStreamGenerator : public pf::guessing::GuessGenerator {
 public:
  explicit HashStreamGenerator(std::size_t period) : period_(period) {}

  void generate(std::size_t n, std::vector<std::string>& out) override {
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back("g" + std::to_string(pf::util::mix64(cursor_++) % period_));
    }
  }
  std::string name() const override { return "hash-stream"; }

 private:
  std::size_t period_;
  std::size_t cursor_ = 0;
};

// The seed harness (PR 1), kept verbatim as the "before" arm: generation
// pipelined exactly one chunk ahead via one std::async per chunk, pooled
// membership precompute, serial unordered_set bookkeeping.
pf::guessing::RunResult run_seed_one_ahead(
    pf::guessing::GuessGenerator& generator,
    const pf::guessing::Matcher& matcher, std::size_t budget,
    std::size_t chunk_size, pf::util::ThreadPool* pool) {
  using pf::guessing::Checkpoint;
  using pf::guessing::RunResult;

  std::vector<std::size_t> checkpoints =
      pf::guessing::power_of_ten_checkpoints(budget);

  RunResult result;
  std::unordered_set<std::string> unique_guesses;
  std::unordered_set<std::string> matched_set;
  std::unordered_set<std::string> non_matched_seen;
  constexpr std::size_t kNonMatchedSamples = 40;
  constexpr std::size_t kParallelMatchThreshold = 1024;

  std::size_t produced = 0;
  std::size_t checkpoint_index = 0;

  std::vector<char> membership;
  const auto precompute_membership =
      [&](const std::vector<std::string>& batch) {
        const bool parallel = pool != nullptr && pool->size() > 1 &&
                              batch.size() >= kParallelMatchThreshold;
        if (!parallel) return false;
        membership.assign(batch.size(), 0);
        pool->parallel_for(batch.size(), [&](std::size_t i) {
          membership[i] = matcher.contains(batch[i]) ? 1 : 0;
        });
        return true;
      };

  const auto consume_batch = [&](const std::vector<std::string>& batch) {
    const bool have_membership = precompute_membership(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::string& guess = batch[i];
      unique_guesses.insert(guess);
      const bool hit =
          have_membership ? membership[i] != 0 : matcher.contains(guess);
      if (hit) {
        if (matched_set.insert(guess).second) {
          result.matched_passwords.push_back(guess);
        }
      } else if (result.sample_non_matched.size() < kNonMatchedSamples &&
                 !guess.empty() && non_matched_seen.insert(guess).second) {
        result.sample_non_matched.push_back(guess);
      }
    }
    produced += batch.size();
  };

  const auto emit_due_checkpoints = [&] {
    while (checkpoint_index < checkpoints.size() &&
           produced >= checkpoints[checkpoint_index]) {
      Checkpoint cp;
      cp.guesses = checkpoints[checkpoint_index];
      cp.unique = unique_guesses.size();
      cp.matched = matched_set.size();
      cp.matched_percent = 100.0 * static_cast<double>(cp.matched) /
                           static_cast<double>(matcher.test_set_size());
      result.checkpoints.push_back(cp);
      ++checkpoint_index;
    }
  };

  std::vector<std::size_t> schedule;
  {
    std::size_t planned = 0;
    std::size_t ci = 0;
    while (planned < budget) {
      const std::size_t next_stop =
          ci < checkpoints.size() ? checkpoints[ci] : budget;
      const std::size_t chunk = std::min(chunk_size, next_stop - planned);
      schedule.push_back(chunk);
      planned += chunk;
      while (ci < checkpoints.size() && planned >= checkpoints[ci]) ++ci;
    }
  }

  const auto produce = [&generator](std::size_t n) {
    std::vector<std::string> batch;
    batch.reserve(n);
    generator.generate(n, batch);
    return batch;
  };

  std::future<std::vector<std::string>> pending;
  for (std::size_t c = 0; c < schedule.size(); ++c) {
    std::vector<std::string> batch =
        c == 0 ? produce(schedule[0]) : pending.get();
    if (c + 1 < schedule.size()) {
      pending = std::async(std::launch::async, produce, schedule[c + 1]);
    }
    consume_batch(batch);
    emit_due_checkpoints();
  }
  return result;
}

struct ArmResult {
  std::string label;
  double seconds = 0.0;
  double guesses_per_second = 0.0;
  std::size_t matched = 0;
  std::size_t unique = 0;
};

void check_metrics_equal(const pf::guessing::RunResult& baseline,
                         const pf::guessing::RunResult& candidate,
                         const std::string& label, bool compare_unique) {
  bool same =
      baseline.checkpoints.size() == candidate.checkpoints.size() &&
      baseline.matched_passwords == candidate.matched_passwords &&
      baseline.sample_non_matched == candidate.sample_non_matched;
  if (same) {
    for (std::size_t i = 0; i < baseline.checkpoints.size(); ++i) {
      const auto& a = baseline.checkpoints[i];
      const auto& b = candidate.checkpoints[i];
      same = same && a.guesses == b.guesses && a.matched == b.matched &&
             (!compare_unique || a.unique == b.unique);
    }
  }
  if (!same) {
    std::fprintf(stderr, "FATAL: arm '%s' diverged from the baseline metrics\n",
                 label.c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const auto budget = static_cast<std::size_t>(
      flags.get_int("budget", 10000000));
  const auto chunk = static_cast<std::size_t>(flags.get_int("chunk", 16384));
  const auto period = static_cast<std::size_t>(
      flags.get_int("period", 6000000));
  const auto testset_size = static_cast<std::size_t>(
      flags.get_int("testset", 100000));
  const auto shards = static_cast<std::size_t>(flags.get_int("shards", 4));
  const std::string depths_flag = flags.get_string("depths", "1,2,4,8");
  const std::string out_path = flags.get_string("out", "");

  std::vector<std::size_t> depths;
  {
    std::stringstream ss(depths_flag);
    std::string token;
    while (std::getline(ss, token, ',')) {
      depths.push_back(static_cast<std::size_t>(std::stoul(token)));
    }
  }

  // Target set: an even sample of the stream's value space, so matches
  // accumulate across the whole run.
  std::vector<std::string> targets;
  targets.reserve(testset_size);
  const std::size_t stride = std::max<std::size_t>(1, period / testset_size);
  for (std::size_t v = 0; v < period && targets.size() < testset_size;
       v += stride) {
    targets.push_back("g" + std::to_string(v));
  }
  pf::guessing::HashSetMatcher matcher(targets);
  pf::util::ThreadPool& pool = pf::util::shared_pool();

  std::printf("guessing_bench: budget=%zu chunk=%zu period=%zu testset=%zu "
              "pool=%zu\n",
              budget, chunk, period, targets.size(), pool.size());

  std::vector<ArmResult> arms;
  pf::guessing::RunResult baseline_result;

  // ---- before: the seed one-chunk-ahead harness -------------------------
  {
    HashStreamGenerator generator(period);
    pf::util::Timer timer;
    baseline_result = run_seed_one_ahead(generator, matcher, budget, chunk,
                                         &pool);
    ArmResult arm;
    arm.label = "seed_one_ahead";
    arm.seconds = timer.elapsed_seconds();
    arm.guesses_per_second = static_cast<double>(budget) / arm.seconds;
    arm.matched = baseline_result.final().matched;
    arm.unique = baseline_result.final().unique;
    arms.push_back(arm);
    std::printf("  %-24s %7.2fs  %11.0f guesses/s\n", arm.label.c_str(),
                arm.seconds, arm.guesses_per_second);
  }

  // ---- after: AttackSession pipeline depth sweep ------------------------
  const auto run_session = [&](std::size_t depth,
                               pf::guessing::UniqueTracking tracking,
                               const std::string& label) {
    HashStreamGenerator generator(period);
    pf::guessing::SessionConfig config;
    config.budget = budget;
    config.chunk_size = chunk;
    config.pipeline_depth = depth;
    config.unique_tracking = tracking;
    config.unique_shards = shards;
    config.pool = &pool;
    pf::util::Timer timer;
    pf::guessing::AttackSession session(generator, matcher, config);
    session.run();
    const pf::guessing::RunResult result = session.result();
    ArmResult arm;
    arm.label = label;
    arm.seconds = timer.elapsed_seconds();
    arm.guesses_per_second = static_cast<double>(budget) / arm.seconds;
    arm.matched = result.final().matched;
    arm.unique = result.final().unique;
    check_metrics_equal(baseline_result, result, label,
                        tracking == pf::guessing::UniqueTracking::kExact);
    arms.push_back(arm);
    std::printf("  %-24s %7.2fs  %11.0f guesses/s  (%.2fx)\n", label.c_str(),
                arm.seconds, arm.guesses_per_second,
                arm.guesses_per_second / arms.front().guesses_per_second);
  };

  for (const std::size_t depth : depths) {
    run_session(depth, pf::guessing::UniqueTracking::kExact,
                "session_depth" + std::to_string(depth));
  }
  run_session(depths.back(), pf::guessing::UniqueTracking::kSketch,
              "session_depth" + std::to_string(depths.back()) + "_sketch");

  // ---- JSON record ------------------------------------------------------
  std::stringstream json;
  json << "{\n"
       << "  \"bench\": \"guessing_bench\",\n"
       << "  \"config\": { \"budget\": " << budget << ", \"chunk_size\": "
       << chunk << ", \"stream_period\": " << period
       << ", \"test_set_size\": " << targets.size()
       << ", \"pool_threads\": " << pool.size()
       << ", \"unique_shards\": " << shards << " },\n"
       << "  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& arm = arms[i];
    json << "    { \"label\": \"" << arm.label << "\", \"seconds\": "
         << arm.seconds << ", \"guesses_per_second\": "
         << static_cast<long long>(arm.guesses_per_second)
         << ", \"speedup_vs_seed\": "
         << arm.guesses_per_second / arms.front().guesses_per_second
         << ", \"matched\": " << arm.matched << ", \"unique\": "
         << arm.unique << " }" << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::printf("%s", json.str().c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
