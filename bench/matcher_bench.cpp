// Disk-backed matcher bench: IndexBuilder build throughput, MappedMatcher
// cold/warm probe rates vs the in-memory HashSetMatcher, and the resident-
// memory cost of each. Emits the JSON recorded in BENCH_matcher.json.
//
//   ./matcher_bench [--keys 1000000] [--key-bytes 24] [--shards 16]
//                   [--probes 2000000] [--budget 200000] [--chunk 8192]
//                   [--index-path matcher_bench.pfidx]
//                   [--out BENCH_matcher.json]
//
// Arms:
//   build        streaming IndexBuilder over the synthetic key set
//   hashset      in-memory HashSetMatcher probe throughput (the baseline)
//   mapped_cold  MappedMatcher probes right after the index is evicted
//                from the page cache (true disk-paged cold start)
//   mapped_warm  the same probe stream again, pages now resident
//
// Before anything is reported, an identical AttackSession is run over the
// hash-set and the mapped matcher and every metric is cross-checked for
// bitwise equality — the disk index may only ever trade speed, never
// answers.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "guessing/mapped_matcher.hpp"
#include "guessing/matcher.hpp"
#include "guessing/metrics.hpp"
#include "guessing/session.hpp"
#include "util/flags.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

#if defined(__linux__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace pf = passflow;

namespace {

std::size_t resident_bytes() {
#if defined(__linux__)
  std::ifstream statm("/proc/self/statm");
  std::size_t total_pages = 0;
  std::size_t resident_pages = 0;
  statm >> total_pages >> resident_pages;
  return resident_pages * static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

// Drops the index from the page cache so the cold arm measures disk-paged
// probes, not cache hits. Best-effort: a no-op off Linux.
void evict_from_page_cache(const std::string& path) {
#if defined(__linux__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
#else
  (void)path;
#endif
}

// Deterministic feedback-free guess stream over the bench key space; ~50%
// of guesses are test-set members.
class KeyStreamGenerator : public pf::guessing::GuessGenerator {
 public:
  KeyStreamGenerator(std::size_t key_count, const std::string& padding)
      : key_count_(key_count), padding_(padding) {}
  void generate(std::size_t n, std::vector<std::string>& out) override {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t j = pf::util::mix64(cursor_++) % (key_count_ * 2);
      out.push_back("k" + std::to_string(j) + padding_);
    }
  }
  std::string name() const override { return "key-stream"; }

 private:
  std::size_t key_count_;
  std::string padding_;
  std::size_t cursor_ = 0;
};

bool same_run(const pf::guessing::RunResult& a,
              const pf::guessing::RunResult& b) {
  if (a.checkpoints.size() != b.checkpoints.size() ||
      a.matched_passwords != b.matched_passwords ||
      a.sample_non_matched != b.sample_non_matched) {
    return false;
  }
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
    if (a.checkpoints[i].guesses != b.checkpoints[i].guesses ||
        a.checkpoints[i].unique != b.checkpoints[i].unique ||
        a.checkpoints[i].matched != b.checkpoints[i].matched ||
        a.checkpoints[i].matched_percent != b.checkpoints[i].matched_percent) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const auto key_count =
      static_cast<std::size_t>(flags.get_int("keys", 1000000));
  const auto key_bytes =
      static_cast<std::size_t>(flags.get_int("key-bytes", 24));
  const auto shards = static_cast<std::size_t>(flags.get_int("shards", 16));
  const auto probe_count =
      static_cast<std::size_t>(flags.get_int("probes", 2000000));
  const auto budget =
      static_cast<std::size_t>(flags.get_int("budget", 200000));
  const auto chunk = static_cast<std::size_t>(flags.get_int("chunk", 8192));
  const std::string index_path =
      flags.get_string("index-path", "matcher_bench.pfidx");
  const std::string out_path = flags.get_string("out", "");

  const std::string padding(
      key_bytes > 12 ? key_bytes - 12 : std::size_t{1}, 'x');
  const auto key_for = [&](std::uint64_t j) {
    return "k" + std::to_string(j) + padding;
  };

  std::printf("matcher_bench: keys=%zu key_bytes=%zu shards=%zu probes=%zu\n",
              key_count, key_bytes, shards, probe_count);

  // ---- arm 0: streaming index build ------------------------------------
  pf::guessing::IndexBuilderConfig build_config;
  build_config.num_shards = shards;
  pf::guessing::IndexBuilder builder(build_config);
  pf::util::Timer build_timer;
  builder.begin(index_path);
  for (std::size_t j = 0; j < key_count; ++j) builder.add(key_for(j));
  const auto build_stats = builder.finish();
  const double build_seconds = build_timer.elapsed_seconds();
  const double file_mb =
      static_cast<double>(build_stats.file_bytes) / (1024.0 * 1024.0);
  std::printf(
      "  %-12s %7.2fs  %11.0f keys/s  %6.1f MB file  peak shard %.1f MB\n",
      "build", build_seconds,
      static_cast<double>(key_count) / build_seconds, file_mb,
      static_cast<double>(build_stats.peak_shard_bytes) / (1024.0 * 1024.0));

  // Probe stream, shared by every probe arm (~50% hits).
  std::vector<std::string> probes;
  probes.reserve(probe_count);
  for (std::size_t i = 0; i < probe_count; ++i) {
    probes.push_back(key_for(pf::util::mix64(i) % (key_count * 2)));
  }

  struct ProbeArm {
    std::string label;
    double seconds = 0.0;
    std::size_t hits = 0;
    std::size_t rss_delta = 0;
  };
  const auto run_probes = [&](const pf::guessing::Matcher& matcher,
                              const std::string& label) {
    ProbeArm arm;
    arm.label = label;
    std::vector<char> membership;
    std::vector<std::string> batch;
    pf::util::Timer timer;
    for (std::size_t begin = 0; begin < probes.size(); begin += chunk) {
      const std::size_t end = std::min(probes.size(), begin + chunk);
      batch.assign(probes.begin() + static_cast<std::ptrdiff_t>(begin),
                   probes.begin() + static_cast<std::ptrdiff_t>(end));
      matcher.contains_batch(batch, nullptr, membership);
      for (const char m : membership) arm.hits += m != 0;
    }
    arm.seconds = timer.elapsed_seconds();
    return arm;
  };

  std::vector<ProbeArm> arms;

  // ---- arm 1: in-memory hash set (the RAM-resident baseline) -----------
  std::size_t hashset_rss_delta = 0;
  std::unique_ptr<pf::guessing::HashSetMatcher> hashset;
  {
    std::vector<std::string> keys;
    keys.reserve(key_count);
    for (std::size_t j = 0; j < key_count; ++j) keys.push_back(key_for(j));
    const std::size_t rss_before = resident_bytes();
    hashset = std::make_unique<pf::guessing::HashSetMatcher>(keys);
    const std::size_t rss_after = resident_bytes();
    hashset_rss_delta =
        rss_after > rss_before ? rss_after - rss_before : 0;
  }
  arms.push_back(run_probes(*hashset, "hashset"));
  arms.back().rss_delta = hashset_rss_delta;

  // ---- arms 2+3: mapped, cold then warm --------------------------------
  evict_from_page_cache(index_path);
  const std::size_t rss_before_mapped = resident_bytes();
  const pf::guessing::MappedMatcher mapped(index_path);
  arms.push_back(run_probes(mapped, "mapped_cold"));
  arms.push_back(run_probes(mapped, "mapped_warm"));
  const std::size_t rss_after_mapped = resident_bytes();
  const std::size_t mapped_rss_delta =
      rss_after_mapped > rss_before_mapped
          ? rss_after_mapped - rss_before_mapped
          : 0;
  arms[1].rss_delta = mapped_rss_delta;  // cold pass pages the working set
  arms[2].rss_delta = mapped_rss_delta;

  for (const ProbeArm& arm : arms) {
    std::printf("  %-12s %7.2fs  %11.0f probes/s  %8zu hits  rss +%.1f MB\n",
                arm.label.c_str(), arm.seconds,
                static_cast<double>(probe_count) / arm.seconds, arm.hits,
                static_cast<double>(arm.rss_delta) / (1024.0 * 1024.0));
  }

  // ---- cross-check: the disk index may never change an answer ----------
  if (arms[0].hits != arms[1].hits || arms[0].hits != arms[2].hits) {
    std::fprintf(stderr, "FATAL: probe hit counts diverged across arms\n");
    std::remove(index_path.c_str());
    return 1;
  }
  const auto run_session = [&](const pf::guessing::Matcher& matcher) {
    KeyStreamGenerator generator(key_count, padding);
    pf::guessing::SessionConfig config;
    config.budget = budget;
    config.chunk_size = chunk;
    pf::guessing::AttackSession session(generator, matcher, config);
    session.run();
    return session.result();
  };
  const auto session_hashset = run_session(*hashset);
  const auto session_mapped = run_session(mapped);
  if (!same_run(session_hashset, session_mapped)) {
    std::fprintf(
        stderr,
        "FATAL: session metrics diverged between hashset and mapped\n");
    std::remove(index_path.c_str());
    return 1;
  }
  std::printf(
      "  session cross-check: %zu-guess AttackSession metrics bitwise "
      "identical (%zu matched)\n",
      budget, session_mapped.final().matched);

  // ---- JSON record -----------------------------------------------------
  std::stringstream json;
  json << "{\n"
       << "  \"bench\": \"matcher_bench\",\n"
       << "  \"config\": { \"keys\": " << key_count << ", \"key_bytes\": "
       << key_bytes << ", \"shards\": " << shards << ", \"probes\": "
       << probe_count << ", \"chunk_size\": " << chunk
       << ", \"session_budget\": " << budget << " },\n"
       << "  \"build\": { \"seconds\": " << build_seconds
       << ", \"keys_per_second\": "
       << static_cast<long long>(static_cast<double>(key_count) /
                                 build_seconds)
       << ", \"file_bytes\": " << build_stats.file_bytes
       << ", \"mb_per_second\": " << file_mb / build_seconds
       << ", \"peak_shard_bytes\": " << build_stats.peak_shard_bytes
       << ", \"keys_distinct\": " << build_stats.keys_distinct << " },\n"
       << "  \"note\": \"cold = probes after posix_fadvise(DONTNEED) "
          "evicted the index from the page cache; rss_delta_bytes for the "
          "mapped arms is the paged-in working set of the whole probe "
          "stream, vs the hash set holding every key resident\",\n"
       << "  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    json << "    { \"label\": \"" << arms[i].label << "\", \"seconds\": "
         << arms[i].seconds << ", \"probes_per_second\": "
         << static_cast<long long>(static_cast<double>(probe_count) /
                                   arms[i].seconds)
         << ", \"hits\": " << arms[i].hits << ", \"rss_delta_bytes\": "
         << arms[i].rss_delta << " }" << (i + 1 < arms.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n"
       << "  \"session_cross_check\": { \"budget\": " << budget
       << ", \"matched\": " << session_mapped.final().matched
       << ", \"unique\": " << session_mapped.final().unique
       << ", \"bitwise_identical\": true }\n"
       << "}\n";

  std::printf("%s", json.str().c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::remove(index_path.c_str());
  return 0;
}
