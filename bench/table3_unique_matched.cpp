// Table III: number of unique and matched passwords for CWAE,
// PassFlow-Static, PassFlow-Dynamic and PassFlow-Dynamic+GS.
//
// The paper's observations this bench reproduces:
//  * CWAE generates more unique samples than PassFlow-Static (high-dim
//    latent vs dim-bound flow latent) yet matches fewer passwords;
//  * Dynamic sampling lowers uniqueness (it concentrates near matches) but
//    raises matches;
//  * GS restores uniqueness while raising matches further.
#include "bench_support.hpp"
#include "guessing/dynamic_sampler.hpp"
#include "guessing/static_sampler.hpp"

namespace pf = passflow;
using pf::bench::BenchEnv;
using pf::bench::BenchScale;

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const BenchScale scale = pf::bench::scale_from_flags(flags);

  BenchEnv env(scale);
  pf::guessing::HashSetMatcher matcher(env.split.test_unique);

  const std::vector<std::string> flow_train = env.flow_train_subset(scale);
  auto model = pf::bench::train_flow(env, scale, {}, &flow_train);
  auto cwae = pf::bench::train_cwae(env, scale);

  struct MethodResult {
    std::string name;
    pf::guessing::RunResult result;
  };
  std::vector<MethodResult> methods;

  {
    pf::baselines::CwaeSampler sampler(*cwae, env.encoder, scale.seed + 20);
    methods.push_back({"CWAE", run_schedule(sampler, matcher, scale)});
  }
  {
    pf::guessing::StaticSamplerConfig config;
    config.seed = scale.seed + 21;
    config.pool = &pf::util::shared_pool();
    pf::guessing::StaticSampler sampler(*model, env.encoder, config);
    methods.push_back(
        {"PassFlow-Static", run_schedule(sampler, matcher, scale)});
  }
  {
    auto config = pf::guessing::table1_parameters(scale.budgets.back());
    config.seed = scale.seed + 22;
    config.pool = &pf::util::shared_pool();
    pf::guessing::DynamicSampler sampler(*model, env.encoder, config);
    methods.push_back(
        {"PassFlow-Dynamic", run_schedule(sampler, matcher, scale)});
  }
  {
    auto config = pf::guessing::table1_parameters(scale.budgets.back());
    config.seed = scale.seed + 23;
    config.pool = &pf::util::shared_pool();
    config.smoothing.enabled = true;
    pf::guessing::DynamicSampler sampler(*model, env.encoder, config);
    methods.push_back(
        {"PassFlow-Dynamic+GS", run_schedule(sampler, matcher, scale)});
  }

  std::vector<std::string> header = {"Guesses"};
  for (const auto& m : methods) {
    header.push_back(m.name + " Unique");
    header.push_back(m.name + " Matched");
  }
  pf::util::TextTable table(header);
  pf::util::CsvWriter csv(
      pf::bench::output_path("table3_unique_matched.csv"), header);
  for (std::size_t budget : scale.budgets) {
    std::vector<std::string> cells = {
        pf::util::with_thousands(static_cast<long long>(budget))};
    for (const auto& m : methods) {
      const auto& cp = m.result.at(budget);
      cells.push_back(
          pf::util::with_thousands(static_cast<long long>(cp.unique)));
      cells.push_back(
          pf::util::with_thousands(static_cast<long long>(cp.matched)));
    }
    table.add_row(cells);
    csv.write_row(cells);
  }

  std::printf("\nTable III: unique and matched passwords over the synthetic "
              "RockYou test set (%zu unique test passwords, scale=%s)\n\n",
              matcher.test_set_size(), scale.name.c_str());
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
