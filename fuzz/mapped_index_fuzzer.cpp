// Fuzz target: MappedMatcher's index-opening path — header validation
// (magic/version/seed/counts), extent checks and bucket-table setup over
// an mmap of attacker-controlled bytes.
//
// Contract under test: any input either opens (and then survives a few
// probes) or is rejected with std::runtime_error naming the defect. A
// crash, an out-of-bounds read (ASan), or any other exception type is a
// finding.
//
// Seed corpus: tests/fixtures/index/ (the truncated/bad-magic/
// wrong-version/seed-mismatch fixtures the mapped-matcher tests use).
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "guessing/mapped_matcher.hpp"
#include "temp_input.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string& path =
      passflow::fuzz::write_input("index", data, size);
  try {
    passflow::guessing::MappedMatcher matcher(path);
    // A header that passes validation must also yield a matcher whose
    // probe path stays in bounds — exercise it with a few lookups,
    // including bytes drawn from the input itself.
    std::vector<std::string> probes = {"password", ""};
    if (size > 0) {
      probes.emplace_back(reinterpret_cast<const char*>(data),
                          size < 64 ? size : 64);
    }
    std::vector<char> membership;
    matcher.contains_batch(probes, /*pool=*/nullptr, membership);
  } catch (const std::runtime_error&) {
    // Rejected corrupt index: the documented (and desired) outcome.
  }
  return 0;
}
