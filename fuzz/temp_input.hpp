// Shared helper for path-based fuzz targets: both fuzzed APIs
// (CheckpointStore::read_frame_file, MappedMatcher's constructor) take a
// file path, so each input is materialized as one per-process temp file,
// rewritten in place for every iteration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

namespace passflow::fuzz {

// Writes `size` bytes of `data` to a stable per-process temp path and
// returns it. Aborts (never returns an invalid path) if the filesystem is
// unusable — that is a harness failure, not a finding.
inline const std::string& write_input(const char* tag,
                                      const std::uint8_t* data,
                                      std::size_t size) {
  static const std::string path =
      (std::filesystem::temp_directory_path() /
       (std::string("passflow_fuzz_") + tag + "_" +
        std::to_string(::getpid())))
          .string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  out.close();
  if (!out) {
    std::fprintf(stderr, "fuzz harness: cannot write %s\n", path.c_str());
    std::abort();
  }
  return path;
}

}  // namespace passflow::fuzz
