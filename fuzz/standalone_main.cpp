// Standalone driver for the fuzz targets on toolchains without libFuzzer
// (GCC locally; any build without -fsanitize=fuzzer). Runs each file named
// on the command line through LLVMFuzzerTestOneInput once — exactly what a
// libFuzzer binary does with file arguments — so the checked-in corpus
// doubles as a regression test on every compiler (the `fuzz` ctest label).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int run = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    ++run;
  }
  std::fprintf(stderr, "ran %d inputs\n", run);
  return 0;
}
