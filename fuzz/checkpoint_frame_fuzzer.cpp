// Fuzz target: the CRC-framed checkpoint codec — both of its entry
// points. CheckpointStore::read_frame_file is the on-disk loader every
// crash recovery path trusts with arbitrarily torn or corrupt bytes;
// CheckpointStore::read_frame(std::istream&) is the same validator
// factored out for the distributed transport, which feeds it raw socket
// bytes. Both must uphold the same contract.
//
// Contract under test: any input either parses to a payload or is
// rejected with std::runtime_error naming the defect. Anything else — a
// crash, a sanitizer report, an unexpected exception type escaping to
// std::terminate — is a finding. The two callers must also agree: a
// frame the file path accepts, the stream path must accept with the
// identical payload (the file path only adds a no-trailing-bytes check,
// so stream-accept/file-reject is legal, never the reverse).
//
// Seed corpus: tests/fixtures/state/ (one intact frame plus the
// truncated/bad-magic/wrong-version/config-mismatch fixtures the
// crash-recovery tests already use) — valid for both callers by
// construction, since both consume the identical frame layout.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "temp_input.hpp"
#include "util/checkpoint.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using passflow::util::CheckpointStore;

  bool stream_ok = false;
  std::string stream_payload;
  {
    std::istringstream in(
        std::string(reinterpret_cast<const char*>(data), size));
    try {
      stream_payload = CheckpointStore::read_frame(in);
      stream_ok = true;
    } catch (const std::runtime_error&) {
      // Rejected corrupt frame: the documented (and desired) outcome.
    }
  }

  const std::string& path =
      passflow::fuzz::write_input("frame", data, size);
  try {
    const std::string payload = CheckpointStore::read_frame_file(path);
    // File accepted => the stream reader must have accepted the same
    // bytes and produced the same payload.
    if (!stream_ok || payload != stream_payload) std::abort();
  } catch (const std::runtime_error&) {
    // Rejected corrupt frame: fine for the file path even when the
    // stream path accepted (trailing bytes after a valid frame).
  }
  return 0;
}
