// Fuzz target: CheckpointStore::read_frame_file — the CRC-framed
// checkpoint loader that every crash recovery path trusts with
// arbitrarily torn or corrupt on-disk bytes.
//
// Contract under test: any input either parses to a payload or is
// rejected with std::runtime_error naming the defect. Anything else — a
// crash, a sanitizer report, an unexpected exception type escaping to
// std::terminate — is a finding.
//
// Seed corpus: tests/fixtures/state/ (one intact frame plus the
// truncated/bad-magic/wrong-version/config-mismatch fixtures the
// crash-recovery tests already use).
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "temp_input.hpp"
#include "util/checkpoint.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string& path =
      passflow::fuzz::write_input("frame", data, size);
  try {
    const std::string payload =
        passflow::util::CheckpointStore::read_frame_file(path);
    (void)payload;
  } catch (const std::runtime_error&) {
    // Rejected corrupt frame: the documented (and desired) outcome.
  }
  return 0;
}
