// Loading real password corpora from disk.
//
// The repo ships no leaked data (DESIGN.md substitution #1), but a user who
// legitimately holds a corpus (e.g. their organization's cracked-password
// audit, or the real RockYou list) can reproduce the paper's exact protocol
// with it: one password per line, filtered the way §IV-D describes (length
// bound, representable characters).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "data/alphabet.hpp"

namespace passflow::data {

struct LoadStats {
  std::size_t total_lines = 0;
  std::size_t kept = 0;
  std::size_t too_long = 0;
  std::size_t empty = 0;
  std::size_t out_of_alphabet = 0;
};

struct LoadOptions {
  std::size_t max_length = 10;      // paper bound (§IV-D)
  bool lowercase = false;           // fold to lowercase before filtering
  std::size_t max_entries = 0;      // 0 = unlimited
};

// Reads one password per line; keeps lines that are non-empty, within
// max_length, and fully representable in `alphabet`. CR/LF stripped.
std::vector<std::string> load_password_lines(std::istream& in,
                                             const Alphabet& alphabet,
                                             const LoadOptions& options,
                                             LoadStats* stats = nullptr);

// File-path convenience wrapper; throws std::runtime_error if unreadable.
std::vector<std::string> load_password_file(const std::string& path,
                                            const Alphabet& alphabet,
                                            const LoadOptions& options = {},
                                            LoadStats* stats = nullptr);

}  // namespace passflow::data
