// Password <-> feature-vector encoding (§IV-D).
//
// A password of length <= max_length becomes x in R^max_length with
//   x_i = (code(char_i) + offset) / |alphabet|,
// where offset is 0.5 for deterministic encoding (bin center) or a uniform
// draw in [0,1) for dequantized training samples. Decoding inverts by
// flooring x_i * |alphabet| and clamping — so every real vector decodes to
// *some* password, which is exactly what lets the flow's continuous samples
// be read back as guesses (and why collisions happen, §III-C).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/alphabet.hpp"
#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace passflow::util {
class ThreadPool;
}

namespace passflow::data {

class Encoder {
 public:
  Encoder(const Alphabet& alphabet, std::size_t max_length);

  std::size_t dim() const { return max_length_; }
  const Alphabet& alphabet() const { return *alphabet_; }

  // Deterministic (bin-center) encoding. Throws std::invalid_argument if the
  // password is too long or contains out-of-alphabet characters.
  std::vector<float> encode(const std::string& password) const;

  // Training encoding with uniform dequantization noise.
  std::vector<float> encode_dequantized(const std::string& password,
                                        util::Rng& rng) const;

  // Inverse map: any real vector decodes to a password (PAD cuts the string).
  std::string decode(const std::vector<float>& features) const;
  std::string decode(const float* features, std::size_t n) const;

  // Batched helpers used by trainers and samplers.
  nn::Matrix encode_batch(const std::vector<std::string>& passwords) const;
  nn::Matrix encode_batch_dequantized(const std::vector<std::string>& passwords,
                                      util::Rng& rng) const;
  std::vector<std::string> decode_batch(const nn::Matrix& features) const;
  // Row-parallel decode across pool workers; row order (and therefore the
  // result) is identical to the serial overload. Null pool = serial.
  std::vector<std::string> decode_batch(const nn::Matrix& features,
                                        util::ThreadPool* pool) const;

  // Width of one code bin in normalized space, 1/|alphabet|. The data-space
  // Gaussian Smoothing sigma is expressed in multiples of this.
  float bin_width() const;

 private:
  const Alphabet* alphabet_;
  std::size_t max_length_;
};

}  // namespace passflow::data
