#include "data/synthetic_rockyou.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "data/alphabet.hpp"
#include "data/wordlists.hpp"

namespace passflow::data {

CorpusConfig focused_corpus_config(std::size_t max_length) {
  CorpusConfig config;
  config.max_length = max_length;
  config.name_pool = 28;
  config.word_pool = 36;
  config.year_span = 30;
  config.lowercase_digits_only = true;
  config.weight_random_tail = 0.02;  // thin the unlearnable tail
  config.weight_interleaved = 0.04;
  return config;
}

namespace {
std::size_t pool_size(std::size_t list_size, std::size_t pool) {
  return pool == 0 ? list_size : std::min(list_size, pool);
}
}  // namespace

SyntheticRockyou::SyntheticRockyou(CorpusConfig config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      common_ranks_(pool_size(common_passwords().size(), config.word_pool * 3),
                    config.zipf_common),
      word_ranks_(pool_size(dictionary_words().size(), config.word_pool),
                  config.zipf_word),
      name_ranks_(pool_size(first_names().size(), config.name_pool),
                  config.zipf_word) {
  family_weights_ = {config.weight_common,      config.weight_word_suffix,
                     config.weight_name_suffix, config.weight_digits,
                     config.weight_keyboard,    config.weight_leet,
                     config.weight_interleaved, config.weight_random_tail};
}

std::string SyntheticRockyou::sample() { return sample(rng_); }

std::vector<std::string> SyntheticRockyou::generate(std::size_t n) {
  std::vector<std::string> corpus;
  corpus.reserve(n);
  for (std::size_t i = 0; i < n; ++i) corpus.push_back(sample(rng_));
  return corpus;
}

std::string SyntheticRockyou::sample(util::Rng& rng) const {
  switch (util::sample_discrete(rng, family_weights_)) {
    case 0:
      return clamp_length(sample_common(rng), rng);
    case 1:
      return clamp_length(sample_word_suffix(rng), rng);
    case 2:
      return clamp_length(sample_name_suffix(rng), rng);
    case 3:
      return clamp_length(sample_digits(rng), rng);
    case 4:
      return clamp_length(sample_keyboard(rng), rng);
    case 5:
      return clamp_length(sample_leet(rng), rng);
    case 6:
      return clamp_length(sample_interleaved(rng), rng);
    default:
      return clamp_length(sample_random_tail(rng), rng);
  }
}

std::string SyntheticRockyou::sample_common(util::Rng& rng) const {
  return common_passwords()[common_ranks_.sample(rng)];
}

std::string SyntheticRockyou::append_suffix(std::string stem,
                                            util::Rng& rng) const {
  const double r = rng.uniform();
  if (r < 0.35) {
    // Year suffix, biased toward birth years of typical leak demographics.
    const int year =
        1960 + static_cast<int>(rng.uniform_index(
                   std::max<std::size_t>(1, config_.year_span)));
    if (rng.bernoulli(0.4)) {
      stem += std::to_string(year % 100 < 10 ? year % 100 + 10 : year % 100);
    } else {
      stem += std::to_string(year);
    }
  } else if (r < 0.85) {
    const auto& suffixes = common_suffixes();
    // Order in the list encodes popularity: sample ranks with a mild bias.
    const std::size_t idx = std::min<std::size_t>(
        suffixes.size() - 1,
        static_cast<std::size_t>(rng.uniform() * rng.uniform() *
                                 static_cast<double>(suffixes.size())));
    stem += suffixes[idx];
  }
  // Remaining ~15%: bare stem.
  return stem;
}

std::string SyntheticRockyou::sample_word_suffix(util::Rng& rng) const {
  return append_suffix(dictionary_words()[word_ranks_.sample(rng)], rng);
}

std::string SyntheticRockyou::sample_name_suffix(util::Rng& rng) const {
  return append_suffix(first_names()[name_ranks_.sample(rng)], rng);
}

std::string SyntheticRockyou::sample_digits(util::Rng& rng) const {
  const std::size_t len =
      config_.min_length + rng.uniform_index(config_.max_length -
                                             config_.min_length + 1);
  std::string password;
  if (rng.bernoulli(0.5)) {
    // Sequential run starting from a random digit ("456789...").
    int d = static_cast<int>(rng.uniform_index(10));
    const int step = rng.bernoulli(0.8) ? 1 : -1;
    for (std::size_t i = 0; i < len; ++i) {
      password += static_cast<char>('0' + ((d % 10 + 10) % 10));
      d += step;
    }
  } else if (rng.bernoulli(0.5)) {
    // Repeated short block ("121212", "777777").
    const std::size_t block = 1 + rng.uniform_index(2);
    std::string unit;
    for (std::size_t i = 0; i < block; ++i) {
      unit += static_cast<char>('0' + rng.uniform_index(10));
    }
    while (password.size() < len) password += unit;
    password.resize(len);
  } else {
    for (std::size_t i = 0; i < len; ++i) {
      password += static_cast<char>('0' + rng.uniform_index(10));
    }
  }
  return password;
}

std::string SyntheticRockyou::sample_keyboard(util::Rng& rng) const {
  const auto& walks = keyboard_walks();
  std::string walk = walks[rng.uniform_index(walks.size())];
  if (rng.bernoulli(0.3)) walk = append_suffix(walk, rng);
  return walk;
}

std::string SyntheticRockyou::sample_leet(util::Rng& rng) const {
  std::string word = rng.bernoulli(0.5)
                         ? dictionary_words()[word_ranks_.sample(rng)]
                         : first_names()[name_ranks_.sample(rng)];
  for (char& c : word) {
    if (!rng.bernoulli(0.55)) continue;
    switch (c) {
      case 'a': c = '4'; break;
      case 'e': c = '3'; break;
      case 'i': c = '1'; break;
      case 'o': c = '0'; break;
      case 's': c = '5'; break;
      case 't': c = '7'; break;
      default: break;
    }
  }
  if (rng.bernoulli(0.4)) word = append_suffix(word, rng);
  return word;
}

std::string SyntheticRockyou::sample_interleaved(util::Rng& rng) const {
  // Word with a digit run spliced at a random position ("jim91my" style
  // variants appear in real leaks from numeric insertions).
  std::string word = first_names()[name_ranks_.sample(rng)];
  std::string digits;
  const std::size_t digit_count = 1 + rng.uniform_index(3);
  for (std::size_t i = 0; i < digit_count; ++i) {
    digits += static_cast<char>('0' + rng.uniform_index(10));
  }
  const std::size_t pos = rng.uniform_index(word.size() + 1);
  word.insert(pos, digits);
  return word;
}

std::string SyntheticRockyou::sample_random_tail(util::Rng& rng) const {
  static const std::string charset = "abcdefghijklmnopqrstuvwxyz0123456789";
  const std::size_t len =
      config_.min_length + rng.uniform_index(config_.max_length -
                                             config_.min_length + 1);
  std::string password;
  for (std::size_t i = 0; i < len; ++i) {
    // Bias toward lowercase so the tail still looks vaguely pronounceable.
    const std::size_t limit = rng.bernoulli(0.8) ? 26 : charset.size();
    password += charset[rng.uniform_index(limit)];
  }
  return password;
}

std::string SyntheticRockyou::clamp_length(std::string password,
                                           util::Rng& rng) const {
  if (config_.lowercase_digits_only) {
    for (char& c : password) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    password = Alphabet::compact().sanitize(password, '1');
  }
  if (password.size() > config_.max_length) {
    password.resize(config_.max_length);
  }
  while (password.size() < config_.min_length) {
    password += static_cast<char>('0' + rng.uniform_index(10));
  }
  return password;
}

DatasetSplit make_rockyou_style_split(const std::vector<std::string>& corpus,
                                      std::size_t train_size,
                                      util::Rng& rng) {
  const auto perm = rng.permutation(corpus.size());
  const std::size_t train_end = corpus.size() * 8 / 10;

  DatasetSplit split;
  // Subsample train_size instances (with the corpus' natural multiplicity)
  // from the 80% partition, as the paper subsamples 300K from 23.5M.
  if (train_size > train_end) train_size = train_end;
  split.train.reserve(train_size);
  for (std::size_t i = 0; i < train_size; ++i) {
    split.train.push_back(corpus[perm[i]]);
  }

  std::unordered_set<std::string> train_set;
  // Exclude everything in the *80% partition*, not just the subsample: the
  // paper removes the train/test intersection computed on the full split.
  for (std::size_t i = 0; i < train_end; ++i) {
    train_set.insert(corpus[perm[i]]);
  }

  std::unordered_set<std::string> seen;
  for (std::size_t i = train_end; i < corpus.size(); ++i) {
    const std::string& password = corpus[perm[i]];
    if (train_set.count(password) || seen.count(password)) continue;
    seen.insert(password);
    split.test_unique.push_back(password);
  }
  return split;
}

}  // namespace passflow::data
