#include "data/encoder.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace passflow::data {

Encoder::Encoder(const Alphabet& alphabet, std::size_t max_length)
    : alphabet_(&alphabet), max_length_(max_length) {
  if (max_length == 0) throw std::invalid_argument("max_length must be > 0");
}

float Encoder::bin_width() const {
  return 1.0f / static_cast<float>(alphabet_->size());
}

std::vector<float> Encoder::encode(const std::string& password) const {
  if (password.size() > max_length_) {
    throw std::invalid_argument("password longer than max_length: " + password);
  }
  const float inv = bin_width();
  std::vector<float> features(max_length_);
  for (std::size_t i = 0; i < max_length_; ++i) {
    std::size_t code = 0;  // PAD
    if (i < password.size()) {
      const auto c = alphabet_->code_of(password[i]);
      if (!c) {
        throw std::invalid_argument("character outside alphabet in: " +
                                    password);
      }
      code = *c;
    }
    features[i] = (static_cast<float>(code) + 0.5f) * inv;
  }
  return features;
}

std::vector<float> Encoder::encode_dequantized(const std::string& password,
                                               util::Rng& rng) const {
  std::vector<float> features = encode(password);
  const float inv = bin_width();
  for (float& f : features) {
    // Replace the deterministic 0.5 bin offset with a uniform draw.
    f += (static_cast<float>(rng.uniform()) - 0.5f) * inv;
  }
  return features;
}

std::string Encoder::decode(const float* features, std::size_t n) const {
  const auto alphabet_size = static_cast<long>(alphabet_->size());
  std::string password;
  for (std::size_t i = 0; i < n; ++i) {
    long code = static_cast<long>(
        std::floor(static_cast<double>(features[i]) * alphabet_size));
    code = std::clamp(code, 0L, alphabet_size - 1);
    if (code == 0) break;  // PAD terminates the password
    password += alphabet_->char_of(static_cast<std::size_t>(code));
  }
  return password;
}

std::string Encoder::decode(const std::vector<float>& features) const {
  return decode(features.data(), features.size());
}

nn::Matrix Encoder::encode_batch(
    const std::vector<std::string>& passwords) const {
  nn::Matrix batch(passwords.size(), max_length_);
  for (std::size_t r = 0; r < passwords.size(); ++r) {
    const auto features = encode(passwords[r]);
    std::copy(features.begin(), features.end(), batch.row(r));
  }
  return batch;
}

nn::Matrix Encoder::encode_batch_dequantized(
    const std::vector<std::string>& passwords, util::Rng& rng) const {
  nn::Matrix batch(passwords.size(), max_length_);
  for (std::size_t r = 0; r < passwords.size(); ++r) {
    const auto features = encode_dequantized(passwords[r], rng);
    std::copy(features.begin(), features.end(), batch.row(r));
  }
  return batch;
}

std::vector<std::string> Encoder::decode_batch(
    const nn::Matrix& features) const {
  std::vector<std::string> out;
  out.reserve(features.rows());
  for (std::size_t r = 0; r < features.rows(); ++r) {
    out.push_back(decode(features.row(r), features.cols()));
  }
  return out;
}

std::vector<std::string> Encoder::decode_batch(const nn::Matrix& features,
                                               util::ThreadPool* pool) const {
  if (pool == nullptr || pool->size() <= 1 || features.rows() < 256) {
    return decode_batch(features);
  }
  std::vector<std::string> out(features.rows());
  pool->parallel_for(features.rows(), [&](std::size_t r) {
    out[r] = decode(features.row(r), features.cols());
  });
  return out;
}

}  // namespace passflow::data
