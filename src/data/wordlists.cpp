#include "data/wordlists.hpp"

#include <string>
#include <vector>

namespace passflow::data {

const std::vector<std::string>& common_passwords() {
  static const std::vector<std::string> list = {
      "123456",   "12345",    "123456789", "password", "iloveyou", "princess",
      "1234567",  "rockyou",  "12345678",  "abc123",   "nicole",   "daniel",
      "babygirl", "monkey",   "lovely",    "jessica",  "654321",   "michael",
      "ashley",   "qwerty",   "111111",    "iloveu",   "000000",   "michelle",
      "tigger",   "sunshine", "chocolate", "password1", "soccer",  "anthony",
      "friends",  "butterfly", "purple",   "angel",    "jordan",   "liverpool",
      "justin",   "loveme",   "fuckyou",   "123123",   "football", "secret",
      "andrea",   "carlos",   "jennifer",  "joshua",   "bubbles",  "1234567890",
      "superman", "hannah",   "amanda",    "loveyou",  "pretty",   "basketball",
      "andrew",   "angels",   "tweety",    "flower",   "playboy",  "hello",
      "elizabeth", "hottie",  "tinkerbell", "charlie", "samantha", "barbie",
      "chelsea",  "lovers",   "teamo",     "jasmine",  "brandon",  "666666",
      "shadow",   "melissa",  "eminem",    "matthew",  "robert",   "danielle",
      "forever",  "family",   "jonathan",  "987654321", "computer", "whatever",
      "dragon",   "vanessa",  "cookie",    "naruto",   "summer",   "sweety",
      "spongebob", "joseph",  "junior",    "softball", "taylor",   "yellow",
      "daniela",  "lauren",   "mickey",    "princesa", "alexandra", "alexis",
      "jesus",    "estrella", "miguel",    "william",  "thomas",   "beautiful",
      "victoria", "martin",   "cheese",    "fernando", "loveya",   "eduardo",
      "sebastian", "rainbow", "nathan",    "killer",   "123321",   "jordan23",
  };
  return list;
}

const std::vector<std::string>& dictionary_words() {
  static const std::vector<std::string> list = {
      "love",    "angel",   "baby",    "star",    "rock",   "girl",   "boy",
      "blue",    "pink",    "black",   "green",   "happy",  "crazy",  "sweet",
      "magic",   "music",   "dance",   "dream",   "heart",  "smile",  "honey",
      "candy",   "sugar",   "tiger",   "eagle",   "horse",  "puppy",  "kitty",
      "panda",   "bunny",   "ninja",   "pirate",  "wizard", "knight", "queen",
      "king",    "prince",  "diamond", "silver",  "golden", "cherry", "apple",
      "mango",   "peach",   "lemon",   "berry",   "ocean",  "river",  "storm",
      "thunder", "winter",  "spring",  "autumn",  "sunny",  "cloud",  "moon",
      "light",   "shine",   "spark",   "flame",   "blaze",  "frost",  "snow",
      "shark",   "wolf",    "lion",    "dolphin", "turtle", "falcon", "raven",
      "cobra",   "viper",   "venom",   "ghost",   "spirit", "demon",  "devil",
      "heaven",  "hell",    "lucky",   "money",   "power",  "super",  "mega",
      "ultra",   "hyper",   "master",  "boss",    "chief",  "major",  "alpha",
      "omega",   "delta",   "sigma",   "metal",   "steel",  "stone",  "brick",
      "glass",   "crystal", "pearl",   "ruby",    "coral",  "ivory",  "amber",
      "soccer",  "hockey",  "tennis",  "racing",  "skater", "surfer", "gamer",
      "hunter",  "rider",   "flyer",   "runner",  "dancer", "singer", "player",
      "winner",  "legend",  "hero",    "rebel",   "outlaw", "bandit", "rogue",
      "trust",   "faith",   "hope",    "grace",   "peace",  "karma",  "destiny",
      "forever", "always",  "never",   "little",  "mini",   "big",    "giant",
  };
  return list;
}

const std::vector<std::string>& first_names() {
  static const std::vector<std::string> list = {
      "james",   "john",    "robert",  "michael", "david",   "william",
      "richard", "joseph",  "thomas",  "charles", "daniel",  "matthew",
      "anthony", "mark",    "steven",  "andrew",  "joshua",  "kevin",
      "brian",   "george",  "edward",  "ronald",  "timothy", "jason",
      "jeffrey", "ryan",    "jacob",   "gary",    "nicholas", "eric",
      "jonathan", "stephen", "justin", "scott",   "brandon", "frank",
      "mary",    "patricia", "jennifer", "linda", "barbara", "susan",
      "jessica", "sarah",   "karen",   "nancy",   "lisa",    "betty",
      "sandra",  "ashley",  "kimberly", "emily",  "donna",   "michelle",
      "carol",   "amanda",  "melissa", "deborah", "stephanie", "laura",
      "rebecca", "sharon",  "cynthia", "kathleen", "amy",    "shirley",
      "angela",  "helen",   "anna",    "brenda",  "pamela",  "nicole",
      "samantha", "katherine", "emma", "ruth",    "christine", "catherine",
      "maria",   "jose",    "carlos",  "juan",    "luis",    "miguel",
      "jorge",   "pedro",   "alejandro", "diego", "sofia",   "valentina",
      "camila",  "lucia",   "gabriela", "daniela", "mariana", "andrea",
      "alex",    "sam",     "max",     "leo",     "ben",     "dan",
      "tom",     "joe",     "tim",     "jim",     "rob",     "mike",
      "jimmy",   "johnny",  "tommy",   "bobby",   "billy",   "danny",
  };
  return list;
}

const std::vector<std::string>& keyboard_walks() {
  static const std::vector<std::string> list = {
      "qwerty",  "qwertyui", "asdfgh",  "asdfghjk", "zxcvbn",  "zxcvbnm",
      "qazwsx",  "1qaz2wsx", "qweasd",  "qweasdzxc", "123qwe", "1q2w3e4r",
      "qwe123",  "asd123",   "zxc123",  "poiuyt",   "lkjhgf",  "mnbvcx",
      "147258",  "159357",   "741852",  "963852",   "456789",  "147852",
  };
  return list;
}

const std::vector<std::string>& common_suffixes() {
  static const std::vector<std::string> list = {
      "1",   "123",  "12",   "2",    "7",    "13",  "11",  "22",
      "123456", "01", "21",  "23",   "69",   "420", "321", "99",
      "!",   "!!",   "1!",   "123!", ".",    "*",   "_1",  "00",
  };
  return list;
}

}  // namespace passflow::data
