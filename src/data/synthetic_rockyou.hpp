// Synthetic RockYou-like password corpus (DESIGN.md substitution #1).
//
// The real RockYou leak cannot be shipped; this generator produces a corpus
// with the statistical properties the PassFlow experiments rely on:
//   * a Zipf-distributed head of very common passwords,
//   * dictionary words / first names with digit, year and symbol suffixes,
//   * keyboard walks, leet mutations, pure-digit strings,
//   * a long random-ish tail,
// sampled *with multiplicity*, so the dedup + train/test-intersection
// protocol of §IV-D behaves as it does on the real data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace passflow::data {

struct CorpusConfig {
  std::size_t max_length = 10;  // paper setting (§IV-D)
  std::size_t min_length = 4;
  // Mixture weights over pattern families; normalized internally.
  double weight_common = 0.16;     // head of very common passwords
  double weight_word_suffix = 0.26;
  double weight_name_suffix = 0.20;
  double weight_digits = 0.10;
  double weight_keyboard = 0.07;
  double weight_leet = 0.09;
  double weight_interleaved = 0.07;  // word with digits spliced in
  double weight_random_tail = 0.05;
  // Zipf exponents: higher = heavier head.
  double zipf_common = 1.05;
  double zipf_word = 0.7;
  // Support limiters: cap how many entries of each word list are used
  // (0 = all). Smaller pools concentrate the distribution, putting the
  // guessing experiments into a regime reachable by CPU-scale training
  // while preserving the heavy-tailed pattern structure (see DESIGN.md §2).
  std::size_t name_pool = 0;
  std::size_t word_pool = 0;
  std::size_t year_span = 51;  // years sampled from [1960, 1960+span)
  bool lowercase_digits_only = false;  // restrict output to [a-z0-9]
};

// Preset tuned for CPU-scale benches: reduced pattern support, compact
// symbol set. The rank-frequency shape stays RockYou-like.
CorpusConfig focused_corpus_config(std::size_t max_length = 8);

class SyntheticRockyou {
 public:
  explicit SyntheticRockyou(CorpusConfig config = {},
                            std::uint64_t seed = 0xC0FFEE);

  const CorpusConfig& config() const { return config_; }

  // Draws one password (with natural duplication across calls).
  std::string sample(util::Rng& rng) const;
  std::string sample();  // uses the internal RNG

  // Draws `n` passwords with multiplicity.
  std::vector<std::string> generate(std::size_t n);

 private:
  std::string sample_common(util::Rng& rng) const;
  std::string sample_word_suffix(util::Rng& rng) const;
  std::string sample_name_suffix(util::Rng& rng) const;
  std::string sample_digits(util::Rng& rng) const;
  std::string sample_keyboard(util::Rng& rng) const;
  std::string sample_leet(util::Rng& rng) const;
  std::string sample_interleaved(util::Rng& rng) const;
  std::string sample_random_tail(util::Rng& rng) const;
  std::string append_suffix(std::string stem, util::Rng& rng) const;
  std::string clamp_length(std::string password, util::Rng& rng) const;

  CorpusConfig config_;
  util::Rng rng_;
  util::ZipfSampler common_ranks_;
  util::ZipfSampler word_ranks_;
  util::ZipfSampler name_ranks_;
  std::vector<double> family_weights_;
};

// The paper's dataset protocol (§IV-D): split the raw corpus 80/20, subsample
// `train_size` instances from the 80% for training, and build a deduplicated
// test set from the 20% with all training passwords removed.
struct DatasetSplit {
  std::vector<std::string> train;        // with multiplicity, size=train_size
  std::vector<std::string> test_unique;  // deduped, disjoint from train
};

DatasetSplit make_rockyou_style_split(const std::vector<std::string>& corpus,
                                      std::size_t train_size,
                                      util::Rng& rng);

}  // namespace passflow::data
