#include "data/alphabet.hpp"

#include <cstddef>
#include <stdexcept>
#include <string>

namespace passflow::data {

const Alphabet& Alphabet::standard() {
  static const Alphabet instance(
      "abcdefghijklmnopqrstuvwxyz0123456789"
      "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "!@#$%^&*._-+?");
  return instance;
}

const Alphabet& Alphabet::compact() {
  static const Alphabet instance("abcdefghijklmnopqrstuvwxyz0123456789");
  return instance;
}

Alphabet::Alphabet(const std::string& symbols_without_pad) {
  symbols_ = std::string(1, '\0') + symbols_without_pad;
  code_table_.fill(-1);
  for (std::size_t code = 0; code < symbols_.size(); ++code) {
    const unsigned char uc = static_cast<unsigned char>(symbols_[code]);
    if (code > 0 && code_table_[uc] != -1) {
      throw std::invalid_argument("duplicate symbol in alphabet");
    }
    code_table_[uc] = static_cast<int>(code);
  }
}

std::optional<std::size_t> Alphabet::code_of(char c) const {
  const int code = code_table_[static_cast<unsigned char>(c)];
  if (code < 0) return std::nullopt;
  return static_cast<std::size_t>(code);
}

char Alphabet::char_of(std::size_t code) const {
  if (code >= symbols_.size()) {
    throw std::out_of_range("alphabet code out of range");
  }
  return symbols_[code];
}

bool Alphabet::validates(const std::string& s) const {
  for (char c : s) {
    if (c == '\0' || !contains(c)) return false;
  }
  return true;
}

std::string Alphabet::sanitize(const std::string& s, char fallback) const {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out += (c != '\0' && contains(c)) ? c : fallback;
  }
  return out;
}

}  // namespace passflow::data
