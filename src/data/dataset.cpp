#include "data/dataset.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace passflow::data {

Dataset::Dataset(std::vector<std::string> passwords, const Encoder& encoder)
    : passwords_(std::move(passwords)), encoder_(&encoder) {
  if (passwords_.empty()) {
    throw std::invalid_argument("Dataset requires at least one password");
  }
  for (const auto& p : passwords_) {
    if (p.size() > encoder_->dim() ||
        !encoder_->alphabet().validates(p)) {
      throw std::invalid_argument("password not representable: " + p);
    }
  }
  order_.resize(passwords_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
}

void Dataset::start_epoch(util::Rng& rng) {
  order_ = rng.permutation(passwords_.size());
  cursor_ = 0;
}

std::size_t Dataset::next_batch(std::size_t batch_size, util::Rng& rng,
                                nn::Matrix& batch) {
  const std::size_t remaining = passwords_.size() - cursor_;
  const std::size_t count = std::min(batch_size, remaining);
  if (count == 0) return 0;
  batch = nn::Matrix(count, encoder_->dim());
  for (std::size_t r = 0; r < count; ++r) {
    const auto features =
        encoder_->encode_dequantized(passwords_[order_[cursor_ + r]], rng);
    std::copy(features.begin(), features.end(), batch.row(r));
  }
  cursor_ += count;
  return count;
}

std::size_t Dataset::batches_per_epoch(std::size_t batch_size) const {
  return (passwords_.size() + batch_size - 1) / batch_size;
}

}  // namespace passflow::data
