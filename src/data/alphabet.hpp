// Password alphabet: the discrete symbol set the flow models.
//
// Index 0 is reserved for PAD, which fills positions after the end of a
// password so that every sample has a fixed length (the paper trains on
// passwords of length <= 10 embedded in a 10-dimensional vector, §IV-D).
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string>

namespace passflow::data {

class Alphabet {
 public:
  // Default alphabet: PAD + lowercase + digits + uppercase + common symbols.
  // Ordered so that the dense regions of RockYou-like corpora (lowercase,
  // digits) sit in a contiguous low range of codes, which makes the
  // normalized feature space smoother for the flow.
  static const Alphabet& standard();
  // Compact alphabet (PAD + lowercase + digits) for fast unit tests.
  static const Alphabet& compact();

  explicit Alphabet(const std::string& symbols_without_pad);

  std::size_t size() const { return symbols_.size(); }  // includes PAD

  char pad() const { return '\0'; }
  bool contains(char c) const { return code_of(c).has_value(); }

  // Code for a character; nullopt if the character is outside the alphabet.
  std::optional<std::size_t> code_of(char c) const;
  // Character for a code; PAD maps to '\0'. Throws std::out_of_range.
  char char_of(std::size_t code) const;

  // True if every character of `s` is in the alphabet.
  bool validates(const std::string& s) const;

  // Replaces out-of-alphabet characters with the fallback symbol; used when
  // ingesting external corpora.
  std::string sanitize(const std::string& s, char fallback = 'a') const;

 private:
  std::string symbols_;                       // symbols_[code] = char, [0]=PAD
  std::array<int, 256> code_table_;           // char -> code or -1
};

}  // namespace passflow::data
