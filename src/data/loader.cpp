#include "data/loader.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <stdexcept>
#include <string>
#include <vector>

namespace passflow::data {

std::vector<std::string> load_password_lines(std::istream& in,
                                             const Alphabet& alphabet,
                                             const LoadOptions& options,
                                             LoadStats* stats) {
  LoadStats local;
  std::vector<std::string> passwords;
  std::string line;
  while (std::getline(in, line)) {
    ++local.total_lines;
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
      line.pop_back();
    }
    if (options.lowercase) {
      for (char& c : line) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    if (line.empty()) {
      ++local.empty;
      continue;
    }
    if (line.size() > options.max_length) {
      ++local.too_long;
      continue;
    }
    if (!alphabet.validates(line)) {
      ++local.out_of_alphabet;
      continue;
    }
    passwords.push_back(line);
    ++local.kept;
    if (options.max_entries > 0 && passwords.size() >= options.max_entries) {
      break;
    }
  }
  if (stats) *stats = local;
  return passwords;
}

std::vector<std::string> load_password_file(const std::string& path,
                                            const Alphabet& alphabet,
                                            const LoadOptions& options,
                                            LoadStats* stats) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open password file: " + path);
  return load_password_lines(in, alphabet, options, stats);
}

}  // namespace passflow::data
