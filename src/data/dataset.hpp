// Training dataset: password strings + shuffled, dequantized minibatches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/encoder.hpp"
#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace passflow::data {

class Dataset {
 public:
  Dataset(std::vector<std::string> passwords, const Encoder& encoder);

  std::size_t size() const { return passwords_.size(); }
  const std::vector<std::string>& passwords() const { return passwords_; }
  const Encoder& encoder() const { return *encoder_; }

  // Begins a new epoch: reshuffles the sample order.
  void start_epoch(util::Rng& rng);

  // Fills `batch` with up to `batch_size` dequantized samples; returns the
  // number of rows produced (0 at end of epoch).
  std::size_t next_batch(std::size_t batch_size, util::Rng& rng,
                         nn::Matrix& batch);

  // Number of batches per epoch for a given batch size (ceil division).
  std::size_t batches_per_epoch(std::size_t batch_size) const;

 private:
  std::vector<std::string> passwords_;
  const Encoder* encoder_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace passflow::data
