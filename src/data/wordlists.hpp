// Embedded word material for the synthetic RockYou-like corpus.
//
// These lists are deliberately small (a few hundred entries each): the
// synthetic generator combines them combinatorially with suffixes, leet
// mutations and keyboard walks, which yields a support of millions of
// distinct strings with the heavy-tailed rank/frequency profile of real
// leaked corpora.
#pragma once

#include <string>
#include <vector>

namespace passflow::data {

// Most common leaked passwords, ordered by real-world frequency rank
// ("123456", "password", ...).
const std::vector<std::string>& common_passwords();

// Frequent English dictionary words usable as password stems.
const std::vector<std::string>& dictionary_words();

// Common first names (lowercase).
const std::vector<std::string>& first_names();

// Keyboard walks ("qwerty", "asdfgh", "1qaz2wsx", ...).
const std::vector<std::string>& keyboard_walks();

// Suffixes humans append ("1", "123", "!", "2010", ...). Years are generated
// programmatically in the corpus generator; this list holds the non-year
// suffixes with weights implied by order.
const std::vector<std::string>& common_suffixes();

}  // namespace passflow::data
