#include "nn/activation.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace passflow::nn {

float activate(ActKind kind, float x, float leak) {
  switch (kind) {
    case ActKind::kRelu:
      return x > 0.0f ? x : 0.0f;
    case ActKind::kLeakyRelu:
      return x > 0.0f ? x : leak * x;
    case ActKind::kTanh:
      return std::tanh(x);
    case ActKind::kSigmoid:
      return 1.0f / (1.0f + std::exp(-x));
  }
  return x;
}

float activate_grad(ActKind kind, float x, float leak) {
  switch (kind) {
    case ActKind::kRelu:
      return x > 0.0f ? 1.0f : 0.0f;
    case ActKind::kLeakyRelu:
      return x > 0.0f ? 1.0f : leak;
    case ActKind::kTanh: {
      const float t = std::tanh(x);
      return 1.0f - t * t;
    }
    case ActKind::kSigmoid: {
      const float s = 1.0f / (1.0f + std::exp(-x));
      return s * (1.0f - s);
    }
  }
  return 1.0f;
}

// Hoists the kind switch out of the elementwise loop so each branch is a
// tight `#pragma omp simd` loop (ReLU variants vectorize fully; tanh and
// sigmoid keep their libm calls but lose the per-element dispatch).
void Activation::apply_into(const Matrix& input, Matrix& out) const {
  if (&out != &input) {
    out.resize(input.rows(), input.cols());
    std::copy(input.data(), input.data() + input.size(), out.data());
  }
  float* d = out.data();
  const std::size_t size = out.size();
  switch (kind_) {
    case ActKind::kRelu:
#pragma omp simd
      for (std::size_t i = 0; i < size; ++i) d[i] = d[i] > 0.0f ? d[i] : 0.0f;
      break;
    case ActKind::kLeakyRelu: {
      const float leak = leak_;
#pragma omp simd
      for (std::size_t i = 0; i < size; ++i) {
        d[i] = d[i] > 0.0f ? d[i] : leak * d[i];
      }
      break;
    }
    case ActKind::kTanh:
      for (std::size_t i = 0; i < size; ++i) d[i] = std::tanh(d[i]);
      break;
    case ActKind::kSigmoid:
      for (std::size_t i = 0; i < size; ++i) {
        d[i] = 1.0f / (1.0f + std::exp(-d[i]));
      }
      break;
  }
}

Matrix Activation::forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out;
  apply_into(input, out);
  return out;
}

void Activation::forward_into(const Matrix& input, Matrix& out) {
  cached_input_ = input;  // copy before apply so aliased in-place calls work
  apply_into(input, out);
}

Matrix Activation::forward_inference(const Matrix& input) {
  Matrix out;
  apply_into(input, out);
  return out;
}

void Activation::forward_inference_into(const Matrix& input, Matrix& out) {
  apply_into(input, out);
}

Matrix Activation::backward(const Matrix& grad_output) {
  Matrix dx;
  backward_into(grad_output, dx);
  return dx;
}

void Activation::backward_into(const Matrix& grad_output, Matrix& grad_input) {
  if (&grad_input != &grad_output) {
    grad_input.resize(grad_output.rows(), grad_output.cols());
    std::copy(grad_output.data(), grad_output.data() + grad_output.size(),
              grad_input.data());
  }
  float* d = grad_input.data();
  const float* x = cached_input_.data();
  const std::size_t size = grad_input.size();
  switch (kind_) {
    case ActKind::kRelu:
#pragma omp simd
      for (std::size_t i = 0; i < size; ++i) {
        d[i] = x[i] > 0.0f ? d[i] : 0.0f;
      }
      break;
    case ActKind::kLeakyRelu: {
      const float leak = leak_;
#pragma omp simd
      for (std::size_t i = 0; i < size; ++i) {
        d[i] = x[i] > 0.0f ? d[i] : leak * d[i];
      }
      break;
    }
    case ActKind::kTanh:
      for (std::size_t i = 0; i < size; ++i) {
        const float t = std::tanh(x[i]);
        d[i] *= 1.0f - t * t;
      }
      break;
    case ActKind::kSigmoid:
      for (std::size_t i = 0; i < size; ++i) {
        const float s = 1.0f / (1.0f + std::exp(-x[i]));
        d[i] *= s * (1.0f - s);
      }
      break;
  }
}

}  // namespace passflow::nn
