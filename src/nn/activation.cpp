#include "nn/activation.hpp"

#include <cmath>

namespace passflow::nn {

float activate(ActKind kind, float x, float leak) {
  switch (kind) {
    case ActKind::kRelu:
      return x > 0.0f ? x : 0.0f;
    case ActKind::kLeakyRelu:
      return x > 0.0f ? x : leak * x;
    case ActKind::kTanh:
      return std::tanh(x);
    case ActKind::kSigmoid:
      return 1.0f / (1.0f + std::exp(-x));
  }
  return x;
}

float activate_grad(ActKind kind, float x, float leak) {
  switch (kind) {
    case ActKind::kRelu:
      return x > 0.0f ? 1.0f : 0.0f;
    case ActKind::kLeakyRelu:
      return x > 0.0f ? 1.0f : leak;
    case ActKind::kTanh: {
      const float t = std::tanh(x);
      return 1.0f - t * t;
    }
    case ActKind::kSigmoid: {
      const float s = 1.0f / (1.0f + std::exp(-x));
      return s * (1.0f - s);
    }
  }
  return 1.0f;
}

Matrix Activation::apply(const Matrix& input) const {
  Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = activate(kind_, out.data()[i], leak_);
  }
  return out;
}

Matrix Activation::forward(const Matrix& input) {
  cached_input_ = input;
  return apply(input);
}

Matrix Activation::forward_inference(const Matrix& input) {
  return apply(input);
}

Matrix Activation::backward(const Matrix& grad_output) {
  Matrix dx = grad_output;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    dx.data()[i] *= activate_grad(kind_, cached_input_.data()[i], leak_);
  }
  return dx;
}

}  // namespace passflow::nn
