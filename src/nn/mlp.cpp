#include "nn/mlp.hpp"

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/ops.hpp"

namespace passflow::nn {

Mlp::Mlp(std::size_t in_features, const std::vector<std::size_t>& hidden_sizes,
         std::size_t out_features, util::Rng& rng, ActKind hidden_act,
         bool has_final_act, ActKind final_act, const std::string& name) {
  std::size_t prev = in_features;
  for (std::size_t i = 0; i < hidden_sizes.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(
        prev, hidden_sizes[i], rng, Init::kHe,
        name + ".fc" + std::to_string(i)));
    layers_.push_back(std::make_unique<Activation>(hidden_act));
    prev = hidden_sizes[i];
  }
  layers_.push_back(std::make_unique<Linear>(prev, out_features, rng,
                                             Init::kXavier, name + ".out"));
  if (has_final_act) {
    layers_.push_back(std::make_unique<Activation>(final_act));
  }
}

Matrix Mlp::forward(const Matrix& input) {
  Matrix out;
  forward_into(input, out);
  return out;
}

void Mlp::forward_into(const Matrix& input, Matrix& out) {
  const Matrix* cur = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Matrix& dst = (i + 1 == layers_.size())
                      ? out
                      : (cur == &ping_ws_ ? pong_ws_ : ping_ws_);
    layers_[i]->forward_into(*cur, dst);
    cur = &dst;
  }
}

Matrix Mlp::forward_inference(const Matrix& input) {
  Matrix h = input;
  for (auto& layer : layers_) h = layer->forward_inference(h);
  return h;
}

Matrix Mlp::backward(const Matrix& grad_output) {
  Matrix g;
  backward_into(grad_output, g);
  return g;
}

void Mlp::backward_into(const Matrix& grad_output, Matrix& grad_input) {
  const Matrix* cur = &grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    Matrix& dst =
        (i == 0) ? grad_input : (cur == &ping_ws_ ? pong_ws_ : ping_ws_);
    layers_[i]->backward_into(*cur, dst);
    cur = &dst;
  }
}

std::vector<Param*> Mlp::parameters() {
  std::vector<Param*> params;
  for (auto& layer : layers_) {
    const auto p = layer->parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

ResNetST::ResNetST(std::size_t in_features, std::size_t hidden,
                   std::size_t depth, std::size_t out_features, util::Rng& rng,
                   const std::string& name)
    : in_proj_(in_features, hidden, rng, Init::kHe, name + ".in"),
      in_act_(ActKind::kRelu),
      s_head_(hidden, out_features, rng, Init::kZero, name + ".s"),
      t_head_(hidden, out_features, rng, Init::kZero, name + ".t") {
  for (std::size_t i = 0; i < depth; ++i) {
    blocks_.push_back(std::make_unique<ResidualBlock>(
        hidden, rng, name + ".block" + std::to_string(i)));
  }
}

ResNetST::Output ResNetST::forward(const Matrix& input) {
  Output out;
  forward_into(input, out.s_raw, out.t);
  return out;
}

void ResNetST::forward_into(const Matrix& input, Matrix& s_raw, Matrix& t) {
  in_proj_.forward_into(input, trunk_ws_);
  in_act_.forward_into(trunk_ws_, trunk_ws_);
  for (auto& block : blocks_) {
    block->forward_into(trunk_ws_, trunk_ws2_);
    std::swap(trunk_ws_, trunk_ws2_);
  }
  s_head_.forward_into(trunk_ws_, s_raw);
  t_head_.forward_into(trunk_ws_, t);
}

ResNetST::Output ResNetST::forward_inference(const Matrix& input) {
  Matrix h = in_proj_.forward_inference(input);
  h = in_act_.forward_inference(h);
  for (auto& block : blocks_) h = block->forward_inference(h);
  return {s_head_.forward_inference(h), t_head_.forward_inference(h)};
}

Matrix ResNetST::backward(const Matrix& grad_s_raw, const Matrix& grad_t) {
  Matrix grad_input;
  backward_into(grad_s_raw, grad_t, grad_input);
  return grad_input;
}

void ResNetST::backward_into(const Matrix& grad_s_raw, const Matrix& grad_t,
                             Matrix& grad_input) {
  s_head_.backward_into(grad_s_raw, trunk_ws_);
  t_head_.backward_into(grad_t, trunk_ws2_);
  add_inplace(trunk_ws_, trunk_ws2_);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    (*it)->backward_into(trunk_ws_, trunk_ws2_);
    std::swap(trunk_ws_, trunk_ws2_);
  }
  in_act_.backward_into(trunk_ws_, trunk_ws_);
  in_proj_.backward_into(trunk_ws_, grad_input);
}

std::vector<Param*> ResNetST::parameters() {
  std::vector<Param*> params = in_proj_.parameters();
  for (auto& block : blocks_) {
    const auto p = block->parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  for (Param* p : s_head_.parameters()) params.push_back(p);
  for (Param* p : t_head_.parameters()) params.push_back(p);
  return params;
}

}  // namespace passflow::nn
