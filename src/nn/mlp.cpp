#include "nn/mlp.hpp"

#include "nn/ops.hpp"

namespace passflow::nn {

Mlp::Mlp(std::size_t in_features, const std::vector<std::size_t>& hidden_sizes,
         std::size_t out_features, util::Rng& rng, ActKind hidden_act,
         bool has_final_act, ActKind final_act, const std::string& name) {
  std::size_t prev = in_features;
  for (std::size_t i = 0; i < hidden_sizes.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(
        prev, hidden_sizes[i], rng, Init::kHe,
        name + ".fc" + std::to_string(i)));
    layers_.push_back(std::make_unique<Activation>(hidden_act));
    prev = hidden_sizes[i];
  }
  layers_.push_back(std::make_unique<Linear>(prev, out_features, rng,
                                             Init::kXavier, name + ".out"));
  if (has_final_act) {
    layers_.push_back(std::make_unique<Activation>(final_act));
  }
}

Matrix Mlp::forward(const Matrix& input) {
  Matrix h = input;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Matrix Mlp::forward_inference(const Matrix& input) {
  Matrix h = input;
  for (auto& layer : layers_) h = layer->forward_inference(h);
  return h;
}

Matrix Mlp::backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Mlp::parameters() {
  std::vector<Param*> params;
  for (auto& layer : layers_) {
    const auto p = layer->parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

ResNetST::ResNetST(std::size_t in_features, std::size_t hidden,
                   std::size_t depth, std::size_t out_features, util::Rng& rng,
                   const std::string& name)
    : in_proj_(in_features, hidden, rng, Init::kHe, name + ".in"),
      in_act_(ActKind::kRelu),
      s_head_(hidden, out_features, rng, Init::kZero, name + ".s"),
      t_head_(hidden, out_features, rng, Init::kZero, name + ".t") {
  for (std::size_t i = 0; i < depth; ++i) {
    blocks_.push_back(std::make_unique<ResidualBlock>(
        hidden, rng, name + ".block" + std::to_string(i)));
  }
}

Matrix ResNetST::trunk_forward(const Matrix& input, bool inference) {
  Matrix h = inference ? in_proj_.forward_inference(input)
                       : in_proj_.forward(input);
  h = inference ? in_act_.forward_inference(h) : in_act_.forward(h);
  for (auto& block : blocks_) {
    h = inference ? block->forward_inference(h) : block->forward(h);
  }
  return h;
}

ResNetST::Output ResNetST::forward(const Matrix& input) {
  const Matrix h = trunk_forward(input, /*inference=*/false);
  return {s_head_.forward(h), t_head_.forward(h)};
}

ResNetST::Output ResNetST::forward_inference(const Matrix& input) {
  const Matrix h = trunk_forward(input, /*inference=*/true);
  return {s_head_.forward_inference(h), t_head_.forward_inference(h)};
}

Matrix ResNetST::backward(const Matrix& grad_s_raw, const Matrix& grad_t) {
  Matrix grad_h = s_head_.backward(grad_s_raw);
  add_inplace(grad_h, t_head_.backward(grad_t));
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    grad_h = (*it)->backward(grad_h);
  }
  return in_proj_.backward(in_act_.backward(grad_h));
}

std::vector<Param*> ResNetST::parameters() {
  std::vector<Param*> params = in_proj_.parameters();
  for (auto& block : blocks_) {
    const auto p = block->parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  for (Param* p : s_head_.parameters()) params.push_back(p);
  for (Param* p : t_head_.parameters()) params.push_back(p);
  return params;
}

}  // namespace passflow::nn
