#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace passflow::nn {

Matrix Matrix::from_rows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw std::invalid_argument("from_rows: ragged input");
    }
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::slice_rows(std::size_t begin, std::size_t end) const {
  if (begin > end || end > rows_) {
    throw std::out_of_range("slice_rows: bad range");
  }
  Matrix out(end - begin, cols_);
  std::copy(row(begin), row(begin) + (end - begin) * cols_, out.data());
  return out;
}

void Matrix::set_rows(std::size_t row_offset, const Matrix& src) {
  if (src.cols_ != cols_ || row_offset + src.rows_ > rows_) {
    throw std::out_of_range("set_rows: shape mismatch");
  }
  std::copy(src.data(), src.data() + src.size(), row(row_offset));
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

std::string Matrix::shape_string() const {
  return "[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

}  // namespace passflow::nn
