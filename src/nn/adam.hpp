// Adam optimizer (Kingma & Ba 2015) with optional weight decay and global
// gradient-norm clipping — the optimizer PassFlow trains with (§IV-D:
// lr=0.001, batch 512).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace passflow::nn {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;   // decoupled (AdamW-style)
  double clip_norm = 0.0;      // 0 disables clipping
};

class Adam {
 public:
  Adam(std::vector<Param*> params, AdamConfig config = {});

  // Applies one update from the gradients currently accumulated in the
  // params, then the caller should zero_grad().
  void step();

  void set_learning_rate(double lr) { config_.learning_rate = lr; }
  double learning_rate() const { return config_.learning_rate; }
  long long step_count() const { return t_; }

 private:
  std::vector<Param*> params_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  AdamConfig config_;
  long long t_ = 0;
};

}  // namespace passflow::nn
