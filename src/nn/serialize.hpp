// Binary checkpoint format for model parameters.
//
// Layout: magic "PFCKPT1\n", u64 param count, then per param:
// u32 name length, name bytes, u64 rows, u64 cols, rows*cols f32 (LE).
// Loading validates names and shapes against the live model so that a
// checkpoint trained with different hyper-parameters fails loudly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace passflow::nn {

void save_params(std::ostream& out, const std::vector<Param*>& params);
void load_params(std::istream& in, const std::vector<Param*>& params);

void save_params_file(const std::string& path,
                      const std::vector<Param*>& params);
void load_params_file(const std::string& path,
                      const std::vector<Param*>& params);

}  // namespace passflow::nn
