#include "nn/residual.hpp"

#include <cstddef>
#include <string>
#include <vector>

#include "nn/ops.hpp"

namespace passflow::nn {

ResidualBlock::ResidualBlock(std::size_t features, util::Rng& rng,
                             const std::string& name)
    : fc1_(features, features, rng, Init::kHe, name + ".fc1"),
      act_(ActKind::kRelu),
      fc2_(features, features, rng, Init::kHe, name + ".fc2") {}

Matrix ResidualBlock::forward(const Matrix& input) {
  Matrix out;
  forward_into(input, out);
  return out;
}

void ResidualBlock::forward_into(const Matrix& input, Matrix& out) {
  fc1_.forward_into(input, hidden_ws_);
  act_.forward_into(hidden_ws_, hidden_ws_);  // elementwise: in-place is fine
  fc2_.forward_into(hidden_ws_, out);
  add_inplace(out, input);  // skip connection
}

Matrix ResidualBlock::forward_inference(const Matrix& input) {
  Matrix h = fc2_.forward_inference(
      act_.forward_inference(fc1_.forward_inference(input)));
  add_inplace(h, input);
  return h;
}

Matrix ResidualBlock::backward(const Matrix& grad_output) {
  Matrix dx;
  backward_into(grad_output, dx);
  return dx;
}

void ResidualBlock::backward_into(const Matrix& grad_output,
                                  Matrix& grad_input) {
  fc2_.backward_into(grad_output, hidden_ws_);
  act_.backward_into(hidden_ws_, hidden_ws_);
  fc1_.backward_into(hidden_ws_, grad_input);
  add_inplace(grad_input, grad_output);  // gradient through the skip
}

std::vector<Param*> ResidualBlock::parameters() {
  std::vector<Param*> params = fc1_.parameters();
  const auto p2 = fc2_.parameters();
  params.insert(params.end(), p2.begin(), p2.end());
  return params;
}

}  // namespace passflow::nn
