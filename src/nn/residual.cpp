#include "nn/residual.hpp"

#include "nn/ops.hpp"

namespace passflow::nn {

ResidualBlock::ResidualBlock(std::size_t features, util::Rng& rng,
                             const std::string& name)
    : fc1_(features, features, rng, Init::kHe, name + ".fc1"),
      act_(ActKind::kRelu),
      fc2_(features, features, rng, Init::kHe, name + ".fc2") {}

Matrix ResidualBlock::forward(const Matrix& input) {
  Matrix h = fc2_.forward(act_.forward(fc1_.forward(input)));
  add_inplace(h, input);  // skip connection
  return h;
}

Matrix ResidualBlock::forward_inference(const Matrix& input) {
  Matrix h = fc2_.forward_inference(
      act_.forward_inference(fc1_.forward_inference(input)));
  add_inplace(h, input);
  return h;
}

Matrix ResidualBlock::backward(const Matrix& grad_output) {
  Matrix dx = fc1_.backward(act_.backward(fc2_.backward(grad_output)));
  add_inplace(dx, grad_output);  // gradient through the skip connection
  return dx;
}

std::vector<Param*> ResidualBlock::parameters() {
  std::vector<Param*> params = fc1_.parameters();
  const auto p2 = fc2_.parameters();
  params.insert(params.end(), p2.begin(), p2.end());
  return params;
}

}  // namespace passflow::nn
