// Central-difference gradient checking used by the test suite to validate
// every manually derived backward pass (layers, couplings, full-flow NLL).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "nn/module.hpp"

namespace passflow::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::size_t checked = 0;
};

// `loss` must evaluate the scalar loss from scratch (forward only) using the
// current parameter values. `analytic_grad` must already be populated in
// param.grad. Checks up to `max_entries` entries per parameter (stride
// sampled) against central differences with step `eps`.
GradCheckResult check_param_gradients(
    const std::function<double()>& loss, const std::vector<Param*>& params,
    double eps = 1e-3, std::size_t max_entries = 64);

// Same idea for input gradients: perturbs entries of `input` and compares
// against `analytic`, re-evaluating `loss()` each time.
GradCheckResult check_input_gradients(const std::function<double()>& loss,
                                      Matrix& input, const Matrix& analytic,
                                      double eps = 1e-3,
                                      std::size_t max_entries = 64);

}  // namespace passflow::nn
