// Sequential MLP container plus the two-headed ResNet used by couplings.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/activation.hpp"
#include "nn/linear.hpp"
#include "nn/residual.hpp"

namespace passflow::nn {

// Plain feed-forward stack: Linear -> act -> ... -> Linear. Used by the
// CWAE encoder/decoder and the GAN generator/discriminator.
class Mlp : public Module {
 public:
  // hidden_sizes may be empty (single Linear). `final_act` of kTanh/kSigmoid
  // appends an output activation; pass std::nullopt-like kNone via
  // `has_final_act=false`.
  Mlp(std::size_t in_features, const std::vector<std::size_t>& hidden_sizes,
      std::size_t out_features, util::Rng& rng,
      ActKind hidden_act = ActKind::kRelu, bool has_final_act = false,
      ActKind final_act = ActKind::kTanh, const std::string& name = "mlp");

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  Matrix forward_inference(const Matrix& input) override;
  // Allocation-free training variants: activations ping-pong between two
  // member buffers. out/grad_input must not alias the input.
  void forward_into(const Matrix& input, Matrix& out) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_input) override;
  std::vector<Param*> parameters() override;

 private:
  std::vector<std::unique_ptr<Module>> layers_;
  Matrix ping_ws_;  // training-only inter-layer scratch
  Matrix pong_ws_;
};

// Shared-trunk network producing the coupling layer's scale and translation:
//
//   trunk: Linear(in -> hidden) -> ReLU -> ResBlock^depth
//   s head: Linear(hidden -> out), zero-init
//   t head: Linear(hidden -> out), zero-init
//
// Zero-initialized heads make every coupling start as the identity map, the
// standard RealNVP/Glow trick that stabilizes deep flows at the start of
// training.
class ResNetST {
 public:
  ResNetST(std::size_t in_features, std::size_t hidden, std::size_t depth,
           std::size_t out_features, util::Rng& rng,
           const std::string& name = "st");

  struct Output {
    Matrix s_raw;  // pre-tanh scale logits
    Matrix t;      // translation
  };

  Output forward(const Matrix& input);
  // Training forward writing into caller buffers; allocation-free once warm
  // (trunk activations live in member workspaces). Outputs must not alias
  // the input or each other.
  void forward_into(const Matrix& input, Matrix& s_raw, Matrix& t);
  // Inference keeps per-call locals so concurrent calls on one net (via
  // AffineCoupling's const inference paths) stay safe.
  Output forward_inference(const Matrix& input);

  // Backward for the two heads; returns dL/d(input).
  Matrix backward(const Matrix& grad_s_raw, const Matrix& grad_t);
  void backward_into(const Matrix& grad_s_raw, const Matrix& grad_t,
                     Matrix& grad_input);

  std::vector<Param*> parameters();

 private:
  Linear in_proj_;
  Activation in_act_;
  std::vector<std::unique_ptr<ResidualBlock>> blocks_;
  Linear s_head_;
  Linear t_head_;
  Matrix trunk_ws_;  // training-only trunk activation ping-pong
  Matrix trunk_ws2_;
};

}  // namespace passflow::nn
