#include "nn/ops.hpp"

#include <cassert>
#include <cstddef>

#include "nn/gemm.hpp"

namespace passflow::nn {

// The three matmul flavors dispatch through the pluggable backend layer
// (nn/gemm.hpp). The out-parameter overloads reuse `out`'s storage via
// Matrix::resize, so steady-state training performs no GEMM allocations.

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  gemm::gemm_nn(gemm::active_backend(), a, b, out);
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix out;
  matmul(a, b, out);
  return out;
}

void matmul_tn(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  gemm::gemm_tn(gemm::active_backend(), a, b, out);
}

void matmul_nt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  gemm::gemm_nt(gemm::active_backend(), a, b, out);
}

// Elementwise kernels run between every GEMM of every layer; `#pragma omp
// simd` keeps them vectorized even at -O2 and with the strict-aliasing
// noise of the Matrix accessors hoisted out.

void add_inplace(Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  float* ad = a.data();
  const float* bd = b.data();
  const std::size_t size = a.size();
#pragma omp simd
  for (std::size_t i = 0; i < size; ++i) ad[i] += bd[i];
}

void sub_inplace(Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  float* ad = a.data();
  const float* bd = b.data();
  const std::size_t size = a.size();
#pragma omp simd
  for (std::size_t i = 0; i < size; ++i) ad[i] -= bd[i];
}

void hadamard_inplace(Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  float* ad = a.data();
  const float* bd = b.data();
  const std::size_t size = a.size();
#pragma omp simd
  for (std::size_t i = 0; i < size; ++i) ad[i] *= bd[i];
}

void scale_inplace(Matrix& a, float s) {
  float* ad = a.data();
  const std::size_t size = a.size();
#pragma omp simd
  for (std::size_t i = 0; i < size; ++i) ad[i] *= s;
}

void axpy_inplace(Matrix& a, float s, const Matrix& b) {
  assert(a.same_shape(b));
  float* ad = a.data();
  const float* bd = b.data();
  const std::size_t size = a.size();
#pragma omp simd
  for (std::size_t i = 0; i < size; ++i) ad[i] += s * bd[i];
}

void add_row_vector(Matrix& a, const Matrix& row) {
  assert(row.rows() == 1 && row.cols() == a.cols());
  const float* rd = row.data();
  const std::size_t cols = a.cols();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    float* ar = a.row(r);
#pragma omp simd
    for (std::size_t c = 0; c < cols; ++c) ar[c] += rd[c];
  }
}

void column_sum(const Matrix& a, Matrix& out) {
  out.resize(1, a.cols());
  out.zero();
  float* od = out.data();
  const std::size_t cols = a.cols();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float* ar = a.row(r);
#pragma omp simd
    for (std::size_t c = 0; c < cols; ++c) od[c] += ar[c];
  }
}

double sum(const Matrix& a) {
  double acc = 0.0;
  const float* ad = a.data();
  const std::size_t size = a.size();
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < size; ++i) acc += ad[i];
  return acc;
}

double squared_sum(const Matrix& a) {
  double acc = 0.0;
  const float* ad = a.data();
  const std::size_t size = a.size();
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < size; ++i) {
    acc += static_cast<double>(ad[i]) * ad[i];
  }
  return acc;
}

}  // namespace passflow::nn
