#include "nn/ops.hpp"

#include <cassert>
#include <cstddef>

namespace passflow::nn {

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  out = Matrix(m, n);
  const float* bd = b.data();
#pragma omp parallel for schedule(static) if (m * n * k > 16384)
  for (std::size_t r = 0; r < m; ++r) {
    const float* ar = a.row(r);
    float* outr = out.row(r);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = ar[kk];
      const float* br = bd + kk * n;
      for (std::size_t c = 0; c < n; ++c) outr[c] += av * br[c];
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix out;
  matmul(a, b, out);
  return out;
}

void matmul_tn(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  out = Matrix(m, n);
  // out(r,c) = sum_kk a(kk,r) * b(kk,c). Parallelize over output rows;
  // each thread walks both inputs row-wise so access stays sequential.
#pragma omp parallel for schedule(static) if (m * n * k > 16384)
  for (std::size_t r = 0; r < m; ++r) {
    float* outr = out.row(r);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = a(kk, r);
      const float* br = b.row(kk);
      for (std::size_t c = 0; c < n; ++c) outr[c] += av * br[c];
    }
  }
}

void matmul_nt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  out = Matrix(m, n);
#pragma omp parallel for schedule(static) if (m * n * k > 16384)
  for (std::size_t r = 0; r < m; ++r) {
    const float* ar = a.row(r);
    float* outr = out.row(r);
    for (std::size_t c = 0; c < n; ++c) {
      const float* br = b.row(c);
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += ar[kk] * br[kk];
      outr[c] = acc;
    }
  }
}

void add_inplace(Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  float* ad = a.data();
  const float* bd = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) ad[i] += bd[i];
}

void sub_inplace(Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  float* ad = a.data();
  const float* bd = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) ad[i] -= bd[i];
}

void hadamard_inplace(Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  float* ad = a.data();
  const float* bd = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) ad[i] *= bd[i];
}

void scale_inplace(Matrix& a, float s) {
  float* ad = a.data();
  for (std::size_t i = 0; i < a.size(); ++i) ad[i] *= s;
}

void axpy_inplace(Matrix& a, float s, const Matrix& b) {
  assert(a.same_shape(b));
  float* ad = a.data();
  const float* bd = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) ad[i] += s * bd[i];
}

void add_row_vector(Matrix& a, const Matrix& row) {
  assert(row.rows() == 1 && row.cols() == a.cols());
  const float* rd = row.data();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    float* ar = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) ar[c] += rd[c];
  }
}

void column_sum(const Matrix& a, Matrix& out) {
  out = Matrix(1, a.cols());
  float* od = out.data();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float* ar = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) od[c] += ar[c];
  }
}

double sum(const Matrix& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a.data()[i];
  return acc;
}

double squared_sum(const Matrix& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * a.data()[i];
  }
  return acc;
}

}  // namespace passflow::nn
