// Dense row-major float matrix — the only tensor type in this repo.
//
// PassFlow's data space is tiny (password length <= 16), so a 2-D
// (batch x features) matrix covers every computation in the flow, the CWAE
// and the GAN. Keeping a single concrete type rather than a general tensor
// keeps the manual backprop code auditable.
#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace passflow::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(
      const std::vector<std::vector<float>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(float value);
  void zero() { fill(0.0f); }

  // Reshapes to rows x cols, reusing the existing allocation whenever the
  // capacity allows (shrinking or same-size reshapes never reallocate, and
  // repeated grow-to-the-same-shape cycles allocate once). Contents are
  // preserved only when the shape is unchanged; after a shape-changing
  // resize the element values are unspecified — callers that need zeros
  // must call zero(). This is the reuse primitive behind the out-parameter
  // kernels in ops.hpp and the layer workspaces.
  void resize(std::size_t rows, std::size_t cols) {
    if (rows == rows_ && cols == cols_) return;
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  // Returns a matrix containing rows [begin, end).
  Matrix slice_rows(std::size_t begin, std::size_t end) const;
  // Copies `src` into rows starting at `row_offset`.
  void set_rows(std::size_t row_offset, const Matrix& src);

  Matrix transposed() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Frobenius norm; used by gradient clipping and tests.
  double frobenius_norm() const;

  std::string shape_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace passflow::nn
