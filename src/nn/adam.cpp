#include "nn/adam.hpp"

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "nn/ops.hpp"

namespace passflow::nn {

Adam::Adam(std::vector<Param*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;

  double clip_scale = 1.0;
  if (config_.clip_norm > 0.0) {
    double total_sq = 0.0;
    for (const Param* p : params_) total_sq += squared_sum(p->grad);
    const double norm = std::sqrt(total_sq);
    if (norm > config_.clip_norm) clip_scale = config_.clip_norm / norm;
  }

  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));

  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    float* value = p.value.data();
    const float* grad = p.grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      const double g = static_cast<double>(grad[j]) * clip_scale;
      m[j] = static_cast<float>(config_.beta1 * m[j] + (1.0 - config_.beta1) * g);
      v[j] = static_cast<float>(config_.beta2 * v[j] +
                                (1.0 - config_.beta2) * g * g);
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      double update = config_.learning_rate * m_hat /
                      (std::sqrt(v_hat) + config_.epsilon);
      if (config_.weight_decay > 0.0) {
        update += config_.learning_rate * config_.weight_decay * value[j];
      }
      value[j] = static_cast<float>(value[j] - update);
    }
  }
}

}  // namespace passflow::nn
