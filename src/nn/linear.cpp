#include "nn/linear.hpp"

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "nn/ops.hpp"

namespace passflow::nn {

namespace {
Matrix init_weight(std::size_t in, std::size_t out, util::Rng& rng,
                   Init init) {
  Matrix w(in, out);
  double stddev = 0.0;
  switch (init) {
    case Init::kHe:
      stddev = std::sqrt(2.0 / static_cast<double>(in));
      break;
    case Init::kXavier:
      stddev = std::sqrt(2.0 / static_cast<double>(in + out));
      break;
    case Init::kZero:
      return w;
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    w.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return w;
}
}  // namespace

Linear::Linear(std::size_t in_features, std::size_t out_features,
               util::Rng& rng, Init init, const std::string& name)
    : weight_(name + ".weight", init_weight(in_features, out_features, rng, init)),
      bias_(name + ".bias", Matrix(1, out_features)) {}

void Linear::apply_into(const Matrix& input, Matrix& out) const {
  matmul(input, weight_.value, out);
  add_row_vector(out, bias_.value);
}

Matrix Linear::forward(const Matrix& input) {
  Matrix out;
  forward_into(input, out);
  return out;
}

void Linear::forward_into(const Matrix& input, Matrix& out) {
  cached_input_ = input;  // capacity-reusing copy once shapes are stable
  apply_into(input, out);
}

Matrix Linear::forward_inference(const Matrix& input) {
  Matrix out;
  apply_into(input, out);
  return out;
}

void Linear::forward_inference_into(const Matrix& input, Matrix& out) {
  apply_into(input, out);
}

Matrix Linear::backward(const Matrix& grad_output) {
  Matrix dx;
  backward_into(grad_output, dx);
  return dx;
}

void Linear::backward_into(const Matrix& grad_output, Matrix& grad_input) {
  // dW += x^T g ; db += column_sum(g) ; dx = g W^T
  matmul_tn(cached_input_, grad_output, dw_ws_);
  add_inplace(weight_.grad, dw_ws_);

  column_sum(grad_output, db_ws_);
  add_inplace(bias_.grad, db_ws_);

  matmul_nt(grad_output, weight_.value, grad_input);
}

std::vector<Param*> Linear::parameters() { return {&weight_, &bias_}; }

}  // namespace passflow::nn
