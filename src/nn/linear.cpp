#include "nn/linear.hpp"

#include <cmath>

#include "nn/ops.hpp"

namespace passflow::nn {

namespace {
Matrix init_weight(std::size_t in, std::size_t out, util::Rng& rng,
                   Init init) {
  Matrix w(in, out);
  double stddev = 0.0;
  switch (init) {
    case Init::kHe:
      stddev = std::sqrt(2.0 / static_cast<double>(in));
      break;
    case Init::kXavier:
      stddev = std::sqrt(2.0 / static_cast<double>(in + out));
      break;
    case Init::kZero:
      return w;
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    w.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return w;
}
}  // namespace

Linear::Linear(std::size_t in_features, std::size_t out_features,
               util::Rng& rng, Init init, const std::string& name)
    : weight_(name + ".weight", init_weight(in_features, out_features, rng, init)),
      bias_(name + ".bias", Matrix(1, out_features)) {}

Matrix Linear::apply(const Matrix& input) const {
  Matrix out = matmul(input, weight_.value);
  add_row_vector(out, bias_.value);
  return out;
}

Matrix Linear::forward(const Matrix& input) {
  cached_input_ = input;
  return apply(input);
}

Matrix Linear::forward_inference(const Matrix& input) { return apply(input); }

Matrix Linear::backward(const Matrix& grad_output) {
  // dW += x^T g ; db += column_sum(g) ; dx = g W^T
  Matrix dw;
  matmul_tn(cached_input_, grad_output, dw);
  add_inplace(weight_.grad, dw);

  Matrix db;
  column_sum(grad_output, db);
  add_inplace(bias_.grad, db);

  Matrix dx;
  matmul_nt(grad_output, weight_.value, dx);
  return dx;
}

std::vector<Param*> Linear::parameters() { return {&weight_, &bias_}; }

}  // namespace passflow::nn
