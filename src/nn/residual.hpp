// Residual block: y = x + W2 * relu(W1 * x + b1) + b2.
//
// This is the building block of the s/t networks in PassFlow's coupling
// layers (§IV-D: "2 residual blocks with a hidden size of 256").
#pragma once

#include <memory>

#include "nn/activation.hpp"
#include "nn/linear.hpp"

namespace passflow::nn {

class ResidualBlock : public Module {
 public:
  ResidualBlock(std::size_t features, util::Rng& rng,
                const std::string& name = "resblock");

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  Matrix forward_inference(const Matrix& input) override;
  std::vector<Param*> parameters() override;

 private:
  Linear fc1_;
  Activation act_;
  Linear fc2_;
};

}  // namespace passflow::nn
