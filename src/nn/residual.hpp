// Residual block: y = x + W2 * relu(W1 * x + b1) + b2.
//
// This is the building block of the s/t networks in PassFlow's coupling
// layers (§IV-D: "2 residual blocks with a hidden size of 256").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/activation.hpp"
#include "nn/linear.hpp"

namespace passflow::nn {

class ResidualBlock : public Module {
 public:
  ResidualBlock(std::size_t features, util::Rng& rng,
                const std::string& name = "resblock");

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  Matrix forward_inference(const Matrix& input) override;
  // Allocation-free training variants (member workspaces); out/grad_input
  // must not alias the input. Inference stays workspace-free so concurrent
  // forward_inference calls on one block remain safe.
  void forward_into(const Matrix& input, Matrix& out) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_input) override;
  std::vector<Param*> parameters() override;

 private:
  Linear fc1_;
  Activation act_;
  Linear fc2_;
  Matrix hidden_ws_;  // training-only scratch for the fc1/act output
};

}  // namespace passflow::nn
