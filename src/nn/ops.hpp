// Matrix kernels used by the layers: GEMM variants and elementwise helpers.
//
// The GEMMs dispatch through the pluggable backend layer in nn/gemm.hpp
// (naive reference loop, cache-blocked/register-tiled kernel, or vendor
// BLAS — selected at configure time via -DPASSFLOW_GEMM_BACKEND and
// overridable at runtime). The out-parameter overloads reuse `out`'s
// storage when its capacity allows, so steady-state training does not
// touch the allocator; `out` must not alias an input. Elementwise helpers
// are `#pragma omp simd`-vectorized.
#pragma once

#include "nn/matrix.hpp"

namespace passflow::nn {

// out = a * b. Shapes: (m x k) * (k x n) -> (m x n).
void matmul(const Matrix& a, const Matrix& b, Matrix& out);
Matrix matmul(const Matrix& a, const Matrix& b);

// out = a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n).
void matmul_tn(const Matrix& a, const Matrix& b, Matrix& out);

// out = a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n).
void matmul_nt(const Matrix& a, const Matrix& b, Matrix& out);

// Elementwise (all require matching shapes; checked with assert).
void add_inplace(Matrix& a, const Matrix& b);           // a += b
void sub_inplace(Matrix& a, const Matrix& b);           // a -= b
void hadamard_inplace(Matrix& a, const Matrix& b);      // a *= b
void scale_inplace(Matrix& a, float s);                 // a *= s
void axpy_inplace(Matrix& a, float s, const Matrix& b); // a += s * b

// Broadcast ops over rows: b is (1 x cols).
void add_row_vector(Matrix& a, const Matrix& row);
// out(0,c) = sum_r a(r,c).
void column_sum(const Matrix& a, Matrix& out);

// Reductions.
double sum(const Matrix& a);
double squared_sum(const Matrix& a);

}  // namespace passflow::nn
