#include "nn/serialize.hpp"

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace passflow::nn {

namespace {
constexpr char kMagic[] = "PFCKPT1\n";
constexpr std::size_t kMagicLen = 8;

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("checkpoint truncated");
  return v;
}

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("checkpoint truncated");
  return v;
}
}  // namespace

void save_params(std::ostream& out, const std::vector<Param*>& params) {
  out.write(kMagic, kMagicLen);
  write_u64(out, params.size());
  for (const Param* p : params) {
    write_u32(out, static_cast<std::uint32_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u64(out, p->value.rows());
    write_u64(out, p->value.cols());
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("checkpoint write failed");
}

void load_params(std::istream& in, const std::vector<Param*>& params) {
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  if (!in || std::string(magic, kMagicLen) != std::string(kMagic, kMagicLen)) {
    throw std::runtime_error("bad checkpoint magic");
  }
  const std::uint64_t count = read_u64(in);
  if (count != params.size()) {
    throw std::runtime_error("checkpoint has " + std::to_string(count) +
                             " params, model has " +
                             std::to_string(params.size()));
  }
  for (Param* p : params) {
    const std::uint32_t name_len = read_u32(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in || name != p->name) {
      throw std::runtime_error("checkpoint param name mismatch: expected '" +
                               p->name + "', got '" + name + "'");
    }
    const std::uint64_t rows = read_u64(in);
    const std::uint64_t cols = read_u64(in);
    if (rows != p->value.rows() || cols != p->value.cols()) {
      throw std::runtime_error("checkpoint shape mismatch for " + p->name);
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!in) throw std::runtime_error("checkpoint truncated in " + p->name);
  }
}

void save_params_file(const std::string& path,
                      const std::vector<Param*>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_params(out, params);
}

void load_params_file(const std::string& path,
                      const std::vector<Param*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  load_params(in, params);
}

}  // namespace passflow::nn
