// Pluggable GEMM backend layer.
//
// Every matmul in the repo dispatches through here. Three backends:
//
//   kNaive   — the original triple loop (OpenMP over rows, k-inner saxpy).
//              Kept as the correctness reference and for odd platforms.
//   kBlocked — cache-blocked, register-tiled kernel in the GotoBLAS style:
//              A and B are packed into contiguous MR/NR micro-panels, a
//              4 x 16 micro-kernel accumulates in registers
//              (#pragma omp simd inner loops, compiled per-ISA via
//              target_clones so a baseline build still runs AVX2/AVX-512
//              code on hardware that has it). Default backend.
//   kBlas    — vendor sgemm via find_package(BLAS); only compiled when
//              CMake found a BLAS (PASSFLOW_HAS_BLAS).
//
// The configure-time default comes from -DPASSFLOW_GEMM_BACKEND=...; the
// PASSFLOW_GEMM_BACKEND environment variable overrides it at startup and
// set_backend() overrides it at runtime (used by tests and benches).
//
// All entry points have beta = 0 semantics: `out` is fully overwritten and
// its storage is reused via Matrix::resize. `out` must not alias a or b.
#pragma once

#include <string>

#include "nn/matrix.hpp"

namespace passflow::nn::gemm {

enum class Backend { kNaive = 0, kBlocked = 1, kBlas = 2 };

// Currently selected backend (compile default -> env override -> set_backend).
Backend active_backend();
// Runtime override; silently falls back to kBlocked if `be` is unavailable.
void set_backend(Backend be);
// True when the backend was compiled in (kBlas requires PASSFLOW_HAS_BLAS).
bool available(Backend be);
const char* backend_name(Backend be);
// Parses "naive" / "blocked" / "blas"; anything else returns kBlocked.
Backend parse_backend(const std::string& name);

// out = a * b. Shapes: (m x k) * (k x n) -> (m x n).
void gemm_nn(Backend be, const Matrix& a, const Matrix& b, Matrix& out);
// out = a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n).
void gemm_tn(Backend be, const Matrix& a, const Matrix& b, Matrix& out);
// out = a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n).
void gemm_nt(Backend be, const Matrix& a, const Matrix& b, Matrix& out);

}  // namespace passflow::nn::gemm
