#include "nn/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace passflow::nn::gemm {

namespace {

// ---------------------------------------------------------------- blocked
//
// GotoBLAS-style blocking. The micro-kernel computes an MR x NR tile of C
// held entirely in registers while streaming one packed column of A
// (MR floats) and one packed row of B (NR floats) per k step. NR = 16 is
// two AVX-512 lanes / four SSE lanes; MR x NR = 4 x 16 accumulators fit
// the 16 ymm registers of AVX2 exactly. Panels are zero-padded to MR/NR
// multiples so the micro-kernel never branches on tails; the write-back
// clips to the valid region instead.
constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 16;
// L2-sized A block, L1-sized B panel strips, L3-sized B block.
constexpr std::size_t kMC = 128;
constexpr std::size_t kKC = 384;
constexpr std::size_t kNC = 4096;

constexpr std::size_t round_up(std::size_t v, std::size_t q) {
  return (v + q - 1) / q * q;
}

// Pack buffers are thread_local so repeated GEMM calls (every layer of
// every training step) reuse one allocation per thread, and so the OpenMP
// workers inside the ic loop each pack into private storage.
std::vector<float>& tls_apack() {
  static thread_local std::vector<float> buf;
  return buf;
}
std::vector<float>& tls_bpack() {
  static thread_local std::vector<float> buf;
  return buf;
}

// Compile the hot kernel once per ISA level and pick at load time, so the
// portable baseline build still uses FMA/AVX on machines that have them.
// The ifunc resolver behind target_clones runs before sanitizer runtimes
// initialize and segfaults under TSan/ASan, so sanitized builds fall back
// to the single baseline kernel.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PASSFLOW_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PASSFLOW_SANITIZED 1
#endif

// The "arch=x86-64-v*" clone values need GCC >= 12 or Clang >= 17; older
// compilers reject them at parse time, so they get the baseline kernel.
#if defined(__x86_64__) && defined(__gnu_linux__) &&          \
    !defined(PASSFLOW_SANITIZED) &&                           \
    ((defined(__clang_major__) && __clang_major__ >= 17) ||   \
     (!defined(__clang__) && defined(__GNUC__) && __GNUC__ >= 12))
#define PASSFLOW_GEMM_CLONES \
  __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#else
#define PASSFLOW_GEMM_CLONES
#endif

// C[mc x nc] (stride ldc) = or += Apack * Bpack, panels packed as below.
PASSFLOW_GEMM_CLONES
void macro_kernel(std::size_t mc, std::size_t nc, std::size_t kc,
                  const float* apack, const float* bpack, float* c,
                  std::size_t ldc, bool accumulate) {
  for (std::size_t jr = 0; jr < nc; jr += kNR) {
    const float* bp = bpack + jr * kc;
    const std::size_t nr = std::min(kNR, nc - jr);
    for (std::size_t ir = 0; ir < mc; ir += kMR) {
      const float* ap = apack + ir * kc;
      const std::size_t mr = std::min(kMR, mc - ir);

      float acc[kMR * kNR] = {};
      for (std::size_t p = 0; p < kc; ++p) {
        const float* bv = bp + p * kNR;
        const float* av = ap + p * kMR;
        for (std::size_t i = 0; i < kMR; ++i) {
          const float a = av[i];
          float* arow = acc + i * kNR;
#pragma omp simd
          for (std::size_t j = 0; j < kNR; ++j) arow[j] += a * bv[j];
        }
      }

      for (std::size_t i = 0; i < mr; ++i) {
        float* crow = c + (ir + i) * ldc + jr;
        const float* arow = acc + i * kNR;
        if (accumulate) {
#pragma omp simd
          for (std::size_t j = 0; j < nr; ++j) crow[j] += arow[j];
        } else {
#pragma omp simd
          for (std::size_t j = 0; j < nr; ++j) crow[j] = arow[j];
        }
      }
    }
  }
}

// Generic blocked driver. a_at(r, p) / b_at(p, c) are element accessors for
// the logical (m x k) * (k x n) product, which lets the one driver serve
// matmul, matmul_tn and matmul_nt — the packing step absorbs the transpose.
// Summation over k runs in ascending order for every output element
// regardless of OpenMP thread count, so results are deterministic.
template <class AGet, class BGet>
void blocked_impl(std::size_t m, std::size_t n, std::size_t k, AGet a_at,
                  BGet b_at, Matrix& out) {
  out.resize(m, n);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    out.zero();
    return;
  }
  float* c = out.data();

  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nc = std::min(kNC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      const bool accumulate = pc > 0;

      // Pack B(pc:pc+kc, jc:jc+nc) into NR-wide panels, zero-padded.
      std::vector<float>& bpack = tls_bpack();
      bpack.resize(round_up(nc, kNR) * kc);
      for (std::size_t jp = 0; jp < nc; jp += kNR) {
        float* panel = bpack.data() + jp * kc;
        const std::size_t nr = std::min(kNR, nc - jp);
        for (std::size_t p = 0; p < kc; ++p) {
          float* d = panel + p * kNR;
          for (std::size_t j = 0; j < nr; ++j) {
            d[j] = b_at(pc + p, jc + jp + j);
          }
          for (std::size_t j = nr; j < kNR; ++j) d[j] = 0.0f;
        }
      }
      const float* bpack_data = bpack.data();

      const std::ptrdiff_t mblocks =
          static_cast<std::ptrdiff_t>((m + kMC - 1) / kMC);
#pragma omp parallel for schedule(static) \
    if (mblocks > 1 && m * n * k > (std::size_t{1} << 20))
      for (std::ptrdiff_t icb = 0; icb < mblocks; ++icb) {
        const std::size_t ic = static_cast<std::size_t>(icb) * kMC;
        const std::size_t mc = std::min(kMC, m - ic);

        // Pack A(ic:ic+mc, pc:pc+kc) into MR-tall panels, zero-padded.
        std::vector<float>& apack = tls_apack();
        apack.resize(round_up(mc, kMR) * kc);
        for (std::size_t ip = 0; ip < mc; ip += kMR) {
          float* panel = apack.data() + ip * kc;
          const std::size_t mr = std::min(kMR, mc - ip);
          for (std::size_t p = 0; p < kc; ++p) {
            float* d = panel + p * kMR;
            for (std::size_t i = 0; i < mr; ++i) {
              d[i] = a_at(ic + ip + i, pc + p);
            }
            for (std::size_t i = mr; i < kMR; ++i) d[i] = 0.0f;
          }
        }

        macro_kernel(mc, nc, kc, apack.data(), bpack_data,
                     c + ic * n + jc, n, accumulate);
      }
    }
  }
}

void gemm_nn_blocked(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const float* ad = a.data();
  const float* bd = b.data();
  blocked_impl(
      m, n, k, [ad, k](std::size_t r, std::size_t p) { return ad[r * k + p]; },
      [bd, n](std::size_t p, std::size_t c) { return bd[p * n + c]; }, out);
}

void gemm_tn_blocked(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  const float* ad = a.data();
  const float* bd = b.data();
  blocked_impl(
      m, n, k, [ad, m](std::size_t r, std::size_t p) { return ad[p * m + r]; },
      [bd, n](std::size_t p, std::size_t c) { return bd[p * n + c]; }, out);
}

void gemm_nt_blocked(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  const float* ad = a.data();
  const float* bd = b.data();
  blocked_impl(
      m, n, k, [ad, k](std::size_t r, std::size_t p) { return ad[r * k + p]; },
      [bd, k](std::size_t p, std::size_t c) { return bd[c * k + p]; }, out);
}

// ------------------------------------------------------------------ naive
// The original kernels, kept verbatim as the correctness reference.

void gemm_nn_naive(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  out.resize(m, n);
  out.zero();
  const float* bd = b.data();
#pragma omp parallel for schedule(static) if (m * n * k > 16384)
  for (std::size_t r = 0; r < m; ++r) {
    const float* ar = a.row(r);
    float* outr = out.row(r);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = ar[kk];
      const float* br = bd + kk * n;
      for (std::size_t c = 0; c < n; ++c) outr[c] += av * br[c];
    }
  }
}

void gemm_tn_naive(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  out.resize(m, n);
  out.zero();
  // out(r,c) = sum_kk a(kk,r) * b(kk,c). Parallelize over output rows;
  // each thread walks both inputs row-wise so access stays sequential.
#pragma omp parallel for schedule(static) if (m * n * k > 16384)
  for (std::size_t r = 0; r < m; ++r) {
    float* outr = out.row(r);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = a(kk, r);
      const float* br = b.row(kk);
      for (std::size_t c = 0; c < n; ++c) outr[c] += av * br[c];
    }
  }
}

void gemm_nt_naive(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  out.resize(m, n);
#pragma omp parallel for schedule(static) if (m * n * k > 16384)
  for (std::size_t r = 0; r < m; ++r) {
    const float* ar = a.row(r);
    float* outr = out.row(r);
    for (std::size_t c = 0; c < n; ++c) {
      const float* br = b.row(c);
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += ar[kk] * br[kk];
      outr[c] = acc;
    }
  }
}

// ------------------------------------------------------------------- blas
#ifdef PASSFLOW_HAS_BLAS
extern "C" void sgemm_(const char* transa, const char* transb, const int* m,
                       const int* n, const int* k, const float* alpha,
                       const float* a, const int* lda, const float* b,
                       const int* ldb, const float* beta, float* c,
                       const int* ldc);

// Row-major C = op(A) op(B) maps onto column-major C^T = op(B)^T op(A)^T:
// a row-major (r x c) buffer read column-major is its transpose, so we hand
// sgemm the B buffer as its first operand and swap m/n.
void sgemm_rowmajor(char transa_cm, char transb_cm, std::size_t m,
                    std::size_t n, std::size_t k, const float* b_cm, int ldb_cm,
                    const float* a_cm, int lda_cm, Matrix& out) {
  out.resize(m, n);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    out.zero();
    return;
  }
  const int mi = static_cast<int>(n), ni = static_cast<int>(m),
            ki = static_cast<int>(k), ldc = static_cast<int>(n);
  const float alpha = 1.0f, beta = 0.0f;
  sgemm_(&transa_cm, &transb_cm, &mi, &ni, &ki, &alpha, b_cm, &ldb_cm, a_cm,
         &lda_cm, &beta, out.data(), &ldc);
}

void gemm_nn_blas(const Matrix& a, const Matrix& b, Matrix& out) {
  // C^T = b^T a^T: both buffers already are the transposes when read
  // column-major, so no trans flags.
  sgemm_rowmajor('N', 'N', a.rows(), b.cols(), a.cols(), b.data(),
                 static_cast<int>(b.cols()), a.data(),
                 static_cast<int>(a.cols()), out);
}

void gemm_tn_blas(const Matrix& a, const Matrix& b, Matrix& out) {
  // out = a^T b with a (k x m): C^T = b^T a; a column-major view is a^T, so
  // request its transpose.
  sgemm_rowmajor('N', 'T', a.cols(), b.cols(), a.rows(), b.data(),
                 static_cast<int>(b.cols()), a.data(),
                 static_cast<int>(a.cols()), out);
}

void gemm_nt_blas(const Matrix& a, const Matrix& b, Matrix& out) {
  // out = a b^T with b (n x k): C^T = b a^T; b's column-major view is b^T,
  // so request its transpose to recover b.
  sgemm_rowmajor('T', 'N', a.rows(), b.rows(), a.cols(), b.data(),
                 static_cast<int>(b.cols()), a.data(),
                 static_cast<int>(a.cols()), out);
}
#endif  // PASSFLOW_HAS_BLAS

// ---------------------------------------------------------------- backend
#ifndef PASSFLOW_GEMM_DEFAULT
#define PASSFLOW_GEMM_DEFAULT 1  // kBlocked
#endif

Backend sanitize(Backend be) {
  return available(be) ? be : Backend::kBlocked;
}

Backend initial_backend() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): getenv only races with setenv;
  // nothing in the library mutates the environment, and this runs once from
  // the backend atomic's static initializer.
  if (const char* env = std::getenv("PASSFLOW_GEMM_BACKEND")) {
    const std::string name(env);
    if (name != "naive" && name != "blocked" && name != "blas") {
      std::fprintf(stderr,
                   "passflow: unknown PASSFLOW_GEMM_BACKEND '%s' "
                   "(expected naive|blocked|blas); using blocked\n",
                   env);
    }
    return sanitize(parse_backend(name));
  }
  return sanitize(static_cast<Backend>(PASSFLOW_GEMM_DEFAULT));
}

std::atomic<Backend>& backend_state() {
  static std::atomic<Backend> state{initial_backend()};
  return state;
}

}  // namespace

Backend active_backend() {
  return backend_state().load(std::memory_order_relaxed);
}

void set_backend(Backend be) {
  backend_state().store(sanitize(be), std::memory_order_relaxed);
}

bool available(Backend be) {
  switch (be) {
    case Backend::kNaive:
    case Backend::kBlocked:
      return true;
    case Backend::kBlas:
#ifdef PASSFLOW_HAS_BLAS
      return true;
#else
      return false;
#endif
  }
  return false;
}

const char* backend_name(Backend be) {
  switch (be) {
    case Backend::kNaive:
      return "naive";
    case Backend::kBlocked:
      return "blocked";
    case Backend::kBlas:
      return "blas";
  }
  return "unknown";
}

Backend parse_backend(const std::string& name) {
  if (name == "naive") return Backend::kNaive;
  if (name == "blas") return Backend::kBlas;
  return Backend::kBlocked;
}

void gemm_nn(Backend be, const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  switch (sanitize(be)) {
    case Backend::kNaive:
      gemm_nn_naive(a, b, out);
      return;
#ifdef PASSFLOW_HAS_BLAS
    case Backend::kBlas:
      gemm_nn_blas(a, b, out);
      return;
#endif
    default:
      gemm_nn_blocked(a, b, out);
      return;
  }
}

void gemm_tn(Backend be, const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  switch (sanitize(be)) {
    case Backend::kNaive:
      gemm_tn_naive(a, b, out);
      return;
#ifdef PASSFLOW_HAS_BLAS
    case Backend::kBlas:
      gemm_tn_blas(a, b, out);
      return;
#endif
    default:
      gemm_tn_blocked(a, b, out);
      return;
  }
}

void gemm_nt(Backend be, const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  switch (sanitize(be)) {
    case Backend::kNaive:
      gemm_nt_naive(a, b, out);
      return;
#ifdef PASSFLOW_HAS_BLAS
    case Backend::kBlas:
      gemm_nt_blas(a, b, out);
      return;
#endif
    default:
      gemm_nt_blocked(a, b, out);
      return;
  }
}

}  // namespace passflow::nn::gemm
