// Fully connected layer: y = x W + b, with He/Xavier initialization.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace passflow::nn {

enum class Init {
  kHe,      // N(0, sqrt(2/fan_in)) — for ReLU trunks
  kXavier,  // N(0, sqrt(2/(fan_in+fan_out))) — for tanh/linear heads
  kZero,    // all zeros — for output heads that should start as identity
};

class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features,
         util::Rng& rng, Init init = Init::kHe,
         const std::string& name = "linear");

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  Matrix forward_inference(const Matrix& input) override;
  // Allocation-free once warm; out must not alias input.
  void forward_into(const Matrix& input, Matrix& out) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_input) override;
  // Touches no member state, so concurrent calls on one layer are safe as
  // long as each caller owns its `out`.
  void forward_inference_into(const Matrix& input, Matrix& out) override;
  std::vector<Param*> parameters() override;

  std::size_t in_features() const { return weight_.value.rows(); }
  std::size_t out_features() const { return weight_.value.cols(); }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  void apply_into(const Matrix& input, Matrix& out) const;

  Param weight_;  // (in x out)
  Param bias_;    // (1 x out)
  Matrix cached_input_;
  // Training-only workspaces (dW, db); never touched on inference paths.
  Matrix dw_ws_;
  Matrix db_ws_;
};

}  // namespace passflow::nn
