// Module interface for the manual-backprop layer stack.
//
// Training works the classic way: forward() caches whatever backward() needs;
// backward() receives dL/d(output), accumulates dL/d(param) into each
// Param::grad and returns dL/d(input). The optimizer then walks parameters().
//
// Layers keep exactly one cached activation set, so a module instance must
// not be shared across concurrent forward/backward pairs. Inference-only
// paths (sampling) use the *_inference entry points, which skip caching.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "nn/matrix.hpp"

namespace passflow::nn {

// A learnable tensor with its accumulated gradient.
struct Param {
  std::string name;
  Matrix value;
  Matrix grad;

  Param() = default;
  Param(std::string n, Matrix v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}
};

class Module {
 public:
  virtual ~Module() = default;

  // Training-mode forward; caches activations for the next backward().
  virtual Matrix forward(const Matrix& input) = 0;

  // Propagates gradients; must be called after a matching forward().
  virtual Matrix backward(const Matrix& grad_output) = 0;

  // Inference forward without caching; default falls back to forward().
  virtual Matrix forward_inference(const Matrix& input) {
    return forward(input);
  }

  // Out-parameter variants. The result is written into the caller's matrix,
  // reusing its storage when the shape already matches (Matrix::resize), so
  // steady-state training loops stop allocating. `out`/`grad_input` must
  // not alias the input unless the layer is purely elementwise (Activation
  // documents aliasing support). Defaults fall back to the returning forms;
  // layers on the training hot path override with allocation-free bodies.
  virtual void forward_into(const Matrix& input, Matrix& out) {
    out = forward(input);
  }
  virtual void backward_into(const Matrix& grad_output, Matrix& grad_input) {
    grad_input = backward(grad_output);
  }
  virtual void forward_inference_into(const Matrix& input, Matrix& out) {
    out = forward_inference(input);
  }

  // Flat list of learnable parameters (owned by the module).
  virtual std::vector<Param*> parameters() = 0;

  void zero_grad() {
    for (Param* p : parameters()) p->grad.zero();
  }

  std::size_t parameter_count() {
    std::size_t n = 0;
    for (Param* p : parameters()) n += p->value.size();
    return n;
  }
};

}  // namespace passflow::nn
