#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

namespace passflow::nn {

namespace {
void accumulate(GradCheckResult& result, double analytic, double numeric) {
  const double abs_err = std::abs(analytic - numeric);
  const double denom = std::max({std::abs(analytic), std::abs(numeric), 1e-8});
  result.max_abs_error = std::max(result.max_abs_error, abs_err);
  result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
  ++result.checked;
}

double central_difference(const std::function<double()>& loss, float& entry,
                          double eps) {
  const float original = entry;
  entry = static_cast<float>(original + eps);
  const double plus = loss();
  entry = static_cast<float>(original - eps);
  const double minus = loss();
  entry = original;
  return (plus - minus) / (2.0 * eps);
}
}  // namespace

GradCheckResult check_param_gradients(const std::function<double()>& loss,
                                      const std::vector<Param*>& params,
                                      double eps, std::size_t max_entries) {
  GradCheckResult result;
  for (Param* p : params) {
    const std::size_t n = p->value.size();
    const std::size_t stride = std::max<std::size_t>(1, n / max_entries);
    for (std::size_t i = 0; i < n; i += stride) {
      const double numeric = central_difference(loss, p->value.data()[i], eps);
      accumulate(result, p->grad.data()[i], numeric);
    }
  }
  return result;
}

GradCheckResult check_input_gradients(const std::function<double()>& loss,
                                      Matrix& input, const Matrix& analytic,
                                      double eps, std::size_t max_entries) {
  GradCheckResult result;
  const std::size_t n = input.size();
  const std::size_t stride = std::max<std::size_t>(1, n / max_entries);
  for (std::size_t i = 0; i < n; i += stride) {
    const double numeric = central_difference(loss, input.data()[i], eps);
    accumulate(result, analytic.data()[i], numeric);
  }
  return result;
}

}  // namespace passflow::nn
