// Elementwise activations with cached-input backward passes.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace passflow::nn {

enum class ActKind { kRelu, kLeakyRelu, kTanh, kSigmoid };

class Activation : public Module {
 public:
  explicit Activation(ActKind kind, float leak = 0.01f)
      : kind_(kind), leak_(leak) {}

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  Matrix forward_inference(const Matrix& input) override;
  // Elementwise, so out may alias input (in-place activation); the _into
  // forms are allocation-free once warm.
  void forward_into(const Matrix& input, Matrix& out) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_input) override;
  void forward_inference_into(const Matrix& input, Matrix& out) override;
  std::vector<Param*> parameters() override { return {}; }

  ActKind kind() const { return kind_; }

 private:
  void apply_into(const Matrix& input, Matrix& out) const;

  ActKind kind_;
  float leak_;
  Matrix cached_input_;
};

// Free-function forms used by code that does not need a Module.
float activate(ActKind kind, float x, float leak = 0.01f);
float activate_grad(ActKind kind, float x, float leak = 0.01f);

}  // namespace passflow::nn
