// Elementwise activations with cached-input backward passes.
#pragma once

#include "nn/module.hpp"

namespace passflow::nn {

enum class ActKind { kRelu, kLeakyRelu, kTanh, kSigmoid };

class Activation : public Module {
 public:
  explicit Activation(ActKind kind, float leak = 0.01f)
      : kind_(kind), leak_(leak) {}

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  Matrix forward_inference(const Matrix& input) override;
  std::vector<Param*> parameters() override { return {}; }

  ActKind kind() const { return kind_; }

 private:
  Matrix apply(const Matrix& input) const;

  ActKind kind_;
  float leak_;
  Matrix cached_input_;
};

// Free-function forms used by code that does not need a Module.
float activate(ActKind kind, float x, float leak = 0.01f);
float activate_grad(ActKind kind, float x, float leak = 0.01f);

}  // namespace passflow::nn
