// Tiny binary IO helpers shared by everything that persists state (session
// checkpoints, generator stream state, trackers, sketches).
//
// Layouts are little-endian fixed-width fields, the same conventions as
// nn/serialize. Readers throw std::runtime_error on truncation so corrupt
// checkpoints fail loudly instead of resuming a garbled attack.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace passflow::util::io {

// Upper bound accepted for any serialized length or element count. A
// corrupt or bit-flipped stream turns a garbage 64-bit length field into a
// multi-gigabyte allocation (or std::bad_alloc / the OOM killer) before
// the next read can fail; capping keeps every corruption a clean
// std::runtime_error. 1 GiB is orders of magnitude beyond any single
// field this repository serializes.
inline constexpr std::uint64_t kMaxSerializedLength = 1ull << 30;

inline void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("serialized state truncated");
  return v;
}

// Reads a u64 length/count field and rejects implausible values before
// anything allocates from them.
inline std::uint64_t read_length(std::istream& in, const char* what) {
  const std::uint64_t len = read_u64(in);
  if (len > kMaxSerializedLength) {
    throw std::runtime_error(std::string("implausible serialized length for ") +
                             what + " (" + std::to_string(len) +
                             "); stream is corrupt");
  }
  return len;
}

inline void write_f64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline double read_f64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("serialized state truncated");
  return v;
}

inline void write_string(std::ostream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string read_string(std::istream& in) {
  const std::uint64_t len = read_length(in, "string");
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw std::runtime_error("serialized state truncated");
  return s;
}

inline void write_string_vec(std::ostream& out,
                             const std::vector<std::string>& v) {
  write_u64(out, v.size());
  for (const auto& s : v) write_string(out, s);
}

inline std::vector<std::string> read_string_vec(std::istream& in) {
  const std::uint64_t count = read_length(in, "string vector");
  std::vector<std::string> v;
  v.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) v.push_back(read_string(in));
  return v;
}

inline void write_f32_vec(std::ostream& out, const std::vector<float>& v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

inline std::vector<float> read_f32_vec(std::istream& in) {
  const std::uint64_t count = read_length(in, "f32 vector");
  std::vector<float> v(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) throw std::runtime_error("serialized state truncated");
  return v;
}

// Reads and checks a fixed magic tag; throws with `what` context on
// mismatch so nested state blocks (tracker inside session) report which
// layer is corrupt.
inline void expect_magic(std::istream& in, const char* magic,
                         const char* what) {
  std::string seen(std::char_traits<char>::length(magic), '\0');
  in.read(seen.data(), static_cast<std::streamsize>(seen.size()));
  if (!in || seen != magic) {
    throw std::runtime_error(std::string("bad magic for ") + what);
  }
}

}  // namespace passflow::util::io
