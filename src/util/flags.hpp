// Tiny command-line flag parser for bench and example binaries.
//
// Supports `--name=value` and `--name value`; unknown flags raise an error so
// typos in experiment scripts fail loudly instead of silently running the
// default configuration.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace passflow::util {

class Flags {
 public:
  // Parses argv; throws std::invalid_argument on malformed input.
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  // Flags seen on the command line that were never queried; used by binaries
  // to reject typos after all get_* calls are done.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace passflow::util
