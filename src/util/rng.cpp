#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/serial_io.hpp"

namespace passflow::util {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  const std::uint64_t threshold = -n % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

void Rng::fill_normal(std::vector<float>& out, double mean, double stddev) {
  for (auto& v : out) v = static_cast<float>(normal(mean, stddev));
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

void Rng::save(std::ostream& out) const {
  io::write_u64(out, 0x31474e5246505fULL);  // "_PFRNG1" tag
  for (const std::uint64_t word : s_) io::write_u64(out, word);
  io::write_f64(out, spare_normal_);
  io::write_u64(out, has_spare_ ? 1 : 0);
}

void Rng::load(std::istream& in) {
  if (io::read_u64(in) != 0x31474e5246505fULL) {
    throw std::runtime_error("bad Rng state tag");
  }
  for (std::uint64_t& word : s_) word = io::read_u64(in);
  spare_normal_ = io::read_f64(in);
  has_spare_ = io::read_u64(in) != 0;
}

std::size_t sample_discrete(Rng& rng, const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("all weights are zero");
  double r = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;  // guards against floating-point round-off
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent, double shift) {
  if (n == 0) throw std::invalid_argument("ZipfSampler requires n > 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k) + shift, exponent);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double r = rng.uniform();
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < r) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace passflow::util
