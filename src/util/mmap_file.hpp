// Read-only memory-mapped file, RAII style.
//
// The disk-backed matcher probes multi-GB shard indexes that must never be
// read into the heap wholesale: mmap gives byte-addressable access while
// the kernel pages only the slots and key bytes a probe actually touches
// (and evicts them under memory pressure). This wrapper owns the fd and the
// mapping, exposes the bytes as a span, and forwards access-pattern hints
// to madvise so random-probe workloads do not trigger readahead of whole
// shards.
//
// On platforms without mmap (the #else branch) the file is read into an
// owned buffer instead — the API holds, only the paging benefit is lost.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace passflow::util {

class MmapFile {
 public:
  MmapFile() = default;
  // Maps `path` read-only; throws std::runtime_error (with the path and
  // errno text) when the file cannot be opened or mapped. A zero-byte file
  // maps successfully with data() == nullptr and size() == 0.
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool is_open() const { return open_; }
  const std::string& path() const { return path_; }

  // Best-effort madvise hints; no-ops on the fallback implementation.
  // Random is the right default for hash-probe access: it disables
  // readahead, so touching one slot faults one page, not a cluster.
  void advise_random();
  void advise_sequential();

  void close();

 private:
  unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool open_ = false;
  bool mapped_ = false;               // true when data_ came from mmap
  std::vector<unsigned char> fallback_;  // non-mmap platforms only
  std::string path_;
};

}  // namespace passflow::util
