// Fixed-size thread pool with parallel-for helpers and a submit() -> future
// API.
//
// Used for embarrassingly parallel work outside the nn GEMM path (which uses
// OpenMP directly): batched guess generation, corpus synthesis, t-SNE
// pairwise distances, shard-parallel matching and unique tracking, and the
// multi-scenario attack scheduler's background stages. Partitioning stays
// static — every parallel_for call site has uniform per-item cost — but all
// blocking waits are *work-helping*: a thread waiting on its own chunks or
// futures pops and runs queued tasks instead of sleeping, so tasks may
// freely call back into the pool (nested parallel_for, submit from inside a
// task) without deadlocking even when every worker is busy.
//
// The lock protocol (one mutex_ guarding the queue and the helper/stop
// bookkeeping) is machine-checked: members carry PF_GUARDED_BY(mutex_) and
// the *_locked helper carries PF_REQUIRES(mutex_), so `clang++
// -Wthread-safety` rejects any unlocked access at compile time.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/annotated_sync.hpp"

namespace passflow::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = 0);  // 0 = hardware_concurrency
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Runs fn(i) for every i in [0, count), splitting [0, count) into
  // contiguous chunks, one per worker. Blocks until all items finish.
  // Exceptions thrown by fn propagate to the caller (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  // Runs fn(chunk_index, begin, end) once per chunk. Useful when the body
  // wants per-thread scratch state (e.g. one RNG per chunk).
  void parallel_chunks(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn)
      PF_EXCLUDES(mutex_);

  // Schedules one task and returns a future for its result. Exceptions
  // land in the future. Tasks run with OpenMP pinned to one thread (like
  // every pool worker) and may themselves submit work or block in the
  // pool's own waits (parallel_*, wait_all), which execute queued tasks
  // while waiting — nested use cannot starve the pool.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  // Waits for every future, running queued tasks while any is pending
  // (safe to call from inside a pool task), then get()s each in order so
  // the first stored exception propagates.
  template <typename T>
  void wait_all(std::vector<std::future<T>>& futures) PF_EXCLUDES(mutex_) {
    {
      ReleasableMutexLock lock(mutex_);
      for (auto& future : futures) {
        while (future.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
          if (!run_one_task_locked()) {
            // Park until a task is queued or a completion broadcast lands;
            // the loop re-checks the future under the lock either way.
            ++waiting_helpers_;
            cv_.wait(lock);
            --waiting_helpers_;
          }
        }
      }
    }
    for (auto& future : futures) future.get();
  }

 private:
  void enqueue(std::function<void()> task) PF_EXCLUDES(mutex_);
  void worker_loop();
  // Pops and runs one queued task, releasing mutex_ around the call (and
  // reacquiring before returning, on every path — the analysis checks
  // this). Returns false (without running anything) when the queue is
  // empty.
  bool run_one_task_locked() PF_REQUIRES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ PF_GUARDED_BY(mutex_);
  // One condition variable for everything: workers waiting for tasks,
  // helpers waiting for "task available or my work finished". Task
  // completions notify it — but only while a helper is parked
  // (waiting_helpers_ > 0), so fine-grained workloads don't pay a
  // broadcast per task when nobody is listening for completions.
  CondVar cv_;
  // Helpers currently parked in a helping wait.
  std::size_t waiting_helpers_ PF_GUARDED_BY(mutex_) = 0;
  bool stop_ PF_GUARDED_BY(mutex_) = false;
};

// Lazily constructed process-wide pool sized to hardware_concurrency.
// Samplers, the guessing harness and the benches share it so one process
// never runs more worker threads than cores. Callers that want an isolated
// pool (tests, nested schedulers) construct their own.
ThreadPool& shared_pool();

}  // namespace passflow::util
