// Fixed-size thread pool with a parallel-for helper.
//
// Used for embarrassingly parallel work outside the nn GEMM path (which uses
// OpenMP directly): batched guess generation, corpus synthesis, t-SNE
// pairwise distances. Kept deliberately simple — static partitioning, no
// work stealing — because every call site has uniform per-item cost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace passflow::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = 0);  // 0 = hardware_concurrency
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Runs fn(i) for every i in [0, count), splitting [0, count) into
  // contiguous chunks, one per worker. Blocks until all items finish.
  // Exceptions thrown by fn propagate to the caller (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  // Runs fn(chunk_index, begin, end) once per chunk. Useful when the body
  // wants per-thread scratch state (e.g. one RNG per chunk).
  void parallel_chunks(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Lazily constructed process-wide pool sized to hardware_concurrency.
// Samplers, the guessing harness and the benches share it so one process
// never runs more worker threads than cores. Callers that want an isolated
// pool (tests, nested schedulers) construct their own.
ThreadPool& shared_pool();

}  // namespace passflow::util
