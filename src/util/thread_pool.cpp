#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace passflow::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
#ifdef _OPENMP
  // Work dispatched onto the pool is already parallel across workers; keep
  // the OpenMP GEMM path serial *inside* each worker so a pool of N threads
  // does not fan out into N x omp_num_threads threads. The main thread's
  // OpenMP behavior is untouched (the nthreads ICV is per-thread).
  omp_set_num_threads(1);
#endif
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_chunks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, workers_.size());
  const std::size_t per_chunk = (count + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{chunks};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(count, begin + per_chunk);
    enqueue([&, c, begin, end] {
      try {
        fn(c, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_chunks(count, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace passflow::util
