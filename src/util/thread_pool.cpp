#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace passflow::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  // notify_one is enough: every waiter's wake condition — worker or parked
  // helper — is satisfied by a non-empty queue, so whichever thread wakes
  // runs the task.
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
#ifdef _OPENMP
  // Work dispatched onto the pool is already parallel across workers; keep
  // the OpenMP GEMM path serial *inside* each worker so a pool of N threads
  // does not fan out into N x omp_num_threads threads. The main thread's
  // OpenMP behavior is untouched (the nthreads ICV is per-thread).
  omp_set_num_threads(1);
#endif
  for (;;) {
    std::function<void()> task;
    {
      ReleasableMutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    // Whatever state the task completed (a future became ready, a
    // parallel_chunks counter hit zero) was written before this fence, so
    // a helper that checked its wake condition under the mutex cannot miss
    // it. Broadcast only when a helper is actually parked: a helper that
    // has not parked yet will see the completed state in its own re-check,
    // and a fine-grained parallel_for shouldn't pay a broadcast per item.
    bool notify;
    {
      MutexLock lock(mutex_);
      notify = waiting_helpers_ > 0;
    }
    if (notify) cv_.notify_all();
  }
}

bool ThreadPool::run_one_task_locked() {
  if (tasks_.empty()) return false;
  std::function<void()> task = std::move(tasks_.front());
  tasks_.pop();
  mutex_.unlock();
#ifdef _OPENMP
  // Helping executes pool tasks on the *caller's* thread; pin OpenMP for
  // the duration so a helped GEMM body cannot fan out under the pool.
  const int saved_omp_threads = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  task();
#ifdef _OPENMP
  omp_set_num_threads(saved_omp_threads);
#endif
  mutex_.lock();
  // The task may have completed a parked helper's wait condition.
  if (waiting_helpers_ > 0) cv_.notify_all();
  return true;
}

void ThreadPool::parallel_chunks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, workers_.size());
  const std::size_t per_chunk = (count + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{chunks};
  std::exception_ptr first_error;
  Mutex error_mutex;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(count, begin + per_chunk);
    enqueue([&, c, begin, end] {
      try {
        fn(c, begin, end);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      remaining.fetch_sub(1);
    });
  }

  // Work-helping wait: run queued tasks (our own chunks first, but any
  // queued task keeps the system live) until every chunk has finished.
  // This is what makes nested parallelism safe — a pool task that calls
  // parallel_chunks lends its worker back instead of blocking it.
  {
    ReleasableMutexLock lock(mutex_);
    while (remaining.load() != 0) {
      if (!run_one_task_locked()) {
        ++waiting_helpers_;
        if (remaining.load() != 0 && tasks_.empty()) cv_.wait(lock);
        --waiting_helpers_;
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_chunks(count, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace passflow::util
