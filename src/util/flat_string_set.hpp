// Open-addressing hash set specialized for counting distinct short strings.
//
// std::unordered_set<std::string> pays one node allocation per insert, a
// pointer chase per probe and a full re-hash of every element on growth —
// at the 10^7+ distinct-guess scale of a guessing run that is the single
// hottest consumer-side cost. This set stores keys back-to-back in an
// append-only arena and keeps a flat power-of-two probe table of
// {hash, entry-index} slots, so:
//
//   - inserts do no per-element allocation (amortized arena/table growth);
//   - probes compare the stored 64-bit hash before touching key bytes;
//   - growth re-places 16-byte slots by stored hash without re-reading or
//     re-hashing any key.
//
// Deletion is deliberately unsupported — a distinct-guess set only ever
// grows — which keeps probing tombstone-free. Keys are returned in
// insertion order by for_each, which is what makes session save/resume
// byte-stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/hash.hpp"

namespace passflow::util {

class FlatStringSet {
 public:
  explicit FlatStringSet(std::size_t expected_keys = 0);

  // Inserts `key` if absent; returns true when the key was new.
  bool insert(std::string_view key) { return insert_hashed(hash64(key), key); }
  // Same, with the util::hash64 of `key` already computed by the caller.
  bool insert_hashed(std::uint64_t hash, std::string_view key);

  bool contains(std::string_view key) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear();

  // Reserves room for `keys` entries (probe table + bookkeeping).
  void reserve(std::size_t keys);

  // Visits every key in insertion order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : entries_) {
      fn(std::string_view(arena_.data() + e.offset, e.length));
    }
  }

  // Visits every (stored hash, key) in insertion order — for consumers
  // that need the hash again (e.g. the disk-index emitter) without paying
  // a second full hashing pass.
  template <typename Fn>
  void for_each_hashed(Fn&& fn) const {
    for (const Entry& e : entries_) {
      fn(e.hash, std::string_view(arena_.data() + e.offset, e.length));
    }
  }

  std::size_t memory_bytes() const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::uint64_t offset = 0;  // into arena_
    std::uint32_t length = 0;
  };
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t index_plus_one = 0;  // 0 = empty
  };

  std::string_view key_of(const Entry& e) const {
    return {arena_.data() + e.offset, e.length};
  }
  void grow_table();
  std::size_t probe_start(std::uint64_t hash) const {
    return static_cast<std::size_t>(hash) & mask_;
  }

  std::vector<char> arena_;
  std::vector<Entry> entries_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
};

}  // namespace passflow::util
