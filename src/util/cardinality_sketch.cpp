#include "util/cardinality_sketch.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/serial_io.hpp"

namespace passflow::util {

namespace {

constexpr char kMagic[] = "PFHLL1\n";

// Bias-correction constant alpha_m of the original HLL paper (Flajolet et
// al. 2007); exact values for the small register counts, the asymptotic
// formula above 64.
double alpha_for(std::size_t m) {
  if (m <= 16) return 0.673;
  if (m <= 32) return 0.697;
  if (m <= 64) return 0.709;
  return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
}

}  // namespace

CardinalitySketch::CardinalitySketch(unsigned precision_bits)
    : precision_(precision_bits) {
  if (precision_ < kMinPrecision || precision_ > kMaxPrecision) {
    throw std::invalid_argument("CardinalitySketch precision must be in [" +
                                std::to_string(kMinPrecision) + ", " +
                                std::to_string(kMaxPrecision) + "]");
  }
  registers_.assign(std::size_t{1} << precision_, 0);
}

void CardinalitySketch::add_hash(std::uint64_t hash) {
  const std::size_t index =
      static_cast<std::size_t>(hash >> (64 - precision_));
  // Rank of the first set bit in the remaining 64-p bits (1-based); all
  // zero means rank 64-p+1.
  const std::uint64_t rest = hash << precision_;
  const std::uint8_t rank =
      rest == 0 ? static_cast<std::uint8_t>(64 - precision_ + 1)
                : static_cast<std::uint8_t>(__builtin_clzll(rest) + 1);
  if (rank > registers_[index]) registers_[index] = rank;
}

std::size_t CardinalitySketch::estimate() const {
  const std::size_t m = registers_.size();
  double inverse_sum = 0.0;
  std::size_t zeros = 0;
  for (const std::uint8_t reg : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zeros;
  }
  const double md = static_cast<double>(m);
  const double raw = alpha_for(m) * md * md / inverse_sum;
  // Small-range correction: linear counting over empty registers is far
  // more accurate until the table is mostly occupied.
  if (raw <= 2.5 * md && zeros > 0) {
    return static_cast<std::size_t>(
        std::llround(md * std::log(md / static_cast<double>(zeros))));
  }
  // No large-range correction needed with a 64-bit hash.
  return static_cast<std::size_t>(std::llround(raw));
}

void CardinalitySketch::merge(const CardinalitySketch& other) {
  if (other.precision_ != precision_) {
    throw std::invalid_argument(
        "cannot merge CardinalitySketch of different precision");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
}

void CardinalitySketch::clear() {
  registers_.assign(registers_.size(), 0);
}

void CardinalitySketch::save(std::ostream& out) const {
  out.write(kMagic, sizeof(kMagic) - 1);
  io::write_u64(out, precision_);
  out.write(reinterpret_cast<const char*>(registers_.data()),
            static_cast<std::streamsize>(registers_.size()));
  if (!out) throw std::runtime_error("CardinalitySketch write failed");
}

void CardinalitySketch::load(std::istream& in) {
  io::expect_magic(in, kMagic, "CardinalitySketch");
  const std::uint64_t precision = io::read_u64(in);
  if (precision != precision_) {
    throw std::runtime_error(
        "CardinalitySketch precision mismatch: saved p=" +
        std::to_string(precision) + ", live p=" + std::to_string(precision_));
  }
  in.read(reinterpret_cast<char*>(registers_.data()),
          static_cast<std::streamsize>(registers_.size()));
  if (!in) throw std::runtime_error("CardinalitySketch state truncated");
}

}  // namespace passflow::util
