#include "util/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#if defined(_WIN32)
#define PASSFLOW_HAS_MMAP 0
#else
#define PASSFLOW_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#if !PASSFLOW_HAS_MMAP
#include <fstream>
#endif

namespace passflow::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): strerror's static buffer is only
  // racy against other strerror calls; this is a throw on a cold error path
  // and the message is copied into the exception immediately.
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

#if PASSFLOW_HAS_MMAP

MmapFile::MmapFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open", path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("cannot stat", path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* mapping = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
    if (mapping == MAP_FAILED) {
      ::close(fd);
      fail("cannot mmap", path);
    }
    data_ = static_cast<unsigned char*>(mapping);
    mapped_ = true;
  }
  // The mapping keeps the file alive; the descriptor is not needed again.
  ::close(fd);
  open_ = true;
}

void MmapFile::advise_random() {
  if (!mapped_) return;
  ::posix_madvise(data_, size_, POSIX_MADV_RANDOM);
#if defined(MADV_NOHUGEPAGE)
  // Point probes want 4 KiB fault granularity: a huge-page (or large-folio)
  // fault makes every probe resident-cost 2 MiB instead of one page.
  ::madvise(data_, size_, MADV_NOHUGEPAGE);
#endif
}

void MmapFile::advise_sequential() {
  if (mapped_) ::posix_madvise(data_, size_, POSIX_MADV_SEQUENTIAL);
}

void MmapFile::close() {
  if (mapped_) ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  open_ = false;
}

#else  // fallback: read the whole file into an owned buffer

MmapFile::MmapFile(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail("cannot open", path);
  const std::streamoff bytes = in.tellg();
  in.seekg(0);
  fallback_.resize(static_cast<std::size_t>(bytes));
  if (bytes > 0 &&
      !in.read(reinterpret_cast<char*>(fallback_.data()), bytes)) {
    fail("cannot read", path);
  }
  data_ = fallback_.empty() ? nullptr : fallback_.data();
  size_ = fallback_.size();
  open_ = true;
}

void MmapFile::advise_random() {}
void MmapFile::advise_sequential() {}

void MmapFile::close() {
  fallback_.clear();
  fallback_.shrink_to_fit();
  data_ = nullptr;
  size_ = 0;
  open_ = false;
}

#endif

MmapFile::~MmapFile() { close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      open_(other.open_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)),
      path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.open_ = false;
  other.mapped_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    close();
    data_ = other.data_;
    size_ = other.size_;
    open_ = other.open_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.open_ = false;
    other.mapped_ = false;
  }
  return *this;
}

}  // namespace passflow::util
