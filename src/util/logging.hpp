// Minimal leveled logger.
//
// The harness and trainers report progress through this interface instead of
// scattering std::cout across modules, so log volume can be turned down in
// tests and benchmarks (gtest output stays readable).
#pragma once

#include <sstream>
#include <string>

namespace passflow::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

// Emits one formatted line ("[LEVEL] message") to stderr if enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace passflow::util

#define PF_LOG_DEBUG ::passflow::util::detail::LogLine(::passflow::util::LogLevel::kDebug)
#define PF_LOG_INFO ::passflow::util::detail::LogLine(::passflow::util::LogLevel::kInfo)
#define PF_LOG_WARN ::passflow::util::detail::LogLine(::passflow::util::LogLevel::kWarn)
#define PF_LOG_ERROR ::passflow::util::detail::LogLine(::passflow::util::LogLevel::kError)
