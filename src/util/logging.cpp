#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <string>

#include "util/annotated_sync.hpp"

namespace passflow::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
// Serializes whole log lines onto stderr (interleaved fprintf would shred
// concurrent messages). Nothing is guarded by it — stderr is the resource.
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace passflow::util
