// HyperLogLog cardinality sketch: memory-bounded distinct counting.
//
// Backs the guessing engine's `track_unique` in the 10^8–10^9 guess regime
// (Tables II/III scale), where the exact distinct-guess set would need tens
// of gigabytes. 2^p one-byte registers give a standard error of roughly
// 1.04/sqrt(2^p): the default p=14 is 16 KiB of state for ~0.8% error.
// Small cardinalities (below ~2.5*2^p) fall back to linear counting over
// the zero registers, so estimates are near-exact until well past the
// register count.
//
// Sketches over the same precision merge by register-wise max, which makes
// unique counts composable across sharded or distributed runs, and the
// register array serializes in one block for session save/resume. Hashing
// is util::hash64 (fixed algorithm), so saved sketches are portable across
// platforms and standard libraries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "util/hash.hpp"

namespace passflow::util {

class CardinalitySketch {
 public:
  static constexpr unsigned kMinPrecision = 4;
  static constexpr unsigned kMaxPrecision = 18;

  // precision_bits in [4, 18]; throws std::invalid_argument outside.
  explicit CardinalitySketch(unsigned precision_bits = 14);

  void add(std::string_view item) { add_hash(hash64(item)); }
  void add_hash(std::uint64_t hash);

  // Estimated number of distinct items added so far.
  std::size_t estimate() const;

  // Register-wise max; throws std::invalid_argument on precision mismatch.
  void merge(const CardinalitySketch& other);

  void clear();

  unsigned precision_bits() const { return precision_; }
  std::size_t register_count() const { return registers_.size(); }
  std::size_t memory_bytes() const { return registers_.size(); }

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  unsigned precision_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace passflow::util
