// Fast 64-bit string hashing shared by the guessing engine's probabilistic
// and sharded data structures (cardinality sketch, flat string set, matcher
// shards).
//
// std::hash<std::string> is avoided here on purpose: its value is
// implementation-defined, so anything persisted (session checkpoints,
// sketch registers) or sharded by it would not be stable across standard
// libraries. This hash is a fixed algorithm — 8-byte lanes folded with
// multiply-xor mixing, murmur3-style finalizer — so hashes are identical on
// every platform, which keeps saved sketches loadable anywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace passflow::util {

// Murmur3 fmix64: full-avalanche finalizer. Also useful on its own to
// decorrelate values that will be reduced to a few bits (shard selection).
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline std::uint64_t hash64(const void* data, std::size_t len,
                            std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed ^ (static_cast<std::uint64_t>(len) *
                            0x9ddfea08eb382d69ULL);
  while (len >= 8) {
    std::uint64_t lane;
    std::memcpy(&lane, p, 8);
    h = (h ^ mix64(lane)) * 0x9ddfea08eb382d69ULL;
    p += 8;
    len -= 8;
  }
  std::uint64_t tail = 0;
  if (len > 0) {
    std::memcpy(&tail, p, len);
    h = (h ^ mix64(tail ^ len)) * 0x9ddfea08eb382d69ULL;
  }
  return mix64(h);
}

inline std::uint64_t hash64(std::string_view s,
                            std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
  return hash64(s.data(), s.size(), seed);
}

}  // namespace passflow::util
