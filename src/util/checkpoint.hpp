// Crash-safe checkpoint persistence: versioned CRC-framed blobs published
// atomically with keep-last-K generation rotation.
//
// The scheduler's fleet freeze/thaw (AttackScheduler::save_state) needs its
// on-disk checkpoints to survive kill -9 and torn writes: a crash mid-save
// must never destroy the previous good checkpoint, and a corrupt file must
// never thaw into silently-wrong attack state. The store provides exactly
// those two guarantees:
//
//   publication  Every save streams the payload into a temp file next to
//                its final name, fsyncs it, and renames it into place (the
//                POSIX atomic-replace idiom), then fsyncs the directory. A
//                crash at any byte leaves either the previous generations
//                untouched or a stray .tmp file the loader ignores.
//
//   validation   Every generation is a framed blob — magic, format
//                version, payload length, payload, CRC-32 over header and
//                payload, end magic — validated in full BEFORE a byte of
//                payload reaches the caller. Any flipped or missing byte
//                fails the frame; the loader then falls back to the next
//                newest intact generation, and throws (listing what was
//                wrong with each candidate) only when every generation is
//                bad. "No generations at all" is a clean false — a fresh
//                start, not an error.
//
//   CheckpointStore store("fleet.ckpt");            // fleet.ckpt.g00000001, ...
//   store.save([&](std::ostream& out) { scheduler.save_state(out); });
//   ...
//   if (store.load([&](std::istream& in) { scheduler.load_state(in, bind); }))
//     resume();
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

namespace passflow::util {

// CRC-32 (reflected, polynomial 0xEDB88320 — the zlib/PNG CRC). `crc`
// chains: pass a previous return value to extend a running checksum.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc = 0);

// Seals `payload` into one framed blob: magic, format version, payload
// length, payload, CRC-32 over header + payload, end magic. This is the
// exact byte layout CheckpointWriter publishes to disk; the distributed
// transport (src/dist/) reuses it verbatim as its wire framing so every
// socket byte gets the same validation as every checkpoint byte.
std::string encode_checkpoint_frame(const std::string& payload);

// Stages one framed checkpoint file: stream the payload into stream(), then
// commit() seals the frame (header + CRC footer), fsyncs and atomically
// renames onto `final_path`. Destruction without commit() removes the temp
// file and leaves whatever was at `final_path` untouched, so an error
// mid-payload (a generator that cannot serialize, a full disk) can never
// clobber the previous good checkpoint.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::string final_path);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  // Payload sink. Buffered in memory until commit() so the frame header
  // can carry the payload length and the CRC can cover header + payload.
  std::ostream& stream() { return payload_; }

  // Seals, fsyncs and publishes the frame. Throws std::runtime_error on
  // any IO failure (the temp file is removed, final_path is untouched).
  // The writer is spent afterwards.
  void commit();

  const std::string& final_path() const { return final_path_; }

 private:
  std::string final_path_;
  std::string temp_path_;
  std::ostringstream payload_;
  bool committed_ = false;
};

struct CheckpointStoreConfig {
  // Generations kept on disk after each save (>= 1). Older ones are
  // pruned; the loader can fall back across every kept generation.
  std::size_t keep_generations = 3;
};

class CheckpointStore {
 public:
  explicit CheckpointStore(std::string base_path,
                           CheckpointStoreConfig config = {});

  // Publishes a new generation whose payload is produced by
  // `write_payload`, then prunes generations beyond keep_generations.
  // Returns the published path. If `write_payload` throws, nothing is
  // published and the error propagates.
  std::string save(const std::function<void(std::ostream&)>& write_payload);

  // Thaws the newest intact generation: validates frames newest-first,
  // skipping corrupt ones, and hands the first valid payload to
  // `read_payload`. Returns false when no generation exists at all;
  // throws std::runtime_error — naming every rejected file and why — when
  // generations exist but all are corrupt. An exception from
  // `read_payload` itself propagates unchanged (the frame was intact; a
  // semantic mismatch must be loud, not papered over by older state).
  bool load(const std::function<void(std::istream&)>& read_payload) const;

  // Existing generation files, newest first.
  std::vector<std::string> generation_paths() const;

  // Removes every generation file (e.g. after a fleet finishes cleanly).
  void clear();

  const std::string& base_path() const { return base_path_; }

  // Validates one frame file end to end and returns its payload. Throws
  // std::runtime_error naming the defect: bad magic, unsupported format
  // version, truncated/oversized file, checksum mismatch, bad trailer,
  // trailing garbage after the frame.
  static std::string read_frame_file(const std::string& path);

  // Validates and consumes exactly ONE frame from `in` (header, payload,
  // CRC footer, end magic) and returns the payload, leaving the stream
  // positioned on the byte after the frame so back-to-back frames — a
  // socket conversation — parse with repeated calls. Payload lengths
  // beyond 1 GiB are rejected as implausible before anything allocates
  // from them. Throws std::runtime_error prefixed with `context` naming
  // the defect. Shared by the file loader above and the dist transport.
  static std::string read_frame(std::istream& in,
                                const std::string& context =
                                    "checkpoint frame");

 private:
  std::string generation_path(std::uint64_t seq) const;

  std::string base_path_;
  CheckpointStoreConfig config_;
  std::uint64_t next_seq_ = 1;  // scanned from existing generations
};

}  // namespace passflow::util
