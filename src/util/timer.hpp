// Wall-clock timing helpers used by trainers and the bench harness.
#pragma once

#include <chrono>
#include <string>

namespace passflow::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Renders a duration as "1.2s" / "3m12s" for progress logs.
std::string format_duration(double seconds);

}  // namespace passflow::util
