#include "util/flat_string_set.hpp"

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

namespace passflow::util {

namespace {

// Max load factor 0.75 (grow when size * 4 > capacity * 3): open
// addressing with linear probing stays short-chained below this.
constexpr std::size_t kMinTableSize = 16;

std::size_t table_size_for(std::size_t keys) {
  std::size_t size = kMinTableSize;
  while (size * 3 < keys * 4) size <<= 1;
  return size;
}

}  // namespace

FlatStringSet::FlatStringSet(std::size_t expected_keys) {
  slots_.assign(table_size_for(expected_keys), Slot{});
  mask_ = slots_.size() - 1;
  if (expected_keys > 0) {
    entries_.reserve(expected_keys);
    // Guessing streams skew short; 12 bytes/key is a generous prior and
    // the arena doubles geometrically anyway.
    arena_.reserve(expected_keys * 12);
  }
}

bool FlatStringSet::insert_hashed(std::uint64_t hash, std::string_view key) {
  if ((entries_.size() + 1) * 4 > slots_.size() * 3) grow_table();
  std::size_t i = probe_start(hash);
  for (;;) {
    Slot& slot = slots_[i];
    if (slot.index_plus_one == 0) {
      if (entries_.size() >= UINT32_MAX) {
        throw std::length_error("FlatStringSet exceeds 2^32-1 keys");
      }
      Entry entry;
      entry.hash = hash;
      entry.offset = arena_.size();
      entry.length = static_cast<std::uint32_t>(key.size());
      arena_.insert(arena_.end(), key.begin(), key.end());
      entries_.push_back(entry);
      slot.hash = hash;
      slot.index_plus_one = static_cast<std::uint32_t>(entries_.size());
      return true;
    }
    if (slot.hash == hash) {
      const Entry& e = entries_[slot.index_plus_one - 1];
      // key.empty() short-circuit: an empty string_view may carry a null
      // data() (and the arena may still be empty), which memcmp must not
      // see even at length 0 — equal lengths of 0 already mean equal keys.
      if (e.length == key.size() &&
          (key.empty() ||
           std::memcmp(arena_.data() + e.offset, key.data(), key.size()) ==
               0)) {
        return false;
      }
    }
    i = (i + 1) & mask_;
  }
}

bool FlatStringSet::contains(std::string_view key) const {
  const std::uint64_t hash = hash64(key);
  std::size_t i = probe_start(hash);
  for (;;) {
    const Slot& slot = slots_[i];
    if (slot.index_plus_one == 0) return false;
    if (slot.hash == hash) {
      const Entry& e = entries_[slot.index_plus_one - 1];
      if (e.length == key.size() &&
          (key.empty() ||
           std::memcmp(arena_.data() + e.offset, key.data(), key.size()) ==
               0)) {
        return true;
      }
    }
    i = (i + 1) & mask_;
  }
}

void FlatStringSet::clear() {
  arena_.clear();
  entries_.clear();
  slots_.assign(kMinTableSize, Slot{});
  mask_ = slots_.size() - 1;
}

void FlatStringSet::reserve(std::size_t keys) {
  entries_.reserve(keys);
  const std::size_t wanted = table_size_for(keys);
  if (wanted > slots_.size()) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(wanted, Slot{});
    mask_ = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (slot.index_plus_one == 0) continue;
      std::size_t i = probe_start(slot.hash);
      while (slots_[i].index_plus_one != 0) i = (i + 1) & mask_;
      slots_[i] = slot;
    }
  }
}

void FlatStringSet::grow_table() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  // Re-place by stored hash; key bytes are never touched.
  for (const Slot& slot : old) {
    if (slot.index_plus_one == 0) continue;
    std::size_t i = probe_start(slot.hash);
    while (slots_[i].index_plus_one != 0) i = (i + 1) & mask_;
    slots_[i] = slot;
  }
}

std::size_t FlatStringSet::memory_bytes() const {
  return arena_.capacity() + entries_.capacity() * sizeof(Entry) +
         slots_.capacity() * sizeof(Slot);
}

}  // namespace passflow::util
