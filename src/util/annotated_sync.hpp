// Capability-annotated synchronization primitives: the lock protocol as a
// compile-time contract.
//
// Every mutex in this codebase guards a specific set of members, and every
// `*_locked()` helper assumes its caller holds a specific lock — but until
// this header, those protocols lived in naming conventions and comments,
// checked only dynamically (TSan on the interleavings the tests happen to
// hit). Clang's Thread Safety Analysis turns them into compile errors:
// declare a mutex as a *capability*, tag the data it protects with
// PF_GUARDED_BY, tag helpers with PF_REQUIRES, and `clang++ -Wthread-safety`
// rejects any access that cannot prove it holds the right lock — on every
// interleaving, including the ones no test ever runs.
//
// Usage rules (enforced for new code; see README "Static analysis &
// concurrency contracts"):
//
//   - Use util::Mutex / util::CondVar, never raw std::mutex /
//     std::condition_variable. The wrappers carry the capability
//     attributes; the raw types are invisible to the analysis.
//   - Every member whose access protocol is "hold the mutex" gets
//     PF_GUARDED_BY(mu_). Members protected by some other protocol (a
//     single-owner thread, a quiesce barrier) get a comment instead — do
//     not annotate what the analysis cannot express, it would force
//     spurious locking.
//   - Private helpers that assume the lock is held are named `*_locked()`
//     and annotated PF_REQUIRES(mu_). The annotation is the contract; the
//     suffix keeps call sites readable.
//   - Condition-variable predicates must be written as explicit wait loops
//     (`while (!cond) cv_.wait(lock);`), not lambda predicates: the
//     analysis checks lambda bodies as separate functions that do not hold
//     the caller's locks, so a guarded read inside a predicate lambda is a
//     false positive. The explicit loop keeps the reads in the annotated
//     scope.
//
// Off Clang (GCC, MSVC) every macro expands to nothing and the wrappers
// compile down to the std types they hold: zero behavior or codegen change,
// asserted by the unchanged TSan/ASan CI jobs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// Clang exposes thread-safety attributes through __has_attribute; the
// `capability` spelling (over the legacy `lockable`) matches what
// -Wthread-safety-beta expects. GCC defines __has_attribute too but not
// these attributes, so the probe alone is the full gate.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PF_THREAD_ANNOTATION
#define PF_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

// A type that represents a capability (a lock). Instances can be named in
// the argument of the macros below.
#define PF_CAPABILITY(x) PF_THREAD_ANNOTATION(capability(x))

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor (MutexLock / ReleasableMutexLock below).
#define PF_SCOPED_CAPABILITY PF_THREAD_ANNOTATION(scoped_lockable)

// Data members: reading or writing requires holding the named capability.
#define PF_GUARDED_BY(x) PF_THREAD_ANNOTATION(guarded_by(x))
// Pointer members: the pointed-to data (not the pointer) is guarded.
#define PF_PT_GUARDED_BY(x) PF_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: the caller must hold the capability (it is neither acquired
// nor released by the call). This is the `*_locked()` helper contract.
#define PF_REQUIRES(...) \
  PF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PF_REQUIRES_SHARED(...) \
  PF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Functions: the capability is acquired on entry / released on exit.
#define PF_ACQUIRE(...) PF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PF_RELEASE(...) PF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PF_TRY_ACQUIRE(...) \
  PF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Functions: the caller must NOT hold the capability (deadlock guard for
// public methods that lock internally).
#define PF_EXCLUDES(...) PF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held; tells the analysis so
// along paths where it cannot prove it (e.g. a protocol guarantee like the
// scheduler's quiesce gate).
#define PF_ASSERT_CAPABILITY(x) PF_THREAD_ANNOTATION(assert_capability(x))

// Functions returning a reference to a capability-guarded structure.
#define PF_RETURN_CAPABILITY(x) PF_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables analysis for one function. Every use carries a
// comment explaining which protocol (not expressible to the analysis)
// makes the function safe.
#define PF_NO_THREAD_SAFETY_ANALYSIS \
  PF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace passflow::util {

class CondVar;

// std::mutex with the capability attribute. Prefer the scoped lock types
// below; lock()/unlock() exist for protocols that genuinely hand a held
// lock across scopes (e.g. ThreadPool::run_one_task_locked releasing
// around a task body), and the analysis checks those too.
class PF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PF_ACQUIRE() { mu_.lock(); }
  void unlock() PF_RELEASE() { mu_.unlock(); }
  bool try_lock() PF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Runtime no-op that tells the analysis this thread holds the mutex.
  // For protocol-guaranteed paths the analysis cannot follow; use
  // sparingly and document the guarantee at the call site.
  void assert_held() const PF_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class MutexLock;
  friend class ReleasableMutexLock;
  std::mutex mu_;
};

// std::lock_guard equivalent: acquires for exactly one scope, no manual
// release. The default for plain critical sections.
class PF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PF_ACQUIRE(mu) : guard_(mu.mu_) {}
  ~MutexLock() PF_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  std::lock_guard<std::mutex> guard_;
};

// std::unique_lock equivalent: scoped acquisition with mid-scope
// unlock()/lock() (checked by the analysis as release/reacquire) and
// CondVar waits. Use when a critical section must open a window (copy a
// result outside the lock, notify after unlocking) or park on a CondVar.
class PF_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mu) PF_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~ReleasableMutexLock() PF_RELEASE() = default;

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

  void unlock() PF_RELEASE() { lock_.unlock(); }
  void lock() PF_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// std::condition_variable over the annotated Mutex. Waits take a
// ReleasableMutexLock; from the analysis's view the capability stays held
// across a wait (the internal release/reacquire is atomic with respect to
// the protocol — the predicate is always re-checked under the lock, which
// is exactly the guarantee the analysis assumes). No predicate overloads
// on purpose: write explicit wait loops (see header comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(ReleasableMutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      ReleasableMutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(ReleasableMutexLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace passflow::util
