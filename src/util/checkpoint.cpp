#include "util/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.hpp"
#include "util/serial_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PASSFLOW_CHECKPOINT_POSIX 1
#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>
#else
#define PASSFLOW_CHECKPOINT_POSIX 0
#endif

namespace passflow::util {

namespace {

constexpr char kMagic[8] = {'P', 'F', 'C', 'K', 'P', 'T', '1', '\n'};
constexpr char kEndMagic[8] = {'P', 'F', 'C', 'K', 'P', 'T', 'E', '\n'};
constexpr std::uint64_t kFormatVersion = 1;
// magic + version + payload length.
constexpr std::size_t kHeaderBytes = 8 + 8 + 8;
// CRC (stored as u64) + end magic.
constexpr std::size_t kFooterBytes = 8 + 8;
constexpr std::size_t kGenerationDigits = 8;
// Plausibility cap for the payload-length field: a bit-flipped length must
// become a clean error, not a multi-gigabyte allocation. Matches the
// serial_io convention (io::kMaxSerializedLength).
constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

std::uint64_t load_u64le(const char* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Splits "dir/name" for directory scanning and fsync. An empty directory
// part means the current working directory.
void split_path(const std::string& path, std::string& dir,
                std::string& name) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    dir = ".";
    name = path;
  } else {
    dir = path.substr(0, slash == 0 ? 1 : slash);
    name = path.substr(slash + 1);
  }
}

#if PASSFLOW_CHECKPOINT_POSIX
// Durability half of atomic publication: the rename is only crash-safe
// once the directory entry itself is on disk.
void fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}
#endif

// Atomically writes `bytes` to `path` via temp + fsync + rename.
void publish_file(const std::string& temp_path, const std::string& path,
                  const std::string& bytes) {
#if PASSFLOW_CHECKPOINT_POSIX
  const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) {
    throw std::runtime_error("checkpoint: cannot create temp file " +
                             temp_path);
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      ::close(fd);
      std::remove(temp_path.c_str());
      throw std::runtime_error("checkpoint: write failed for " + temp_path);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(temp_path.c_str());
    throw std::runtime_error("checkpoint: fsync failed for " + temp_path);
  }
  ::close(fd);
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    throw std::runtime_error("checkpoint: rename to " + path + " failed");
  }
  std::string dir, name;
  split_path(path, dir, name);
  fsync_directory(dir);
#else
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(temp_path.c_str());
      throw std::runtime_error("checkpoint: write failed for " + temp_path);
    }
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    throw std::runtime_error("checkpoint: rename to " + path + " failed");
  }
#endif
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc) {
  // Table built once: the standard reflected CRC-32 used by zlib/PNG.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

// ---- CheckpointWriter ------------------------------------------------------

CheckpointWriter::CheckpointWriter(std::string final_path)
    : final_path_(std::move(final_path)), temp_path_(final_path_ + ".tmp") {
  if (final_path_.empty()) {
    throw std::invalid_argument("CheckpointWriter: empty path");
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (!committed_) std::remove(temp_path_.c_str());
}

void CheckpointWriter::commit() {
  if (committed_) {
    throw std::logic_error("CheckpointWriter::commit called twice");
  }
  publish_file(temp_path_, final_path_,
               encode_checkpoint_frame(payload_.str()));
  committed_ = true;
}

// ---- frame codec -----------------------------------------------------------

std::string encode_checkpoint_frame(const std::string& payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size() + kFooterBytes);
  frame.append(kMagic, sizeof(kMagic));
  const std::uint64_t version = kFormatVersion;
  frame.append(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t payload_bytes = payload.size();
  frame.append(reinterpret_cast<const char*>(&payload_bytes),
               sizeof(payload_bytes));
  frame.append(payload);
  // The CRC covers header + payload, so a flip anywhere before the footer
  // fails the checksum even when the field checks happen to still parse.
  const std::uint64_t crc = crc32(frame.data(), frame.size());
  frame.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  frame.append(kEndMagic, sizeof(kEndMagic));
  return frame;
}

std::string CheckpointStore::read_frame(std::istream& in,
                                        const std::string& context) {
  char header[kHeaderBytes];
  in.read(header, kHeaderBytes);
  if (in.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
    throw std::runtime_error(context + ": truncated (" +
                             std::to_string(in.gcount()) +
                             " header bytes)");
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error(context + ": bad magic");
  }
  const std::uint64_t version = load_u64le(header + 8);
  if (version != kFormatVersion) {
    throw std::runtime_error(context + ": unsupported format version " +
                             std::to_string(version));
  }
  const std::uint64_t payload_bytes = load_u64le(header + 16);
  if (payload_bytes > kMaxFramePayload) {
    throw std::runtime_error(context + ": implausible payload length " +
                             std::to_string(payload_bytes));
  }
  std::string rest(static_cast<std::size_t>(payload_bytes) + kFooterBytes,
                   '\0');
  in.read(rest.data(), static_cast<std::streamsize>(rest.size()));
  if (in.gcount() != static_cast<std::streamsize>(rest.size())) {
    throw std::runtime_error(
        context + ": truncated (header says " +
        std::to_string(payload_bytes) + " payload bytes, stream ends " +
        std::to_string(rest.size() - static_cast<std::size_t>(in.gcount())) +
        " bytes early)");
  }
  const std::uint64_t stored_crc = load_u64le(rest.data() + payload_bytes);
  const std::uint64_t actual_crc =
      crc32(rest.data(), payload_bytes, crc32(header, kHeaderBytes));
  if (stored_crc != actual_crc) {
    throw std::runtime_error(context + ": checksum mismatch");
  }
  if (std::memcmp(rest.data() + payload_bytes + 8, kEndMagic,
                  sizeof(kEndMagic)) != 0) {
    throw std::runtime_error(context + ": bad trailer");
  }
  rest.resize(static_cast<std::size_t>(payload_bytes));
  return rest;
}

std::string CheckpointStore::read_frame_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("checkpoint " + path + ": cannot open");
  }
  std::string payload = read_frame(in, "checkpoint " + path);
  // A file must hold exactly one frame: bytes past the footer mean a torn
  // or doubled write, which the stream reader (built for back-to-back
  // socket frames) deliberately does not police.
  if (in.peek() != std::char_traits<char>::eof()) {
    throw std::runtime_error("checkpoint " + path +
                             ": trailing garbage after frame");
  }
  return payload;
}

// ---- CheckpointStore -------------------------------------------------------

CheckpointStore::CheckpointStore(std::string base_path,
                                 CheckpointStoreConfig config)
    : base_path_(std::move(base_path)), config_(config) {
  if (base_path_.empty()) {
    throw std::invalid_argument("CheckpointStore: empty base path");
  }
  if (config_.keep_generations == 0) {
    throw std::invalid_argument(
        "CheckpointStoreConfig::keep_generations must be >= 1");
  }
  std::uint64_t newest = 0;
  for (const std::string& path : generation_paths()) {
    const std::uint64_t seq = std::stoull(
        path.substr(path.size() - kGenerationDigits));
    newest = std::max(newest, seq);
  }
  next_seq_ = newest + 1;
}

std::string CheckpointStore::generation_path(std::uint64_t seq) const {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".g%08llu",
                static_cast<unsigned long long>(seq));
  return base_path_ + suffix;
}

std::vector<std::string> CheckpointStore::generation_paths() const {
  std::vector<std::string> paths;
  std::string dir, name;
  split_path(base_path_, dir, name);
  const std::string prefix = name + ".g";
#if PASSFLOW_CHECKPOINT_POSIX
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return paths;
  while (const dirent* entry = ::readdir(handle)) {
    const std::string candidate = entry->d_name;
    // Exactly "<name>.g<8 digits>": stray .tmp files from a crash mid-save
    // and unrelated siblings fall through.
    if (candidate.size() != prefix.size() + kGenerationDigits) continue;
    if (candidate.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string digits = candidate.substr(prefix.size());
    if (!std::all_of(digits.begin(), digits.end(),
                     [](char c) { return c >= '0' && c <= '9'; })) {
      continue;
    }
    paths.push_back(dir == "." ? candidate : dir + "/" + candidate);
  }
  ::closedir(handle);
#else
  // No directory scan available: probe the first plausible sequence range.
  for (std::uint64_t seq = 1; seq < 1 << 20; ++seq) {
    const std::string path = generation_path(seq);
    std::ifstream probe(path, std::ios::binary);
    if (!probe.good()) {
      if (seq > 1) break;
      continue;
    }
    paths.push_back(path);
  }
#endif
  // Newest first: the zero-padded suffix makes lexicographic order the
  // sequence order.
  std::sort(paths.rbegin(), paths.rend());
  return paths;
}

std::string CheckpointStore::save(
    const std::function<void(std::ostream&)>& write_payload) {
  const std::string path = generation_path(next_seq_);
  CheckpointWriter writer(path);
  write_payload(writer.stream());
  if (!writer.stream()) {
    throw std::runtime_error("checkpoint payload write failed for " + path);
  }
  writer.commit();
  ++next_seq_;

  const std::vector<std::string> paths = generation_paths();
  for (std::size_t i = config_.keep_generations; i < paths.size(); ++i) {
    std::remove(paths[i].c_str());  // best effort; stale files are harmless
  }
  return path;
}

bool CheckpointStore::load(
    const std::function<void(std::istream&)>& read_payload) const {
  const std::vector<std::string> paths = generation_paths();
  if (paths.empty()) return false;
  std::string errors;
  for (const std::string& path : paths) {
    std::string payload;
    try {
      payload = read_frame_file(path);
    } catch (const std::exception& e) {
      // Corrupt generation: fall back to the next newest, loudly.
      PF_LOG_WARN << "skipping corrupt checkpoint: " << e.what();
      errors += std::string("\n  ") + e.what();
      continue;
    }
    // The frame is intact; a failure from here on is a semantic problem
    // (wrong fleet shape, incompatible generator) that older generations
    // share, so it propagates instead of triggering fallback.
    std::istringstream in(std::move(payload));
    read_payload(in);
    return true;
  }
  throw std::runtime_error(
      "no intact checkpoint generation under " + base_path_ +
      " (every candidate was rejected):" + errors);
}

void CheckpointStore::clear() {
  for (const std::string& path : generation_paths()) {
    std::remove(path.c_str());
  }
}

}  // namespace passflow::util
