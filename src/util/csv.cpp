#include "util/csv.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

namespace passflow::util {

namespace {
std::string escape_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  write_row(header);
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CSV row has " + std::to_string(cells.size()) +
                                " cells, expected " + std::to_string(columns_));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape_cell(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string with_thousands(long long value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string grouped;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) grouped += ',';
    grouped += *it;
    ++count;
  }
  if (negative) grouped += '-';
  std::reverse(grouped.begin(), grouped.end());
  return grouped;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i] << std::string(widths[i] - row[i].size(), ' ');
      if (i + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace passflow::util
