#include "util/flags.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace passflow::util {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Flags::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long long Flags::get_int(const std::string& name, long long fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double Flags::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("bad boolean for --" + name + ": " + v);
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace passflow::util
