// Small statistics helpers shared by the evaluation harness and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace passflow::util {

double mean(const std::vector<double>& values);
double variance(const std::vector<double>& values);  // population variance
double stddev(const std::vector<double>& values);
double median(std::vector<double> values);  // by value: sorts a copy

// Pearson correlation; returns 0 for degenerate (constant) inputs.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

// Running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace passflow::util
