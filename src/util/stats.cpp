#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace passflow::util {

double mean(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("mean of empty vector");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double variance(const std::vector<double>& values) {
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  return std::sqrt(variance(values));
}

double median(std::vector<double> values) {
  if (values.empty()) throw std::invalid_argument("median of empty vector");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  if (values.size() % 2 == 1) return values[mid];
  const double hi = values[mid];
  std::nth_element(values.begin(), values.begin() + mid - 1, values.end());
  return 0.5 * (values[mid - 1] + hi);
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("pearson: size mismatch or empty");
  }
  const double ma = mean(a);
  const double mb = mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace passflow::util
