// Deterministic pseudo-random number generation for PassFlow.
//
// Everything in this repository that involves randomness (weight init,
// dequantization, latent sampling, the synthetic RockYou corpus) flows
// through this header so that experiments are reproducible from a single
// seed. The generator is xoshiro256** seeded via splitmix64, which is fast,
// has a 256-bit state and passes BigCrush; std::mt19937 is avoided because
// its state is large and its seeding is notoriously easy to get wrong.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace passflow::util {

// splitmix64 step; used to expand a single 64-bit seed into generator state.
std::uint64_t splitmix64_next(std::uint64_t& state);

// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
// plugged into <random> distributions if ever needed, though the member
// helpers below cover every use in this repo.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  // modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);
  // Standard normal via Box-Muller (cached spare value).
  double normal();
  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  // Bernoulli draw.
  bool bernoulli(double p);

  // Fills `out` with i.i.d. N(mean, stddev) draws.
  void fill_normal(std::vector<float>& out, double mean, double stddev);

  // Fisher-Yates shuffle of indices [0, n); returns the permutation.
  std::vector<std::size_t> permutation(std::size_t n);

  // Derives an independent child generator; used to hand one RNG per thread
  // without correlated streams.
  Rng split();

  // Serializes / restores the full generator state (xoshiro words plus the
  // Box-Muller spare), so a restored stream continues bit-for-bit where the
  // saved one stopped. Used by AttackSession save/resume.
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

// Samples an index from a (non-normalized) weight vector. Requires at least
// one strictly positive weight.
std::size_t sample_discrete(Rng& rng, const std::vector<double>& weights);

// Zipf-Mandelbrot sampler over ranks [0, n): P(k) proportional to
// 1/(k+q)^s. Precomputes the CDF once; sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent, double shift = 2.7);
  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace passflow::util
