#include "util/timer.hpp"

#include <cstdio>
#include <string>

namespace passflow::util {

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else {
    const int minutes = static_cast<int>(seconds) / 60;
    const int rem = static_cast<int>(seconds) % 60;
    std::snprintf(buf, sizeof(buf), "%dm%02ds", minutes, rem);
  }
  return buf;
}

}  // namespace passflow::util
