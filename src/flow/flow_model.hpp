// The PassFlow model: a composition of affine coupling layers with exact
// log-likelihood (Eq. 1-8) under a factorized standard-normal prior.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flow/coupling.hpp"
#include "nn/adam.hpp"

namespace passflow::util {
class ThreadPool;
}

namespace passflow::flow {

struct FlowConfig {
  std::size_t dim = 10;            // password max length (§IV-D)
  std::size_t num_couplings = 18;  // paper architecture (§IV-D)
  std::size_t hidden = 256;        // s/t hidden width (§IV-D)
  std::size_t residual_blocks = 2; // s/t depth (§IV-D)
  MaskConfig mask;                 // char-run m=1 by default (§IV-D)
};

class FlowModel {
 public:
  FlowModel(FlowConfig config, util::Rng& rng);

  const FlowConfig& config() const { return config_; }
  std::size_t dim() const { return config_.dim; }

  // Training forward x -> z; fills per-sample log|det J| (overwritten).
  nn::Matrix forward(const nn::Matrix& x, std::vector<double>& log_det);
  // Inference forward without caching.
  nn::Matrix forward_inference(const nn::Matrix& x,
                               std::vector<double>* log_det = nullptr) const;
  // Exact inverse z -> x.
  nn::Matrix inverse(const nn::Matrix& z) const;

  // Batched-parallel inference: rows are split into contiguous chunks, one
  // per pool worker, and each chunk runs the serial path. Both the forward
  // and inverse maps are row-independent, so results are bitwise identical
  // to the serial overloads. Inference state is const (no caches), making
  // concurrent calls on one model safe; a null/singleton pool or a small
  // batch falls back to the serial path.
  nn::Matrix forward_inference(const nn::Matrix& x, std::vector<double>* log_det,
                               util::ThreadPool* pool) const;
  nn::Matrix inverse(const nn::Matrix& z, util::ThreadPool* pool) const;

  // Exact log p(x) per sample (Eq. 5 with standard-normal prior).
  std::vector<double> log_prob(const nn::Matrix& x) const;

  // Computes mean NLL of the batch (Eq. 7-8), accumulates parameter
  // gradients, and returns the loss. Callers zero_grad + optimizer-step.
  double nll_backward(const nn::Matrix& x);

  // Same loss without gradients (validation).
  double nll(const nn::Matrix& x) const;

  std::vector<nn::Param*> parameters();
  std::size_t parameter_count();
  void zero_grad();

  void save(const std::string& path);
  void load(const std::string& path);

 private:
  FlowConfig config_;
  std::vector<std::unique_ptr<AffineCoupling>> couplings_;
};

// log N(z; 0, I) for one row.
double standard_normal_log_density(const float* z, std::size_t dim);

}  // namespace passflow::flow
