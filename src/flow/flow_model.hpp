// The PassFlow model: a composition of affine coupling layers with exact
// log-likelihood (Eq. 1-8) under a factorized standard-normal prior.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "flow/coupling.hpp"
#include "nn/adam.hpp"

namespace passflow::util {
class ThreadPool;
}

namespace passflow::flow {

struct FlowConfig {
  std::size_t dim = 10;            // password max length (§IV-D)
  std::size_t num_couplings = 18;  // paper architecture (§IV-D)
  std::size_t hidden = 256;        // s/t hidden width (§IV-D)
  std::size_t residual_blocks = 2; // s/t depth (§IV-D)
  MaskConfig mask;                 // char-run m=1 by default (§IV-D)
};

class FlowModel {
 public:
  FlowModel(FlowConfig config, util::Rng& rng);

  const FlowConfig& config() const { return config_; }
  std::size_t dim() const { return config_.dim; }

  // Training forward x -> z; fills per-sample log|det J| (overwritten).
  nn::Matrix forward(const nn::Matrix& x, std::vector<double>& log_det);
  // Inference forward without caching.
  nn::Matrix forward_inference(const nn::Matrix& x,
                               std::vector<double>* log_det = nullptr) const;
  // Exact inverse z -> x.
  nn::Matrix inverse(const nn::Matrix& z) const;

  // Batched-parallel inference: rows are split into contiguous chunks, one
  // per pool worker, and each chunk runs the serial path. Both the forward
  // and inverse maps are row-independent, so results are bitwise identical
  // to the serial overloads. Inference state is const (no caches), making
  // concurrent calls on one model safe; a null/singleton pool or a small
  // batch falls back to the serial path.
  nn::Matrix forward_inference(const nn::Matrix& x, std::vector<double>* log_det,
                               util::ThreadPool* pool) const;
  nn::Matrix inverse(const nn::Matrix& z, util::ThreadPool* pool) const;

  // Exact log p(x) per sample (Eq. 5 with standard-normal prior).
  std::vector<double> log_prob(const nn::Matrix& x) const;

  // Per-sample log p(x) over a batch, optionally row-chunked across the
  // pool. Built on forward_inference (allocation-local, never the training
  // workspaces), so concurrent calls on one model are safe and every row's
  // value is bitwise identical whether scored alone, inside any batch, or
  // with any pool size — the guarantee the serving layer's micro-batching
  // relies on. log_prob() is the serial special case.
  std::vector<double> log_prob_batch(const nn::Matrix& x,
                                     util::ThreadPool* pool = nullptr) const;

  // Computes mean NLL of the batch (Eq. 7-8), accumulates parameter
  // gradients, and returns the loss. Callers zero_grad + optimizer-step.
  double nll_backward(const nn::Matrix& x);

  // Batch-parallel training step: splits the batch into one contiguous
  // shard per pool worker, runs forward+backward on a persistent per-worker
  // model replica (its own caches, its own gradient buffers), then combines
  // the shard gradients with a fixed-shape pairwise tree reduction weighted
  // by shard size. Shard boundaries, tree shape and summation order depend
  // only on (batch size, pool size), so gradients are bitwise reproducible
  // across runs at a fixed pool size. Falls back to the serial path for a
  // null/singleton pool or a small batch. Replicas sync parameter values
  // from this model at the start of every call.
  double nll_backward(const nn::Matrix& x, util::ThreadPool* pool);

  // Same loss without gradients (validation).
  double nll(const nn::Matrix& x) const;
  // Pooled variant: row-chunked forward_inference, bitwise identical.
  double nll(const nn::Matrix& x, util::ThreadPool* pool) const;

  std::vector<nn::Param*> parameters();
  std::size_t parameter_count();
  void zero_grad();

  void save(const std::string& path);
  void load(const std::string& path);

 private:
  void ensure_replicas(std::size_t count);

  FlowConfig config_;
  std::vector<std::unique_ptr<AffineCoupling>> couplings_;

  // Training-only workspaces for nll_backward: activations and gradients
  // ping-pong between two buffers instead of reallocating per coupling.
  nn::Matrix fwd_ws_a_;
  nn::Matrix fwd_ws_b_;
  nn::Matrix grad_ws_a_;
  nn::Matrix grad_ws_b_;
  std::vector<double> log_det_ws_;
  std::vector<double> grad_log_det_ws_;

  // Batch-parallel training state: one model replica and one input-shard
  // buffer per pool worker, created lazily and reused across steps.
  std::vector<std::unique_ptr<FlowModel>> replicas_;
  std::vector<nn::Matrix> shard_ws_;
};

// log N(z; 0, I) for one row.
double standard_normal_log_density(const float* z, std::size_t dim);

}  // namespace passflow::flow
