#include "flow/coupling.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "nn/ops.hpp"

namespace passflow::flow {

namespace {
void apply_mask_into(const nn::Matrix& x, const std::vector<float>& mask,
                     nn::Matrix& out) {
  out.resize(x.rows(), x.cols());
  const float* md = mask.data();
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const float* xr = x.row(r);
    float* outr = out.row(r);
#pragma omp simd
    for (std::size_t c = 0; c < x.cols(); ++c) outr[c] = xr[c] * md[c];
  }
}

nn::Matrix apply_mask(const nn::Matrix& x, const std::vector<float>& mask) {
  nn::Matrix out;
  apply_mask_into(x, mask, out);
  return out;
}

// s = scale * tanh(s_raw), the Real NVP bounded-scale transform. Shared by
// the training and inference paths so the formula lives in one place; `s`
// must not alias `s_raw`.
void bounded_scale_into(const nn::Matrix& s_raw, const nn::Matrix& scale_vec,
                        nn::Matrix& s) {
  s.resize(s_raw.rows(), s_raw.cols());
  const float* scale = scale_vec.data();
  for (std::size_t r = 0; r < s_raw.rows(); ++r) {
    const float* raw = s_raw.row(r);
    float* sr = s.row(r);
    for (std::size_t c = 0; c < s_raw.cols(); ++c) {
      sr[c] = scale[c] * std::tanh(raw[c]);
    }
  }
}
}  // namespace

AffineCoupling::AffineCoupling(std::size_t dim, std::size_t hidden,
                               std::size_t depth, std::vector<float> mask,
                               util::Rng& rng, const std::string& name)
    : mask_(std::move(mask)),
      net_(dim, hidden, depth, dim, rng, name + ".net"),
      s_scale_(name + ".s_scale", nn::Matrix(1, dim, 1.0f)) {
  if (mask_.size() != dim) {
    throw std::invalid_argument("mask size does not match dim");
  }
}

// Inference-only helper: allocates per call so concurrent callers never
// share state. The training path (forward_into) uses member workspaces.
AffineCoupling::STResult AffineCoupling::compute_st(
    const nn::Matrix& masked_input) const {
  nn::ResNetST::Output out = net_.forward_inference(masked_input);
  STResult result;
  result.s_raw = std::move(out.s_raw);
  result.t = std::move(out.t);
  bounded_scale_into(result.s_raw, s_scale_.value, result.s);
  return result;
}

nn::Matrix AffineCoupling::forward(const nn::Matrix& x,
                                   std::vector<double>& log_det) {
  nn::Matrix z;
  forward_into(x, log_det, z);
  return z;
}

void AffineCoupling::forward_into(const nn::Matrix& x,
                                  std::vector<double>& log_det,
                                  nn::Matrix& z) {
  if (log_det.size() != x.rows()) {
    throw std::invalid_argument("log_det size mismatch");
  }
  cached_x_ = x;
  apply_mask_into(x, mask_, masked_ws_);
  net_.forward_into(masked_ws_, cached_s_raw_, t_ws_);
  bounded_scale_into(cached_s_raw_, s_scale_.value, cached_s_);

  z.resize(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const float* xr = x.row(r);
    const float* sr = cached_s_.row(r);
    const float* tr = t_ws_.row(r);
    float* zr = z.row(r);
    double ld = 0.0;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const float b = mask_[c];
      const float cb = 1.0f - b;
      zr[c] = b * xr[c] + cb * (xr[c] * std::exp(sr[c]) + tr[c]);
      ld += static_cast<double>(cb) * sr[c];
    }
    log_det[r] += ld;
  }
}

nn::Matrix AffineCoupling::forward_inference(const nn::Matrix& x,
                                             std::vector<double>* log_det) const {
  STResult st = compute_st(apply_mask(x, mask_));
  nn::Matrix z(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const float* xr = x.row(r);
    const float* sr = st.s.row(r);
    const float* tr = st.t.row(r);
    float* zr = z.row(r);
    double ld = 0.0;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const float b = mask_[c];
      const float cb = 1.0f - b;
      zr[c] = b * xr[c] + cb * (xr[c] * std::exp(sr[c]) + tr[c]);
      ld += static_cast<double>(cb) * sr[c];
    }
    if (log_det) (*log_det)[r] += ld;
  }
  return z;
}

nn::Matrix AffineCoupling::inverse(const nn::Matrix& z) const {
  // The conditioning input b.z equals b.x because masked coordinates pass
  // through unchanged, so s and t are recoverable from z alone.
  STResult st = compute_st(apply_mask(z, mask_));
  nn::Matrix x(z.rows(), z.cols());
  for (std::size_t r = 0; r < z.rows(); ++r) {
    const float* zr = z.row(r);
    const float* sr = st.s.row(r);
    const float* tr = st.t.row(r);
    float* xr = x.row(r);
    for (std::size_t c = 0; c < z.cols(); ++c) {
      const float b = mask_[c];
      if (b > 0.5f) {
        xr[c] = zr[c];
      } else {
        xr[c] = (zr[c] - tr[c]) * std::exp(-sr[c]);
      }
    }
  }
  return x;
}

nn::Matrix AffineCoupling::backward(const nn::Matrix& grad_z,
                                    const std::vector<double>& grad_log_det) {
  nn::Matrix grad_x;
  backward_into(grad_z, grad_log_det, grad_x);
  return grad_x;
}

void AffineCoupling::backward_into(const nn::Matrix& grad_z,
                                   const std::vector<double>& grad_log_det,
                                   nn::Matrix& grad_x) {
  if (!grad_z.same_shape(cached_x_)) {
    throw std::invalid_argument("backward called without matching forward");
  }
  const std::size_t rows = grad_z.rows();
  const std::size_t cols = grad_z.cols();

  nn::Matrix& grad_s = grad_s_ws_;
  nn::Matrix& grad_t = grad_t_ws_;
  grad_s.resize(rows, cols);
  grad_t.resize(rows, cols);
  grad_x.resize(rows, cols);

  for (std::size_t r = 0; r < rows; ++r) {
    const float* gz = grad_z.row(r);
    const float* xr = cached_x_.row(r);
    const float* sr = cached_s_.row(r);
    const float gld = static_cast<float>(grad_log_det[r]);
    float* gs = grad_s.row(r);
    float* gt = grad_t.row(r);
    float* gx = grad_x.row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      const float b = mask_[c];
      const float cb = 1.0f - b;
      const float e = std::exp(sr[c]);
      // Direct paths: identity part + x inside the affine part.
      gx[c] = gz[c] * (b + cb * e);
      // dz/ds = x*e on transformed coords; log-det contributes gld per coord.
      gs[c] = cb * (gz[c] * xr[c] * e + gld);
      gt[c] = cb * gz[c];
    }
  }

  // Backprop s = s_scale * tanh(s_raw).
  nn::Matrix& grad_s_raw = grad_s_raw_ws_;
  grad_s_raw.resize(rows, cols);
  const float* scale = s_scale_.value.data();
  float* gscale = s_scale_.grad.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* gs = grad_s.row(r);
    const float* raw = cached_s_raw_.row(r);
    float* gsr = grad_s_raw.row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      const float th = std::tanh(raw[c]);
      gscale[c] += gs[c] * th;
      gsr[c] = gs[c] * scale[c] * (1.0f - th * th);
    }
  }

  // Backprop through the s/t network into its masked input, then through
  // the masking (h = b.x) into x.
  net_.backward_into(grad_s_raw, grad_t, grad_h_ws_);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* gh = grad_h_ws_.row(r);
    float* gx = grad_x.row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      gx[c] += mask_[c] * gh[c];
    }
  }
}

std::vector<nn::Param*> AffineCoupling::parameters() {
  std::vector<nn::Param*> params = net_.parameters();
  params.push_back(&s_scale_);
  return params;
}

}  // namespace passflow::flow
