#include "flow/flow_model.hpp"

#include <algorithm>
#include <cmath>

#include "nn/ops.hpp"
#include "nn/serialize.hpp"
#include "util/thread_pool.hpp"

namespace passflow::flow {

namespace {
constexpr double kLog2Pi = 1.8378770664093453;  // log(2*pi)

// Below this many rows per worker, chunking costs more than it saves.
constexpr std::size_t kMinRowsPerWorker = 16;

bool worth_chunking(const util::ThreadPool* pool, std::size_t rows) {
  return pool != nullptr && pool->size() > 1 &&
         rows >= 2 * kMinRowsPerWorker;
}
}

double standard_normal_log_density(const float* z, std::size_t dim) {
  double sq = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    sq += static_cast<double>(z[i]) * z[i];
  }
  return -0.5 * (sq + static_cast<double>(dim) * kLog2Pi);
}

FlowModel::FlowModel(FlowConfig config, util::Rng& rng) : config_(config) {
  couplings_.reserve(config_.num_couplings);
  for (std::size_t i = 0; i < config_.num_couplings; ++i) {
    couplings_.push_back(std::make_unique<AffineCoupling>(
        config_.dim, config_.hidden, config_.residual_blocks,
        mask_for_layer(config_.mask, config_.dim, i), rng,
        "coupling" + std::to_string(i)));
  }
}

nn::Matrix FlowModel::forward(const nn::Matrix& x,
                              std::vector<double>& log_det) {
  log_det.assign(x.rows(), 0.0);
  nn::Matrix h = x;
  for (auto& coupling : couplings_) h = coupling->forward(h, log_det);
  return h;
}

nn::Matrix FlowModel::forward_inference(const nn::Matrix& x,
                                        std::vector<double>* log_det) const {
  if (log_det) log_det->assign(x.rows(), 0.0);
  nn::Matrix h = x;
  for (const auto& coupling : couplings_) {
    h = coupling->forward_inference(h, log_det);
  }
  return h;
}

nn::Matrix FlowModel::inverse(const nn::Matrix& z) const {
  nn::Matrix h = z;
  for (auto it = couplings_.rbegin(); it != couplings_.rend(); ++it) {
    h = (*it)->inverse(h);
  }
  return h;
}

nn::Matrix FlowModel::forward_inference(const nn::Matrix& x,
                                        std::vector<double>* log_det,
                                        util::ThreadPool* pool) const {
  if (!worth_chunking(pool, x.rows())) return forward_inference(x, log_det);
  if (log_det) log_det->assign(x.rows(), 0.0);
  nn::Matrix z(x.rows(), x.cols());
  pool->parallel_chunks(
      x.rows(), [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<double> chunk_log_det;
        const nn::Matrix chunk = forward_inference(
            x.slice_rows(begin, end), log_det ? &chunk_log_det : nullptr);
        z.set_rows(begin, chunk);
        if (log_det) {
          std::copy(chunk_log_det.begin(), chunk_log_det.end(),
                    log_det->begin() + static_cast<std::ptrdiff_t>(begin));
        }
      });
  return z;
}

nn::Matrix FlowModel::inverse(const nn::Matrix& z,
                              util::ThreadPool* pool) const {
  if (!worth_chunking(pool, z.rows())) return inverse(z);
  nn::Matrix x(z.rows(), z.cols());
  pool->parallel_chunks(
      z.rows(), [&](std::size_t, std::size_t begin, std::size_t end) {
        x.set_rows(begin, inverse(z.slice_rows(begin, end)));
      });
  return x;
}

std::vector<double> FlowModel::log_prob(const nn::Matrix& x) const {
  std::vector<double> log_det;
  const nn::Matrix z = forward_inference(x, &log_det);
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = standard_normal_log_density(z.row(r), z.cols()) + log_det[r];
  }
  return out;
}

double FlowModel::nll_backward(const nn::Matrix& x) {
  const std::size_t n = x.rows();
  std::vector<double> log_det;
  const nn::Matrix z = forward(x, log_det);

  // L = (1/n) sum_i [ 0.5*||z_i||^2 + D/2 log(2pi) - log_det_i ]
  double loss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    loss += -standard_normal_log_density(z.row(r), z.cols()) - log_det[r];
  }
  loss /= static_cast<double>(n);

  // dL/dz = z / n ; dL/d(log_det_i) = -1/n.
  nn::Matrix grad_z = z;
  nn::scale_inplace(grad_z, 1.0f / static_cast<float>(n));
  std::vector<double> grad_log_det(n, -1.0 / static_cast<double>(n));

  nn::Matrix grad = grad_z;
  std::vector<double> grad_ld = grad_log_det;
  for (auto it = couplings_.rbegin(); it != couplings_.rend(); ++it) {
    grad = (*it)->backward(grad, grad_ld);
    // grad_log_det flows unchanged through earlier layers: each layer's
    // log-det enters the loss additively, so every coupling sees -1/n.
  }
  return loss;
}

double FlowModel::nll(const nn::Matrix& x) const {
  const auto lp = log_prob(x);
  double loss = 0.0;
  for (double v : lp) loss -= v;
  return loss / static_cast<double>(lp.size());
}

std::vector<nn::Param*> FlowModel::parameters() {
  std::vector<nn::Param*> params;
  for (auto& coupling : couplings_) {
    const auto p = coupling->parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

std::size_t FlowModel::parameter_count() {
  std::size_t n = 0;
  for (nn::Param* p : parameters()) n += p->value.size();
  return n;
}

void FlowModel::zero_grad() {
  for (nn::Param* p : parameters()) p->grad.zero();
}

void FlowModel::save(const std::string& path) {
  nn::save_params_file(path, parameters());
}

void FlowModel::load(const std::string& path) {
  nn::load_params_file(path, parameters());
}

}  // namespace passflow::flow
