#include "flow/flow_model.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/ops.hpp"
#include "nn/serialize.hpp"
#include "util/thread_pool.hpp"

namespace passflow::flow {

namespace {
constexpr double kLog2Pi = 1.8378770664093453;  // log(2*pi)

// Below this many rows per worker, chunking costs more than it saves.
constexpr std::size_t kMinRowsPerWorker = 16;

bool worth_chunking(const util::ThreadPool* pool, std::size_t rows) {
  return pool != nullptr && pool->size() > 1 &&
         rows >= 2 * kMinRowsPerWorker;
}
}

double standard_normal_log_density(const float* z, std::size_t dim) {
  double sq = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    sq += static_cast<double>(z[i]) * z[i];
  }
  return -0.5 * (sq + static_cast<double>(dim) * kLog2Pi);
}

FlowModel::FlowModel(FlowConfig config, util::Rng& rng) : config_(config) {
  couplings_.reserve(config_.num_couplings);
  for (std::size_t i = 0; i < config_.num_couplings; ++i) {
    couplings_.push_back(std::make_unique<AffineCoupling>(
        config_.dim, config_.hidden, config_.residual_blocks,
        mask_for_layer(config_.mask, config_.dim, i), rng,
        "coupling" + std::to_string(i)));
  }
}

nn::Matrix FlowModel::forward(const nn::Matrix& x,
                              std::vector<double>& log_det) {
  log_det.assign(x.rows(), 0.0);
  nn::Matrix h = x;
  for (auto& coupling : couplings_) h = coupling->forward(h, log_det);
  return h;
}

nn::Matrix FlowModel::forward_inference(const nn::Matrix& x,
                                        std::vector<double>* log_det) const {
  if (log_det) log_det->assign(x.rows(), 0.0);
  nn::Matrix h = x;
  for (const auto& coupling : couplings_) {
    h = coupling->forward_inference(h, log_det);
  }
  return h;
}

nn::Matrix FlowModel::inverse(const nn::Matrix& z) const {
  nn::Matrix h = z;
  for (auto it = couplings_.rbegin(); it != couplings_.rend(); ++it) {
    h = (*it)->inverse(h);
  }
  return h;
}

nn::Matrix FlowModel::forward_inference(const nn::Matrix& x,
                                        std::vector<double>* log_det,
                                        util::ThreadPool* pool) const {
  if (!worth_chunking(pool, x.rows())) return forward_inference(x, log_det);
  if (log_det) log_det->assign(x.rows(), 0.0);
  nn::Matrix z(x.rows(), x.cols());
  pool->parallel_chunks(
      x.rows(), [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<double> chunk_log_det;
        const nn::Matrix chunk = forward_inference(
            x.slice_rows(begin, end), log_det ? &chunk_log_det : nullptr);
        z.set_rows(begin, chunk);
        if (log_det) {
          std::copy(chunk_log_det.begin(), chunk_log_det.end(),
                    log_det->begin() + static_cast<std::ptrdiff_t>(begin));
        }
      });
  return z;
}

nn::Matrix FlowModel::inverse(const nn::Matrix& z,
                              util::ThreadPool* pool) const {
  if (!worth_chunking(pool, z.rows())) return inverse(z);
  nn::Matrix x(z.rows(), z.cols());
  pool->parallel_chunks(
      z.rows(), [&](std::size_t, std::size_t begin, std::size_t end) {
        x.set_rows(begin, inverse(z.slice_rows(begin, end)));
      });
  return x;
}

std::vector<double> FlowModel::log_prob(const nn::Matrix& x) const {
  return log_prob_batch(x, nullptr);
}

std::vector<double> FlowModel::log_prob_batch(const nn::Matrix& x,
                                              util::ThreadPool* pool) const {
  std::vector<double> log_det;
  const nn::Matrix z = forward_inference(x, &log_det, pool);
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = standard_normal_log_density(z.row(r), z.cols()) + log_det[r];
  }
  return out;
}

double FlowModel::nll_backward(const nn::Matrix& x) {
  const std::size_t n = x.rows();
  log_det_ws_.assign(n, 0.0);

  // Forward ladder: activations ping-pong between the two workspaces, so a
  // warm trainer performs no allocations here.
  const nn::Matrix* h = &x;
  for (auto& coupling : couplings_) {
    nn::Matrix& dst = (h == &fwd_ws_a_) ? fwd_ws_b_ : fwd_ws_a_;
    coupling->forward_into(*h, log_det_ws_, dst);
    h = &dst;
  }
  const nn::Matrix& z = *h;

  // L = (1/n) sum_i [ 0.5*||z_i||^2 + D/2 log(2pi) - log_det_i ]
  double loss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    loss += -standard_normal_log_density(z.row(r), z.cols()) - log_det_ws_[r];
  }
  loss /= static_cast<double>(n);

  // dL/dz = z / n ; dL/d(log_det_i) = -1/n.
  grad_ws_a_ = z;
  nn::scale_inplace(grad_ws_a_, 1.0f / static_cast<float>(n));
  grad_log_det_ws_.assign(n, -1.0 / static_cast<double>(n));

  const nn::Matrix* g = &grad_ws_a_;
  for (auto it = couplings_.rbegin(); it != couplings_.rend(); ++it) {
    nn::Matrix& dst = (g == &grad_ws_a_) ? grad_ws_b_ : grad_ws_a_;
    (*it)->backward_into(*g, grad_log_det_ws_, dst);
    g = &dst;
    // grad_log_det flows unchanged through earlier layers: each layer's
    // log-det enters the loss additively, so every coupling sees -1/n.
  }
  return loss;
}

namespace {
// Shards smaller than this are not worth a replica sync + reduction.
constexpr std::size_t kMinRowsPerShard = 32;
}  // namespace

void FlowModel::ensure_replicas(std::size_t count) {
  while (replicas_.size() < count) {
    // Initial weights are irrelevant — every pooled step overwrites them
    // with this model's parameters before use.
    util::Rng rng(0x9e3779b9 + replicas_.size());
    replicas_.push_back(std::make_unique<FlowModel>(config_, rng));
  }
  if (shard_ws_.size() < count) shard_ws_.resize(count);
}

double FlowModel::nll_backward(const nn::Matrix& x, util::ThreadPool* pool) {
  const std::size_t rows = x.rows();
  const std::size_t shards =
      (pool != nullptr && pool->size() > 1)
          ? std::min<std::size_t>(pool->size(), rows / kMinRowsPerShard)
          : 0;
  if (shards < 2) return nll_backward(x);
  ensure_replicas(shards);

  const auto params = parameters();
  std::vector<double> shard_loss(shards, 0.0);
  std::vector<std::size_t> shard_rows(shards, 0);

  // Each worker syncs its replica's parameters, then runs the serial
  // forward+backward on its contiguous shard. The balanced split below
  // (shard s covers [s*rows/shards, (s+1)*rows/shards)) keeps every shard
  // non-empty and in range for any shards <= rows, unlike a ceil-division
  // partition whose tail shards can start past the end. Replicas are
  // worker-private, so no state is shared; OpenMP inside pool workers is
  // pinned to one thread, so the GEMMs stay serial per worker.
  pool->parallel_for(shards, [&](std::size_t s) {
    const std::size_t begin = s * rows / shards;
    const std::size_t end = (s + 1) * rows / shards;
    FlowModel& replica = *replicas_[s];
    const auto rparams = replica.parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      rparams[i]->value = params[i]->value;
    }
    replica.zero_grad();

    nn::Matrix& shard = shard_ws_[s];
    shard.resize(end - begin, x.cols());
    std::copy(x.row(begin), x.row(begin) + shard.size(), shard.data());

    shard_loss[s] = replica.nll_backward(shard);
    shard_rows[s] = end - begin;
  });

  // Combine: grad = sum_s (n_s / n) * grad_s, reduced pairwise over a tree
  // whose shape depends only on the shard count, parallelized across
  // parameters (each parameter's arithmetic happens on exactly one worker
  // in a fixed order, so results are bitwise reproducible).
  std::vector<std::vector<nn::Param*>> rparams(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    rparams[s] = replicas_[s]->parameters();
  }
  pool->parallel_for(params.size(), [&](std::size_t pi) {
    for (std::size_t s = 0; s < shards; ++s) {
      const float w = static_cast<float>(
          static_cast<double>(shard_rows[s]) / static_cast<double>(rows));
      nn::scale_inplace(rparams[s][pi]->grad, w);
    }
    for (std::size_t stride = 1; stride < shards; stride *= 2) {
      for (std::size_t s = 0; s + stride < shards; s += 2 * stride) {
        nn::add_inplace(rparams[s][pi]->grad, rparams[s + stride][pi]->grad);
      }
    }
    nn::add_inplace(params[pi]->grad, rparams[0][pi]->grad);
  });

  double loss = 0.0;
  for (std::size_t s = 0; s < shards; ++s) {
    loss += shard_loss[s] * static_cast<double>(shard_rows[s]) /
            static_cast<double>(rows);
  }
  return loss;
}

double FlowModel::nll(const nn::Matrix& x) const {
  return nll(x, nullptr);
}

double FlowModel::nll(const nn::Matrix& x, util::ThreadPool* pool) const {
  std::vector<double> log_det;
  const nn::Matrix z = forward_inference(x, &log_det, pool);
  double loss = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    loss -= standard_normal_log_density(z.row(r), z.cols()) + log_det[r];
  }
  return loss / static_cast<double>(x.rows());
}

std::vector<nn::Param*> FlowModel::parameters() {
  std::vector<nn::Param*> params;
  for (auto& coupling : couplings_) {
    const auto p = coupling->parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

std::size_t FlowModel::parameter_count() {
  std::size_t n = 0;
  for (nn::Param* p : parameters()) n += p->value.size();
  return n;
}

void FlowModel::zero_grad() {
  for (nn::Param* p : parameters()) p->grad.zero();
}

void FlowModel::save(const std::string& path) {
  nn::save_params_file(path, parameters());
}

void FlowModel::load(const std::string& path) {
  nn::load_params_file(path, parameters());
}

}  // namespace passflow::flow
