#include "flow/mask.hpp"

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace passflow::flow {

std::vector<float> make_mask(const MaskConfig& config, std::size_t dim) {
  if (dim == 0) throw std::invalid_argument("mask dim must be > 0");
  std::vector<float> mask(dim, 0.0f);
  switch (config.scheme) {
    case MaskScheme::kCharRun: {
      if (config.run_length == 0) {
        throw std::invalid_argument("char-run mask requires run_length > 0");
      }
      for (std::size_t i = 0; i < dim; ++i) {
        mask[i] = ((i / config.run_length) % 2 == 0) ? 1.0f : 0.0f;
      }
      break;
    }
    case MaskScheme::kHorizontal: {
      for (std::size_t i = 0; i < dim / 2; ++i) mask[i] = 1.0f;
      break;
    }
  }
  return mask;
}

std::vector<float> negate_mask(const std::vector<float>& mask) {
  std::vector<float> out(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i) out[i] = 1.0f - mask[i];
  return out;
}

std::vector<float> mask_for_layer(const MaskConfig& config, std::size_t dim,
                                  std::size_t layer_index) {
  const auto base = make_mask(config, dim);
  return layer_index % 2 == 0 ? base : negate_mask(base);
}

std::string mask_to_string(const std::vector<float>& mask) {
  std::string out;
  for (float v : mask) out += v > 0.5f ? '1' : '0';
  return out;
}

std::string scheme_name(const MaskConfig& config) {
  switch (config.scheme) {
    case MaskScheme::kCharRun:
      return "char-run-" + std::to_string(config.run_length);
    case MaskScheme::kHorizontal:
      return "horizontal";
  }
  return "?";
}

MaskConfig parse_mask_config(const std::string& name) {
  if (name == "horizontal") return {MaskScheme::kHorizontal, 0};
  const std::string prefix = "char-run-";
  if (name.rfind(prefix, 0) == 0) {
    const std::size_t m = std::stoul(name.substr(prefix.size()));
    return {MaskScheme::kCharRun, m};
  }
  throw std::invalid_argument("unknown mask scheme: " + name);
}

}  // namespace passflow::flow
