// Binary coupling masks (§III-A.1, §V-C).
//
// A mask b in {0,1}^D partitions the input: positions with b=1 pass through
// the coupling unchanged and condition the transformation of the b=0
// positions. The paper evaluates three schemes (Table VI):
//   * char-run m: alternating runs of m ones and m zeros (m=1 is best);
//   * horizontal: D/2 ones followed by D/2 zeros.
// Consecutive coupling layers alternate b and 1-b (Figure 1) so that every
// position is transformed at least every other layer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace passflow::flow {

enum class MaskScheme { kCharRun, kHorizontal };

struct MaskConfig {
  MaskScheme scheme = MaskScheme::kCharRun;
  std::size_t run_length = 1;  // m, used by kCharRun only
};

// Returns the base mask b for the given dimensionality.
std::vector<float> make_mask(const MaskConfig& config, std::size_t dim);

// Complement 1-b.
std::vector<float> negate_mask(const std::vector<float>& mask);

// Mask for coupling layer `layer_index`: the base mask for even layers, its
// complement for odd layers.
std::vector<float> mask_for_layer(const MaskConfig& config, std::size_t dim,
                                  std::size_t layer_index);

std::string mask_to_string(const std::vector<float>& mask);
std::string scheme_name(const MaskConfig& config);

// Parses "char-run-1", "char-run-2", "horizontal" (used by bench flags).
MaskConfig parse_mask_config(const std::string& name);

}  // namespace passflow::flow
