// NLL trainer for the flow (§IV-D: Adam, lr 1e-3, batch 512, pick the best
// epoch by validation NLL).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "flow/flow_model.hpp"
#include "nn/adam.hpp"
#include "util/thread_pool.hpp"

namespace passflow::flow {

struct TrainConfig {
  std::size_t epochs = 20;
  std::size_t batch_size = 512;
  double learning_rate = 1e-3;
  double lr_decay = 1.0;        // multiplicative per-epoch decay (1 = none)
  double clip_norm = 5.0;       // manual-backprop flows benefit from clipping
  double weight_decay = 0.0;
  std::size_t log_every = 50;   // batches; 0 silences progress logs
  std::uint64_t seed = 7;
  // Fraction of the training set held out to pick the best epoch; 0 keeps
  // the final weights instead.
  double validation_fraction = 0.05;
  // Optional worker pool: nll_backward shards each batch across it (one
  // model replica per worker, deterministic tree-reduced gradients) and
  // validation NLL uses row-chunked inference. Null trains single-threaded.
  // Results are bitwise reproducible at a fixed pool size but differ from
  // the serial summation order.
  util::ThreadPool* pool = nullptr;
};

struct EpochStats {
  std::size_t epoch = 0;
  double train_nll = 0.0;
  double validation_nll = 0.0;
  double seconds = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double best_validation_nll = 0.0;
  std::size_t best_epoch = 0;
};

class Trainer {
 public:
  Trainer(FlowModel& model, TrainConfig config);

  // Trains on `passwords`, restoring the best-validation epoch's weights at
  // the end (mirrors "we pick the best performing epoch", §IV-D). The
  // optional callback fires after every epoch.
  TrainResult train(
      const std::vector<std::string>& passwords, const data::Encoder& encoder,
      const std::function<void(const EpochStats&)>& on_epoch = nullptr);

 private:
  FlowModel& model_;
  TrainConfig config_;
};

}  // namespace passflow::flow
