// Affine coupling layer (Dinh et al. Real NVP, as adapted by PassFlow §III-A).
//
// With mask b (1 = identity part):
//
//   forward:  z = b.x + (1-b).(x . exp(s(b.x)) + t(b.x))        (Eq. 13)
//   inverse:  x = b.z + (1-b).((z - t(b.z)) . exp(-s(b.z)))
//   log|det J| = sum_j ((1-b) . s)_j                            (Eq. 12)
//
// s and t are the two heads of one ResNet (§IV-D: 2 residual blocks, hidden
// 256). The raw s head passes through scale * tanh(.) with a learned
// per-dimension scale — the standard Real NVP stabilization; since the heads
// are zero-initialized, every coupling starts exactly at the identity.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "flow/mask.hpp"
#include "nn/mlp.hpp"

namespace passflow::flow {

class AffineCoupling {
 public:
  AffineCoupling(std::size_t dim, std::size_t hidden, std::size_t depth,
                 std::vector<float> mask, util::Rng& rng,
                 const std::string& name = "coupling");

  std::size_t dim() const { return mask_.size(); }
  const std::vector<float>& mask() const { return mask_; }

  // Training forward x -> z. Adds each sample's log-det contribution into
  // `log_det` (size = batch rows). Caches activations for backward().
  nn::Matrix forward(const nn::Matrix& x, std::vector<double>& log_det);
  // Same, writing z into a caller buffer (must not alias x); allocation-free
  // once warm via member workspaces, so only safe from one trainer thread.
  void forward_into(const nn::Matrix& x, std::vector<double>& log_det,
                    nn::Matrix& z);

  // Inference forward (no caching, no gradients).
  nn::Matrix forward_inference(const nn::Matrix& x,
                               std::vector<double>* log_det = nullptr) const;

  // Exact inverse z -> x (inference only; flows never backprop the inverse).
  nn::Matrix inverse(const nn::Matrix& z) const;

  // Backward for loss terms L(z, log_det): takes dL/dz and dL/d(log_det) per
  // sample, accumulates parameter gradients, returns dL/dx.
  nn::Matrix backward(const nn::Matrix& grad_z,
                      const std::vector<double>& grad_log_det);
  void backward_into(const nn::Matrix& grad_z,
                     const std::vector<double>& grad_log_det,
                     nn::Matrix& grad_x);

  std::vector<nn::Param*> parameters();

 private:
  struct STResult {
    nn::Matrix s;      // bounded scale = s_scale * tanh(s_raw)
    nn::Matrix s_raw;  // cached pre-tanh logits (backward needs them)
    nn::Matrix t;
  };
  STResult compute_st(const nn::Matrix& masked_input) const;

  std::vector<float> mask_;  // b
  mutable nn::ResNetST net_; // mutable: forward_inference caches nothing but
                             // must call non-const net entry points
  nn::Param s_scale_;        // learned per-dim bound on the scale (1 x dim)

  // Training-forward caches.
  nn::Matrix cached_x_;
  nn::Matrix cached_s_;
  nn::Matrix cached_s_raw_;

  // Training-only workspaces (never touched by the const inference paths,
  // which must stay safe under concurrent calls).
  nn::Matrix masked_ws_;
  nn::Matrix t_ws_;
  nn::Matrix grad_s_ws_;
  nn::Matrix grad_t_ws_;
  nn::Matrix grad_s_raw_ws_;
  nn::Matrix grad_h_ws_;
};

}  // namespace passflow::flow
