#include "flow/trainer.hpp"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace passflow::flow {

namespace {
// Snapshot/restore of parameter values for best-epoch selection.
std::vector<nn::Matrix> snapshot(const std::vector<nn::Param*>& params) {
  std::vector<nn::Matrix> values;
  values.reserve(params.size());
  for (const nn::Param* p : params) values.push_back(p->value);
  return values;
}

void restore(const std::vector<nn::Param*>& params,
             const std::vector<nn::Matrix>& values) {
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = values[i];
  }
}
}  // namespace

Trainer::Trainer(FlowModel& model, TrainConfig config)
    : model_(model), config_(config) {}

TrainResult Trainer::train(
    const std::vector<std::string>& passwords, const data::Encoder& encoder,
    const std::function<void(const EpochStats&)>& on_epoch) {
  util::Rng rng(config_.seed);

  // Hold out a validation slice for best-epoch selection.
  std::vector<std::string> train_split = passwords;
  std::vector<std::string> val_split;
  if (config_.validation_fraction > 0.0 && passwords.size() >= 20) {
    const auto perm = rng.permutation(passwords.size());
    const std::size_t val_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(passwords.size()) *
                                    config_.validation_fraction));
    train_split.clear();
    for (std::size_t i = 0; i < passwords.size(); ++i) {
      if (i < val_count) {
        val_split.push_back(passwords[perm[i]]);
      } else {
        train_split.push_back(passwords[perm[i]]);
      }
    }
  }

  data::Dataset dataset(std::move(train_split), encoder);
  nn::Matrix val_batch;
  if (!val_split.empty()) val_batch = encoder.encode_batch(val_split);

  nn::AdamConfig adam_config;
  adam_config.learning_rate = config_.learning_rate;
  adam_config.clip_norm = config_.clip_norm;
  adam_config.weight_decay = config_.weight_decay;
  const auto params = model_.parameters();
  nn::Adam optimizer(params, adam_config);

  TrainResult result;
  result.best_validation_nll = std::numeric_limits<double>::infinity();
  std::vector<nn::Matrix> best_params;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    util::Timer timer;
    if (epoch > 0 && config_.lr_decay != 1.0) {
      optimizer.set_learning_rate(optimizer.learning_rate() *
                                  config_.lr_decay);
    }
    dataset.start_epoch(rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    nn::Matrix batch;
    while (dataset.next_batch(config_.batch_size, rng, batch) > 0) {
      model_.zero_grad();
      const double loss = model_.nll_backward(batch, config_.pool);
      optimizer.step();
      epoch_loss += loss;
      ++batches;
      if (config_.log_every > 0 && batches % config_.log_every == 0) {
        PF_LOG_DEBUG << "epoch " << epoch << " batch " << batches
                     << " nll=" << loss;
      }
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_nll = batches > 0 ? epoch_loss / static_cast<double>(batches)
                                  : 0.0;
    stats.validation_nll = val_batch.rows() > 0
                               ? model_.nll(val_batch, config_.pool)
                               : stats.train_nll;
    stats.seconds = timer.elapsed_seconds();
    result.history.push_back(stats);

    if (stats.validation_nll < result.best_validation_nll) {
      result.best_validation_nll = stats.validation_nll;
      result.best_epoch = epoch;
      best_params = snapshot(params);
    }

    if (config_.log_every > 0) {
      PF_LOG_INFO << "epoch " << epoch << ": train_nll=" << stats.train_nll
                  << " val_nll=" << stats.validation_nll << " ("
                  << util::format_duration(stats.seconds) << ")";
    }
    if (on_epoch) on_epoch(stats);
  }

  if (!best_params.empty()) restore(params, best_params);
  return result;
}

}  // namespace passflow::flow
