// Client side of the credential-screening conversation: dials a
// StrengthServer, performs the Hello/Welcome handshake, and exchanges
// StrengthQuery/StrengthReply frames.
//
// Two usage shapes:
//   - query(): one synchronous round trip, for screening call sites.
//   - send_query()/recv_reply(): pipelined halves for load generators —
//     many queries in flight on one connection, replies read in order
//     (the server answers a connection's queries in arrival order, except
//     Overloaded refusals, which return immediately; match on request_id).
//
// Not thread-safe: one StrengthClient per thread, like Connection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "dist/transport.hpp"

namespace passflow::serve {

class StrengthClient {
 public:
  // Dials and handshakes; throws on connect failure, version mismatch, or
  // anything but a Welcome coming back.
  StrengthClient(const std::string& host, std::uint16_t port);

  std::uint64_t client_id() const { return client_id_; }

  // One synchronous round trip.
  dist::StrengthReplyMsg query(const std::vector<std::string>& candidates);

  // Pipelined send; returns the request_id the reply will echo.
  std::uint64_t send_query(const std::vector<std::string>& candidates);

  // Blocks for the next reply frame. Throws on EOF/corrupt frames or if
  // the server sends anything that is not a StrengthReply.
  dist::StrengthReplyMsg recv_reply();

  // True when recv_reply() would make progress within timeout_ms.
  bool reply_ready(int timeout_ms) { return connection_.readable(timeout_ms); }

  void close() { connection_.close(); }

 private:
  dist::Connection connection_;
  std::uint64_t client_id_ = 0;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace passflow::serve
