#include "serve/strength_server.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <utility>

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace passflow::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// exp(-log_mass) for the importance weights; one pathologically small
// sample mass must not turn into an inf that poisons every larger guess
// number, so the exponent is clamped just under the double overflow edge.
double inverse_mass(double log_mass) {
  return std::exp(std::min(-log_mass, 700.0));
}

}  // namespace

StrengthServer::StrengthServer(StrengthServerConfig config,
                               const flow::FlowModel& model,
                               const data::Encoder& encoder,
                               std::shared_ptr<const guessing::Matcher> matcher)
    : config_(std::move(config)),
      model_(model),
      encoder_(encoder),
      matcher_(std::move(matcher)),
      listener_(config_.port) {
  if (matcher_ == nullptr) {
    throw std::runtime_error("strength server: null matcher");
  }
  if (config_.max_batch == 0) config_.max_batch = 1;
  build_calibration();
}

StrengthServer::~StrengthServer() = default;

void StrengthServer::build_calibration() {
  // One code bin of the encoder covers 1/|alphabet| per dimension, so a
  // candidate's probability mass is p(bin center) * bin volume.
  log_bin_volume_ =
      -static_cast<double>(model_.dim()) *
      std::log(static_cast<double>(encoder_.alphabet().size()));

  const std::size_t n = std::max<std::size_t>(1, config_.calibration_samples);
  const std::size_t step = std::max<std::size_t>(1, config_.calibration_batch);
  calibration_log_mass_.reserve(n);
  util::Rng rng(config_.calibration_seed);
  for (std::size_t done = 0; done < n; done += step) {
    const std::size_t rows = std::min(step, n - done);
    nn::Matrix z(rows, model_.dim());
    for (std::size_t r = 0; r < rows; ++r) {
      float* row = z.row(r);
      for (std::size_t c = 0; c < z.cols(); ++c) {
        row[c] = static_cast<float>(rng.normal());
      }
    }
    // Sample -> password -> that password's bin-center mass. Decoded
    // strings are always re-encodable (decode clamps into the alphabet).
    const nn::Matrix x = model_.inverse(z, config_.pool);
    const std::vector<std::string> passwords =
        encoder_.decode_batch(x, config_.pool);
    const nn::Matrix centers = encoder_.encode_batch(passwords);
    const std::vector<double> log_prob =
        model_.log_prob_batch(centers, config_.pool);
    for (const double lp : log_prob) {
      calibration_log_mass_.push_back(lp + log_bin_volume_);
    }
  }

  // Dell'Amico–Filippone: rank(p) ~= 1 + sum_{mass_i > p} 1/(N * mass_i).
  // Sorting descending turns every query into a binary search plus one
  // prefix-sum lookup; summation order is fixed, so estimates are
  // deterministic given (model, seed, N).
  std::sort(calibration_log_mass_.begin(), calibration_log_mass_.end(),
            std::greater<double>());
  weight_prefix_.assign(calibration_log_mass_.size() + 1, 0.0);
  const double scale = 1.0 / static_cast<double>(calibration_log_mass_.size());
  for (std::size_t i = 0; i < calibration_log_mass_.size(); ++i) {
    weight_prefix_[i + 1] =
        weight_prefix_[i] + scale * inverse_mass(calibration_log_mass_[i]);
  }
}

double StrengthServer::guess_number_for_log_prob(double log_prob) const {
  if (!std::isfinite(log_prob)) return log_prob > 0 ? 1.0 : kInf;
  const double log_mass = log_prob + log_bin_volume_;
  // Samples strictly more massive than the candidate precede it in a
  // likelihood-ordered attack. Descending sort: they form the prefix.
  const auto first_not_greater =
      std::lower_bound(calibration_log_mass_.begin(),
                       calibration_log_mass_.end(), log_mass,
                       std::greater<double>());
  const std::size_t stronger_count = static_cast<std::size_t>(
      first_not_greater - calibration_log_mass_.begin());
  return 1.0 + weight_prefix_[stronger_count];
}

bool StrengthServer::candidate_representable(
    const std::string& candidate) const {
  if (candidate.size() > encoder_.dim()) return false;
  const data::Alphabet& alphabet = encoder_.alphabet();
  for (const char c : candidate) {
    // PAD is *in* the alphabet but means end-of-string to the encoder, so
    // an embedded NUL cannot be represented faithfully.
    if (c == alphabet.pad() || !alphabet.contains(c)) return false;
  }
  return true;
}

std::vector<dist::StrengthEstimate> StrengthServer::score(
    const std::vector<std::string>& candidates) const {
  std::vector<dist::StrengthEstimate> out(candidates.size());
  if (candidates.empty()) return out;

  // Membership is byte-exact and runs for every candidate, representable
  // or not — a breached password is breached regardless of the model's
  // alphabet.
  std::vector<char> in_index;
  matcher_->contains_batch(candidates, config_.pool, in_index);

  std::vector<std::size_t> rep_index;
  std::vector<std::string> rep;
  rep_index.reserve(candidates.size());
  rep.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidate_representable(candidates[i])) {
      rep_index.push_back(i);
      rep.push_back(candidates[i]);
    } else {
      out[i].log_prob = -kInf;
      out[i].guess_number = kInf;
      out[i].representable = false;
    }
  }
  if (!rep.empty()) {
    const nn::Matrix x = encoder_.encode_batch(rep);
    const std::vector<double> log_prob = model_.log_prob_batch(x, config_.pool);
    for (std::size_t j = 0; j < rep.size(); ++j) {
      dist::StrengthEstimate& e = out[rep_index[j]];
      e.log_prob = log_prob[j];
      e.guess_number = guess_number_for_log_prob(log_prob[j]);
      e.representable = true;
    }
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    out[i].in_index = in_index[i] != 0;
  }
  return out;
}

bool StrengthServer::poll_once(int timeout_ms) {
  if (stop_.load(std::memory_order_relaxed)) return false;
  sweep_dead_clients();

  // poll() cannot see bytes already pulled into a connection's streambuf,
  // and queued work needs no wait at all — only sleep when truly idle.
  bool buffered = false;
  for (const Client& client : clients_) {
    if (!client.dead && client.connection.has_buffered()) buffered = true;
  }
  if (!buffered && pending_.empty()) {
    std::vector<int> fds;
    fds.reserve(clients_.size() + 1);
    fds.push_back(listener_.fd());
    for (const Client& client : clients_) {
      if (!client.dead) fds.push_back(client.connection.fd());
    }
    dist::wait_any_readable(fds, timeout_ms);
  }

  accept_new_clients();
  for (Client& client : clients_) {
    if (!client.dead) drain_client(client);
  }
  process_pending();
  sweep_dead_clients();
  return !stop_.load(std::memory_order_relaxed);
}

void StrengthServer::run() {
  while (poll_once(50)) {
  }
}

void StrengthServer::accept_new_clients() {
  while (listener_.pending(0)) {
    clients_.push_back(
        Client{next_client_id_++, listener_.accept_connection()});
    ++stats_.clients_accepted;
  }
}

void StrengthServer::drain_client(Client& client) {
  try {
    while (!client.dead && client.connection.readable(0)) {
      handle_message(client, dist::decode(client.connection.recv_frame()));
    }
  } catch (const std::exception&) {
    // EOF, torn frame, undecodable or out-of-conversation message: this
    // client is gone (or hostile); its admitted queries die with it.
    drop_client(client);
  }
}

void StrengthServer::handle_message(Client& client, dist::Message message) {
  if (auto* hello = std::get_if<dist::HelloMsg>(&message)) {
    if (hello->protocol_version != dist::kProtocolVersion) {
      throw std::runtime_error(
          "strength server: protocol version mismatch (client " +
          std::to_string(hello->protocol_version) + ", server " +
          std::to_string(dist::kProtocolVersion) + ")");
    }
    if (client.registered) {
      throw std::runtime_error("strength server: duplicate Hello");
    }
    client.registered = true;
    client.connection.send_frame(
        dist::encode(dist::Message{dist::WelcomeMsg{client.id}}));
    return;
  }
  auto* query = std::get_if<dist::StrengthQueryMsg>(&message);
  if (query == nullptr || !client.registered) {
    throw std::runtime_error(
        std::string("strength server: unexpected ") + message_name(message) +
        (client.registered ? "" : " before Hello"));
  }

  // Admission control: refuse — loudly, immediately — rather than queue
  // past the bound. The reply still carries the request_id, so a client
  // can tell exactly which query to retry.
  if (query->candidates.size() + pending_candidates_ >
      config_.max_pending_candidates) {
    ++stats_.overloaded;
    dist::StrengthReplyMsg refusal;
    refusal.request_id = query->request_id;
    refusal.status = dist::StrengthStatus::kOverloaded;
    client.connection.send_frame(
        dist::encode(dist::Message{std::move(refusal)}));
    ++stats_.replies_sent;
    return;
  }

  ++stats_.queries;
  PendingQuery pending;
  pending.client_id = client.id;
  pending.request_id = query->request_id;
  pending.estimates.resize(query->candidates.size());
  pending_candidates_ += query->candidates.size();
  pending.candidates = std::move(query->candidates);
  pending_.push_back(std::move(pending));
}

void StrengthServer::process_pending() {
  while (!pending_.empty()) {
    // Reply to fully-scored queries at the head (an empty candidate list
    // is born fully scored and answers with an empty Ok).
    while (!pending_.empty() &&
           pending_.front().scored == pending_.front().candidates.size()) {
      PendingQuery done = std::move(pending_.front());
      pending_.pop_front();
      dist::StrengthReplyMsg reply;
      reply.request_id = done.request_id;
      reply.status = dist::StrengthStatus::kOk;
      reply.estimates = std::move(done.estimates);
      send_reply(done.client_id, std::move(reply));
    }
    if (pending_.empty()) break;

    // Micro-batch: coalesce up to max_batch unscored candidates across
    // queries (and therefore across connections) in arrival order into
    // one model pass + one membership probe.
    std::vector<std::string> batch;
    std::vector<std::pair<std::size_t, std::size_t>> slot;  // query, cand
    const std::size_t want = std::min(config_.max_batch, pending_candidates_);
    batch.reserve(want);
    slot.reserve(want);
    for (std::size_t qi = 0; qi < pending_.size() && batch.size() < want;
         ++qi) {
      const PendingQuery& query = pending_[qi];
      for (std::size_t ci = query.scored;
           ci < query.candidates.size() && batch.size() < want; ++ci) {
        batch.push_back(query.candidates[ci]);
        slot.emplace_back(qi, ci);
      }
    }
    const std::vector<dist::StrengthEstimate> estimates = score(batch);
    ++stats_.batches;
    stats_.candidates_scored += batch.size();
    pending_candidates_ -= batch.size();
    for (std::size_t i = 0; i < slot.size(); ++i) {
      PendingQuery& query = pending_[slot[i].first];
      query.estimates[slot[i].second] = estimates[i];
      ++query.scored;
    }
  }
}

void StrengthServer::send_reply(std::uint64_t client_id,
                                dist::StrengthReplyMsg reply) {
  Client* client = find_client(client_id);
  // Disconnected mid-batch: its work is discarded, never mis-delivered.
  if (client == nullptr || client->dead) return;
  try {
    client->connection.send_frame(
        dist::encode(dist::Message{std::move(reply)}));
    ++stats_.replies_sent;
  } catch (const std::exception&) {
    drop_client(*client);
  }
}

StrengthServer::Client* StrengthServer::find_client(std::uint64_t client_id) {
  for (Client& client : clients_) {
    if (client.id == client_id) return &client;
  }
  return nullptr;
}

void StrengthServer::drop_client(Client& client) {
  if (client.dead) return;
  client.dead = true;
  client.connection.close();
  ++stats_.clients_dropped;
  // Un-admit the dead client's queued work so it cannot hold admission
  // slots (or burn batch capacity) for clients that are still alive.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->client_id == client.id) {
      pending_candidates_ -= it->candidates.size() - it->scored;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void StrengthServer::sweep_dead_clients() {
  clients_.erase(std::remove_if(clients_.begin(), clients_.end(),
                                [](const Client& c) { return c.dead; }),
                 clients_.end());
}

}  // namespace passflow::serve
