// Online credential-screening service: a long-lived server answering "how
// guessable is this password?" over the dist transport.
//
// This is the inverse of the offline attack the rest of the system runs:
// production traffic asks, per candidate password, for the flow's exact
// log-likelihood, an estimated guess number (the rank at which a
// likelihood-ordered attack would try it), and membership in the serving
// index (the breached-password point lookup). All three come back in one
// StrengthReply per StrengthQuery.
//
// Architecture: one single-threaded event loop (the coordinator's shape —
// wait_any_readable across listener + clients, drain frames, then work)
// over shared *read-only* model + matcher state. The hot path is a
// micro-batching loop: candidates from up to max_batch worth of in-flight
// queries — across connections — are coalesced into ONE
// FlowModel::log_prob_batch forward pass and ONE Matcher::contains_batch
// probe, amortizing GEMM setup exactly like the attack pipeline does.
// Because log_prob_batch rides the allocation-local inference path and
// rows are independent, a batched reply is bitwise identical to scoring
// the same candidate alone (serving_test proves it).
//
// Admission control: at most max_pending_candidates candidates may be
// queued awaiting a batch. A query that would exceed the bound is answered
// immediately with StrengthStatus::kOverloaded — never silently queued,
// never silently dropped — so a flooding client sees backpressure instead
// of unbounded server memory.
//
// Guess numbers use the Monte-Carlo rank estimator (Dell'Amico &
// Filippone, S&P 2015) adapted to the flow: draw N latents once at
// construction from a fixed seed, decode each to its password's bin
// center, and score those bin masses. The estimated rank of a candidate
// with probability mass p is then 1 + sum over samples with mass_i > p of
// 1/(N * mass_i) — deterministic given (model, seed, N), O(log N) per
// candidate via a sorted prefix-sum table.
//
// All liveness timekeeping in this layer is steady_clock-based
// (util::Timer); wall-clock time never gates a deadline, so an NTP step
// cannot starve or wedge the loop (a grep gate test enforces this for
// src/dist + src/serve).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "data/encoder.hpp"
#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "flow/flow_model.hpp"
#include "guessing/matcher.hpp"

namespace passflow::util {
class ThreadPool;
}

namespace passflow::serve {

struct StrengthServerConfig {
  std::uint16_t port = 0;  // 0 = ephemeral; StrengthServer::port() tells
  // K: max candidates coalesced into one model batch. Queries queue in
  // arrival order; one query's candidates may span batches.
  std::size_t max_batch = 64;
  // Admission bound: total candidates queued awaiting a batch. A query
  // that would push past this is refused with kOverloaded.
  std::size_t max_pending_candidates = 4096;
  // Optional pool for row-chunked inference + membership probes.
  util::ThreadPool* pool = nullptr;
  // Monte-Carlo guess-number calibration, drawn once at construction.
  std::size_t calibration_samples = 2048;
  std::uint64_t calibration_seed = 0x5eedf10uLL;
  std::size_t calibration_batch = 512;  // rows per calibration forward pass
};

struct StrengthServerStats {
  std::size_t clients_accepted = 0;
  std::size_t clients_dropped = 0;  // disconnect, EOF, or protocol error
  std::size_t queries = 0;          // StrengthQuery frames admitted
  std::size_t overloaded = 0;       // queries refused at the admission gate
  std::size_t candidates_scored = 0;
  std::size_t batches = 0;  // log_prob_batch calls the loop issued
  std::size_t replies_sent = 0;
};

class StrengthServer {
 public:
  // Binds the listener and runs the calibration pass. `model`, `encoder`
  // and `matcher` must stay alive (and unmodified) for the server's
  // lifetime; they are only ever read, so one instance may back several
  // servers. Throws on bind failure or if the transport is unavailable.
  StrengthServer(StrengthServerConfig config, const flow::FlowModel& model,
                 const data::Encoder& encoder,
                 std::shared_ptr<const guessing::Matcher> matcher);
  ~StrengthServer();

  StrengthServer(const StrengthServer&) = delete;
  StrengthServer& operator=(const StrengthServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  // One event-loop turn: sleep up to timeout_ms for activity, accept,
  // drain client frames (answering admission refusals inline), then score
  // every pending candidate in micro-batches and send replies. Returns
  // false once request_stop() was observed.
  bool poll_once(int timeout_ms = 50);

  // poll_once until request_stop(). Run this on a dedicated thread.
  void run();

  // Thread-safe: the loop observes it within one poll_once timeout.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  // Counters owned by the event-loop thread; read only after run()
  // returned (or between poll_once calls on the loop's own thread).
  const StrengthServerStats& stats() const { return stats_; }

  // The scoring core the event loop batches into, exposed so tests and
  // benches can compute ground truth without sockets. Estimates come back
  // in candidate order; batching here is caller-invisible (bitwise equal
  // at any split). Safe to call concurrently with itself.
  std::vector<dist::StrengthEstimate> score(
      const std::vector<std::string>& candidates) const;

  // Estimated guess number for an exact log p(x); exposed for tests.
  double guess_number_for_log_prob(double log_prob) const;

 private:
  struct Client {
    std::uint64_t id = 0;
    dist::Connection connection;
    bool registered = false;  // Hello/Welcome handshake completed
    bool dead = false;
  };

  // One admitted query waiting for (or mid-way through) scoring.
  struct PendingQuery {
    std::uint64_t client_id = 0;
    std::uint64_t request_id = 0;
    std::vector<std::string> candidates;
    std::vector<dist::StrengthEstimate> estimates;  // filled as batches land
    std::size_t scored = 0;  // candidates_[0, scored) already answered
  };

  void build_calibration();
  void accept_new_clients();
  void drain_client(Client& client);
  void handle_message(Client& client, dist::Message message);
  void process_pending();
  void send_reply(std::uint64_t client_id, dist::StrengthReplyMsg reply);
  Client* find_client(std::uint64_t client_id);
  void drop_client(Client& client);
  void sweep_dead_clients();
  bool candidate_representable(const std::string& candidate) const;

  StrengthServerConfig config_;
  const flow::FlowModel& model_;
  const data::Encoder& encoder_;
  std::shared_ptr<const guessing::Matcher> matcher_;
  dist::Listener listener_;

  std::atomic<bool> stop_{false};

  std::vector<Client> clients_;
  std::uint64_t next_client_id_ = 1;
  std::deque<PendingQuery> pending_;
  std::size_t pending_candidates_ = 0;  // unscored candidates across pending_

  // Calibration table: per-sample log bin masses sorted descending, with
  // weight_prefix_[k] = sum over the k largest masses of 1/(N * mass_i).
  std::vector<double> calibration_log_mass_;  // descending
  std::vector<double> weight_prefix_;         // size N + 1, prefix_[0] = 0
  double log_bin_volume_ = 0.0;  // log of one code bin's volume, dim*log(1/|A|)

  StrengthServerStats stats_;
};

}  // namespace passflow::serve
