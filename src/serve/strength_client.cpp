#include "serve/strength_client.hpp"

#include <stdexcept>
#include <utility>

namespace passflow::serve {

StrengthClient::StrengthClient(const std::string& host, std::uint16_t port)
    : connection_(dist::connect_to(host, port)) {
  dist::HelloMsg hello;
  hello.label = "strength-client";
  connection_.send_frame(dist::encode(dist::Message{std::move(hello)}));
  const dist::Message message = dist::decode(connection_.recv_frame());
  const auto* welcome = std::get_if<dist::WelcomeMsg>(&message);
  if (welcome == nullptr) {
    throw std::runtime_error(
        std::string("strength client: expected Welcome, got ") +
        dist::message_name(message));
  }
  client_id_ = welcome->worker_id;
}

dist::StrengthReplyMsg StrengthClient::query(
    const std::vector<std::string>& candidates) {
  send_query(candidates);
  return recv_reply();
}

std::uint64_t StrengthClient::send_query(
    const std::vector<std::string>& candidates) {
  dist::StrengthQueryMsg query;
  query.request_id = next_request_id_++;
  query.candidates = candidates;
  const std::uint64_t id = query.request_id;
  connection_.send_frame(dist::encode(dist::Message{std::move(query)}));
  return id;
}

dist::StrengthReplyMsg StrengthClient::recv_reply() {
  dist::Message message = dist::decode(connection_.recv_frame());
  auto* reply = std::get_if<dist::StrengthReplyMsg>(&message);
  if (reply == nullptr) {
    throw std::runtime_error(
        std::string("strength client: expected StrengthReply, got ") +
        dist::message_name(message));
  }
  return std::move(*reply);
}

}  // namespace passflow::serve
