// Wire messages of the coordinator/worker protocol: plain structs with a
// versioned binary codec, no sockets.
//
// Every message travels as the payload of one CRC checkpoint frame
// (util::encode_checkpoint_frame / CheckpointStore::read_frame), so the
// transport layer already rejects torn or bit-flipped bytes before decode
// runs. decode() then validates the rest — protocol version, message tag,
// field plausibility, and exact payload consumption (trailing bytes mean a
// mis-framed or corrupt message and throw) — so a frame that survives the
// CRC by construction still cannot decode into a silently-wrong message.
//
// Conversation (one worker's view):
//
//   worker            coordinator
//     Hello       ->                  version handshake, carries the pid
//                 <-  Welcome         assigned worker id
//                 <-  Assign          one scenario (or shard range of one)
//     Checkpoint  ->                  periodic session freeze (resume data)
//     Heartbeat   ->                  liveness while between checkpoints
//     Result      ->                  final metrics + sketch for a scenario
//                 <-  Shutdown        fleet done; worker exits cleanly
//
// The credential-screening service (src/serve/) speaks a second
// conversation over the same transport and framing:
//
//   client            server
//     Hello       ->                  version handshake
//                 <-  Welcome         assigned client id
//     StrengthQuery ->                candidate passwords to score
//                 <-  StrengthReply   per-candidate estimates, or Overloaded
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "guessing/metrics.hpp"
#include "guessing/session.hpp"

namespace passflow::dist {

// Bumped on any incompatible message-layout change; Hello carries it and
// the coordinator refuses mismatched workers at registration.
inline constexpr std::uint64_t kProtocolVersion = 1;

struct HelloMsg {
  std::uint64_t protocol_version = kProtocolVersion;
  std::uint64_t pid = 0;     // worker OS pid (0 = unknown/non-POSIX)
  std::string label;         // free-form worker name for logs
};

struct WelcomeMsg {
  std::uint64_t worker_id = 0;
};

// One unit of work: a whole scenario, or one shard range of a scenario
// whose matcher is split across workers. `generator_spec` / `matcher_spec`
// are opaque to the protocol — every process resolves them through the
// same deterministic ScenarioFactory (see worker.hpp), mirroring how
// AttackScheduler::load_state binds saved scenarios via ScenarioResolver.
struct AssignMsg {
  std::uint64_t task_id = 0;      // coordinator-side task handle
  std::uint64_t scenario_id = 0;  // stable across reassignment
  std::string name;
  std::string generator_spec;
  std::string matcher_spec;
  guessing::SessionConfig session;  // pool is process-local, not sent
  // Matcher shard range [begin, end); 0,0 = the whole matcher.
  std::uint64_t shard_begin = 0;
  std::uint64_t shard_end = 0;
  // Ship a Checkpoint message every N driven chunks (0 = never).
  std::uint64_t checkpoint_chunks = 0;
  // Sketch precision the Result's unique-union contribution must use.
  std::uint64_t union_precision_bits = 14;
  // AttackSession::save_state bytes to thaw from; empty = fresh start.
  std::string resume_state;
};

struct HeartbeatMsg {
  std::uint64_t produced_total = 0;  // guesses across the worker's sessions
};

struct CheckpointMsg {
  std::uint64_t task_id = 0;
  std::string state;  // AttackSession::save_state bytes
};

struct ResultMsg {
  std::uint64_t task_id = 0;
  guessing::RunResult result;
  std::uint64_t test_set_size = 0;
  // CardinalitySketch::save bytes of the session's distinct-guess state at
  // union_precision_bits; empty when the session cannot contribute
  // (tracking off or sketch precision mismatch), which poisons the
  // fleet-wide union exactly like AttackScheduler::aggregate.
  std::string sketch;
};

struct ShutdownMsg {};

// --- Credential-screening service messages (src/serve/) ---

// One strength request: score every candidate in order. The server may
// coalesce candidates from many in-flight queries into one model batch;
// replies still carry exactly this query's candidates (by request_id).
struct StrengthQueryMsg {
  std::uint64_t request_id = 0;  // client-chosen; echoed in the reply
  std::vector<std::string> candidates;
};

enum class StrengthStatus : std::uint64_t {
  kOk = 0,
  // Admission control refused the query (pending-candidate bound hit).
  // Estimates are empty; the client should back off and retry.
  kOverloaded = 1,
};

// Per-candidate answer. `representable` is false when the candidate cannot
// be encoded for the flow (too long, or bytes outside the alphabet) —
// log_prob is then -inf and guess_number +inf, but the index membership
// probe still ran (it is byte-exact and alphabet-agnostic).
struct StrengthEstimate {
  double log_prob = 0.0;      // exact flow log p(x) of the encoded candidate
  double guess_number = 0.0;  // Monte-Carlo estimated rank (1 = most likely)
  bool in_index = false;      // present in the server's matcher index
  bool representable = true;
};

struct StrengthReplyMsg {
  std::uint64_t request_id = 0;
  StrengthStatus status = StrengthStatus::kOk;
  // One per queried candidate, in query order, when status is kOk.
  std::vector<StrengthEstimate> estimates;
};

using Message =
    std::variant<HelloMsg, WelcomeMsg, AssignMsg, HeartbeatMsg, CheckpointMsg,
                 ResultMsg, ShutdownMsg, StrengthQueryMsg, StrengthReplyMsg>;

// Human-readable tag of the active alternative, for errors and logs.
const char* message_name(const Message& message);

// Serializes to one self-contained payload (tag + fields, little-endian).
std::string encode(const Message& message);

// Parses a payload produced by encode(). Throws std::runtime_error naming
// the defect on unknown tags, truncation, implausible lengths, invalid
// enum values, or trailing bytes.
Message decode(const std::string& payload);

}  // namespace passflow::dist
