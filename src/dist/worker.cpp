#include "dist/worker.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <variant>

#include "dist/framing.hpp"
#include "dist/transport.hpp"
#include "util/cardinality_sketch.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace passflow::dist {

namespace {

std::uint64_t current_pid() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

void sleep_seconds(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

// One in-flight assignment: the bound generator/matcher pair and the
// session driving them. Erased the moment its Result ships.
struct Worker::ActiveTask {
  std::uint64_t task_id = 0;
  std::uint64_t checkpoint_chunks = 0;
  unsigned union_precision_bits = 14;
  std::unique_ptr<guessing::GuessGenerator> generator;
  std::shared_ptr<const guessing::Matcher> matcher;
  std::unique_ptr<guessing::AttackSession> session;
  std::size_t chunks_since_checkpoint = 0;
};

Worker::Worker(WorkerConfig config, ScenarioFactory factory)
    : config_(std::move(config)), factory_(std::move(factory)) {
  if (!factory_) {
    throw std::invalid_argument("Worker: null scenario factory");
  }
}

Worker::~Worker() = default;

void Worker::run() {
  Backoff backoff(config_.reconnect);
  while (!shutdown_) {
    Connection connection = [&] {
      while (true) {
        try {
          Connection dialed = connect_to(config_.host, config_.port);
          // A live coordinator resets the outage clock; the next loss
          // starts a fresh schedule.
          backoff.reset();
          return dialed;
        } catch (const std::runtime_error&) {
          if (backoff.exhausted()) throw;
          sleep_seconds(backoff.next_delay_seconds());
        }
      }
    }();
    try {
      serve(connection);
    } catch (const std::runtime_error& e) {
      // Connection loss or a frame that failed validation: every byte of
      // a torn conversation is suspect, so drop all in-flight sessions
      // and re-register — the coordinator reassigns them from the last
      // checkpoints it holds, which restores the guess streams
      // bit-for-bit.
      active_.clear();
      ++stats_.reconnects;
      PF_LOG_WARN << "dist worker: connection lost (" << e.what()
                  << "); reconnecting";
      if (backoff.exhausted()) throw;
      sleep_seconds(backoff.next_delay_seconds());
    }
  }
}

void Worker::serve(Connection& connection) {
  HelloMsg hello;
  hello.pid = current_pid();
  hello.label = config_.label;
  send_message(connection, hello);
  const Message welcome = recv_message(connection);
  if (!std::holds_alternative<WelcomeMsg>(welcome)) {
    throw std::runtime_error(
        std::string("dist worker: expected Welcome, got ") +
        message_name(welcome));
  }

  util::Timer heartbeat_timer;
  while (true) {
    // Idle workers park on the socket; busy ones only glance at it so
    // slices keep flowing.
    int timeout_ms = active_.empty() ? 50 : 0;
    while (connection.readable(timeout_ms)) {
      timeout_ms = 0;
      const Message message = recv_message(connection);
      if (std::holds_alternative<ShutdownMsg>(message)) {
        shutdown_ = true;
        return;
      }
      if (const auto* assign = std::get_if<AssignMsg>(&message)) {
        handle_assign(*assign);
      } else {
        throw std::runtime_error(
            std::string("dist worker: unexpected message ") +
            message_name(message));
      }
    }
    drive(connection);
    if (heartbeat_timer.elapsed_seconds() >=
        config_.heartbeat_interval_seconds) {
      HeartbeatMsg beat;
      for (const auto& task : active_) {
        beat.produced_total += task->session->stats().produced;
      }
      send_message(connection, beat);
      heartbeat_timer.reset();
    }
  }
}

void Worker::handle_assign(const AssignMsg& assign) {
  AssignedScenario view;
  view.scenario_id = assign.scenario_id;
  view.name = assign.name;
  view.generator_spec = assign.generator_spec;
  view.matcher_spec = assign.matcher_spec;
  view.shard_begin = assign.shard_begin;
  view.shard_end = assign.shard_end;
  view.session = assign.session;

  WorkerBinding binding = factory_(view);
  if (!binding.generator || !binding.matcher) {
    throw std::logic_error(
        "dist worker: scenario factory returned a null generator or "
        "matcher for \"" + assign.name + "\"");
  }

  auto task = std::make_unique<ActiveTask>();
  task->task_id = assign.task_id;
  task->checkpoint_chunks = assign.checkpoint_chunks;
  task->union_precision_bits =
      static_cast<unsigned>(assign.union_precision_bits);
  task->generator = std::move(binding.generator);
  task->matcher = std::move(binding.matcher);

  guessing::SessionConfig session_config = assign.session;
  session_config.pool = config_.pool;  // process-local, never on the wire
  task->session = std::make_unique<guessing::AttackSession>(
      *task->generator, guessing::MatcherRef(task->matcher), session_config);
  if (!assign.resume_state.empty()) {
    std::istringstream in(assign.resume_state);
    task->session->load_state(in);
  }
  ++stats_.assignments;
  // A zero-budget (or already-complete resume) assignment finishes
  // without a single step; the next drive pass ships its Result.
  active_.push_back(std::move(task));
}

bool Worker::drive(Connection& connection) {
  for (std::size_t i = 0; i < active_.size();) {
    ActiveTask& task = *active_[i];
    for (std::size_t c = 0; c < config_.slice_chunks; ++c) {
      if (!task.session->step()) break;
      ++task.chunks_since_checkpoint;
    }
    if (task.session->finished()) {
      send_result(connection, task);
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (task.checkpoint_chunks != 0 &&
        task.chunks_since_checkpoint >= task.checkpoint_chunks &&
        task.generator->supports_state_serialization()) {
      CheckpointMsg checkpoint;
      checkpoint.task_id = task.task_id;
      std::ostringstream state;
      task.session->save_state(state);
      checkpoint.state = state.str();
      send_message(connection, checkpoint);
      ++stats_.checkpoints_sent;
      task.chunks_since_checkpoint = 0;
    }
    ++i;
  }
  return !active_.empty();
}

void Worker::send_result(Connection& connection, ActiveTask& task) {
  ResultMsg result;
  result.task_id = task.task_id;
  result.result = task.session->result();
  result.test_set_size = task.matcher->test_set_size();
  try {
    util::CardinalitySketch sketch(task.union_precision_bits);
    if (task.session->merge_unique_sketch(sketch)) {
      std::ostringstream out;
      sketch.save(out);
      result.sketch = out.str();
    }
  } catch (const std::invalid_argument&) {
    // Sketch-mode session at a different precision: it cannot contribute
    // to the union, same as in AttackScheduler::aggregate. The empty
    // sketch marks the fleet-wide unique estimate invalid, loudly.
    result.sketch.clear();
  }
  send_message(connection, result);
  ++stats_.results_sent;
}

}  // namespace passflow::dist
