// Coordinator half of the distributed fleet: listens on localhost,
// registers workers, assigns scenarios (or shard ranges of one scenario's
// matcher) to them, and folds the returned metrics/sketches into
// per-scenario outcomes plus a fleet-wide unique union — the same
// register-max HLL merge AttackScheduler::aggregate performs in-process.
//
// Fault model: a worker is dead when its socket reports EOF/error, when a
// frame off it fails validation (every byte is CRC-checked, so a torn
// conversation is indistinguishable from a lost one and treated the same),
// or when its heartbeat goes silent past the timeout. Dead workers'
// assignments return to the pending queue carrying the last session
// checkpoint the coordinator received; the next live worker thaws that
// state (AttackSession::load_state restores the guess stream bit-for-bit)
// and the scenario finishes with metrics identical to an uninterrupted
// run. Workers that reconnect after a presumed death re-register as fresh
// workers; their stale frames can never land because the old socket is
// closed at declaration of death.
//
// Equivalence: a whole scenario's Result travels verbatim, so its
// RunResult is bitwise the one a single-process AttackScheduler computes
// (timing excluded). Shard-split scenarios drive the identical guess
// stream per part against disjoint matcher ranges; per-checkpoint matched
// counts merge by addition, matched_percent is recomputed over the summed
// test-set size, and the distinct-guess sketch merges by register-max.
//
// Threading: single-threaded by design — drive poll_once()/run() from one
// thread. Workers are separate processes; nothing here shares memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "guessing/metrics.hpp"
#include "guessing/scheduler.hpp"
#include "util/cardinality_sketch.hpp"

namespace passflow::dist {

// One scenario to distribute. Specs are opaque strings every worker's
// ScenarioFactory resolves identically (see worker.hpp).
struct DistScenario {
  std::string name;
  std::string generator_spec;
  std::string matcher_spec;
  guessing::SessionConfig session;
  // > 1 splits the matcher's shard space [0, shard_count) into this many
  // contiguous ranges (split_shard_ranges) assigned independently, each
  // driving the full guess stream against its disjoint key subset.
  std::size_t shard_splits = 1;
  // The matcher's shard count; required when shard_splits > 1.
  std::size_t shard_count = 0;
};

struct CoordinatorConfig {
  std::uint16_t port = 0;  // 0 = ephemeral; port() reports the real one
  // A worker silent for longer than this is dead and its work reassigned.
  double heartbeat_timeout_seconds = 5.0;
  // Workers freeze and ship session state every N driven chunks; the last
  // received checkpoint is what a reassignment resumes from. 0 disables
  // checkpointing (death restarts the scenario from scratch).
  std::size_t checkpoint_chunks = 8;
  // Precision of every Result sketch and of the fleet-wide union.
  unsigned union_precision_bits = 14;
};

// Merged final state of one scenario; valid once complete.
struct ScenarioOutcome {
  std::string name;
  bool complete = false;
  std::size_t parts = 1;
  std::size_t reassignments = 0;
  // Single-part scenarios: the worker's RunResult verbatim (bitwise the
  // single-process result, timing aside). Shard splits: checkpoints carry
  // part 0's guesses/unique, summed matched, recomputed matched_percent;
  // matched_passwords concatenate in part order (per-part stream order);
  // sample_non_matched is part 0's; seconds is the slowest part.
  guessing::RunResult result;
  std::size_t test_set_size = 0;  // summed over parts
  // Register-max union of the parts' distinct-guess sketches. Invalid when
  // any part could not contribute (tracking off / precision mismatch).
  bool sketch_valid = false;
  util::CardinalitySketch sketch;
};

struct CoordinatorStats {
  std::size_t workers_registered = 0;  // Hello handshakes ever completed
  std::size_t workers_live = 0;
  std::size_t workers_lost = 0;
  std::size_t tasks = 0;
  std::size_t tasks_done = 0;
  std::size_t reassignments = 0;
  std::size_t checkpoints_received = 0;
  // Over completed scenarios only.
  std::size_t produced = 0;
  std::size_t matched = 0;
  std::size_t unique_union = 0;
  bool unique_union_valid = false;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorConfig config = {});
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Registers a scenario and returns its id (also its outcome index).
  // Callable until the fleet finishes.
  std::size_t add_scenario(DistScenario scenario);

  std::uint16_t port() const;

  // One event-loop pump: accepts connections, registers workers, assigns
  // pending tasks, ingests heartbeats/checkpoints/results, declares dead
  // workers and requeues their work. Returns true while the fleet is
  // unfinished; on the pump that completes the last task it broadcasts
  // Shutdown, closes the listener, and returns false.
  bool poll_once(int timeout_ms = 50);

  // Pumps until every scenario completes.
  void run();

  bool finished() const;

  // Outcome of a completed scenario; throws std::logic_error while it is
  // still in flight.
  const ScenarioOutcome& outcome(std::size_t scenario_id) const;
  std::size_t scenario_count() const;

  CoordinatorStats stats() const;

  // Introspection for tests and progress displays.
  // OS pid of the worker currently assigned the given part (0 = none).
  std::uint64_t assigned_worker_pid(std::size_t scenario_id,
                                    std::size_t part = 0) const;
  // Session checkpoints received for the scenario, summed over parts.
  std::size_t checkpoints_received(std::size_t scenario_id) const;

 private:
  struct Task;
  struct WorkerState;
  struct ScenarioState;

  void assign_pending();
  void accept_new_connections();
  // Drains every decodable frame off one worker; throws on a dead/corrupt
  // connection (caller buries the worker).
  void drain_worker(WorkerState& worker);
  void handle_message(WorkerState& worker, const Message& message);
  void bury_worker(WorkerState& worker, const std::string& why);
  void check_heartbeats();
  void finalize_scenario(ScenarioState& scenario);
  void broadcast_shutdown();
  Task* find_task(std::uint64_t task_id);

  CoordinatorConfig config_;
  Listener listener_;
  bool listener_open_ = true;
  std::vector<std::unique_ptr<ScenarioState>> scenarios_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::uint64_t next_worker_id_ = 1;
  std::uint64_t next_task_id_ = 1;
  std::size_t tasks_done_ = 0;
  bool shutdown_sent_ = false;
  CoordinatorStats stats_;
};

}  // namespace passflow::dist
