#include "dist/framing.hpp"

namespace passflow::dist {

void send_message(Connection& connection, const Message& message) {
  connection.send_frame(encode(message));
}

Message recv_message(Connection& connection) {
  return decode(connection.recv_frame());
}

}  // namespace passflow::dist
