#include "dist/transport.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <stdexcept>
#include <streambuf>
#include <utility>

#include "util/checkpoint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PASSFLOW_DIST_POSIX 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define PASSFLOW_DIST_POSIX 0
#endif

namespace passflow::dist {

namespace {

#if PASSFLOW_DIST_POSIX

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("dist transport: " + what + ": " +
                           std::strerror(errno));
}

// Pulls socket bytes into std::istream land so the checkpoint frame
// validator (CheckpointStore::read_frame) runs unchanged on wire data.
// Read-only: the send path writes whole frames directly.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {}

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ::ssize_t n;
    do {
      n = ::recv(fd_, buf_, sizeof(buf_), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();  // EOF or error: stream ends
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(*gptr());
  }

 private:
  int fd_;
  char buf_[64 * 1024];
};

// MSG_NOSIGNAL keeps a dead peer an EPIPE error instead of a process-wide
// SIGPIPE; macOS spells it as a socket option instead.
void suppress_sigpipe(int fd) {
#if defined(__APPLE__)
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

int send_flags() {
#if defined(MSG_NOSIGNAL)
  return MSG_NOSIGNAL;
#else
  return 0;
#endif
}

// ::poll with EINTR retries that honor the caller's timeout as an absolute
// steady_clock deadline. A naive `while (EINTR) poll(timeout_ms)` re-arms
// the FULL wait on every interruption, so a signal-heavy process (itimer
// profilers, SIGCHLD storms) can block far past — or forever beyond — the
// requested bound. timeout_ms <= 0 needs no deadline: 0 never blocks and
// negative waits forever, so a plain retry preserves both meanings.
int poll_deadline(::pollfd* fds, ::nfds_t count, int timeout_ms) {
  if (timeout_ms <= 0) {
    int rc;
    do {
      rc = ::poll(fds, count, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    return rc;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int remaining_ms = timeout_ms;
  while (true) {
    const int rc = ::poll(fds, count, remaining_ms);
    if (rc >= 0 || errno != EINTR) return rc;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return 0;  // deadline passed mid-retry: timed out
    // ceil, not truncate: a sub-millisecond remainder must wait ~1ms, not
    // degrade into a busy-spin of poll(. . ., 0) calls until the deadline.
    remaining_ms = static_cast<int>(
        std::chrono::ceil<std::chrono::milliseconds>(deadline - now).count());
  }
}

bool poll_readable(int fd, int timeout_ms) {
  ::pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int rc = poll_deadline(&pfd, 1, timeout_ms);
  if (rc < 0) throw_errno("poll failed");
  // POLLHUP/POLLERR also count: the next recv reports the condition.
  return rc > 0;
}

#endif  // PASSFLOW_DIST_POSIX

}  // namespace

bool transport_available() { return PASSFLOW_DIST_POSIX != 0; }

#if PASSFLOW_DIST_POSIX

// ---- Connection ------------------------------------------------------------

Connection::Connection(int fd)
    : fd_(fd),
      buf_(std::make_unique<FdStreambuf>(fd)),
      in_(std::make_unique<std::istream>(buf_.get())) {
  suppress_sigpipe(fd_);
  // Frames are small and latency-sensitive (heartbeats gate liveness);
  // Nagle batching would delay them behind delayed ACKs.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buf_(std::move(other.buf_)),
      in_(std::move(other.in_)) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
    in_ = std::move(other.in_);
  }
  return *this;
}

Connection::~Connection() { close(); }

bool Connection::open() const { return fd_ >= 0; }

int Connection::fd() const { return fd_; }

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.reset();
  buf_.reset();
}

void Connection::send_frame(const std::string& payload) {
  if (!open()) throw std::runtime_error("dist transport: send on closed connection");
  const std::string frame = util::encode_checkpoint_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ::ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                               send_flags());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Connection::recv_frame() {
  if (!open()) throw std::runtime_error("dist transport: recv on closed connection");
  return util::CheckpointStore::read_frame(*in_, "dist frame");
}

bool Connection::has_buffered() const {
  return open() && buf_->in_avail() > 0;
}

bool Connection::readable(int timeout_ms) {
  if (!open()) return false;
  if (has_buffered()) return true;
  return poll_readable(fd_, timeout_ms);
}

// ---- Listener --------------------------------------------------------------

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(port);
  if (::bind(fd_, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind to 127.0.0.1:" + std::to_string(port) + " failed");
  }
  if (::listen(fd_, 16) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen failed");
  }
  ::socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<::sockaddr*>(&addr), &len) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("getsockname failed");
  }
  port_ = ::ntohs(addr.sin_port);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Listener::pending(int timeout_ms) {
  if (fd_ < 0) return false;
  return poll_readable(fd_, timeout_ms);
}

Connection Listener::accept_connection() {
  if (fd_ < 0) throw std::runtime_error("dist transport: accept on closed listener");
  int client;
  do {
    client = ::accept(fd_, nullptr, nullptr);
  } while (client < 0 && errno == EINTR);
  if (client < 0) throw_errno("accept failed");
  return Connection(client);
}

Connection connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket failed");
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = ::htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("dist transport: invalid address \"" + host +
                             "\" (numeric IPv4 only, e.g. 127.0.0.1)");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect to " + host + ":" + std::to_string(port) +
                " failed");
  }
  return Connection(fd);
}

bool wait_any_readable(const std::vector<int>& fds, int timeout_ms) {
  std::vector<::pollfd> pfds;
  pfds.reserve(fds.size());
  for (const int fd : fds) {
    if (fd < 0) continue;
    ::pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfds.push_back(pfd);
  }
  if (pfds.empty()) return false;
  const int rc = poll_deadline(pfds.data(), pfds.size(), timeout_ms);
  if (rc < 0) throw_errno("poll failed");
  return rc > 0;
}

#else  // !PASSFLOW_DIST_POSIX

// Loud stubs: dist code compiles everywhere, but using the transport on a
// platform without POSIX sockets is an immediate error, mirroring how the
// checkpoint store degrades without fsync/rename.

namespace {
[[noreturn]] void unavailable() {
  throw std::runtime_error(
      "dist transport: POSIX sockets are not available on this platform");
}
}  // namespace

Connection::Connection(int) { unavailable(); }
Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buf_(std::move(other.buf_)),
      in_(std::move(other.in_)) {}
Connection& Connection::operator=(Connection&& other) noexcept {
  fd_ = std::exchange(other.fd_, -1);
  buf_ = std::move(other.buf_);
  in_ = std::move(other.in_);
  return *this;
}
Connection::~Connection() = default;
void Connection::send_frame(const std::string&) { unavailable(); }
std::string Connection::recv_frame() { unavailable(); }
bool Connection::readable(int) { return false; }
bool Connection::has_buffered() const { return false; }
bool Connection::open() const { return false; }
void Connection::close() {}
int Connection::fd() const { return -1; }

Listener::Listener(std::uint16_t) { unavailable(); }
Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}
Listener& Listener::operator=(Listener&& other) noexcept {
  fd_ = std::exchange(other.fd_, -1);
  port_ = std::exchange(other.port_, 0);
  return *this;
}
Listener::~Listener() = default;
bool Listener::pending(int) { return false; }
Connection Listener::accept_connection() { unavailable(); }
void Listener::close() {}

Connection connect_to(const std::string&, std::uint16_t) { unavailable(); }

bool wait_any_readable(const std::vector<int>&, int) { return false; }

#endif  // PASSFLOW_DIST_POSIX

}  // namespace passflow::dist
