// Localhost TCP transport for the coordinator/worker protocol: RAII
// sockets, a listener with ephemeral-port support, and connections that
// speak CRC checkpoint frames.
//
// Every frame on the wire is the exact byte layout CheckpointWriter
// publishes to disk (util::encode_checkpoint_frame on send,
// CheckpointStore::read_frame pulled straight off a socket-backed
// std::istream on receive), so a torn read or flipped bit fails the same
// validation as a torn checkpoint file — loudly, before any payload byte
// reaches the protocol decoder. The transport carries no message
// semantics; see protocol.hpp for what the payloads mean.
//
// POSIX only (the same gate as checkpoint fsync/rename): on other
// platforms transport_available() is false and every constructor throws,
// so dist code still compiles and tests skip cleanly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace passflow::dist {

// True when this build carries the POSIX socket transport.
bool transport_available();

// One accepted or dialed stream socket. Move-only; closing (or
// destruction) makes every later call throw.
class Connection {
 public:
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  ~Connection();

  // Seals `payload` into a CRC frame and writes it in full. Throws
  // std::runtime_error on any socket error (including a peer that died —
  // SIGPIPE is suppressed).
  void send_frame(const std::string& payload);

  // Blocks until one full frame arrives and returns its validated
  // payload. Throws std::runtime_error on EOF, socket error, or any
  // frame-validation failure — a torn or corrupt frame never yields
  // partial bytes.
  std::string recv_frame();

  // True when a recv_frame() would make progress without blocking longer
  // than `timeout_ms`: bytes already buffered, readable on the socket, or
  // a pending EOF/error (which recv_frame then reports loudly). The bound
  // holds as a steady_clock deadline even when signals interrupt the wait
  // (EINTR retries resume with the remaining time, not the full timeout).
  bool readable(int timeout_ms);

  // Bytes already pulled off the socket but not yet consumed by
  // recv_frame(). poll() cannot see these — check before sleeping.
  bool has_buffered() const;

  bool open() const;
  void close();
  int fd() const;

 private:
  friend class Listener;
  friend Connection connect_to(const std::string& host, std::uint16_t port);
  explicit Connection(int fd);

  int fd_ = -1;
  std::unique_ptr<std::streambuf> buf_;
  std::unique_ptr<std::istream> in_;
};

// Listening socket bound to 127.0.0.1. Port 0 picks an ephemeral port;
// port() reports the actual one.
class Listener {
 public:
  explicit Listener(std::uint16_t port = 0);
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  std::uint16_t port() const { return port_; }

  // True when accept_connection() would not block for more than
  // `timeout_ms`.
  bool pending(int timeout_ms);

  // Blocks until a worker dials in.
  Connection accept_connection();

  // Stops accepting: later dials get connection-refused, which turns a
  // worker arriving after fleet completion into a loud bounded error
  // instead of a silent hang.
  void close();

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// Dials `host`:`port` once (numeric address, e.g. "127.0.0.1"); throws on
// failure. Retry policy is the caller's job — see backoff.hpp.
Connection connect_to(const std::string& host, std::uint16_t port);

// Blocks up to `timeout_ms` for readability on any of `fds` (entries < 0
// are ignored); returns true when at least one is readable or hung up.
// Like Connection::readable, the timeout is a steady_clock deadline that
// survives EINTR. The coordinator's and strength server's event loops
// sleep here across listener + connections.
bool wait_any_readable(const std::vector<int>& fds, int timeout_ms);

}  // namespace passflow::dist
