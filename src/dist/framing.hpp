// Message-level send/receive over a transport Connection: one protocol
// message per CRC frame.
//
// This is the only seam where protocol payloads meet wire frames, so both
// ends always agree on the layering: encode() -> encode_checkpoint_frame()
// on the way out, CheckpointStore::read_frame() -> decode() on the way in.
// Any failure — socket error, torn frame, CRC mismatch, unknown tag,
// trailing bytes — surfaces as std::runtime_error; callers treat the
// connection as dead and fall back to reconnect (worker) or reassignment
// (coordinator). There is no partial-message state to resynchronize.
#pragma once

#include "dist/protocol.hpp"
#include "dist/transport.hpp"

namespace passflow::dist {

void send_message(Connection& connection, const Message& message);

// Blocks for one full frame and decodes it.
Message recv_message(Connection& connection);

}  // namespace passflow::dist
