#include "dist/protocol.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "guessing/unique_tracker.hpp"
#include "util/serial_io.hpp"

namespace passflow::dist {

namespace {

namespace io = util::io;

// Wire tags; variant alternative order. Never renumber — bump
// kProtocolVersion instead.
enum class Tag : std::uint64_t {
  kHello = 1,
  kWelcome = 2,
  kAssign = 3,
  kHeartbeat = 4,
  kCheckpoint = 5,
  kResult = 6,
  kShutdown = 7,
  kStrengthQuery = 8,
  kStrengthReply = 9,
};

// StrengthEstimate booleans travel packed in one flags word so the layout
// has no padding ambiguity; unknown bits are a decode error, not ignored.
constexpr std::uint64_t kStrengthFlagInIndex = 1u << 0;
constexpr std::uint64_t kStrengthFlagRepresentable = 1u << 1;
constexpr std::uint64_t kStrengthFlagsMask =
    kStrengthFlagInIndex | kStrengthFlagRepresentable;

void write_strength_estimate(std::ostream& out, const StrengthEstimate& e) {
  io::write_f64(out, e.log_prob);
  io::write_f64(out, e.guess_number);
  std::uint64_t flags = 0;
  if (e.in_index) flags |= kStrengthFlagInIndex;
  if (e.representable) flags |= kStrengthFlagRepresentable;
  io::write_u64(out, flags);
}

StrengthEstimate read_strength_estimate(std::istream& in) {
  StrengthEstimate e;
  e.log_prob = io::read_f64(in);
  e.guess_number = io::read_f64(in);
  const std::uint64_t flags = io::read_u64(in);
  if ((flags & ~kStrengthFlagsMask) != 0) {
    throw std::runtime_error("dist message: invalid strength flags " +
                             std::to_string(flags));
  }
  e.in_index = (flags & kStrengthFlagInIndex) != 0;
  e.representable = (flags & kStrengthFlagRepresentable) != 0;
  return e;
}

void write_session_config(std::ostream& out,
                          const guessing::SessionConfig& session) {
  // The same field set AttackScheduler::save_state echoes: everything that
  // shapes metrics. pool / pipeline_depth still travel so a worker can
  // reproduce the exact requested execution shape — except pool, which is
  // a process-local pointer and is bound worker-side.
  io::write_u64(out, session.budget);
  io::write_u64(out, session.chunk_size);
  io::write_u64(out, session.non_matched_samples);
  io::write_u64(out, static_cast<std::uint64_t>(session.unique_tracking));
  io::write_u64(out, session.unique_shards);
  io::write_u64(out, session.sketch_precision_bits);
  io::write_u64(out, session.pipeline_depth);
  io::write_u64(out, session.log_progress ? 1 : 0);
  io::write_u64(out, session.checkpoints.size());
  for (const std::size_t cp : session.checkpoints) io::write_u64(out, cp);
}

guessing::SessionConfig read_session_config(std::istream& in) {
  guessing::SessionConfig session;
  session.budget = io::read_u64(in);
  session.chunk_size = io::read_u64(in);
  session.non_matched_samples = io::read_u64(in);
  const std::uint64_t tracking = io::read_u64(in);
  if (tracking >
      static_cast<std::uint64_t>(guessing::UniqueTracking::kSketch)) {
    throw std::runtime_error("dist message: invalid unique tracking mode " +
                             std::to_string(tracking));
  }
  session.unique_tracking = static_cast<guessing::UniqueTracking>(tracking);
  session.unique_shards = io::read_u64(in);
  session.sketch_precision_bits =
      static_cast<unsigned>(io::read_u64(in));
  session.pipeline_depth = io::read_u64(in);
  session.log_progress = io::read_u64(in) != 0;
  const std::uint64_t checkpoint_count =
      io::read_length(in, "session checkpoint schedule");
  session.checkpoints.reserve(checkpoint_count);
  for (std::uint64_t i = 0; i < checkpoint_count; ++i) {
    session.checkpoints.push_back(io::read_u64(in));
  }
  return session;
}

void write_run_result(std::ostream& out, const guessing::RunResult& result) {
  io::write_u64(out, result.checkpoints.size());
  for (const guessing::Checkpoint& cp : result.checkpoints) {
    io::write_u64(out, cp.guesses);
    io::write_u64(out, cp.unique);
    io::write_u64(out, cp.matched);
    io::write_f64(out, cp.matched_percent);
  }
  io::write_string_vec(out, result.matched_passwords);
  io::write_string_vec(out, result.sample_non_matched);
  io::write_f64(out, result.seconds);
}

guessing::RunResult read_run_result(std::istream& in) {
  guessing::RunResult result;
  const std::uint64_t checkpoint_count =
      io::read_length(in, "result checkpoints");
  result.checkpoints.reserve(checkpoint_count);
  for (std::uint64_t i = 0; i < checkpoint_count; ++i) {
    guessing::Checkpoint cp;
    cp.guesses = io::read_u64(in);
    cp.unique = io::read_u64(in);
    cp.matched = io::read_u64(in);
    cp.matched_percent = io::read_f64(in);
    result.checkpoints.push_back(cp);
  }
  result.matched_passwords = io::read_string_vec(in);
  result.sample_non_matched = io::read_string_vec(in);
  result.seconds = io::read_f64(in);
  return result;
}

struct Encoder {
  std::ostream& out;

  void operator()(const HelloMsg& m) const {
    io::write_u64(out, static_cast<std::uint64_t>(Tag::kHello));
    io::write_u64(out, m.protocol_version);
    io::write_u64(out, m.pid);
    io::write_string(out, m.label);
  }
  void operator()(const WelcomeMsg& m) const {
    io::write_u64(out, static_cast<std::uint64_t>(Tag::kWelcome));
    io::write_u64(out, m.worker_id);
  }
  void operator()(const AssignMsg& m) const {
    io::write_u64(out, static_cast<std::uint64_t>(Tag::kAssign));
    io::write_u64(out, m.task_id);
    io::write_u64(out, m.scenario_id);
    io::write_string(out, m.name);
    io::write_string(out, m.generator_spec);
    io::write_string(out, m.matcher_spec);
    write_session_config(out, m.session);
    io::write_u64(out, m.shard_begin);
    io::write_u64(out, m.shard_end);
    io::write_u64(out, m.checkpoint_chunks);
    io::write_u64(out, m.union_precision_bits);
    io::write_string(out, m.resume_state);
  }
  void operator()(const HeartbeatMsg& m) const {
    io::write_u64(out, static_cast<std::uint64_t>(Tag::kHeartbeat));
    io::write_u64(out, m.produced_total);
  }
  void operator()(const CheckpointMsg& m) const {
    io::write_u64(out, static_cast<std::uint64_t>(Tag::kCheckpoint));
    io::write_u64(out, m.task_id);
    io::write_string(out, m.state);
  }
  void operator()(const ResultMsg& m) const {
    io::write_u64(out, static_cast<std::uint64_t>(Tag::kResult));
    io::write_u64(out, m.task_id);
    write_run_result(out, m.result);
    io::write_u64(out, m.test_set_size);
    io::write_string(out, m.sketch);
  }
  void operator()(const ShutdownMsg&) const {
    io::write_u64(out, static_cast<std::uint64_t>(Tag::kShutdown));
  }
  void operator()(const StrengthQueryMsg& m) const {
    io::write_u64(out, static_cast<std::uint64_t>(Tag::kStrengthQuery));
    io::write_u64(out, m.request_id);
    io::write_string_vec(out, m.candidates);
  }
  void operator()(const StrengthReplyMsg& m) const {
    io::write_u64(out, static_cast<std::uint64_t>(Tag::kStrengthReply));
    io::write_u64(out, m.request_id);
    io::write_u64(out, static_cast<std::uint64_t>(m.status));
    io::write_u64(out, m.estimates.size());
    for (const StrengthEstimate& e : m.estimates) {
      write_strength_estimate(out, e);
    }
  }
};

}  // namespace

const char* message_name(const Message& message) {
  struct Namer {
    const char* operator()(const HelloMsg&) const { return "Hello"; }
    const char* operator()(const WelcomeMsg&) const { return "Welcome"; }
    const char* operator()(const AssignMsg&) const { return "Assign"; }
    const char* operator()(const HeartbeatMsg&) const { return "Heartbeat"; }
    const char* operator()(const CheckpointMsg&) const { return "Checkpoint"; }
    const char* operator()(const ResultMsg&) const { return "Result"; }
    const char* operator()(const ShutdownMsg&) const { return "Shutdown"; }
    const char* operator()(const StrengthQueryMsg&) const {
      return "StrengthQuery";
    }
    const char* operator()(const StrengthReplyMsg&) const {
      return "StrengthReply";
    }
  };
  return std::visit(Namer{}, message);
}

std::string encode(const Message& message) {
  std::ostringstream out;
  std::visit(Encoder{out}, message);
  return out.str();
}

Message decode(const std::string& payload) {
  std::istringstream in(payload);
  const std::uint64_t tag = io::read_u64(in);
  Message message;
  switch (static_cast<Tag>(tag)) {
    case Tag::kHello: {
      HelloMsg m;
      m.protocol_version = io::read_u64(in);
      m.pid = io::read_u64(in);
      m.label = io::read_string(in);
      message = std::move(m);
      break;
    }
    case Tag::kWelcome: {
      WelcomeMsg m;
      m.worker_id = io::read_u64(in);
      message = m;
      break;
    }
    case Tag::kAssign: {
      AssignMsg m;
      m.task_id = io::read_u64(in);
      m.scenario_id = io::read_u64(in);
      m.name = io::read_string(in);
      m.generator_spec = io::read_string(in);
      m.matcher_spec = io::read_string(in);
      m.session = read_session_config(in);
      m.shard_begin = io::read_u64(in);
      m.shard_end = io::read_u64(in);
      m.checkpoint_chunks = io::read_u64(in);
      m.union_precision_bits = io::read_u64(in);
      m.resume_state = io::read_string(in);
      message = std::move(m);
      break;
    }
    case Tag::kHeartbeat: {
      HeartbeatMsg m;
      m.produced_total = io::read_u64(in);
      message = m;
      break;
    }
    case Tag::kCheckpoint: {
      CheckpointMsg m;
      m.task_id = io::read_u64(in);
      m.state = io::read_string(in);
      message = std::move(m);
      break;
    }
    case Tag::kResult: {
      ResultMsg m;
      m.task_id = io::read_u64(in);
      m.result = read_run_result(in);
      m.test_set_size = io::read_u64(in);
      m.sketch = io::read_string(in);
      message = std::move(m);
      break;
    }
    case Tag::kShutdown:
      message = ShutdownMsg{};
      break;
    case Tag::kStrengthQuery: {
      StrengthQueryMsg m;
      m.request_id = io::read_u64(in);
      m.candidates = io::read_string_vec(in);
      message = std::move(m);
      break;
    }
    case Tag::kStrengthReply: {
      StrengthReplyMsg m;
      m.request_id = io::read_u64(in);
      const std::uint64_t status = io::read_u64(in);
      if (status > static_cast<std::uint64_t>(StrengthStatus::kOverloaded)) {
        throw std::runtime_error("dist message: invalid strength status " +
                                 std::to_string(status));
      }
      m.status = static_cast<StrengthStatus>(status);
      const std::uint64_t estimate_count =
          io::read_length(in, "strength estimates");
      m.estimates.reserve(estimate_count);
      for (std::uint64_t i = 0; i < estimate_count; ++i) {
        m.estimates.push_back(read_strength_estimate(in));
      }
      message = std::move(m);
      break;
    }
    default:
      throw std::runtime_error("dist message: unknown tag " +
                               std::to_string(tag));
  }
  // Exact consumption: leftover bytes mean the payload was assembled for a
  // different layout than this decoder parsed — reject rather than return
  // a message that only half-matches its frame.
  if (in.peek() != std::char_traits<char>::eof()) {
    throw std::runtime_error(
        std::string("dist message: trailing bytes after ") +
        message_name(message));
  }
  return message;
}

}  // namespace passflow::dist
