#include "dist/coordinator.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <variant>

#include "dist/framing.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace passflow::dist {

// One assignable unit: a whole scenario or one shard range of it.
struct Coordinator::Task {
  enum class State { kPending, kAssigned, kDone };

  std::uint64_t task_id = 0;
  std::size_t scenario_index = 0;
  std::size_t part_index = 0;
  guessing::ShardRange range{0, 0};  // 0,0 = whole matcher
  State state = State::kPending;
  std::uint64_t worker_id = 0;  // valid while kAssigned
  // Latest session freeze received; what a reassignment resumes from.
  std::string checkpoint;
  std::size_t checkpoints_received = 0;
  std::size_t reassignments = 0;
  ResultMsg result;
};

struct Coordinator::WorkerState {
  std::uint64_t id = 0;
  Connection connection;
  bool registered = false;
  bool dead = false;
  std::uint64_t pid = 0;
  std::string label;
  std::size_t active_tasks = 0;
  util::Timer last_seen;

  WorkerState(std::uint64_t worker_id, Connection accepted)
      : id(worker_id), connection(std::move(accepted)) {}
};

struct Coordinator::ScenarioState {
  DistScenario spec;
  std::vector<std::uint64_t> task_ids;  // part order
  std::size_t done_parts = 0;
  ScenarioOutcome outcome;
};

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(config), listener_(config.port) {}

Coordinator::~Coordinator() = default;

std::uint16_t Coordinator::port() const { return listener_.port(); }

std::size_t Coordinator::add_scenario(DistScenario scenario) {
  if (shutdown_sent_) {
    throw std::logic_error(
        "Coordinator::add_scenario: fleet already finished");
  }
  if (scenario.shard_splits == 0) {
    throw std::invalid_argument(
        "Coordinator::add_scenario: shard_splits must be >= 1");
  }
  auto state = std::make_unique<ScenarioState>();
  state->spec = std::move(scenario);
  const std::size_t scenario_index = scenarios_.size();

  std::vector<guessing::ShardRange> ranges;
  if (state->spec.shard_splits > 1) {
    if (state->spec.shard_count == 0) {
      throw std::invalid_argument(
          "Coordinator::add_scenario: shard_count required for splits");
    }
    ranges = guessing::split_shard_ranges(state->spec.shard_count,
                                          state->spec.shard_splits);
  } else {
    ranges.push_back({0, 0});
  }
  for (std::size_t part = 0; part < ranges.size(); ++part) {
    auto task = std::make_unique<Task>();
    task->task_id = next_task_id_++;
    task->scenario_index = scenario_index;
    task->part_index = part;
    task->range = ranges[part];
    state->task_ids.push_back(task->task_id);
    tasks_.push_back(std::move(task));
  }
  stats_.tasks = tasks_.size();
  scenarios_.push_back(std::move(state));
  return scenario_index;
}

bool Coordinator::finished() const {
  return !tasks_.empty() && tasks_done_ == tasks_.size();
}

std::size_t Coordinator::scenario_count() const { return scenarios_.size(); }

const ScenarioOutcome& Coordinator::outcome(std::size_t scenario_id) const {
  const ScenarioState& scenario = *scenarios_.at(scenario_id);
  if (!scenario.outcome.complete) {
    throw std::logic_error("Coordinator::outcome: scenario \"" +
                           scenario.spec.name + "\" is still in flight");
  }
  return scenario.outcome;
}

std::uint64_t Coordinator::assigned_worker_pid(std::size_t scenario_id,
                                               std::size_t part) const {
  const ScenarioState& scenario = *scenarios_.at(scenario_id);
  const std::uint64_t task_id = scenario.task_ids.at(part);
  for (const auto& task : tasks_) {
    if (task->task_id != task_id) continue;
    if (task->state != Task::State::kAssigned) return 0;
    for (const auto& worker : workers_) {
      if (worker->id == task->worker_id && !worker->dead) return worker->pid;
    }
    return 0;
  }
  return 0;
}

std::size_t Coordinator::checkpoints_received(std::size_t scenario_id) const {
  const ScenarioState& scenario = *scenarios_.at(scenario_id);
  std::size_t total = 0;
  for (const auto& task : tasks_) {
    if (std::find(scenario.task_ids.begin(), scenario.task_ids.end(),
                  task->task_id) != scenario.task_ids.end()) {
      total += task->checkpoints_received;
    }
  }
  return total;
}

CoordinatorStats Coordinator::stats() const {
  CoordinatorStats stats = stats_;
  stats.tasks_done = tasks_done_;
  for (const auto& worker : workers_) {
    if (!worker->dead && worker->registered) ++stats.workers_live;
  }
  util::CardinalitySketch fleet_union(config_.union_precision_bits);
  bool union_valid = !scenarios_.empty();
  for (const auto& scenario : scenarios_) {
    const ScenarioOutcome& outcome = scenario->outcome;
    if (!outcome.complete) {
      union_valid = false;
      continue;
    }
    if (!outcome.result.checkpoints.empty()) {
      stats.produced += outcome.result.final().guesses;
      stats.matched += outcome.result.final().matched;
    }
    if (outcome.sketch_valid) {
      fleet_union.merge(outcome.sketch);
    } else {
      union_valid = false;
    }
  }
  stats.unique_union_valid = union_valid;
  stats.unique_union = union_valid ? fleet_union.estimate() : 0;
  return stats;
}

// ---- event loop ------------------------------------------------------------

bool Coordinator::poll_once(int timeout_ms) {
  if (finished()) return false;  // idempotent after the shutdown pump

  // Sweep workers buried on a previous pump.
  workers_.erase(std::remove_if(workers_.begin(), workers_.end(),
                                [](const std::unique_ptr<WorkerState>& w) {
                                  return w->dead;
                                }),
                 workers_.end());

  assign_pending();

  // Park until traffic arrives — unless bytes are already buffered past
  // poll()'s sight, in which case drain immediately.
  bool buffered = false;
  for (const auto& worker : workers_) {
    if (!worker->dead && worker->connection.has_buffered()) buffered = true;
  }
  if (!buffered && timeout_ms > 0) {
    std::vector<int> fds;
    if (listener_open_) fds.push_back(listener_.fd());
    for (const auto& worker : workers_) {
      if (!worker->dead) fds.push_back(worker->connection.fd());
    }
    wait_any_readable(fds, timeout_ms);
  }

  accept_new_connections();
  for (auto& worker : workers_) {
    if (worker->dead) continue;
    try {
      drain_worker(*worker);
    } catch (const std::runtime_error& e) {
      bury_worker(*worker, e.what());
    }
  }
  check_heartbeats();
  // Requeued or newly added work onto the surviving workers right away.
  assign_pending();

  if (finished()) {
    broadcast_shutdown();
    return false;
  }
  return true;
}

void Coordinator::run() {
  if (tasks_.empty()) {
    throw std::logic_error("Coordinator::run: no scenarios added");
  }
  while (poll_once()) {
  }
}

void Coordinator::accept_new_connections() {
  while (listener_open_ && listener_.pending(0)) {
    workers_.push_back(std::make_unique<WorkerState>(
        next_worker_id_++, listener_.accept_connection()));
  }
}

void Coordinator::assign_pending() {
  for (auto& task : tasks_) {
    if (task->state != Task::State::kPending) continue;
    while (true) {
      // Least-loaded live registered worker; lowest id breaks ties so
      // assignment order is deterministic given an arrival order.
      WorkerState* best = nullptr;
      for (auto& worker : workers_) {
        if (worker->dead || !worker->registered) continue;
        if (best == nullptr || worker->active_tasks < best->active_tasks) {
          best = worker.get();
        }
      }
      if (best == nullptr) return;  // no capacity; retry next pump

      const ScenarioState& scenario = *scenarios_[task->scenario_index];
      AssignMsg assign;
      assign.task_id = task->task_id;
      assign.scenario_id = task->scenario_index;
      assign.name = scenario.spec.name;
      assign.generator_spec = scenario.spec.generator_spec;
      assign.matcher_spec = scenario.spec.matcher_spec;
      assign.session = scenario.spec.session;
      assign.session.pool = nullptr;  // process-local, never on the wire
      assign.shard_begin = task->range.begin;
      assign.shard_end = task->range.end;
      assign.checkpoint_chunks = config_.checkpoint_chunks;
      assign.union_precision_bits = config_.union_precision_bits;
      assign.resume_state = task->checkpoint;
      try {
        send_message(best->connection, assign);
      } catch (const std::runtime_error& e) {
        bury_worker(*best, e.what());
        continue;  // pick the next-best worker for this task
      }
      task->state = Task::State::kAssigned;
      task->worker_id = best->id;
      ++best->active_tasks;
      break;
    }
  }
}

void Coordinator::drain_worker(WorkerState& worker) {
  while (worker.connection.readable(0)) {
    const Message message = recv_message(worker.connection);
    worker.last_seen.reset();
    handle_message(worker, message);
    if (worker.dead) return;
  }
}

void Coordinator::handle_message(WorkerState& worker,
                                 const Message& message) {
  if (const auto* hello = std::get_if<HelloMsg>(&message)) {
    if (hello->protocol_version != kProtocolVersion) {
      throw std::runtime_error(
          "dist coordinator: worker speaks protocol version " +
          std::to_string(hello->protocol_version) + ", this build speaks " +
          std::to_string(kProtocolVersion));
    }
    worker.registered = true;
    worker.pid = hello->pid;
    worker.label = hello->label;
    ++stats_.workers_registered;
    WelcomeMsg welcome;
    welcome.worker_id = worker.id;
    send_message(worker.connection, welcome);
    return;
  }
  if (!worker.registered) {
    throw std::runtime_error(
        std::string("dist coordinator: message before Hello: ") +
        message_name(message));
  }
  if (std::holds_alternative<HeartbeatMsg>(message)) {
    return;  // last_seen already touched
  }
  if (const auto* checkpoint = std::get_if<CheckpointMsg>(&message)) {
    Task* task = find_task(checkpoint->task_id);
    // Stale frames (a task this worker no longer owns) are dropped: the
    // owner of record is the only source of resume state.
    if (task != nullptr && task->state == Task::State::kAssigned &&
        task->worker_id == worker.id) {
      task->checkpoint = checkpoint->state;
      ++task->checkpoints_received;
      ++stats_.checkpoints_received;
    }
    return;
  }
  if (const auto* result = std::get_if<ResultMsg>(&message)) {
    Task* task = find_task(result->task_id);
    if (task == nullptr || task->state != Task::State::kAssigned ||
        task->worker_id != worker.id) {
      return;  // stale result from a presumed-dead, actually-slow worker
    }
    task->state = Task::State::kDone;
    task->result = *result;
    task->worker_id = 0;
    if (worker.active_tasks > 0) --worker.active_tasks;
    ++tasks_done_;
    ScenarioState& scenario = *scenarios_[task->scenario_index];
    if (++scenario.done_parts == scenario.task_ids.size()) {
      finalize_scenario(scenario);
    }
    return;
  }
  throw std::runtime_error(
      std::string("dist coordinator: unexpected message ") +
      message_name(message));
}

void Coordinator::bury_worker(WorkerState& worker, const std::string& why) {
  if (worker.dead) return;
  worker.dead = true;
  worker.connection.close();  // stale frames can never land
  if (worker.registered) ++stats_.workers_lost;
  std::size_t requeued = 0;
  for (auto& task : tasks_) {
    if (task->state == Task::State::kAssigned &&
        task->worker_id == worker.id) {
      task->state = Task::State::kPending;
      task->worker_id = 0;
      ++task->reassignments;
      ++stats_.reassignments;
      ++requeued;
    }
  }
  worker.active_tasks = 0;
  PF_LOG_WARN << "dist coordinator: worker " << worker.id
              << (worker.label.empty() ? "" : " (" + worker.label + ")")
              << " lost (" << why << "); requeued " << requeued
              << " task(s) from last checkpoints";
}

void Coordinator::check_heartbeats() {
  for (auto& worker : workers_) {
    if (worker->dead) continue;
    if (worker->last_seen.elapsed_seconds() >
        config_.heartbeat_timeout_seconds) {
      bury_worker(*worker, "heartbeat timeout");
    }
  }
}

Coordinator::Task* Coordinator::find_task(std::uint64_t task_id) {
  for (auto& task : tasks_) {
    if (task->task_id == task_id) return task.get();
  }
  return nullptr;
}

void Coordinator::broadcast_shutdown() {
  if (shutdown_sent_) return;
  shutdown_sent_ = true;
  for (auto& worker : workers_) {
    if (worker->dead) continue;
    try {
      send_message(worker->connection, ShutdownMsg{});
    } catch (const std::runtime_error&) {
      // Already gone; nothing left to tell it.
    }
  }
  listener_.close();
  listener_open_ = false;
}

// ---- merging ---------------------------------------------------------------

void Coordinator::finalize_scenario(ScenarioState& scenario) {
  ScenarioOutcome& out = scenario.outcome;
  out.name = scenario.spec.name;
  out.parts = scenario.task_ids.size();

  std::vector<const ResultMsg*> parts;  // part order
  for (const std::uint64_t task_id : scenario.task_ids) {
    const Task* task = find_task(task_id);
    parts.push_back(&task->result);
    out.reassignments += task->reassignments;
  }
  for (const ResultMsg* part : parts) {
    out.test_set_size += part->test_set_size;
  }

  if (parts.size() == 1) {
    // Verbatim: bitwise the single-process RunResult (timing aside).
    out.result = parts[0]->result;
  } else {
    // Every part drove the identical guess stream against a disjoint key
    // subset, so guesses/unique agree across parts and matched counts
    // partition. A schedule mismatch means the workers did NOT run the
    // same stream — refuse to merge rather than report plausible garbage.
    const guessing::RunResult& first = parts[0]->result;
    for (const ResultMsg* part : parts) {
      if (part->result.checkpoints.size() != first.checkpoints.size()) {
        throw std::runtime_error(
            "dist merge: parts of \"" + out.name +
            "\" disagree on checkpoint count");
      }
      for (std::size_t i = 0; i < first.checkpoints.size(); ++i) {
        if (part->result.checkpoints[i].guesses !=
            first.checkpoints[i].guesses) {
          throw std::runtime_error(
              "dist merge: parts of \"" + out.name +
              "\" disagree on the guess schedule");
        }
      }
    }
    out.result.checkpoints.clear();
    for (std::size_t i = 0; i < first.checkpoints.size(); ++i) {
      guessing::Checkpoint merged = first.checkpoints[i];
      merged.matched = 0;
      for (const ResultMsg* part : parts) {
        merged.matched += part->result.checkpoints[i].matched;
      }
      merged.matched_percent =
          out.test_set_size == 0
              ? 0.0
              : 100.0 * static_cast<double>(merged.matched) /
                    static_cast<double>(out.test_set_size);
      out.result.checkpoints.push_back(merged);
    }
    for (const ResultMsg* part : parts) {
      out.result.matched_passwords.insert(
          out.result.matched_passwords.end(),
          part->result.matched_passwords.begin(),
          part->result.matched_passwords.end());
    }
    out.result.sample_non_matched = first.sample_non_matched;
    out.result.seconds = 0.0;
    for (const ResultMsg* part : parts) {
      out.result.seconds = std::max(out.result.seconds, part->result.seconds);
    }
  }

  out.sketch = util::CardinalitySketch(config_.union_precision_bits);
  out.sketch_valid = true;
  for (const ResultMsg* part : parts) {
    if (part->sketch.empty()) {
      out.sketch_valid = false;
      continue;
    }
    util::CardinalitySketch part_sketch(config_.union_precision_bits);
    std::istringstream in(part->sketch);
    part_sketch.load(in);
    if (part_sketch.precision_bits() != config_.union_precision_bits) {
      out.sketch_valid = false;
      continue;
    }
    out.sketch.merge(part_sketch);
  }
  out.complete = true;
}

}  // namespace passflow::dist
