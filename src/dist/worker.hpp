// Worker half of the distributed fleet: one process that dials the
// coordinator, receives scenario assignments, drives an AttackSession per
// assignment, and streams checkpoints/results back.
//
// Generators and matchers cannot cross a process boundary, so an Assign
// carries opaque spec strings and every worker binds them through the same
// deterministic ScenarioFactory — the exact pattern AttackScheduler::
// load_state uses to rebind thawed scenarios via ScenarioResolver. Two
// workers given the same spec build bit-identical generators, which is
// what makes reassignment-after-crash metrics-preserving: the replacement
// worker thaws the last shipped session checkpoint (AttackSession::
// load_state restores the guess stream bit-for-bit) and continues as if
// the dead worker had never existed.
//
// Threading: the worker itself is single-threaded — one blocking-ish loop
// alternating socket polls with driving session slices. Sessions may still
// use a ThreadPool / pipeline internally (config.pool, per-assignment
// pipeline_depth); metrics are bitwise independent of both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dist/backoff.hpp"
#include "dist/protocol.hpp"
#include "guessing/generator.hpp"
#include "guessing/session.hpp"
#include "util/thread_pool.hpp"

namespace passflow::dist {

// One assignment as handed to the factory. shard_begin == shard_end == 0
// means the whole matcher; otherwise bind a view restricted to the
// half-open shard range (e.g. MappedMatcher's range constructor).
struct AssignedScenario {
  std::uint64_t scenario_id = 0;
  std::string name;
  std::string generator_spec;
  std::string matcher_spec;
  std::uint64_t shard_begin = 0;
  std::uint64_t shard_end = 0;
  guessing::SessionConfig session;
};

// What the factory must produce: a fresh generator (worker-owned) and the
// matcher to probe. Throwing from the factory is fatal for the worker —
// an unresolvable spec is a deployment bug, not a transient fault.
struct WorkerBinding {
  std::unique_ptr<guessing::GuessGenerator> generator;
  std::shared_ptr<const guessing::Matcher> matcher;
};

using ScenarioFactory =
    std::function<WorkerBinding(const AssignedScenario&)>;

struct WorkerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string label;  // free-form name in coordinator logs
  // Handed to every session (bulk matching / pipeline tracker); may be
  // nullptr for fully serial sessions (required when the worker process
  // forks, per the crash-test discipline).
  util::ThreadPool* pool = nullptr;
  // Chunks driven per session between socket polls: small enough to keep
  // heartbeat latency bounded, big enough to amortize the poll.
  std::size_t slice_chunks = 4;
  double heartbeat_interval_seconds = 0.2;
  BackoffPolicy reconnect;
};

struct WorkerStats {
  std::size_t assignments = 0;  // Assign messages honored (incl. resumes)
  std::size_t results_sent = 0;
  std::size_t checkpoints_sent = 0;
  std::size_t reconnects = 0;
};

class Worker {
 public:
  Worker(WorkerConfig config, ScenarioFactory factory);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  // Connects (with backoff) and serves until the coordinator sends
  // Shutdown. On a lost connection, drops all in-flight sessions and
  // reconnects — the coordinator reassigns from the last checkpoints it
  // holds. Throws std::runtime_error once the reconnect budget is
  // exhausted, and propagates factory/session errors unchanged.
  void run();

  const WorkerStats& stats() const { return stats_; }

 private:
  struct ActiveTask;

  // One serve cycle on a live connection; loops until Shutdown or a
  // connection error (which throws out to run()'s reconnect handling).
  void serve(class Connection& connection);
  void handle_assign(const AssignMsg& assign);
  // Drives every active session one slice; ships results/checkpoints.
  // Returns true when any session still has budget left.
  bool drive(class Connection& connection);
  void send_result(class Connection& connection, ActiveTask& task);

  WorkerConfig config_;
  ScenarioFactory factory_;
  WorkerStats stats_;
  std::vector<std::unique_ptr<ActiveTask>> active_;
  bool shutdown_ = false;
};

}  // namespace passflow::dist
