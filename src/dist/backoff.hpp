// Exponential retry/backoff policy for worker (re)connects.
//
// A worker that loses its coordinator — process restart, transient
// listen-queue overflow, torn frame forcing a clean reconnect — retries
// with exponentially growing delays up to a cap, and gives up after a
// bounded number of attempts so a dead coordinator turns into a loud
// error instead of an infinite silent loop. Deterministic (no jitter):
// test runs are reproducible, and the handful of localhost workers this
// targets cannot produce a thundering herd worth randomizing.
#pragma once

#include <algorithm>
#include <cstddef>

namespace passflow::dist {

struct BackoffPolicy {
  double initial_delay_seconds = 0.02;
  double multiplier = 2.0;
  double max_delay_seconds = 1.0;
  // Connect attempts before giving up; >= 1. 10 doubling steps from 20 ms
  // span ~10 s of coordinator downtime.
  std::size_t max_attempts = 10;
};

class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy = {}) : policy_(policy) {}

  // True once max_attempts delays have been handed out.
  bool exhausted() const { return attempts_ >= policy_.max_attempts; }

  // Delay to sleep before the next attempt; grows per call.
  double next_delay_seconds() {
    ++attempts_;
    const double delay = delay_;
    delay_ = std::min(delay_ * policy_.multiplier,
                      policy_.max_delay_seconds);
    return std::min(delay, policy_.max_delay_seconds);
  }

  // A successful connect resets the schedule for the next outage.
  void reset() {
    attempts_ = 0;
    delay_ = policy_.initial_delay_seconds;
  }

  std::size_t attempts() const { return attempts_; }

 private:
  BackoffPolicy policy_;
  std::size_t attempts_ = 0;
  double delay_ = policy_.initial_delay_seconds;
};

}  // namespace passflow::dist
