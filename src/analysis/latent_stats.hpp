// Quantitative probes of the latent-space properties claimed in §V-B:
// smoothness (neighbors of a real password's latent decode to high-density
// points) and locality (similar passwords sit close together).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/encoder.hpp"
#include "flow/flow_model.hpp"
#include "util/rng.hpp"

namespace passflow::analysis {

struct NeighborhoodStats {
  double mean_log_prob = 0.0;     // mean log p(x) of decoded neighbors
  double mean_edit_distance = 0.0;  // vs the pivot password
  double collision_rate = 0.0;    // fraction of duplicate decodes
  std::size_t samples = 0;
};

// Samples `count` latent points from N(z_pivot, sigma^2 I), decodes them and
// reports density/similarity statistics of the decoded passwords.
NeighborhoodStats probe_neighborhood(const flow::FlowModel& model,
                                     const data::Encoder& encoder,
                                     const std::string& pivot, double sigma,
                                     std::size_t count, util::Rng& rng);

// Levenshtein distance (unit costs).
std::size_t edit_distance(const std::string& a, const std::string& b);

// Mean pairwise latent L2 distance of a set of passwords — locality metric:
// structurally related passwords should have a smaller value than unrelated
// ones.
double mean_latent_distance(const flow::FlowModel& model,
                            const data::Encoder& encoder,
                            const std::vector<std::string>& passwords);

}  // namespace passflow::analysis
