// Exact t-SNE (van der Maaten & Hinton 2008) for Figure 2's 2-D projection
// of latent neighborhoods. O(N^2) per iteration — Figure 2 projects a few
// hundred points, where exact t-SNE is both faster and more faithful than
// Barnes-Hut.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace passflow::analysis {

struct TsneConfig {
  std::size_t output_dim = 2;
  double perplexity = 30.0;
  std::size_t iterations = 500;
  double learning_rate = 50.0;
  double momentum = 0.8;
  double max_step = 3.0;  // per-coordinate step clamp (divergence guard)
  double early_exaggeration = 4.0;
  std::size_t exaggeration_iters = 100;
  std::uint64_t seed = 53;
};

// Embeds `points` (N x D) into (N x output_dim). Requires N >= 4.
nn::Matrix tsne_embed(const nn::Matrix& points, TsneConfig config = {});

// Binary-search for the Gaussian bandwidth matching the target perplexity of
// one row of squared distances; exposed for testing.
double perplexity_beta(const std::vector<double>& squared_distances,
                       std::size_t self_index, double perplexity);

}  // namespace passflow::analysis
