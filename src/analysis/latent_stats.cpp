#include "analysis/latent_stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "guessing/interpolation.hpp"

namespace passflow::analysis {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> curr(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitution});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

NeighborhoodStats probe_neighborhood(const flow::FlowModel& model,
                                     const data::Encoder& encoder,
                                     const std::string& pivot, double sigma,
                                     std::size_t count, util::Rng& rng) {
  const auto z_pivot = guessing::latent_of(model, encoder, pivot);

  nn::Matrix z(count, encoder.dim());
  for (std::size_t r = 0; r < count; ++r) {
    for (std::size_t d = 0; d < encoder.dim(); ++d) {
      z(r, d) = static_cast<float>(z_pivot[d] + rng.normal(0.0, sigma));
    }
  }
  const nn::Matrix x = model.inverse(z);
  const auto passwords = encoder.decode_batch(x);

  // Density of the decoded strings (re-encoded deterministically): what the
  // smoothness claim is about — neighbors decode to probable passwords.
  NeighborhoodStats stats;
  stats.samples = count;
  std::unordered_map<std::string, std::size_t> histogram;
  std::vector<std::string> valid;
  for (const auto& password : passwords) {
    ++histogram[password];
    if (!password.empty() && password.size() <= encoder.dim() &&
        encoder.alphabet().validates(password)) {
      valid.push_back(password);
    }
    stats.mean_edit_distance +=
        static_cast<double>(edit_distance(password, pivot));
  }
  stats.mean_edit_distance /= static_cast<double>(count);

  std::size_t duplicates = 0;
  for (const auto& [_, c] : histogram) duplicates += c - 1;
  stats.collision_rate =
      static_cast<double>(duplicates) / static_cast<double>(count);

  if (!valid.empty()) {
    const nn::Matrix features = encoder.encode_batch(valid);
    const auto log_probs = model.log_prob(features);
    double acc = 0.0;
    for (double lp : log_probs) acc += lp;
    stats.mean_log_prob = acc / static_cast<double>(log_probs.size());
  }
  return stats;
}

double mean_latent_distance(const flow::FlowModel& model,
                            const data::Encoder& encoder,
                            const std::vector<std::string>& passwords) {
  const nn::Matrix x = encoder.encode_batch(passwords);
  const nn::Matrix z = model.forward_inference(x);
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < z.rows(); ++i) {
    for (std::size_t j = i + 1; j < z.rows(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < z.cols(); ++k) {
        const double diff = static_cast<double>(z(i, k)) - z(j, k);
        acc += diff * diff;
      }
      total += std::sqrt(acc);
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace passflow::analysis
