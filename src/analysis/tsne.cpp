#include "analysis/tsne.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace passflow::analysis {

namespace {
std::vector<std::vector<double>> pairwise_squared_distances(
    const nn::Matrix& points) {
  const std::size_t n = points.rows();
  std::vector<std::vector<double>> d2(n, std::vector<double>(n, 0.0));
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < points.cols(); ++k) {
        const double diff =
            static_cast<double>(points(i, k)) - points(j, k);
        acc += diff * diff;
      }
      d2[i][j] = acc;
      d2[j][i] = acc;
    }
  }
  return d2;
}
}  // namespace

double perplexity_beta(const std::vector<double>& squared_distances,
                       std::size_t self_index, double perplexity) {
  // Find beta (precision) so the conditional distribution's entropy matches
  // log(perplexity).
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_min = 0.0, beta_max = 1e12;
  for (int iter = 0; iter < 64; ++iter) {
    double sum_p = 0.0, sum_dp = 0.0;
    for (std::size_t j = 0; j < squared_distances.size(); ++j) {
      if (j == self_index) continue;
      const double p = std::exp(-beta * squared_distances[j]);
      sum_p += p;
      sum_dp += squared_distances[j] * p;
    }
    if (sum_p <= 0.0) {
      beta /= 2.0;
      continue;
    }
    // H = log(sum_p) + beta * E[d^2]
    const double entropy = std::log(sum_p) + beta * sum_dp / sum_p;
    const double diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-5) break;
    if (diff > 0.0) {
      beta_min = beta;
      beta = beta_max > 1e11 ? beta * 2.0 : (beta + beta_max) / 2.0;
    } else {
      beta_max = beta;
      beta = (beta + beta_min) / 2.0;
    }
  }
  return beta;
}

nn::Matrix tsne_embed(const nn::Matrix& points, TsneConfig config) {
  const std::size_t n = points.rows();
  if (n < 4) throw std::invalid_argument("tsne_embed requires >= 4 points");
  const double perplexity =
      std::min(config.perplexity, static_cast<double>(n - 1) / 3.0);

  const auto d2 = pairwise_squared_distances(points);

  // Symmetrized joint probabilities P.
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    const double beta = perplexity_beta(d2[i], i, perplexity);
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      p[i][j] = std::exp(-beta * d2[i][j]);
      sum += p[i][j];
    }
    if (sum > 0.0) {
      for (std::size_t j = 0; j < n; ++j) p[i][j] /= sum;
    }
  }
  double p_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double symmetric = (p[i][j] + p[j][i]) / (2.0 * n);
      p[i][j] = p[j][i] = std::max(symmetric, 1e-12);
      p_total += 2.0 * p[i][j];
    }
  }
  (void)p_total;

  util::Rng rng(config.seed);
  nn::Matrix y(n, config.output_dim);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y.data()[i] = static_cast<float>(rng.normal(0.0, 1e-2));
  }
  nn::Matrix velocity(n, config.output_dim);

  std::vector<std::vector<double>> q(n, std::vector<double>(n, 0.0));
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.exaggeration_iters ? config.early_exaggeration : 1.0;
    // Low momentum during early exaggeration, as in the reference
    // implementation; prevents oscillation blow-ups on small point sets.
    const double momentum =
        iter < config.exaggeration_iters ? 0.5 : config.momentum;

    // Student-t similarities Q.
    double q_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < config.output_dim; ++k) {
          const double diff = static_cast<double>(y(i, k)) - y(j, k);
          acc += diff * diff;
        }
        const double num = 1.0 / (1.0 + acc);
        q[i][j] = q[j][i] = num;
        q_sum += 2.0 * num;
      }
    }

    // Gradient dC/dy_i = 4 sum_j (exag*P_ij - Q_ij) num_ij (y_i - y_j).
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> grad(config.output_dim, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double num = q[i][j];
        const double q_norm = std::max(num / q_sum, 1e-12);
        const double coeff = 4.0 * (exaggeration * p[i][j] - q_norm) * num;
        for (std::size_t k = 0; k < config.output_dim; ++k) {
          grad[k] += coeff * (static_cast<double>(y(i, k)) - y(j, k));
        }
      }
      for (std::size_t k = 0; k < config.output_dim; ++k) {
        double step = momentum * velocity(i, k) -
                      config.learning_rate * grad[k];
        // Clamp the per-coordinate step: guards against divergence when the
        // learning rate is large relative to the point count.
        step = std::clamp(step, -config.max_step, config.max_step);
        velocity(i, k) = static_cast<float>(step);
        y(i, k) += velocity(i, k);
      }
    }

    // Re-center to keep the embedding bounded.
    for (std::size_t k = 0; k < config.output_dim; ++k) {
      double mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) mean += y(i, k);
      mean /= static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) {
        y(i, k) -= static_cast<float>(mean);
      }
    }
  }
  return y;
}

}  // namespace passflow::analysis
