// Quantitative sample-quality metrics.
//
// Table IV argues qualitatively that PassFlow's non-matched samples "look
// human". These metrics make that measurable: distributional distances
// between a generated sample set and a reference corpus over
//   * password lengths,
//   * per-position character marginals,
//   * Weir-style base structures (L/D/S segment patterns).
// Low divergences mean the generator reproduces the corpus' shape even
// where exact strings differ.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace passflow::analysis {

struct QualityReport {
  double length_jsd = 0.0;      // Jensen-Shannon divergence, nats
  double charset_jsd = 0.0;     // position-averaged character JSD
  double structure_jsd = 0.0;   // JSD over Weir base structures
  std::size_t generated = 0;
  std::size_t reference = 0;
};

// Jensen-Shannon divergence between two discrete distributions given as
// aligned probability vectors (need not be normalized; zero-sum throws).
double jensen_shannon(const std::vector<double>& p,
                      const std::vector<double>& q);

// Compares `generated` against `reference`. `max_length` bounds the length
// histogram and per-position marginals.
QualityReport compare_sample_quality(
    const std::vector<std::string>& generated,
    const std::vector<std::string>& reference, std::size_t max_length);

}  // namespace passflow::analysis
