#include "analysis/quality.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "baselines/pcfg.hpp"

namespace passflow::analysis {

namespace {
double kl_term(double p, double m) {
  if (p <= 0.0) return 0.0;
  return p * std::log(p / m);
}

void normalize(std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) total += x;
  if (total <= 0.0) throw std::invalid_argument("zero-mass distribution");
  for (double& x : v) x /= total;
}
}  // namespace

double jensen_shannon(const std::vector<double>& p,
                      const std::vector<double>& q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("jensen_shannon: size mismatch");
  }
  std::vector<double> pn = p, qn = q;
  normalize(pn);
  normalize(qn);
  double jsd = 0.0;
  for (std::size_t i = 0; i < pn.size(); ++i) {
    const double m = 0.5 * (pn[i] + qn[i]);
    if (m <= 0.0) continue;
    jsd += 0.5 * kl_term(pn[i], m) + 0.5 * kl_term(qn[i], m);
  }
  return jsd;
}

namespace {
std::vector<double> length_histogram(const std::vector<std::string>& set,
                                     std::size_t max_length) {
  std::vector<double> hist(max_length + 1, 0.0);
  for (const auto& password : set) {
    const std::size_t len = std::min(password.size(), max_length);
    hist[len] += 1.0;
  }
  return hist;
}

// Character marginals per position over bytes 0..255, averaged JSD.
double positional_charset_jsd(const std::vector<std::string>& a,
                              const std::vector<std::string>& b,
                              std::size_t max_length) {
  double total = 0.0;
  std::size_t positions = 0;
  for (std::size_t pos = 0; pos < max_length; ++pos) {
    std::vector<double> pa(257, 0.0), pb(257, 0.0);  // 256 = "no char"
    for (const auto& s : a) {
      if (pos < s.size()) {
        pa[static_cast<unsigned char>(s[pos])] += 1.0;
      } else {
        pa[256] += 1.0;
      }
    }
    for (const auto& s : b) {
      if (pos < s.size()) {
        pb[static_cast<unsigned char>(s[pos])] += 1.0;
      } else {
        pb[256] += 1.0;
      }
    }
    total += jensen_shannon(pa, pb);
    ++positions;
  }
  return positions > 0 ? total / static_cast<double>(positions) : 0.0;
}

double structure_jsd(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  std::map<std::string, std::pair<double, double>> counts;
  for (const auto& s : a) {
    counts[baselines::structure_to_string(baselines::parse_structure(s))]
        .first += 1.0;
  }
  for (const auto& s : b) {
    counts[baselines::structure_to_string(baselines::parse_structure(s))]
        .second += 1.0;
  }
  std::vector<double> p, q;
  p.reserve(counts.size());
  q.reserve(counts.size());
  for (const auto& [_, pair] : counts) {
    p.push_back(pair.first);
    q.push_back(pair.second);
  }
  return jensen_shannon(p, q);
}
}  // namespace

QualityReport compare_sample_quality(
    const std::vector<std::string>& generated,
    const std::vector<std::string>& reference, std::size_t max_length) {
  if (generated.empty() || reference.empty()) {
    throw std::invalid_argument("compare_sample_quality: empty input");
  }
  QualityReport report;
  report.generated = generated.size();
  report.reference = reference.size();
  report.length_jsd = jensen_shannon(
      length_histogram(generated, max_length),
      length_histogram(reference, max_length));
  report.charset_jsd =
      positional_charset_jsd(generated, reference, max_length);
  report.structure_jsd = structure_jsd(generated, reference);
  return report;
}

}  // namespace passflow::analysis
