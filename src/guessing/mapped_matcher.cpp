#include "guessing/mapped_matcher.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <istream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/flat_string_set.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace passflow::guessing {

namespace {

// Native little-endian field access; the format is defined little-endian
// and every supported target is. memcpy keeps the loads alignment- and
// aliasing-safe on the raw mapped bytes.
std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t load_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void append_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t probe_start(std::uint64_t hash, std::size_t mask) {
  // Shard selection consumed `hash % shard_count`; mix again so the probe
  // position inside the shard is decorrelated from the shard choice.
  return static_cast<std::size_t>(util::mix64(hash)) & mask;
}

[[noreturn]] void corrupt(const std::string& path, const std::string& why) {
  throw std::runtime_error("bad matcher index " + path + ": " + why);
}

struct ShardExtents {
  std::size_t slot_count = 0;
  std::size_t arena_bytes = 0;
  std::size_t payload_bytes = 0;    // slots + arena + alignment padding
  std::size_t transient_bytes = 0;  // peak emit-side memory on top of table
};

// Streams one deduplicated shard — exactly-sized slot table, then the key
// arena, 8-byte aligned — from `table` to `out`. Nothing shard-sized is
// buffered: slots go through a small fixed chunk and arena bytes are
// written straight out of the table's own storage, so the builder's peak
// memory really is one shard's dedup table plus O(slots) placement
// bookkeeping.
ShardExtents emit_shard(const util::FlatStringSet& table,
                        double max_load_factor, std::ostream& out) {
  struct EmitEntry {
    std::uint64_t hash = 0;
    std::uint64_t offset = 0;  // into this shard's arena
    std::uint32_t length = 0;
  };
  ShardExtents extents;
  if (table.size() > 0) {
    const auto wanted = static_cast<std::size_t>(
        static_cast<double>(table.size()) / max_load_factor) + 1;
    extents.slot_count = next_pow2(wanted < 2 ? 2 : wanted);
  }
  std::vector<EmitEntry> entries;
  entries.reserve(table.size());
  table.for_each_hashed([&](std::uint64_t hash, std::string_view key) {
    EmitEntry entry;
    entry.hash = hash;
    entry.offset = extents.arena_bytes;
    entry.length = static_cast<std::uint32_t>(key.size());
    entries.push_back(entry);
    extents.arena_bytes += key.size();
  });
  std::vector<std::uint32_t> placed(extents.slot_count, 0);  // entry idx + 1
  const std::size_t mask =
      extents.slot_count == 0 ? 0 : extents.slot_count - 1;
  for (std::size_t e = 0; e < entries.size(); ++e) {
    std::size_t i = probe_start(entries[e].hash, mask);
    while (placed[i] != 0) i = (i + 1) & mask;
    placed[i] = static_cast<std::uint32_t>(e + 1);
  }

  std::string chunk;
  chunk.reserve(64 * 1024);
  for (std::size_t i = 0; i < extents.slot_count; ++i) {
    if (placed[i] == 0) {
      append_u64(chunk, 0);
      append_u64(chunk, 0);
      append_u32(chunk, 0);
      append_u32(chunk, 0);
    } else {
      const EmitEntry& e = entries[placed[i] - 1];
      append_u64(chunk, e.hash);
      append_u64(chunk, e.offset + 1);
      append_u32(chunk, e.length);
      append_u32(chunk, 0);
    }
    if (chunk.size() + kIndexSlotBytes > chunk.capacity()) {
      out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      chunk.clear();
    }
  }
  out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  table.for_each([&](std::string_view key) {
    out.write(key.data(), static_cast<std::streamsize>(key.size()));
  });
  extents.payload_bytes =
      extents.slot_count * kIndexSlotBytes + extents.arena_bytes;
  while (extents.payload_bytes % 8 != 0) {
    out.put('\0');
    ++extents.payload_bytes;
  }
  extents.transient_bytes = entries.size() * sizeof(EmitEntry) +
                            placed.size() * sizeof(std::uint32_t) +
                            chunk.capacity();
  return extents;
}

}  // namespace

// ----------------------------------------------------------- IndexBuilder

IndexBuilder::IndexBuilder(IndexBuilderConfig config) : config_(config) {
  if (config_.num_shards == 0) {
    throw std::invalid_argument("IndexBuilder needs at least one shard");
  }
  if (config_.max_load_factor < 0.1) config_.max_load_factor = 0.1;
  if (config_.max_load_factor > 0.9) config_.max_load_factor = 0.9;
}

IndexBuilder::~IndexBuilder() {
  if (active_) discard();
}

std::string IndexBuilder::spill_path(std::size_t shard) const {
  return out_path_ + ".shard" + std::to_string(shard) + ".spill";
}

void IndexBuilder::discard() {
  spills_.clear();  // closes any open spill streams first
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    std::remove(spill_path(s).c_str());
  }
  std::remove(out_path_.c_str());
  active_ = false;
}

void IndexBuilder::begin(const std::string& out_path) {
  if (active_) throw std::logic_error("IndexBuilder::begin called twice");
  out_path_ = out_path;
  keys_seen_ = 0;
  spills_.clear();
  try {
    for (std::size_t s = 0; s < config_.num_shards; ++s) {
      spills_.emplace_back(spill_path(s),
                           std::ios::binary | std::ios::trunc);
      if (!spills_.back()) {
        throw std::runtime_error("cannot open spill file " + spill_path(s));
      }
    }
  } catch (...) {
    discard();  // drop spill files already created before the failure
    throw;
  }
  timer_.reset();
  active_ = true;
}

void IndexBuilder::add(std::string_view key) {
  if (!active_) throw std::logic_error("IndexBuilder::add before begin");
  if (key.size() > 0xFFFFFFFFull) {
    // The spill record and the index slot both carry a u32 length; a
    // silently wrapped length would desync the spill stream.
    throw std::invalid_argument("index key longer than 4 GiB - 1");
  }
  const std::uint64_t hash = util::hash64(key, kIndexHashSeed);
  std::ofstream& spill = spills_[hash % spills_.size()];
  const auto len = static_cast<std::uint32_t>(key.size());
  spill.write(reinterpret_cast<const char*>(&hash), sizeof(hash));
  spill.write(reinterpret_cast<const char*>(&len), sizeof(len));
  if (!key.empty()) {
    spill.write(key.data(), static_cast<std::streamsize>(key.size()));
  }
  ++keys_seen_;
}

IndexBuildStats IndexBuilder::finish() {
  if (!active_) throw std::logic_error("IndexBuilder::finish before begin");
  // Any failure below leaves no spill or partial-index litter behind and
  // resets the builder for a fresh begin().
  try {
    return finish_impl();
  } catch (...) {
    discard();
    throw;
  }
}

IndexBuildStats IndexBuilder::finish_impl() {
  for (auto& spill : spills_) {
    spill.flush();
    if (!spill) throw std::runtime_error("spill write failed for " + out_path_);
    spill.close();
  }

  std::ofstream out(out_path_, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open index file " + out_path_);

  // Placeholder header + directory; patched once the payload offsets are
  // known. Everything after this point is append-only.
  const std::size_t dir_bytes = config_.num_shards * kIndexDirEntryBytes;
  std::string zeros(kIndexHeaderBytes + dir_bytes, '\0');
  out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));

  IndexBuildStats stats;
  stats.keys_seen = keys_seen_;
  stats.shard_count = config_.num_shards;
  std::string directory;
  std::size_t cursor = kIndexHeaderBytes + dir_bytes;
  std::string scratch;
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    // Bounded memory: exactly one shard's dedup table lives at a time,
    // and emit_shard streams straight to the file.
    util::FlatStringSet table;
    {
      std::ifstream spill(spill_path(s), std::ios::binary);
      if (!spill) {
        throw std::runtime_error("cannot reopen spill file " + spill_path(s));
      }
      std::uint64_t hash = 0;
      std::uint32_t len = 0;
      while (spill.read(reinterpret_cast<char*>(&hash), sizeof(hash))) {
        if (!spill.read(reinterpret_cast<char*>(&len), sizeof(len))) {
          throw std::runtime_error("spill file truncated: " + spill_path(s));
        }
        scratch.resize(len);
        if (len > 0 && !spill.read(scratch.data(), len)) {
          throw std::runtime_error("spill file truncated: " + spill_path(s));
        }
        // The spill hash was computed with kIndexHashSeed — FlatStringSet's
        // own hashing (util::hash64 default seed) agrees by construction.
        table.insert_hashed(hash, scratch);
      }
    }
    std::remove(spill_path(s).c_str());

    const std::size_t table_offset = cursor;
    const ShardExtents extents =
        emit_shard(table, config_.max_load_factor, out);
    append_u64(directory, table_offset);
    append_u64(directory, extents.slot_count);
    append_u64(directory, table_offset + extents.slot_count * kIndexSlotBytes);
    append_u64(directory, extents.arena_bytes);
    cursor += extents.payload_bytes;
    stats.keys_distinct += table.size();
    const std::size_t shard_bytes =
        table.memory_bytes() + extents.transient_bytes;
    if (shard_bytes > stats.peak_shard_bytes) {
      stats.peak_shard_bytes = shard_bytes;
    }
  }
  stats.file_bytes = cursor;

  std::string header;
  header.append(kIndexMagic, 8);
  append_u64(header, kIndexFormatVersion);
  append_u64(header, kIndexHashSeed);
  append_u64(header, config_.num_shards);
  append_u64(header, stats.keys_distinct);
  append_u64(header, stats.file_bytes);
  out.seekp(0);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(directory.data(), static_cast<std::streamsize>(directory.size()));
  out.flush();
  if (!out) throw std::runtime_error("index write failed for " + out_path_);

  active_ = false;
  spills_.clear();
  stats.seconds = timer_.elapsed_seconds();  // spans begin() -> here
  return stats;
}

IndexBuildStats IndexBuilder::build(const std::vector<std::string>& keys,
                                    const std::string& out_path,
                                    IndexBuilderConfig config) {
  IndexBuilder builder(config);
  builder.begin(out_path);
  for (const std::string& key : keys) builder.add(key);
  return builder.finish();
}

IndexBuildStats IndexBuilder::build_wordlist(std::istream& words,
                                             const std::string& out_path,
                                             IndexBuilderConfig config) {
  IndexBuilder builder(config);
  builder.begin(out_path);
  std::string line;
  while (std::getline(words, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    builder.add(line);
  }
  return builder.finish();
}

// ---------------------------------------------------------- MappedMatcher

MappedMatcher::MappedMatcher(const std::string& index_path)
    : file_(index_path) {
  const unsigned char* base = file_.data();
  const std::size_t size = file_.size();
  if (size < kIndexHeaderBytes) corrupt(index_path, "file truncated (no header)");
  if (std::memcmp(base, kIndexMagic, 8) != 0) {
    corrupt(index_path, "bad magic (not a matcher index)");
  }
  const std::uint64_t version = load_u64(base + 8);
  if (version != kIndexFormatVersion) {
    corrupt(index_path, "unsupported format version " +
                            std::to_string(version) + " (expected " +
                            std::to_string(kIndexFormatVersion) + ")");
  }
  const std::uint64_t seed = load_u64(base + 16);
  if (seed != kIndexHashSeed) {
    corrupt(index_path, "hash seed mismatch (index built with a different "
                        "hash seed than this binary probes with)");
  }
  const std::uint64_t shard_count = load_u64(base + 24);
  key_count_ = static_cast<std::size_t>(load_u64(base + 32));
  const std::uint64_t declared_bytes = load_u64(base + 40);
  if (declared_bytes != size) {
    corrupt(index_path, "file truncated (header declares " +
                            std::to_string(declared_bytes) + " bytes, file has " +
                            std::to_string(size) + ")");
  }
  if (shard_count == 0 || shard_count > (std::uint64_t{1} << 24)) {
    corrupt(index_path, "implausible shard count " +
                            std::to_string(shard_count));
  }
  if (kIndexHeaderBytes + shard_count * kIndexDirEntryBytes > size) {
    corrupt(index_path, "file truncated (directory out of range)");
  }

  shards_.resize(static_cast<std::size_t>(shard_count));
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const unsigned char* dir =
        base + kIndexHeaderBytes + s * kIndexDirEntryBytes;
    const std::uint64_t table_offset = load_u64(dir);
    const std::uint64_t slot_count = load_u64(dir + 8);
    const std::uint64_t arena_offset = load_u64(dir + 16);
    const std::uint64_t arena_bytes = load_u64(dir + 24);
    if (slot_count != 0 && (slot_count & (slot_count - 1)) != 0) {
      corrupt(index_path, "shard " + std::to_string(s) +
                              " slot count is not a power of two");
    }
    if (table_offset > size || slot_count > (size - table_offset) / kIndexSlotBytes) {
      corrupt(index_path, "file truncated (shard " + std::to_string(s) +
                              " table out of range)");
    }
    if (arena_offset > size || arena_bytes > size - arena_offset) {
      corrupt(index_path, "file truncated (shard " + std::to_string(s) +
                              " arena out of range)");
    }
    ShardView view;
    view.table = base + table_offset;
    view.slot_count = static_cast<std::size_t>(slot_count);
    view.arena = base + arena_offset;
    view.arena_bytes = static_cast<std::size_t>(arena_bytes);
    shards_[s] = view;
  }
  shard_end_ = shards_.size();
  file_.advise_random();
}

MappedMatcher::MappedMatcher(const std::string& index_path,
                             std::size_t shard_begin, std::size_t shard_end)
    : MappedMatcher(index_path) {
  if (shard_begin >= shard_end || shard_end > shards_.size()) {
    throw std::invalid_argument(
        "MappedMatcher: invalid shard range [" +
        std::to_string(shard_begin) + ", " + std::to_string(shard_end) +
        ") for " + std::to_string(shards_.size()) + " shards");
  }
  shard_begin_ = shard_begin;
  shard_end_ = shard_end;
  // The header's key count covers the whole file; a range view reports
  // only its own shards' keys so matched_percent keeps its denominator.
  key_count_ = 0;
  for (std::size_t s = shard_begin_; s < shard_end_; ++s) {
    const ShardView& shard = shards_[s];
    for (std::size_t i = 0; i < shard.slot_count; ++i) {
      const unsigned char* slot = shard.table + i * kIndexSlotBytes;
      if (load_u64(slot + 8) != 0) ++key_count_;
    }
  }
}

bool MappedMatcher::probe_shard(const ShardView& shard, std::uint64_t hash,
                                std::string_view key) const {
  if (shard.slot_count == 0) return false;
  const std::size_t mask = shard.slot_count - 1;
  std::size_t i = probe_start(hash, mask);
  for (std::size_t probes = 0; probes <= mask; ++probes) {
    const unsigned char* slot = shard.table + i * kIndexSlotBytes;
    const std::uint64_t offset_plus_one = load_u64(slot + 8);
    if (offset_plus_one == 0) return false;
    if (load_u64(slot) == hash) {
      const std::uint64_t offset = offset_plus_one - 1;
      const std::uint32_t length = load_u32(slot + 16);
      if (offset > shard.arena_bytes ||
          length > shard.arena_bytes - offset) {
        corrupt(file_.path(), "slot key extent out of range");
      }
      if (length == key.size() &&
          (length == 0 ||
           std::memcmp(shard.arena + offset, key.data(), length) == 0)) {
        return true;
      }
    }
    i = (i + 1) & mask;
  }
  // A well-formed table keeps load < 1, so a full scan without an empty
  // slot means the file lied about its load factor.
  corrupt(file_.path(), "slot table has no empty slot");
}

bool MappedMatcher::contains(const std::string& password) const {
  const std::uint64_t hash = util::hash64(password, kIndexHashSeed);
  const std::size_t shard = hash % shards_.size();
  if (shard < shard_begin_ || shard >= shard_end_) return false;
  return probe_shard(shards_[shard], hash, password);
}

std::string MappedMatcher::name() const {
  std::string name = "mapped(" + std::to_string(shards_.size()) + ")";
  if (shard_begin_ != 0 || shard_end_ != shards_.size()) {
    name += "[" + std::to_string(shard_begin_) + "," +
            std::to_string(shard_end_) + ")";
  }
  return name;
}

void MappedMatcher::contains_batch(const std::vector<std::string>& batch,
                                   util::ThreadPool* pool,
                                   std::vector<char>& out) const {
  out.assign(batch.size(), 0);
  const bool parallel = pool != nullptr && pool->size() > 1 &&
                        shards_.size() > 1 &&
                        batch.size() >= kParallelBatchThreshold;
  if (parallel) {
    // The shared shard-parallel plan also keeps each task's page faults
    // within one shard's slice of the file.
    detail::shard_parallel_contains_batch(
        shards_.size(), batch, *pool,
        [](const std::string& key) {
          return util::hash64(key, kIndexHashSeed);
        },
        [this](std::size_t s, std::uint64_t hash, const std::string& key) {
          if (s < shard_begin_ || s >= shard_end_) return false;
          return probe_shard(shards_[s], hash, key);
        },
        out);
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i] = contains(batch[i]) ? 1 : 0;
    }
  }
}

}  // namespace passflow::guessing
