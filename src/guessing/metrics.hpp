// Metrics tracked during a guessing run: totals, uniques, matches, and
// checkpoint snapshots at the guess budgets the paper tables report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace passflow::guessing {

struct Checkpoint {
  std::size_t guesses = 0;   // total guesses generated so far
  std::size_t unique = 0;    // distinct guesses so far (Table III "Unique")
  std::size_t matched = 0;   // matched test passwords (Table III "Matched")
  double matched_percent = 0.0;  // vs test set size (Table II)
};

struct RunResult {
  std::vector<Checkpoint> checkpoints;
  std::vector<std::string> matched_passwords;      // in match order
  std::vector<std::string> sample_non_matched;     // for Table IV
  double seconds = 0.0;

  const Checkpoint& final() const { return checkpoints.back(); }
  // Checkpoint with the given guess budget; throws if absent.
  const Checkpoint& at(std::size_t guesses) const;
};

// Default checkpoint schedule: powers of 10 up to `budget` plus the budget
// itself (the paper reports 10^4..10^8).
std::vector<std::size_t> power_of_ten_checkpoints(std::size_t budget);

}  // namespace passflow::guessing
