#include "guessing/harness.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace passflow::guessing {

RunResult run_guessing(GuessGenerator& generator, const Matcher& matcher,
                       HarnessConfig config) {
  if (config.checkpoints.empty()) {
    config.checkpoints = power_of_ten_checkpoints(config.budget);
  }
  std::sort(config.checkpoints.begin(), config.checkpoints.end());

  util::Timer timer;
  RunResult result;
  std::unordered_set<std::string> unique_guesses;
  std::unordered_set<std::string> matched_set;
  std::unordered_set<std::string> non_matched_seen;

  std::size_t produced = 0;
  std::size_t checkpoint_index = 0;
  std::vector<std::string> batch;

  while (produced < config.budget) {
    const std::size_t next_stop = checkpoint_index < config.checkpoints.size()
                                      ? config.checkpoints[checkpoint_index]
                                      : config.budget;
    const std::size_t chunk =
        std::min(config.chunk_size, next_stop - produced);

    batch.clear();
    generator.generate(chunk, batch);

    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::string& guess = batch[i];
      if (config.track_unique) unique_guesses.insert(guess);
      if (matcher.contains(guess)) {
        if (matched_set.insert(guess).second) {
          result.matched_passwords.push_back(guess);
          generator.on_match(i, guess);
        }
      } else if (result.sample_non_matched.size() <
                     config.non_matched_samples &&
                 !guess.empty() && non_matched_seen.insert(guess).second) {
        result.sample_non_matched.push_back(guess);
      }
    }
    produced += batch.size();

    while (checkpoint_index < config.checkpoints.size() &&
           produced >= config.checkpoints[checkpoint_index]) {
      Checkpoint cp;
      cp.guesses = config.checkpoints[checkpoint_index];
      cp.unique = unique_guesses.size();
      cp.matched = matched_set.size();
      cp.matched_percent =
          matcher.test_set_size() > 0
              ? 100.0 * static_cast<double>(cp.matched) /
                    static_cast<double>(matcher.test_set_size())
              : 0.0;
      result.checkpoints.push_back(cp);
      ++checkpoint_index;
      if (config.log_progress) {
        PF_LOG_INFO << generator.name() << ": " << cp.guesses << " guesses, "
                    << cp.matched << " matched (" << cp.matched_percent
                    << "%), " << cp.unique << " unique";
      }
    }
  }

  if (result.checkpoints.empty() ||
      result.checkpoints.back().guesses != produced) {
    Checkpoint cp;
    cp.guesses = produced;
    cp.unique = unique_guesses.size();
    cp.matched = matched_set.size();
    cp.matched_percent =
        matcher.test_set_size() > 0
            ? 100.0 * static_cast<double>(cp.matched) /
                  static_cast<double>(matcher.test_set_size())
            : 0.0;
    result.checkpoints.push_back(cp);
  }

  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace passflow::guessing
