#include "guessing/harness.hpp"

#include <algorithm>
#include <future>
#include <unordered_set>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace passflow::guessing {

namespace {

// Below this chunk size the hash probes are too cheap to farm out.
constexpr std::size_t kParallelMatchThreshold = 1024;

}  // namespace

RunResult run_guessing(GuessGenerator& generator, const Matcher& matcher,
                       HarnessConfig config) {
  if (config.checkpoints.empty()) {
    config.checkpoints = power_of_ten_checkpoints(config.budget);
  }
  std::sort(config.checkpoints.begin(), config.checkpoints.end());

  util::Timer timer;
  RunResult result;
  std::unordered_set<std::string> unique_guesses;
  std::unordered_set<std::string> matched_set;
  std::unordered_set<std::string> non_matched_seen;

  std::size_t produced = 0;
  std::size_t checkpoint_index = 0;

  // Feedback-driven generators (Algorithm 1) must see each chunk's matches
  // before producing the next chunk, so generation cannot run ahead.
  const bool overlap =
      config.overlap_generation && !generator.uses_match_feedback();

  // membership[i] for the current batch, precomputed across pool workers.
  // Plain chars (not vector<bool>) so concurrent writes to distinct
  // indices are race-free.
  std::vector<char> membership;
  const auto precompute_membership =
      [&](const std::vector<std::string>& batch) {
        const bool parallel = config.pool != nullptr &&
                              config.pool->size() > 1 &&
                              batch.size() >= kParallelMatchThreshold;
        if (!parallel) return false;
        membership.assign(batch.size(), 0);
        config.pool->parallel_for(batch.size(), [&](std::size_t i) {
          membership[i] = matcher.contains(batch[i]) ? 1 : 0;
        });
        return true;
      };

  // Order-sensitive bookkeeping for one batch; always runs on this thread.
  const auto consume_batch = [&](const std::vector<std::string>& batch) {
    const bool have_membership = precompute_membership(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::string& guess = batch[i];
      if (config.track_unique) unique_guesses.insert(guess);
      const bool hit =
          have_membership ? membership[i] != 0 : matcher.contains(guess);
      if (hit) {
        if (matched_set.insert(guess).second) {
          result.matched_passwords.push_back(guess);
          // In overlap mode the generator may be producing the next chunk
          // on the background thread right now; it declared feedback
          // unused, so the callback is skipped rather than raced.
          if (!overlap) generator.on_match(i, guess);
        }
      } else if (result.sample_non_matched.size() <
                     config.non_matched_samples &&
                 !guess.empty() && non_matched_seen.insert(guess).second) {
        result.sample_non_matched.push_back(guess);
      }
    }
    produced += batch.size();
  };

  // Captured before any background generate() can start: name() is not
  // covered by the uses_match_feedback() contract, so calling it while the
  // producer thread runs would race on generators that derive their name
  // from mutable state.
  const std::string generator_name = config.log_progress ? generator.name() : "";

  const auto emit_due_checkpoints = [&] {
    while (checkpoint_index < config.checkpoints.size() &&
           produced >= config.checkpoints[checkpoint_index]) {
      Checkpoint cp;
      cp.guesses = config.checkpoints[checkpoint_index];
      cp.unique = unique_guesses.size();
      cp.matched = matched_set.size();
      cp.matched_percent =
          matcher.test_set_size() > 0
              ? 100.0 * static_cast<double>(cp.matched) /
                    static_cast<double>(matcher.test_set_size())
              : 0.0;
      result.checkpoints.push_back(cp);
      ++checkpoint_index;
      if (config.log_progress) {
        PF_LOG_INFO << generator_name << ": " << cp.guesses << " guesses, "
                    << cp.matched << " matched (" << cp.matched_percent
                    << "%), " << cp.unique << " unique";
      }
    }
  };

  if (overlap) {
    // Chunk request sizes are a pure function of budget/checkpoints/
    // chunk_size (generate() appends exactly n), so the whole schedule can
    // be fixed up front and generation pipelined one chunk ahead of
    // matching. The generate() call order is exactly the sequential one.
    std::vector<std::size_t> schedule;
    {
      std::size_t planned = 0;
      std::size_t ci = 0;
      while (planned < config.budget) {
        const std::size_t next_stop = ci < config.checkpoints.size()
                                          ? config.checkpoints[ci]
                                          : config.budget;
        const std::size_t chunk =
            std::min(config.chunk_size, next_stop - planned);
        schedule.push_back(chunk);
        planned += chunk;
        while (ci < config.checkpoints.size() &&
               planned >= config.checkpoints[ci]) {
          ++ci;
        }
      }
    }

    const auto produce = [&generator](std::size_t n) {
      std::vector<std::string> batch;
      batch.reserve(n);
      generator.generate(n, batch);
      return batch;
    };

    std::future<std::vector<std::string>> pending;
    for (std::size_t c = 0; c < schedule.size(); ++c) {
      std::vector<std::string> batch =
          c == 0 ? produce(schedule[0]) : pending.get();
      if (c + 1 < schedule.size()) {
        pending =
            std::async(std::launch::async, produce, schedule[c + 1]);
      }
      consume_batch(batch);
      emit_due_checkpoints();
    }
  } else {
    std::vector<std::string> batch;
    while (produced < config.budget) {
      const std::size_t next_stop =
          checkpoint_index < config.checkpoints.size()
              ? config.checkpoints[checkpoint_index]
              : config.budget;
      const std::size_t chunk =
          std::min(config.chunk_size, next_stop - produced);

      batch.clear();
      generator.generate(chunk, batch);
      consume_batch(batch);
      emit_due_checkpoints();
    }
  }

  if (result.checkpoints.empty() ||
      result.checkpoints.back().guesses != produced) {
    Checkpoint cp;
    cp.guesses = produced;
    cp.unique = unique_guesses.size();
    cp.matched = matched_set.size();
    cp.matched_percent =
        matcher.test_set_size() > 0
            ? 100.0 * static_cast<double>(cp.matched) /
                  static_cast<double>(matcher.test_set_size())
            : 0.0;
    result.checkpoints.push_back(cp);
  }

  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace passflow::guessing
