#include "guessing/harness.hpp"

#include <utility>

namespace passflow::guessing {

RunResult run_guessing(GuessGenerator& generator, const Matcher& matcher,
                       HarnessConfig config) {
  SessionConfig session_config;
  session_config.budget = config.budget;
  session_config.checkpoints = std::move(config.checkpoints);
  session_config.chunk_size = config.chunk_size;
  session_config.non_matched_samples = config.non_matched_samples;
  session_config.unique_tracking =
      config.track_unique ? UniqueTracking::kExact : UniqueTracking::kOff;
  session_config.log_progress = config.log_progress;
  session_config.pool = config.pool;
  session_config.pipeline_depth = config.overlap_generation ? 1 : 0;

  AttackSession session(generator, matcher, std::move(session_config));
  session.run();
  return session.result();
}

}  // namespace passflow::guessing
