// Common interface for anything that emits password guesses.
//
// PassFlow's three strategies, the CWAE, the GANs and the Markov baseline all
// implement this, so one harness (harness.hpp) can evaluate every row of
// Tables II and III. Generators that exploit match feedback (PassFlow's
// Dynamic Sampling, Algorithm 1) receive it through on_match().
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace passflow::guessing {

class GuessGenerator {
 public:
  virtual ~GuessGenerator() = default;

  // Appends exactly `n` guesses to `out`.
  virtual void generate(std::size_t n, std::vector<std::string>& out) = 0;

  // Called by the harness for each *new* matched guess, with the index of
  // that guess within the most recent generate() batch. Default: ignore.
  virtual void on_match(std::size_t index_in_batch,
                        const std::string& password) {
    (void)index_in_batch;
    (void)password;
  }

  // Whether this generator's future output depends on on_match() feedback.
  // Generators that override on_match() to mutate state MUST return true:
  // the harness only pipelines generation ahead of matching — during which
  // on_match() is never invoked — for generators that return false.
  virtual bool uses_match_feedback() const { return false; }

  // Human-readable name used in tables.
  virtual std::string name() const = 0;

  // --- Stream state serialization (AttackSession save/resume) -------------
  //
  // Generators that can checkpoint their stream override these three. The
  // contract: load_state() on a freshly constructed generator with the
  // same configuration must continue the guess stream bit-for-bit where
  // save_state() left it. Most samplers only need to persist their RNG
  // (util::Rng::save/load); enumerators persist a cursor.
  virtual bool supports_state_serialization() const { return false; }

  virtual void save_state(std::ostream& out) const {
    (void)out;
    throw std::logic_error("generator '" + name() +
                           "' does not support state serialization");
  }

  virtual void load_state(std::istream& in) {
    (void)in;
    throw std::logic_error("generator '" + name() +
                           "' does not support state serialization");
  }
};

}  // namespace passflow::guessing
