// Conditional guessing: complete a partially known password (§VII).
//
// The paper lists this as future work — "given the password 'jimmy**',
// guess the complete high probability password 'jimmy91'" — noting that
// plain generative flows cannot condition directly. This module implements
// the standard workaround for unconditional flows: constrained sampling
// with data-space projection, ranked by the flow's exact density.
//
//   1. Build candidate feature vectors whose known positions are pinned to
//      the template characters and whose wildcard positions are seeded
//      randomly (from dequantized uniform or from corpus-frequency priors).
//   2. Push each candidate through f, perturb locally in latent space (the
//      smoothness property of §V-B makes neighbors high-density), invert.
//   3. Project: overwrite the known positions with the template characters
//      again (the flow may have drifted them), decode, deduplicate.
//   4. Rank surviving completions by exact log p(x) — only possible because
//      flows give exact densities (GANs cannot rank without an extra
//      model).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/encoder.hpp"
#include "flow/flow_model.hpp"
#include "util/rng.hpp"

namespace passflow::guessing {

struct ScoredGuess {
  std::string password;
  double log_prob = 0.0;
};

struct ConditionalConfig {
  char wildcard = '*';
  std::size_t rounds = 32;        // latent perturbation rounds
  std::size_t batch_size = 256;   // candidates per round
  double latent_sigma = 0.15;     // perturbation radius
  std::uint64_t seed = 71;
};

class ConditionalGuesser {
 public:
  ConditionalGuesser(const flow::FlowModel& model,
                     const data::Encoder& encoder,
                     ConditionalConfig config = {});

  // Returns up to `count` completions of `pattern`, highest density first.
  // Every returned password matches the pattern exactly (same length,
  // identical characters at non-wildcard positions). Throws
  // std::invalid_argument if the pattern is unrepresentable.
  std::vector<ScoredGuess> complete(const std::string& pattern,
                                    std::size_t count);

 private:
  bool matches_pattern(const std::string& candidate,
                       const std::string& pattern) const;

  const flow::FlowModel* model_;
  const data::Encoder* encoder_;
  ConditionalConfig config_;
  util::Rng rng_;
};

}  // namespace passflow::guessing
