#include "guessing/unique_tracker.hpp"

#include <cstddef>
#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/cardinality_sketch.hpp"
#include "util/flat_string_set.hpp"
#include "util/hash.hpp"
#include "util/serial_io.hpp"

namespace passflow::guessing {

namespace {

constexpr char kExactMagic[] = "PFUTEX1\n";
constexpr char kSketchMagic[] = "PFUTSK1\n";

class NullUniqueTracker final : public UniqueTracker {
 public:
  void add_batch(const std::vector<std::string>&,
                 util::ThreadPool*) override {}
  std::size_t count() const override { return 0; }
  bool exact() const override { return true; }
  UniqueTracking mode() const override { return UniqueTracking::kOff; }
  std::size_t memory_bytes() const override { return 0; }
  bool merge_into(util::CardinalitySketch&) const override { return false; }
  void save(std::ostream&) const override {}
  void load(std::istream&) override {}
};

class ExactUniqueTracker final : public UniqueTracker {
 public:
  explicit ExactUniqueTracker(std::size_t shards)
      : shards_(shards == 0 ? 1 : shards) {}

  void add_batch(const std::vector<std::string>& batch,
                 util::ThreadPool* pool) override {
    if (shards_.size() == 1) {
      util::FlatStringSet& set = shards_[0];
      for (const std::string& guess : batch) set.insert(guess);
      return;
    }
    // Hash once per guess, then insert shard-parallel: each task owns one
    // sub-set and only touches the guesses routed to it, so the shards
    // never contend. Counts are order- and pool-independent because set
    // union is commutative.
    hashes_.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      hashes_[i] = util::hash64(batch[i]);
    }
    const auto insert_shard = [&](std::size_t s) {
      util::FlatStringSet& set = shards_[s];
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (hashes_[i] % shards_.size() == s) {
          set.insert_hashed(hashes_[i], batch[i]);
        }
      }
    };
    if (pool != nullptr && pool->size() > 1) {
      pool->parallel_for(shards_.size(), insert_shard);
    } else {
      for (std::size_t s = 0; s < shards_.size(); ++s) insert_shard(s);
    }
  }

  std::size_t count() const override {
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard.size();
    return total;
  }

  bool exact() const override { return true; }
  UniqueTracking mode() const override { return UniqueTracking::kExact; }

  bool merge_into(util::CardinalitySketch& sketch) const override {
    // Re-adding a key already represented in the sketch is idempotent, so
    // the merged estimate is exactly the sketch of the union of streams.
    for (const auto& shard : shards_) {
      shard.for_each([&](std::string_view key) { sketch.add(key); });
    }
    return true;
  }

  std::size_t memory_bytes() const override {
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard.memory_bytes();
    return total;
  }

  void save(std::ostream& out) const override {
    out.write(kExactMagic, sizeof(kExactMagic) - 1);
    util::io::write_u64(out, count());
    for (const auto& shard : shards_) {
      shard.for_each([&](std::string_view key) {
        util::io::write_u64(out, key.size());
        out.write(key.data(), static_cast<std::streamsize>(key.size()));
      });
    }
    if (!out) throw std::runtime_error("ExactUniqueTracker write failed");
  }

  void load(std::istream& in) override {
    util::io::expect_magic(in, kExactMagic, "ExactUniqueTracker");
    const std::uint64_t total = util::io::read_u64(in);
    // Keys re-route to whatever the live shard count is, so a run saved
    // with K shards can resume with K' — the count is shard-independent.
    std::string key;
    for (std::uint64_t k = 0; k < total; ++k) {
      key = util::io::read_string(in);
      const std::uint64_t hash = util::hash64(key);
      shards_[hash % shards_.size()].insert_hashed(hash, key);
    }
  }

 private:
  std::vector<util::FlatStringSet> shards_;
  std::vector<std::uint64_t> hashes_;  // per-chunk scratch
};

class SketchUniqueTracker final : public UniqueTracker {
 public:
  explicit SketchUniqueTracker(unsigned precision_bits)
      : sketch_(precision_bits) {}

  void add_batch(const std::vector<std::string>& batch,
                 util::ThreadPool*) override {
    for (const std::string& guess : batch) sketch_.add(guess);
  }

  std::size_t count() const override { return sketch_.estimate(); }
  bool exact() const override { return false; }
  UniqueTracking mode() const override { return UniqueTracking::kSketch; }
  std::size_t memory_bytes() const override { return sketch_.memory_bytes(); }

  bool merge_into(util::CardinalitySketch& sketch) const override {
    sketch.merge(sketch_);
    return true;
  }

  void save(std::ostream& out) const override {
    out.write(kSketchMagic, sizeof(kSketchMagic) - 1);
    sketch_.save(out);
  }

  void load(std::istream& in) override {
    util::io::expect_magic(in, kSketchMagic, "SketchUniqueTracker");
    sketch_.load(in);
  }

 private:
  util::CardinalitySketch sketch_;
};

}  // namespace

const char* unique_tracking_name(UniqueTracking mode) {
  switch (mode) {
    case UniqueTracking::kOff:
      return "off";
    case UniqueTracking::kExact:
      return "exact";
    case UniqueTracking::kSketch:
      return "sketch";
  }
  return "unknown";
}

std::unique_ptr<UniqueTracker> make_unique_tracker(
    UniqueTracking mode, std::size_t exact_shards,
    unsigned sketch_precision_bits) {
  switch (mode) {
    case UniqueTracking::kOff:
      return std::make_unique<NullUniqueTracker>();
    case UniqueTracking::kExact:
      return std::make_unique<ExactUniqueTracker>(exact_shards);
    case UniqueTracking::kSketch:
      return std::make_unique<SketchUniqueTracker>(sketch_precision_bits);
  }
  throw std::invalid_argument("unknown UniqueTracking mode");
}

}  // namespace passflow::guessing
