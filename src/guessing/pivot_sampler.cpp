#include "guessing/pivot_sampler.hpp"

#include <cstddef>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "guessing/interpolation.hpp"

namespace passflow::guessing {

PivotSampler::PivotSampler(const flow::FlowModel& model,
                           const data::Encoder& encoder,
                           const std::string& pivot)
    : model_(&model),
      encoder_(&encoder),
      pivot_latent_(latent_of(model, encoder, pivot)) {}

std::vector<std::string> PivotSampler::sample_unique(
    std::size_t count, double sigma, util::Rng& rng,
    std::size_t max_attempts) const {
  std::vector<std::string> unique;
  std::unordered_set<std::string> seen;
  const std::size_t batch = 256;
  std::size_t attempts = 0;
  while (unique.size() < count && attempts < max_attempts) {
    nn::Matrix z(batch, encoder_->dim());
    for (std::size_t r = 0; r < batch; ++r) {
      float* row = z.row(r);
      for (std::size_t d = 0; d < z.cols(); ++d) {
        row[d] = static_cast<float>(pivot_latent_[d] + rng.normal(0.0, sigma));
      }
    }
    const nn::Matrix x = model_->inverse(z);
    for (std::size_t r = 0; r < x.rows() && unique.size() < count; ++r) {
      std::string password = encoder_->decode(x.row(r), x.cols());
      if (password.empty() || seen.count(password)) continue;
      seen.insert(password);
      unique.push_back(std::move(password));
    }
    attempts += batch;
  }
  return unique;
}

}  // namespace passflow::guessing
