// Streaming attack engine: the session-based replacement for the one-shot
// run_guessing() loop.
//
// An AttackSession owns the bookkeeping of one guessing attack: it drives a
// GuessGenerator against a Matcher in chunk-sized steps, tracks matches /
// distinct guesses / non-matched samples, snapshots metrics at the
// configured checkpoints, and can freeze itself to a stream (save_state)
// and thaw in another process (load_state) so a 10^8-guess attack survives
// a restart.
//
//   HashSetMatcher matcher(test_set);
//   SessionConfig config;
//   config.budget = 100000000;
//   config.pipeline_depth = 4;
//   AttackSession session(sampler, matcher, config);
//   while (session.step()) {
//     if (want_progress) log(session.stats());
//     if (want_checkpoint) { std::ofstream out(path); session.save_state(out); }
//   }
//   RunResult result = session.result();
//
// Pipelining: with pipeline_depth >= 1 and a generator that ignores match
// feedback (uses_match_feedback() == false), a persistent producer thread
// keeps up to `pipeline_depth` chunks in flight through a bounded queue —
// generating each chunk and pre-matching it against the Matcher — while a
// tracker stage (one ThreadPool::submit() task at a time when a pool is
// configured, a dedicated thread otherwise) folds consumed chunks into the
// UniqueTracker behind the consumer. Chunk sizes and generate() call order are exactly the serial
// schedule, match/sample bookkeeping is applied in stream order on the
// consuming thread, and set-union unique counting is order-independent, so
// every reported metric is bitwise identical to a serial run at any depth.
// Feedback-driven generators (Algorithm 1) must see each chunk's matches
// before producing the next, so for them the session silently stays serial
// and delivers on_match() exactly like the seed loop.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <future>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "guessing/generator.hpp"
#include "guessing/matcher.hpp"
#include "guessing/metrics.hpp"
#include "guessing/unique_tracker.hpp"
#include "util/annotated_sync.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace passflow::guessing {

struct SessionConfig {
  std::size_t budget = 100000;           // total guesses to generate
  std::vector<std::size_t> checkpoints;  // empty => powers of ten
  std::size_t chunk_size = 16384;        // guesses per generate() call
  std::size_t non_matched_samples = 40;  // reservoir for Table IV

  // Distinct-guess accounting: exact (seed behavior), HLL sketch (bounded
  // memory for huge runs), or off. See unique_tracker.hpp.
  UniqueTracking unique_tracking = UniqueTracking::kExact;
  std::size_t unique_shards = 1;        // exact-tracker shards
  unsigned sketch_precision_bits = 14;  // sketch resolution (16 KiB at 14)

  // Chunks allowed in flight ahead of consumption. 0 = fully serial
  // inside step(); 1 reproduces the old one-chunk-ahead overlap; deeper
  // queues smooth stage imbalance (bursty generators, tracker growth
  // spikes). Only engages for generators that ignore match feedback.
  std::size_t pipeline_depth = 0;

  // Non-owning worker pool for bulk matching and sharded tracker inserts.
  util::ThreadPool* pool = nullptr;

  bool log_progress = false;
};

// Monotone snapshot of a session's progress, refreshed on every step().
struct SessionStats {
  std::size_t produced = 0;   // guesses generated and consumed so far
  std::size_t matched = 0;    // distinct test-set passwords matched
  std::size_t unique = 0;     // distinct guesses (estimate in sketch mode)
  std::size_t checkpoints_emitted = 0;
  double seconds = 0.0;       // active run time (excludes frozen time)
  double guesses_per_second = 0.0;
  bool finished = false;
};

// Handle to the matcher a session probes: either borrowed (construct from
// a reference the caller keeps alive) or shared (several concurrent
// sessions attacking one big test set hold joint ownership).
class MatcherRef {
 public:
  MatcherRef(const Matcher& matcher) : matcher_(&matcher) {}  // NOLINT
  MatcherRef(std::shared_ptr<const Matcher> matcher)          // NOLINT
      : matcher_(matcher.get()), owned_(std::move(matcher)) {}

  const Matcher& operator*() const { return *matcher_; }
  const Matcher* operator->() const { return matcher_; }
  const Matcher* get() const { return matcher_; }

 private:
  const Matcher* matcher_;
  std::shared_ptr<const Matcher> owned_;
};

class AttackSession {
 public:
  AttackSession(GuessGenerator& generator, MatcherRef matcher,
                SessionConfig config);
  ~AttackSession();

  AttackSession(const AttackSession&) = delete;
  AttackSession& operator=(const AttackSession&) = delete;

  // Processes the next chunk of the schedule (generate -> match -> record,
  // or consume the next pipelined chunk). Returns true while the budget is
  // not exhausted; returns false (doing nothing) once it is.
  bool step();

  // Steps until at least `guess_target` total guesses have been produced
  // (clamped to the budget). Returns the refreshed stats snapshot.
  const SessionStats& run_until(std::size_t guess_target);

  // Runs to completion.
  const SessionStats& run();

  bool finished() const { return next_chunk_ >= schedule_.size(); }
  const SessionStats& stats() const { return stats_; }
  const SessionConfig& config() const { return config_; }

  // Metrics in the seed RunResult shape; callable mid-run (appends the
  // implicit final checkpoint for the guesses produced so far, exactly
  // like the seed loop did at the end of a run). In pipelined mode the
  // unique count of a mid-run snapshot is the tracker's value as of the
  // last checkpoint sync; at completion it is exact.
  RunResult result() const;

  // Freezes the session: pauses the pipeline (chunks already generated but
  // not yet consumed are serialized as part of the state, so no guesses
  // are lost or repeated), then writes bookkeeping, tracker and generator
  // stream state. Requires generator->supports_state_serialization().
  // The session stays usable afterwards; the pipeline restarts on the
  // next step().
  void save_state(std::ostream& out);

  // Restores a save_state() stream into a freshly constructed session.
  // Must be called before the first step(); throws if the saved run shape
  // (budget / chunk size / checkpoints / tracking mode) does not match
  // this session's config. pipeline_depth, pool and shard counts may
  // differ — they do not affect metrics. A load that throws mid-stream
  // (truncated or corrupt state) leaves the session POISONED: every
  // subsequent step()/save_state()/result() throws std::logic_error, so a
  // half-thawed attack can never run and report silently-wrong metrics.
  void load_state(std::istream& in);

  // Folds this session's distinct-guess state into `out`, the fleet-wide
  // union accumulator (see UniqueTracker::merge_into): waits for any
  // background tracker work to drain first, so the contribution covers
  // every consumed chunk. Returns false when tracking is off. Must not be
  // called concurrently with step() — the scheduler quiesces its slices
  // before aggregating.
  bool merge_unique_sketch(util::CardinalitySketch& out);

 private:
  struct Chunk {
    std::vector<std::string> batch;
    std::vector<char> membership;
    bool has_membership = false;
  };

  void plan_schedule();
  void load_state_impl(std::istream& in);
  // Throws if a failed load_state left the session half-thawed.
  void check_usable() const;
  void serial_step();
  void pipelined_step();
  // Stream-order bookkeeping for one chunk; always runs on the consuming
  // thread. `deliver_feedback` routes on_match() (serial mode only).
  void consume_chunk(const std::vector<std::string>& batch,
                     const std::vector<char>& membership,
                     bool deliver_feedback);
  void emit_due_checkpoints();
  std::size_t synced_unique_count();
  void refresh_stats();
  Checkpoint make_checkpoint(std::size_t guesses, std::size_t unique) const;

  void start_pipeline();
  void pause_pipeline();
  void producer_loop();
  void tracker_loop();
  void tracker_drain();
  void schedule_tracker_chunk(std::shared_ptr<Chunk> chunk);

  GuessGenerator* generator_;
  MatcherRef matcher_;
  SessionConfig config_;
  bool pipelined_ = false;      // config requests it and the generator allows it
  bool tracker_stage_ = false;  // unique tracking runs on its own thread

  std::vector<std::size_t> schedule_;  // chunk sizes; fixed up front
  std::size_t next_chunk_ = 0;         // consumer cursor into schedule_
  std::size_t produced_ = 0;
  std::size_t checkpoint_index_ = 0;

  std::unique_ptr<UniqueTracker> tracker_;
  // Consumer-thread-only: refreshed at checkpoint syncs and pipeline
  // teardown, both of which run on the consuming thread after the stage
  // threads have drained — mu_ never guards it.
  std::size_t last_synced_unique_ = 0;
  std::unordered_set<std::string> matched_set_;
  std::unordered_set<std::string> non_matched_seen_;
  RunResult result_;
  SessionStats stats_;
  std::string generator_name_;  // captured before any background generate()

  util::Timer timer_;
  bool timer_started_ = false;  // armed on the first step()
  double seconds_accum_ = 0.0;  // run time carried across save/resume
  bool load_failed_ = false;    // poisoned by a throwing load_state

  // Serial-mode scratch.
  std::vector<std::string> batch_;
  std::vector<char> membership_;

  // ---- pipeline state (guarded by mu_ unless noted) ----
  util::Mutex mu_;
  util::CondVar cv_;
  // producer -> consumer
  std::deque<std::shared_ptr<Chunk>> ready_ PF_GUARDED_BY(mu_);
  // consumer -> tracker
  std::deque<std::shared_ptr<Chunk>> tracking_ PF_GUARDED_BY(mu_);
  // thawed / paused chunks
  std::deque<std::shared_ptr<Chunk>> pending_ PF_GUARDED_BY(mu_);
  // producer cursor into schedule_
  std::size_t generated_chunks_ PF_GUARDED_BY(mu_) = 0;
  // Checkpoint syncs barrier on `tracking_.empty() && tracked_chunks_ ==
  // consumed_chunks_`. Both counters are re-seeded from next_chunk_ on
  // every pipeline (re)start; an error teardown can leave consumed-but-
  // unfolded chunks in `tracking_` (the erroring chunk is requeued, never
  // dropped), so the restart seeds tracked_chunks_ short by that backlog
  // and re-spawns the drain — otherwise the barrier could never close.
  std::size_t consumed_chunks_ PF_GUARDED_BY(mu_) = 0;
  std::size_t tracked_chunks_ PF_GUARDED_BY(mu_) = 0;
  std::size_t published_unique_ PF_GUARDED_BY(mu_) = 0;
  bool producer_stop_ PF_GUARDED_BY(mu_) = false;
  bool tracker_stop_ PF_GUARDED_BY(mu_) = false;
  // Consumer-thread-only: flipped by start_pipeline/pause_pipeline, which
  // only run on the consuming thread while no stage thread exists — a
  // protocol mu_ cannot express, so it stays unannotated (see
  // annotated_sync.hpp usage rules).
  bool pipeline_running_ = false;
  // With a pool configured the tracker stage runs as at most one in-flight
  // submit() task draining `tracking_` FIFO (a serial executor on shared
  // workers); without one it falls back to the dedicated tracker thread.
  // Consumer-thread-only, set before any stage thread starts.
  bool tracker_on_pool_ = false;
  bool tracker_task_active_ PF_GUARDED_BY(mu_) = false;
  std::exception_ptr pipeline_error_ PF_GUARDED_BY(mu_);
  std::thread producer_thread_;
  std::thread tracker_thread_;
  // Latest pool drain task. Consumer-thread-only: written while
  // tracker_task_active_ hands off drain ownership (see
  // schedule_tracker_chunk), read only by pause_pipeline.
  std::future<void> tracker_future_;
};

}  // namespace passflow::guessing
