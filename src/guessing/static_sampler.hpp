// PassFlow-Static (§V-A): draw z ~ N(0, sigma^2 I), invert through the flow,
// decode. Optionally applies data-space Gaussian Smoothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "data/encoder.hpp"
#include "flow/flow_model.hpp"
#include "guessing/gaussian_smoothing.hpp"
#include "guessing/generator.hpp"
#include "util/thread_pool.hpp"

namespace passflow::guessing {

struct StaticSamplerConfig {
  double sigma = 1.0;          // prior stddev
  std::size_t batch_size = 2048;
  GaussianSmoothingConfig smoothing;
  std::uint64_t seed = 11;
  // Non-owning worker pool for the inverse + decode hot path. Latent
  // draws and smoothing stay on the calling thread so output is bitwise
  // identical with or without a pool. Null = fully serial.
  util::ThreadPool* pool = nullptr;
};

class StaticSampler : public GuessGenerator {
 public:
  StaticSampler(const flow::FlowModel& model, const data::Encoder& encoder,
                StaticSamplerConfig config = {});

  void generate(std::size_t n, std::vector<std::string>& out) override;
  std::string name() const override;

  // The guess stream is a pure function of the RNG state, so freezing it
  // freezes the stream.
  bool supports_state_serialization() const override { return true; }
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

 private:
  const flow::FlowModel* model_;
  const data::Encoder* encoder_;
  StaticSamplerConfig config_;
  util::Rng rng_;
};

}  // namespace passflow::guessing
