#include "guessing/dynamic_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <iterator>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/serial_io.hpp"

namespace passflow::guessing {

DynamicSamplerConfig table1_parameters(std::size_t guess_budget) {
  DynamicSamplerConfig config;
  if (guess_budget <= 100000) {
    config.alpha = 1;
    config.sigma = 0.12;
    config.gamma = 2;
  } else if (guess_budget <= 1000000) {
    config.alpha = 5;
    config.sigma = 0.12;
    config.gamma = 2;
  } else if (guess_budget <= 10000000) {
    config.alpha = 50;
    config.sigma = 0.12;
    config.gamma = 10;
  } else {
    config.alpha = 50;
    config.sigma = 0.15;
    config.gamma = 10;
  }
  return config;
}

const char* phi_kind_name(PhiKind kind) {
  switch (kind) {
    case PhiKind::kStep:
      return "step";
    case PhiKind::kLinear:
      return "linear";
    case PhiKind::kExponential:
      return "exponential";
    case PhiKind::kUniform:
      return "uniform";
  }
  return "?";
}

PhiKind parse_phi_kind(const std::string& name) {
  if (name == "step") return PhiKind::kStep;
  if (name == "linear") return PhiKind::kLinear;
  if (name == "exponential") return PhiKind::kExponential;
  if (name == "uniform") return PhiKind::kUniform;
  throw std::invalid_argument("unknown phi kind: " + name);
}

DynamicSampler::DynamicSampler(const flow::FlowModel& model,
                               const data::Encoder& encoder,
                               DynamicSamplerConfig config)
    : model_(&model), encoder_(&encoder), config_(config), rng_(config.seed) {}

double DynamicSampler::phi(const Component& c) const {
  if (!config_.use_phi) return 1.0;  // uniform weighting (Fig. 5 baseline)
  const double age = static_cast<double>(c.age);
  const double gamma = static_cast<double>(config_.gamma);
  switch (config_.phi_kind) {
    case PhiKind::kStep:
      return c.age < config_.gamma ? 1.0 : 0.0;
    case PhiKind::kLinear:
      return std::max(0.0, 1.0 - age / gamma);
    case PhiKind::kExponential: {
      const double weight = std::exp(-age / gamma);
      return weight < 0.01 ? 0.0 : weight;  // cutoff: stale components die
    }
    case PhiKind::kUniform:
      return 1.0;
  }
  return 0.0;
}

std::size_t DynamicSampler::active_component_count() const {
  std::size_t active = 0;
  for (const auto& c : components_) {
    if (phi(c) > 0.0) ++active;
  }
  return active;
}

bool DynamicSampler::dynamic_active() const {
  return components_.size() > config_.alpha && active_component_count() > 0;
}

void DynamicSampler::generate(std::size_t n, std::vector<std::string>& out) {
  out.reserve(out.size() + n);
  last_batch_latents_ = nn::Matrix(n, model_->dim());

  std::size_t produced = 0;
  while (produced < n) {
    const std::size_t count = std::min(config_.batch_size, n - produced);

    // Snapshot the active components and their phi weights once per
    // sub-batch; Eq. 14's mixture samples component i proportionally to
    // phi(Mh[i]).
    std::vector<const Component*> active;
    std::vector<double> weights;
    if (components_.size() > config_.alpha) {
      for (const auto& c : components_) {
        const double weight = phi(c);
        if (weight > 0.0) {
          active.push_back(&c);
          weights.push_back(weight);
        }
      }
    }

    nn::Matrix z(count, model_->dim());
    if (active.empty()) {
      for (std::size_t i = 0; i < z.size(); ++i) {
        z.data()[i] = static_cast<float>(rng_.normal(0.0, config_.prior_sigma));
      }
    } else {
      for (std::size_t r = 0; r < count; ++r) {
        const Component& c =
            *active[util::sample_discrete(rng_, weights)];
        float* zr = z.row(r);
        for (std::size_t d = 0; d < z.cols(); ++d) {
          zr[d] = static_cast<float>(c.latent[d] +
                                     rng_.normal(0.0, config_.sigma));
        }
      }
      // One iteration of conditioning elapsed for every active component.
      for (auto& c : components_) {
        if (phi(c) > 0.0) ++c.age;
      }
    }

    last_batch_latents_.set_rows(produced, z);

    nn::Matrix x = model_->inverse(z, config_.pool);
    if (config_.smoothing.enabled) {
      apply_gaussian_smoothing(x, config_.smoothing.sigma_bins,
                               encoder_->bin_width(), rng_);
    }
    auto decoded = encoder_->decode_batch(x, config_.pool);
    out.insert(out.end(), std::make_move_iterator(decoded.begin()),
               std::make_move_iterator(decoded.end()));
    produced += count;
  }
}

void DynamicSampler::on_match(std::size_t index_in_batch,
                              const std::string& password) {
  (void)password;
  if (index_in_batch >= last_batch_latents_.rows()) return;
  Component c;
  c.latent.assign(last_batch_latents_.row(index_in_batch),
                  last_batch_latents_.row(index_in_batch) +
                      last_batch_latents_.cols());
  components_.push_back(std::move(c));
}

std::string DynamicSampler::name() const {
  std::string base = config_.use_phi ? "PassFlow-Dynamic"
                                     : "PassFlow-Dynamic-nophi";
  if (config_.smoothing.enabled) base += "+GS";
  return base;
}

void DynamicSampler::save_state(std::ostream& out) const {
  rng_.save(out);
  util::io::write_u64(out, components_.size());
  for (const Component& c : components_) {
    util::io::write_u64(out, c.age);
    util::io::write_f32_vec(out, c.latent);
  }
  util::io::write_u64(out, last_batch_latents_.rows());
  util::io::write_u64(out, last_batch_latents_.cols());
  out.write(reinterpret_cast<const char*>(last_batch_latents_.data()),
            static_cast<std::streamsize>(last_batch_latents_.size() *
                                         sizeof(float)));
  if (!out) throw std::runtime_error("DynamicSampler state write failed");
}

void DynamicSampler::load_state(std::istream& in) {
  rng_.load(in);
  const std::uint64_t component_count = util::io::read_u64(in);
  components_.clear();
  for (std::uint64_t i = 0; i < component_count; ++i) {
    Component c;
    c.age = util::io::read_u64(in);
    c.latent = util::io::read_f32_vec(in);
    components_.push_back(std::move(c));
  }
  const std::uint64_t rows = util::io::read_u64(in);
  const std::uint64_t cols = util::io::read_u64(in);
  last_batch_latents_ = nn::Matrix(rows, cols);
  in.read(reinterpret_cast<char*>(last_batch_latents_.data()),
          static_cast<std::streamsize>(last_batch_latents_.size() *
                                       sizeof(float)));
  if (!in) throw std::runtime_error("DynamicSampler state truncated");
}

}  // namespace passflow::guessing
