// Data-space Gaussian Smoothing (§III-C).
//
// After inverting a latent point to a data-space vector, small Gaussian
// perturbations are added *in data space* before decoding. With a sigma that
// is a fraction of one code bin, most coordinates keep their character while
// coordinates near a bin boundary flip — which breaks collisions between
// nearby latent samples while staying in the neighborhood of the original
// point. Sigma is therefore expressed in units of bin width (1/|alphabet|).
#pragma once

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace passflow::guessing {

struct GaussianSmoothingConfig {
  bool enabled = false;
  // Stddev in units of one encoder bin width. 0.15 is the calibrated sweet
  // spot (bench ablation_sigma_gs): large enough to flip boundary
  // characters and break collisions, small enough to stay in the matched
  // password's neighborhood.
  double sigma_bins = 0.15;
};

// Perturbs every entry of `x` in place: x += N(0, sigma_bins * bin_width).
void apply_gaussian_smoothing(nn::Matrix& x, double sigma_bins,
                              float bin_width, util::Rng& rng);

}  // namespace passflow::guessing
