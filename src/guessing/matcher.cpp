#include "guessing/matcher.hpp"

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/hash.hpp"

namespace passflow::guessing {

void Matcher::contains_batch(const std::vector<std::string>& batch,
                             util::ThreadPool* pool,
                             std::vector<char>& out) const {
  // Plain chars (not vector<bool>) so concurrent writes to distinct
  // indices are race-free.
  out.assign(batch.size(), 0);
  const bool parallel = pool != nullptr && pool->size() > 1 &&
                        batch.size() >= kParallelBatchThreshold;
  if (parallel) {
    pool->parallel_for(batch.size(), [&](std::size_t i) {
      out[i] = contains(batch[i]) ? 1 : 0;
    });
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i] = contains(batch[i]) ? 1 : 0;
    }
  }
}

HashSetMatcher::HashSetMatcher(const std::vector<std::string>& test_set)
    : test_set_(test_set.begin(), test_set.end()) {}

ShardedMatcher::ShardedMatcher(const std::vector<std::string>& test_set,
                               std::size_t num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardedMatcher needs at least one shard");
  }
  shards_.resize(num_shards);
  for (const std::string& password : test_set) {
    if (shards_[shard_of(password)].insert(password).second) ++size_;
  }
}

std::size_t ShardedMatcher::shard_of(const std::string& password) const {
  // util::hash64, not std::hash: the shard assignment must be stable
  // across standard libraries (and decorrelated from the shard sets' own
  // internal hashing).
  return static_cast<std::size_t>(util::hash64(password) % shards_.size());
}

bool ShardedMatcher::contains(const std::string& password) const {
  return shards_[shard_of(password)].count(password) > 0;
}

std::string ShardedMatcher::name() const {
  return "sharded(" + std::to_string(shards_.size()) + ")";
}

void ShardedMatcher::contains_batch(const std::vector<std::string>& batch,
                                    util::ThreadPool* pool,
                                    std::vector<char>& out) const {
  out.assign(batch.size(), 0);
  const bool parallel = pool != nullptr && pool->size() > 1 &&
                        shards_.size() > 1 &&
                        batch.size() >= kParallelBatchThreshold;
  if (parallel) {
    detail::shard_parallel_contains_batch(
        shards_.size(), batch, *pool,
        [](const std::string& key) { return util::hash64(key); },
        [this](std::size_t s, std::uint64_t, const std::string& key) {
          return shards_[s].count(key) > 0;
        },
        out);
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i] = contains(batch[i]) ? 1 : 0;
    }
  }
}

}  // namespace passflow::guessing
