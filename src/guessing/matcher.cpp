#include "guessing/matcher.hpp"

namespace passflow::guessing {

Matcher::Matcher(const std::vector<std::string>& test_set)
    : test_set_(test_set.begin(), test_set.end()) {}

}  // namespace passflow::guessing
