// Multi-scenario attack scheduler: many AttackSessions over one shared
// matcher and one global pool budget.
//
// The paper's evaluation sweeps attack configurations — sampler sigma,
// static vs dynamic, masking, per-model baselines — against the same test
// set. AttackScheduler turns that sweep from N serial runs into one fleet:
// register N scenarios (each its own GuessGenerator + SessionConfig, all
// borrowing one MatcherRef and one ThreadPool), and the scheduler drives
// them in chunk-granularity slices under a weighted-fair policy.
//
//   auto matcher = std::make_shared<const ShardedMatcher>(test_set, 8);
//   SchedulerConfig fleet;
//   fleet.pool = &pool;                       // the global worker budget
//   AttackScheduler scheduler(fleet);
//   for (auto& sampler : samplers) {
//     scheduler.add_scenario(*sampler, matcher, options_for(sampler));
//   }
//   scheduler.run();                          // or step() one slice at a time
//   for (const auto& snap : scheduler.scenarios()) report(snap);
//
// Scheduling policy: virtual-time weighted fairness. Every scenario
// advances a virtual clock by chunks_driven / weight; the next slice goes
// to the runnable scenario with the smallest virtual time (ties to the
// lowest id). Equal weights degenerate to round-robin. The policy is a
// pure function of (weights, slice sizes, completion pattern), so a
// step()-driven schedule is deterministic — and because each session's
// chunk schedule and generate() order are its own serial ones regardless
// of interleaving, per-scenario metrics are bitwise identical to running
// that scenario alone.
//
// Concurrency: step() drives one slice on the calling thread (fully
// deterministic, zero extra threads). run() spawns up to max_concurrent
// driver threads that pull slices under the same fair policy; sessions
// never run two slices concurrently, and all inner parallelism (sharded
// matching, tracker folds, pipelined producers) lands on the one shared
// pool, whose helping waits keep nested use deadlock-free. Scenarios can
// be added, paused, resumed and removed mid-run from any thread.
//
// Fleet-wide unique counts: aggregate() quiesces the fleet for a moment
// and merges every session's distinct-guess state into one
// CardinalitySketch (register-max for sketch trackers, key re-insertion
// for exact ones — same hash64 family, so the union composes exactly).
//
// Freeze/thaw: save_state() quiesces the fleet through the same gate
// aggregate() uses and serializes the whole scheduler — every scenario's
// session stream (via AttackSession::save_state), the fair-share virtual
// clocks, rate-cap token-bucket levels, and deadlines re-anchored as
// *remaining* seconds (absolute instants are wall-clock from registration
// and must not survive a process boundary). load_state() rebuilds the
// fleet in a fresh scheduler: a resolver callback binds each saved
// scenario back to a live generator and matcher (those hold references
// and cannot be serialized), and each session thaws from its own stream,
// so a thawed fleet finishes with per-scenario metrics bitwise equal to a
// never-interrupted run. Pair with util::CheckpointStore for crash-safe
// on-disk publication.
//
// QoS: on top of the fair-share base policy, every scenario can carry a
// soft deadline and a guess-rate cap. A scenario past its deadline
// advances its virtual clock at weight * deadline_boost — effective-weight
// escalation, so late work drains faster without starving anyone outright.
// A rate-capped scenario draws slices from a token bucket refilled at
// `rate_cap` guesses/second; a scenario whose bucket is empty is skipped
// by pick_next_locked() without burning a slice, and drivers with nothing
// eligible park on the cv (timed to the earliest bucket refill) instead of
// spinning — SchedulerStats::parked_drivers counts them. QoS knobs change
// only *when* a scenario is driven, never *what* it computes, so the
// per-scenario bitwise-metrics invariant holds with any mix of deadlines
// and caps.
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "guessing/session.hpp"
#include "util/annotated_sync.hpp"
#include "util/cardinality_sketch.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace passflow::guessing {

struct SchedulerConfig {
  // Shared worker pool handed to every registered session (their
  // SessionConfig::pool is overridden): the fleet's global budget. May be
  // null — sessions then run their serial matching/tracking paths.
  util::ThreadPool* pool = nullptr;

  // Chunks per scheduling slice. Smaller slices interleave more fairly,
  // larger ones amortize scheduling overhead.
  std::size_t slice_chunks = 4;

  // Driver threads run() may use. 0 = one per registered scenario at
  // launch, capped at hardware concurrency.
  std::size_t max_concurrent = 0;

  // Precision of the fleet-wide union sketch built by aggregate().
  // Sketch-mode sessions must use the same precision to contribute.
  unsigned unique_union_precision_bits = 14;

  // Effective-weight multiplier for a scenario past its soft deadline: its
  // virtual clock advances as if its weight were weight * deadline_boost,
  // so it takes roughly deadline_boost slices for every one an equal-weight
  // on-time peer gets. Must be >= 1 (1 disables escalation).
  double deadline_boost = 4.0;

  // Token-bucket capacity for rate-capped scenarios, in seconds of cap
  // (capacity = rate_cap * rate_cap_burst_seconds guesses). Buckets start
  // empty and never accumulate more than this, so a scenario idle behind
  // its cap can burst at most this far ahead afterwards. Must be > 0.
  double rate_cap_burst_seconds = 0.25;
};

enum class ScenarioStatus {
  kRunning,   // eligible for slices
  kPaused,    // registered but not eligible until resumed
  kFinished,  // budget exhausted; results remain queryable
};

const char* scenario_status_name(ScenarioStatus status);

struct ScenarioOptions {
  std::string name;           // label in snapshots/logs; "" = "scenario-<id>"
  double weight = 1.0;        // fair-share weight (> 0)
  bool start_paused = false;  // register without becoming runnable
  SessionConfig session;      // per-scenario engine config (pool overridden)

  // Soft deadline in wall-clock seconds from registration; 0 = none. A
  // scenario past its deadline gets effective-weight escalation (see
  // SchedulerConfig::deadline_boost) and counts toward
  // SchedulerStats::deadline_missed.
  double deadline_seconds = 0.0;

  // Guess-rate cap in guesses/second; 0 = uncapped. Enforced by a per-
  // scenario token bucket consulted at slice-pick time: an empty bucket
  // skips the scenario without burning a slice, and the actually produced
  // guesses of each slice are debited afterwards (the bucket may run one
  // slice negative, so the long-run achieved rate converges on the cap).
  double rate_cap = 0.0;
};

// Half-open shard interval [begin, end) of a sharded matcher (a
// MappedMatcher's on-disk extents, a ShardedMatcher's partitions).
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

// Balanced contiguous split of [0, shard_count) into min(parts,
// shard_count) non-empty ranges — the unit of work the distributed
// coordinator hands to workers when one scenario's matcher is divided
// across processes. Earlier ranges take the remainder shards, so sizes
// differ by at most one. Throws std::invalid_argument when either count
// is zero.
std::vector<ShardRange> split_shard_ranges(std::size_t shard_count,
                                           std::size_t parts);

// Point-in-time copy of one scenario's public state; safe to hold after
// the scheduler moves on (nothing refers back into the scheduler).
struct ScenarioSnapshot {
  std::size_t id = 0;
  std::string name;
  double weight = 1.0;
  ScenarioStatus status = ScenarioStatus::kRunning;
  std::size_t chunks_driven = 0;
  SessionStats stats;

  // QoS view. `past_deadline` is latched at finish time (a scenario that
  // finished on time stays on time even after its deadline passes);
  // `achieved_guesses_per_second` is wall-clock — first slice dispatch to
  // last slice completion — which is what a rate cap constrains (the
  // session's own guesses_per_second counts only active driving time).
  double deadline_seconds = 0.0;  // 0 = none
  bool past_deadline = false;
  double rate_cap = 0.0;  // 0 = uncapped
  double achieved_guesses_per_second = 0.0;
};

// Fleet-level aggregate. `unique_union` is the merged-sketch estimate of
// distinct guesses across every scenario (valid only when every scenario
// could contribute, i.e. none track kOff and sketch precisions agree).
struct SchedulerStats {
  std::size_t scenarios = 0;
  std::size_t running = 0;
  std::size_t paused = 0;
  std::size_t finished = 0;
  std::size_t produced = 0;
  std::size_t matched = 0;
  double seconds = 0.0;  // wall time since the first slice
  double guesses_per_second = 0.0;
  std::size_t unique_union = 0;
  bool unique_union_valid = false;
  // run() driver threads currently parked on the cv waiting for eligible
  // work (fewer runnable scenarios than drivers, every runnable scenario
  // rate-capped out, or an aggregate() quiesce in progress).
  std::size_t parked_drivers = 0;
  // Scenarios past their soft deadline: finished scenarios that finished
  // late (latched) plus live scenarios currently past it.
  std::size_t deadline_missed = 0;
};

class AttackScheduler {
 public:
  explicit AttackScheduler(SchedulerConfig config = {});
  ~AttackScheduler();

  AttackScheduler(const AttackScheduler&) = delete;
  AttackScheduler& operator=(const AttackScheduler&) = delete;

  // Registers a scenario and returns its id (stable for the scheduler's
  // lifetime). The generator must outlive the scenario; the matcher
  // follows MatcherRef semantics (borrowed or shared). Thread-safe,
  // callable mid-run — a live run() picks the newcomer up on the next
  // slice decision.
  std::size_t add_scenario(GuessGenerator& generator, MatcherRef matcher,
                           ScenarioOptions options = {}) PF_EXCLUDES(mu_);

  // Pauses/resumes slice eligibility. Pausing never interrupts an
  // in-flight slice; it just stops new ones. Unknown ids throw
  // std::out_of_range (as does every id-taking method).
  void pause_scenario(std::size_t id) PF_EXCLUDES(mu_);
  void resume_scenario(std::size_t id) PF_EXCLUDES(mu_);

  // Deregisters a scenario after its in-flight slice (if any) lands, and
  // returns its results up to that point. The caller may destroy the
  // generator afterwards.
  RunResult remove_scenario(std::size_t id) PF_EXCLUDES(mu_);

  // Drives one slice of the next runnable scenario on the calling thread.
  // Returns false (doing nothing) when nothing is runnable — every active
  // scenario finished or paused. When every runnable scenario is merely
  // rate-capped out, step() sleeps until the earliest bucket refill and
  // then drives — the fleet is not drained, just throttled.
  bool step() PF_EXCLUDES(mu_);

  // Drives slices on up to max_concurrent driver threads until nothing is
  // runnable. Returns with paused scenarios still paused. Must not be
  // called concurrently with itself or step().
  void run() PF_EXCLUDES(mu_);

  // True when no registered scenario is eligible for another slice.
  bool finished() const PF_EXCLUDES(mu_);

  std::size_t scenario_count() const PF_EXCLUDES(mu_);
  ScenarioSnapshot scenario(std::size_t id) const PF_EXCLUDES(mu_);
  std::vector<ScenarioSnapshot> scenarios() const PF_EXCLUDES(mu_);  // registration order

  // Results of one scenario (waits for its in-flight slice to land, then
  // reserves the scenario so no new slice dispatches while the result is
  // copied — outside the scheduler lock). Callable any number of times;
  // on a finished scenario every call returns the same values.
  RunResult result(std::size_t id) const PF_EXCLUDES(mu_);

  // Everything load_state knows about one saved scenario before asking the
  // resolver to bind it to live objects. `session` is the saved per-
  // scenario engine config (the pool is already overridden to the
  // scheduler's); `index` is the scenario's position in the save, which is
  // registration order.
  struct ScenarioThawInfo {
    std::size_t index = 0;
    std::size_t id = 0;
    std::string name;
    SessionConfig session;
  };

  // Live bindings for one thawed scenario: the generator that will drive
  // it (must outlive the scenario; its stream state thaws from the saved
  // session, and AttackSession::load_state rejects a generator whose
  // name() differs from the saved one) and the matcher to probe.
  struct ScenarioBinding {
    GuessGenerator& generator;
    MatcherRef matcher;
  };
  using ScenarioResolver =
      std::function<ScenarioBinding(const ScenarioThawInfo&)>;

  // Freezes the whole fleet: quiesces slice dispatch (in-flight slices
  // land first — drivers stay parked for the duration), then serializes
  // scheduler bookkeeping plus every scenario's full state. Requires every
  // scenario's generator to support state serialization. Thread-safe;
  // callable mid-run() — drivers resume when the save completes. On error
  // the stream contents are unspecified and must be discarded (a
  // CheckpointStore save does this automatically by never publishing).
  void save_state(std::ostream& out) PF_EXCLUDES(mu_);

  // Thaws a save_state() stream into a freshly constructed scheduler (no
  // scenarios registered, never driven — throws std::logic_error
  // otherwise). Calls `resolver` once per saved scenario, in registration
  // order, to obtain its generator and matcher. Scenario ids, weights,
  // statuses (running/paused/finished), virtual clocks, QoS ledgers and
  // latched deadline outcomes are restored; deadlines re-anchor so the
  // remaining time at save is the remaining time now (a scenario saved
  // past its deadline is past it on thaw, with escalation active
  // immediately). On failure the scheduler is left unchanged and usable.
  void load_state(std::istream& in, const ScenarioResolver& resolver)
      PF_EXCLUDES(mu_);

  // Fleet aggregate; briefly quiesces slice dispatch so every session can
  // be read at a chunk boundary. Concurrent aggregate() calls compose (the
  // quiesce gate is a counter, so slices stay parked until the last one
  // finishes). If a slice or merge error is pending — including one raised
  // after the fleet finished, which no driver would ever rethrow — it is
  // rethrown here once the quiesce gate has been released, so errors are
  // never silently swallowed.
  SchedulerStats aggregate() const PF_EXCLUDES(mu_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Scenario {
    std::size_t id = 0;
    std::string name;
    double weight = 1.0;
    ScenarioStatus status = ScenarioStatus::kRunning;
    bool removing = false;
    bool in_flight = false;
    std::size_t chunks_driven = 0;
    double virtual_time = 0.0;
    std::unique_ptr<AttackSession> session;
    SessionStats snapshot;  // refreshed after every slice, under mu_

    // ---- QoS state (all under mu_) ----
    double deadline_seconds = 0.0;  // as registered; 0 = none
    bool has_deadline = false;
    bool missed_deadline = false;  // latched when the scenario finishes late
    Clock::time_point deadline_at{};
    double rate_cap = 0.0;        // guesses/s; 0 = uncapped
    double tokens = 0.0;          // bucket level; a slice may run it negative
    double token_capacity = 0.0;  // rate_cap * rate_cap_burst_seconds
    Clock::time_point last_refill{};
    bool started = false;  // first slice dispatched
    Clock::time_point first_slice_at{};
    Clock::time_point last_slice_at{};
  };

  // Every *_locked helper carries PF_REQUIRES(mu_): the annotation is the
  // machine-checked contract, the suffix keeps call sites readable.
  // Waiting with a scenario pointer across a cv wait requires the
  // shared_ptr form: a concurrent remove_scenario may erase the vector
  // entry, and only the shared_ptr keeps the object alive for the waiter's
  // re-check.
  std::shared_ptr<Scenario> find_scenario_locked(std::size_t id) const
      PF_REQUIRES(mu_);
  // Fair pick over eligible scenarios; refills rate-cap buckets as a side
  // effect. When nothing is eligible but some runnable scenario is only
  // rate-capped out, *next_eligible is lowered to its projected refill
  // time (callers use it for a timed park); untouched otherwise.
  Scenario* pick_next_locked(Clock::time_point now,
                             Clock::time_point* next_eligible)
      PF_REQUIRES(mu_);
  bool any_runnable_locked() const PF_REQUIRES(mu_);
  // min virtual_time over kRunning
  double virtual_now_locked() const PF_REQUIRES(mu_);
  double effective_weight_locked(const Scenario& scenario) const
      PF_REQUIRES(mu_);
  bool past_deadline_locked(const Scenario& scenario) const PF_REQUIRES(mu_);
  void dispatch_locked(Scenario& scenario) PF_REQUIRES(mu_);
  // const: touches only the scenario (latching its deadline outcome), so
  // aggregate() can park a broken session it trips over.
  void mark_finished_locked(Scenario& scenario) const PF_REQUIRES(mu_);
  ScenarioSnapshot snapshot_locked(const Scenario& scenario) const
      PF_REQUIRES(mu_);
  // True once the fleet is quiet enough to freeze: no active slices and no
  // result()-copy reservation in flight. save_state parks on this.
  bool quiesced_for_save_locked() const PF_REQUIRES(mu_);
  void run_slice(Scenario& scenario) PF_EXCLUDES(mu_);
  void driver_loop() PF_EXCLUDES(mu_);
  void note_driving_started_locked() PF_REQUIRES(mu_);

  SchedulerConfig config_;

  mutable util::Mutex mu_;
  mutable util::CondVar cv_;
  // Registration order. The vector and every Scenario field are guarded by
  // mu_, with one protocol exception the analysis cannot express: the
  // driver that set `in_flight` owns `session` (and only `session`) for
  // the duration of its slice and touches it outside the lock — see
  // run_slice / result / remove_scenario.
  std::vector<std::shared_ptr<Scenario>> scenarios_ PF_GUARDED_BY(mu_);
  std::size_t next_id_ PF_GUARDED_BY(mu_) = 0;
  std::size_t active_slices_ PF_GUARDED_BY(mu_) = 0;
  // run() drivers waiting on cv_.
  std::size_t parked_drivers_ PF_GUARDED_BY(mu_) = 0;
  // aggregate() gate: no new slices while > 0. A counter, not a flag, so
  // concurrent aggregate() calls compose — the gate only lifts when the
  // last one finishes.
  mutable std::size_t quiesce_count_ PF_GUARDED_BY(mu_) = 0;
  // First slice/merge failure; rethrown by step()/run()/aggregate().
  // Mutable because aggregate() (const) parks a broken session it trips
  // over and rethrows pending errors a finished fleet would otherwise
  // swallow.
  mutable std::exception_ptr first_error_ PF_GUARDED_BY(mu_);

  util::Timer timer_ PF_GUARDED_BY(mu_);
  bool timer_started_ PF_GUARDED_BY(mu_) = false;
  // Fleet driving seconds carried across save/thaw: stats().seconds =
  // saved_seconds_ + time since this process's first slice.
  double saved_seconds_ PF_GUARDED_BY(mu_) = 0.0;
};

}  // namespace passflow::guessing
