// Multi-scenario attack scheduler: many AttackSessions over one shared
// matcher and one global pool budget.
//
// The paper's evaluation sweeps attack configurations — sampler sigma,
// static vs dynamic, masking, per-model baselines — against the same test
// set. AttackScheduler turns that sweep from N serial runs into one fleet:
// register N scenarios (each its own GuessGenerator + SessionConfig, all
// borrowing one MatcherRef and one ThreadPool), and the scheduler drives
// them in chunk-granularity slices under a weighted-fair policy.
//
//   auto matcher = std::make_shared<const ShardedMatcher>(test_set, 8);
//   SchedulerConfig fleet;
//   fleet.pool = &pool;                       // the global worker budget
//   AttackScheduler scheduler(fleet);
//   for (auto& sampler : samplers) {
//     scheduler.add_scenario(*sampler, matcher, options_for(sampler));
//   }
//   scheduler.run();                          // or step() one slice at a time
//   for (const auto& snap : scheduler.scenarios()) report(snap);
//
// Scheduling policy: virtual-time weighted fairness. Every scenario
// advances a virtual clock by chunks_driven / weight; the next slice goes
// to the runnable scenario with the smallest virtual time (ties to the
// lowest id). Equal weights degenerate to round-robin. The policy is a
// pure function of (weights, slice sizes, completion pattern), so a
// step()-driven schedule is deterministic — and because each session's
// chunk schedule and generate() order are its own serial ones regardless
// of interleaving, per-scenario metrics are bitwise identical to running
// that scenario alone.
//
// Concurrency: step() drives one slice on the calling thread (fully
// deterministic, zero extra threads). run() spawns up to max_concurrent
// driver threads that pull slices under the same fair policy; sessions
// never run two slices concurrently, and all inner parallelism (sharded
// matching, tracker folds, pipelined producers) lands on the one shared
// pool, whose helping waits keep nested use deadlock-free. Scenarios can
// be added, paused, resumed and removed mid-run from any thread.
//
// Fleet-wide unique counts: aggregate() quiesces the fleet for a moment
// and merges every session's distinct-guess state into one
// CardinalitySketch (register-max for sketch trackers, key re-insertion
// for exact ones — same hash64 family, so the union composes exactly).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "guessing/session.hpp"
#include "util/cardinality_sketch.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace passflow::guessing {

struct SchedulerConfig {
  // Shared worker pool handed to every registered session (their
  // SessionConfig::pool is overridden): the fleet's global budget. May be
  // null — sessions then run their serial matching/tracking paths.
  util::ThreadPool* pool = nullptr;

  // Chunks per scheduling slice. Smaller slices interleave more fairly,
  // larger ones amortize scheduling overhead.
  std::size_t slice_chunks = 4;

  // Driver threads run() may use. 0 = one per registered scenario at
  // launch, capped at hardware concurrency.
  std::size_t max_concurrent = 0;

  // Precision of the fleet-wide union sketch built by aggregate().
  // Sketch-mode sessions must use the same precision to contribute.
  unsigned unique_union_precision_bits = 14;
};

enum class ScenarioStatus {
  kRunning,   // eligible for slices
  kPaused,    // registered but not eligible until resumed
  kFinished,  // budget exhausted; results remain queryable
};

const char* scenario_status_name(ScenarioStatus status);

struct ScenarioOptions {
  std::string name;           // label in snapshots/logs; "" = "scenario-<id>"
  double weight = 1.0;        // fair-share weight (> 0)
  bool start_paused = false;  // register without becoming runnable
  SessionConfig session;      // per-scenario engine config (pool overridden)
};

// Point-in-time copy of one scenario's public state; safe to hold after
// the scheduler moves on (nothing refers back into the scheduler).
struct ScenarioSnapshot {
  std::size_t id = 0;
  std::string name;
  double weight = 1.0;
  ScenarioStatus status = ScenarioStatus::kRunning;
  std::size_t chunks_driven = 0;
  SessionStats stats;
};

// Fleet-level aggregate. `unique_union` is the merged-sketch estimate of
// distinct guesses across every scenario (valid only when every scenario
// could contribute, i.e. none track kOff and sketch precisions agree).
struct SchedulerStats {
  std::size_t scenarios = 0;
  std::size_t running = 0;
  std::size_t paused = 0;
  std::size_t finished = 0;
  std::size_t produced = 0;
  std::size_t matched = 0;
  double seconds = 0.0;  // wall time since the first slice
  double guesses_per_second = 0.0;
  std::size_t unique_union = 0;
  bool unique_union_valid = false;
};

class AttackScheduler {
 public:
  explicit AttackScheduler(SchedulerConfig config = {});
  ~AttackScheduler();

  AttackScheduler(const AttackScheduler&) = delete;
  AttackScheduler& operator=(const AttackScheduler&) = delete;

  // Registers a scenario and returns its id (stable for the scheduler's
  // lifetime). The generator must outlive the scenario; the matcher
  // follows MatcherRef semantics (borrowed or shared). Thread-safe,
  // callable mid-run — a live run() picks the newcomer up on the next
  // slice decision.
  std::size_t add_scenario(GuessGenerator& generator, MatcherRef matcher,
                           ScenarioOptions options = {});

  // Pauses/resumes slice eligibility. Pausing never interrupts an
  // in-flight slice; it just stops new ones. Unknown ids throw
  // std::out_of_range (as does every id-taking method).
  void pause_scenario(std::size_t id);
  void resume_scenario(std::size_t id);

  // Deregisters a scenario after its in-flight slice (if any) lands, and
  // returns its results up to that point. The caller may destroy the
  // generator afterwards.
  RunResult remove_scenario(std::size_t id);

  // Drives one slice of the next runnable scenario on the calling thread.
  // Returns false (doing nothing) when nothing is runnable — every active
  // scenario finished or paused.
  bool step();

  // Drives slices on up to max_concurrent driver threads until nothing is
  // runnable. Returns with paused scenarios still paused. Must not be
  // called concurrently with itself or step().
  void run();

  // True when no registered scenario is eligible for another slice.
  bool finished() const;

  std::size_t scenario_count() const;
  ScenarioSnapshot scenario(std::size_t id) const;
  std::vector<ScenarioSnapshot> scenarios() const;  // registration order

  // Results of one scenario (waits for its in-flight slice to land).
  RunResult result(std::size_t id) const;

  // Fleet aggregate; briefly quiesces slice dispatch so every session can
  // be read at a chunk boundary.
  SchedulerStats aggregate() const;

 private:
  struct Scenario {
    std::size_t id = 0;
    std::string name;
    double weight = 1.0;
    ScenarioStatus status = ScenarioStatus::kRunning;
    bool removing = false;
    bool in_flight = false;
    std::size_t chunks_driven = 0;
    double virtual_time = 0.0;
    std::unique_ptr<AttackSession> session;
    SessionStats snapshot;  // refreshed after every slice, under mu_
  };

  // All private helpers assume mu_ is held unless noted. Waiting with a
  // scenario pointer across a cv wait requires the shared_ptr form: a
  // concurrent remove_scenario may erase the vector entry, and only the
  // shared_ptr keeps the object alive for the waiter's predicate.
  std::shared_ptr<Scenario> find_scenario(std::size_t id) const;
  Scenario* pick_next_locked() const;
  bool any_runnable_locked() const;
  void run_slice(Scenario& scenario);  // called WITHOUT mu_ held
  void driver_loop();
  void note_driving_started_locked();

  SchedulerConfig config_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<std::shared_ptr<Scenario>> scenarios_;  // registration order
  std::size_t next_id_ = 0;
  std::size_t active_slices_ = 0;
  mutable bool quiesce_ = false;  // aggregate() gate: no new slices while set
  // First slice/merge failure; rethrown by step()/run(). Mutable because
  // aggregate() (const) parks a broken session it trips over.
  mutable std::exception_ptr first_error_;

  util::Timer timer_;
  bool timer_started_ = false;
};

}  // namespace passflow::guessing
