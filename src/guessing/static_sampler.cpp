#include "guessing/static_sampler.hpp"

#include <algorithm>
#include <cstddef>
#include <istream>
#include <iterator>
#include <ostream>
#include <string>
#include <vector>

namespace passflow::guessing {

StaticSampler::StaticSampler(const flow::FlowModel& model,
                             const data::Encoder& encoder,
                             StaticSamplerConfig config)
    : model_(&model), encoder_(&encoder), config_(config), rng_(config.seed) {}

void StaticSampler::generate(std::size_t n, std::vector<std::string>& out) {
  out.reserve(out.size() + n);
  std::size_t produced = 0;
  while (produced < n) {
    const std::size_t count = std::min(config_.batch_size, n - produced);
    nn::Matrix z(count, model_->dim());
    for (std::size_t i = 0; i < z.size(); ++i) {
      z.data()[i] = static_cast<float>(rng_.normal(0.0, config_.sigma));
    }
    nn::Matrix x = model_->inverse(z, config_.pool);
    if (config_.smoothing.enabled) {
      apply_gaussian_smoothing(x, config_.smoothing.sigma_bins,
                               encoder_->bin_width(), rng_);
    }
    auto decoded = encoder_->decode_batch(x, config_.pool);
    out.insert(out.end(), std::make_move_iterator(decoded.begin()),
               std::make_move_iterator(decoded.end()));
    produced += count;
  }
}

std::string StaticSampler::name() const {
  return config_.smoothing.enabled ? "PassFlow-Static+GS" : "PassFlow-Static";
}

void StaticSampler::save_state(std::ostream& out) const { rng_.save(out); }

void StaticSampler::load_state(std::istream& in) { rng_.load(in); }

}  // namespace passflow::guessing
